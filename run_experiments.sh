#!/bin/bash
# Regenerate every table and figure. Scales are chosen to fit a 15 GB
# machine; EXPERIMENTS.md records them. Output: bench_out/*.csv + stdout.
set -u
cd "$(dirname "$0")"
BIN=target/release
run() {
  local scale=$1; shift
  local name=$1; shift
  echo ""
  echo "##### $name (PHJ_SCALE=$scale) #####"
  local t0=$SECONDS
  PHJ_SCALE=$scale $BIN/$name
  echo "[$name took $((SECONDS - t0))s]"
}
run 1.0  table02_params
run 1.0  fig01_breakdown
run 1.0  fig09_cpu_vs_io
run 1.0  fig10_join_phase
run 1.0  fig11_join_breakdown
run 0.5  fig12_tuning
run 0.5  fig13_miss_breakdown
run 0.25 fig14_partition_phase
run 0.25 fig15_partition_breakdown
run 0.25 fig16_partition_tuning
run 0.25 fig17_partition_miss
run 1.0  fig18_flush_robustness
run 0.25 fig19_cache_partitioning
run 0.5  headline_speedups
run 0.25 ablations
run 0.25 disk_grace
run 0.25 ext_skew
echo ""
echo "ALL EXPERIMENTS DONE"
