//! Pipelined query processing: a parent operator consumes join output at
//! group boundaries.
//!
//! §5.4 of the paper argues group prefetching suits engines because "the
//! join phase can pause at group boundaries and send outputs to the
//! parent operator to support pipelined query processing" (a software
//! pipeline would pay restart costs at each pause). This example builds
//! that pipeline: a resumable [`GroupProbe`] drives the join one group at
//! a time, a [`BatchingSink`] hands bounded batches to a running
//! aggregation, and nothing ever materializes the full join result.
//!
//! Run with `cargo run --release --example pipelined_query`.
//!
//! [`GroupProbe`]: phj::join::GroupProbe
//! [`BatchingSink`]: phj::sink::BatchingSink

use std::collections::HashMap;

use phj::join::{group, GroupProbe, JoinParams, JoinScheme};
use phj::sink::BatchingSink;
use phj::{plan, HashTable};
use phj_memsim::NativeModel;
use phj_storage::TupleView;
use phj_workload::JoinSpec;

fn main() {
    // Orders (probe) joined to customers (build); the parent operator
    // sums order payloads per customer segment, streaming.
    let spec = JoinSpec {
        build_tuples: 100_000,
        tuple_size: 64,
        matches_per_build: 3,
        pct_match: 100,
        seed: 99,
    };
    let gen = spec.generate();
    let params = JoinParams { scheme: JoinScheme::Group { g: 16 }, use_stored_hash: true };
    let mut mem = NativeModel;

    // Build once.
    let buckets = plan::hash_table_buckets(gen.build.num_tuples(), 1);
    let mut table = HashTable::new(buckets, gen.build.num_tuples());
    group::build(&mut mem, &params, &mut table, &gen.build, 16);

    // The "parent operator": a streaming per-segment aggregate.
    let build_schema = gen.build.schema().clone();
    let mut revenue: HashMap<u32, i64> = HashMap::new();
    let mut batches = 0usize;
    let mut largest_batch = 0usize;
    {
        let mut sink = BatchingSink::new(64, |batch| {
            batches += 1;
            largest_batch = largest_batch.max(batch.len());
            for (bt, _pt) in batch {
                let v = TupleView::new(&build_schema, bt);
                let segment = v.u32(0) % 8;
                *revenue.entry(segment).or_default() += v.attr_bytes(1)[0] as i64;
            }
        });
        // Drive the join one group at a time — the pipeline's heartbeat.
        let mut probe = GroupProbe::new(&params, &table, &gen.build, &gen.probe, 16);
        let mut groups = 0usize;
        let t0 = std::time::Instant::now();
        while probe.run_group(&mut mem, &mut sink) {
            groups += 1;
        }
        let total = sink.finish();
        println!(
            "streamed {total} matches through {groups} groups / {batches} batches \
             (largest batch {largest_batch}) in {:?}",
            t0.elapsed()
        );
        assert_eq!(total, gen.expected_matches);
    }
    let mut segs: Vec<_> = revenue.into_iter().collect();
    segs.sort();
    for (seg, rev) in segs {
        println!("segment {seg}: {rev}");
    }
    println!("\nNo full join result was ever materialized — output flowed to the");
    println!("parent at group boundaries, as §5.4 describes.");
}
