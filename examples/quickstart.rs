//! Quickstart: join two relations with the prefetching GRACE hash join.
//!
//! Run with `cargo run --release --example quickstart`.

use phj::grace::{grace_join, GraceConfig};
use phj::{JoinScheme, PartitionScheme};
use phj_memsim::NativeModel;
use phj_storage::{RelationBuilder, Schema, TupleView};

fn main() {
    // Two relations with the paper's schema: 4-byte key + fixed payload.
    let schema = Schema::key_payload(32);
    let mut build = RelationBuilder::new(schema.clone());
    let mut probe = RelationBuilder::new(schema.clone());
    let mut tuple = [0u8; 32];
    for k in 0u32..200_000 {
        tuple[..4].copy_from_slice(&k.to_le_bytes());
        build.push(&tuple);
    }
    for k in 100_000u32..400_000 {
        tuple[..4].copy_from_slice(&k.to_le_bytes());
        probe.push(&tuple);
    }
    let (build, probe) = (build.finish(), probe.finish());
    println!(
        "build: {} tuples / {} pages; probe: {} tuples / {} pages",
        build.num_tuples(),
        build.num_pages(),
        probe.num_tuples(),
        probe.num_pages()
    );

    // GRACE hash join: group prefetching in both phases, 4 MB memory
    // budget to force several partitions.
    let cfg = GraceConfig {
        mem_budget: 4 << 20,
        partition_scheme: PartitionScheme::combined_default(),
        join_scheme: JoinScheme::Group { g: 16 },
        ..Default::default()
    };
    let mut mem = NativeModel; // real prefetch instructions, zero overhead
    let result = grace_join(&mut mem, &cfg, &build, &probe);

    println!(
        "joined with {} partitions -> {} output tuples",
        result.num_partitions,
        result.output.num_tuples()
    );
    assert_eq!(result.output.num_tuples(), 100_000); // keys 100k..200k

    // Output tuples hold all build fields then all probe fields.
    let out_schema = result.output.schema().clone();
    let (_, first, _) = result.output.iter().next().expect("non-empty");
    let v = TupleView::new(&out_schema, first);
    println!("first output tuple: build key {} / probe key {}", v.u32(0), v.u32(2));
}
