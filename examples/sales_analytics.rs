//! A realistic analytics scenario: customers ⋈ orders.
//!
//! Customers carry variable-length names; orders carry an amount. The
//! join uses software-pipelined prefetching end-to-end and then computes
//! revenue per customer segment from the materialized output — the kind
//! of hash-join-driven reporting query the paper's introduction motivates.
//!
//! Run with `cargo run --release --example sales_analytics`.

use phj::grace::{grace_join, GraceConfig};
use phj::{JoinScheme, PartitionScheme};
use phj_memsim::NativeModel;
use phj_storage::{AttrType, Attribute, RelationBuilder, Schema, TupleAssembler, TupleView};

fn main() {
    let customers_schema = Schema::new(
        vec![
            Attribute::new("cust_id", AttrType::U32),
            Attribute::new("segment", AttrType::U32),
            Attribute::new("name", AttrType::VarBytes),
        ],
        0,
    );
    let orders_schema = Schema::new(
        vec![
            Attribute::new("cust_id", AttrType::U32),
            Attribute::new("amount_cents", AttrType::I64),
        ],
        0,
    );

    // 50k customers in 4 segments; 300k orders, skewed to low ids.
    let mut customers = RelationBuilder::new(customers_schema.clone());
    let mut asm = TupleAssembler::new(&customers_schema);
    for id in 0u32..50_000 {
        let name = format!("customer-{id:05}");
        asm.set_u32(0, id).set_u32(1, id % 4).set_var_bytes(2, name.as_bytes());
        customers.push(asm.finish());
    }
    let mut orders = RelationBuilder::new(orders_schema.clone());
    let mut oasm = TupleAssembler::new(&orders_schema);
    let mut state = 0x2545F4914F6CDD1Du64;
    for _ in 0..300_000 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let cust = (state % 50_000) as u32;
        let amount = (state >> 32) as i64 % 50_000 + 100;
        oasm.set_u32(0, cust).set_i64(1, amount);
        orders.push(oasm.finish());
    }
    let (customers, orders) = (customers.finish(), orders.finish());

    let cfg = GraceConfig {
        mem_budget: 2 << 20,
        partition_scheme: PartitionScheme::Swp { d: 4 },
        join_scheme: JoinScheme::Swp { d: 4 },
        ..Default::default()
    };
    let mut mem = NativeModel;
    let start = std::time::Instant::now();
    let result = grace_join(&mut mem, &cfg, &customers, &orders);
    println!(
        "joined {} orders to {} customers in {:?} ({} partitions, {} output tuples)",
        orders.num_tuples(),
        customers.num_tuples(),
        start.elapsed(),
        result.num_partitions,
        result.output.num_tuples()
    );
    assert_eq!(result.output.num_tuples(), 300_000);

    // Revenue per segment from the join output (customer fields first,
    // then order fields: segment is attr 1, amount is attr 4).
    let out_schema = result.output.schema().clone();
    let mut revenue = [0i64; 4];
    let mut sample = None;
    for (_, bytes, _) in result.output.iter() {
        let v = TupleView::new(&out_schema, bytes);
        revenue[v.u32(1) as usize] += v.i64(4);
        if sample.is_none() {
            sample = Some(format!(
                "{} (segment {}) ordered {} cents",
                String::from_utf8_lossy(v.attr_bytes(2)),
                v.u32(1),
                v.i64(4)
            ));
        }
    }
    println!("sample row: {}", sample.unwrap());
    for (seg, rev) in revenue.iter().enumerate() {
        println!("segment {seg}: revenue {} cents", rev);
    }
    assert!(revenue.iter().all(|&r| r > 0));
}
