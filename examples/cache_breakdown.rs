//! See *why* prefetching helps: run the same join under the cycle-level
//! memory-hierarchy simulator and print the execution-time breakdowns
//! (busy / data-cache stall / TLB stall / other) and cache statistics for
//! all four schemes — a miniature of the paper's Figures 1 and 11.
//!
//! Run with `cargo run --release --example cache_breakdown`.

use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::sink::{JoinSink, OutputWriter};
use phj_memsim::SimEngine;
use phj_workload::JoinSpec;

fn main() {
    let spec = JoinSpec {
        build_tuples: 100_000,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        seed: 42,
    };
    let gen = spec.generate();
    println!(
        "joining {} x {} tuples of 100B under the Table-2 simulator\n",
        gen.build.num_tuples(),
        gen.probe.num_tuples()
    );
    println!(
        "{:<10} {:>9} {:>7} {:>8} {:>6} {:>6}  {:>9} {:>9}",
        "scheme", "Mcycles", "busy%", "dcache%", "tlb%", "other%", "mem miss", "pf issued"
    );
    let mut baseline = 0u64;
    for (name, scheme) in [
        ("baseline", JoinScheme::Baseline),
        ("simple", JoinScheme::Simple),
        ("group", JoinScheme::Group { g: 16 }),
        ("swp", JoinScheme::Swp { d: 1 }),
    ] {
        let mut mem = SimEngine::paper();
        let mut sink =
            OutputWriter::new(gen.build.schema().clone(), gen.probe.schema().clone());
        join_pair(
            &mut mem,
            &JoinParams { scheme, use_stored_hash: true },
            &gen.build,
            &gen.probe,
            1,
            &mut sink,
        );
        assert_eq!(sink.matches(), gen.expected_matches);
        let b = mem.breakdown();
        let s = mem.stats();
        if baseline == 0 {
            baseline = b.total();
        }
        let pct = |x: u64| 100.0 * x as f64 / b.total() as f64;
        println!(
            "{:<10} {:>9.1} {:>6.0}% {:>7.0}% {:>5.0}% {:>5.0}%  {:>9} {:>9}   ({:.2}x)",
            name,
            b.total() as f64 / 1e6,
            pct(b.busy),
            pct(b.dcache_stall),
            pct(b.dtlb_stall),
            pct(b.other_stall),
            s.mem_misses,
            s.prefetches,
            baseline as f64 / b.total() as f64,
        );
    }
    println!("\nThe staged schemes turn memory stalls into busy time — the");
    println!("paper's core result (Figs 1 and 11).");
}
