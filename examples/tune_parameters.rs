//! Find the best group size G and prefetch distance D on *this* machine.
//!
//! The paper's Theorems 1 and 2 predict the minimal parameters from the
//! memory latency, bandwidth, and per-stage costs; this example sweeps
//! both parameters natively (real prefetch instructions, wall-clock) and
//! prints the measured curve next to the Table-2 predictions, mirroring
//! Figure 12's methodology.
//!
//! Run with `cargo run --release --example tune_parameters`.

use std::time::Instant;

use phj::cost;
use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::model::{min_group_size, min_prefetch_distance};
use phj::sink::{CountSink, JoinSink};
use phj_memsim::{MemConfig, NativeModel};
use phj_workload::JoinSpec;

fn measure(gen: &phj_workload::GeneratedJoin, scheme: JoinScheme) -> f64 {
    // Best of three runs to tame noise.
    (0..3)
        .map(|_| {
            let mut mem = NativeModel;
            let mut sink = CountSink::new();
            let t0 = Instant::now();
            join_pair(
                &mut mem,
                &JoinParams { scheme, use_stored_hash: true },
                &gen.build,
                &gen.probe,
                1,
                &mut sink,
            );
            assert_eq!(sink.matches(), gen.expected_matches);
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let spec = JoinSpec {
        build_tuples: 300_000,
        tuple_size: 20,
        matches_per_build: 2,
        pct_match: 100,
        seed: 77,
    };
    let gen = spec.generate();
    let base = measure(&gen, JoinScheme::Baseline);
    println!("baseline: {:.1} ms", base * 1e3);

    let cfg = MemConfig::paper();
    let costs = cost::probe_stage_costs(true, 2 * spec.tuple_size);
    println!(
        "Table-2 predictions: G >= {}, D >= {} (this machine's latency differs)",
        min_group_size(cfg.t_full, cfg.t_next, &costs).g,
        min_prefetch_distance(cfg.t_full, cfg.t_next, &costs)
    );

    println!("\n  G   time(ms)  speedup");
    let mut best = (0usize, f64::INFINITY);
    for g in [2usize, 4, 8, 16, 32, 64] {
        let t = measure(&gen, JoinScheme::Group { g });
        if t < best.1 {
            best = (g, t);
        }
        println!("{g:>3}   {:>7.1}    {:.2}x", t * 1e3, base / t);
    }
    println!("best G on this machine: {}", best.0);

    println!("\n  D   time(ms)  speedup");
    let mut best = (0usize, f64::INFINITY);
    for d in [1usize, 2, 4, 8, 16, 32] {
        let t = measure(&gen, JoinScheme::Swp { d });
        if t < best.1 {
            best = (d, t);
        }
        println!("{d:>3}   {:>7.1}    {:.2}x", t * 1e3, base / t);
    }
    println!("best D on this machine: {}", best.0);
}
