//! Joins over variable-length keys and mixed schemas: the engine
//! "supports fixed length and variable length attributes in tuples"
//! (§7.1), and the hash function takes "join keys of any length". Every
//! scheme must handle var-length keys — including keys of differing
//! lengths that share prefixes — identically.

use phj::grace::{grace_join, grace_join_with_sink, GraceConfig};
use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::partition::PartitionScheme;
use phj::sink::{CountSink, JoinSink};
use phj_memsim::NativeModel;
use phj_storage::{AttrType, Attribute, Relation, RelationBuilder, Schema, TupleAssembler, TupleView};

/// Customers keyed by a var-length name.
fn customers(names: &[&str]) -> Relation {
    let schema = Schema::new(
        vec![
            Attribute::new("name", AttrType::VarBytes),
            Attribute::new("region", AttrType::U32),
        ],
        0,
    );
    let mut b = RelationBuilder::new(schema.clone());
    let mut asm = TupleAssembler::new(&schema);
    for (i, n) in names.iter().enumerate() {
        asm.set_var_bytes(0, n.as_bytes()).set_u32(1, i as u32);
        b.push(asm.finish());
    }
    b.finish()
}

/// Orders keyed by the same var-length name plus an amount.
fn orders(names: &[&str]) -> Relation {
    let schema = Schema::new(
        vec![
            Attribute::new("cust", AttrType::VarBytes),
            Attribute::new("amount", AttrType::I64),
        ],
        0,
    );
    let mut b = RelationBuilder::new(schema.clone());
    let mut asm = TupleAssembler::new(&schema);
    for (i, n) in names.iter().enumerate() {
        asm.set_var_bytes(0, n.as_bytes()).set_i64(1, i as i64);
        b.push(asm.finish());
    }
    b.finish()
}

fn expected_pairs(build: &[&str], probe: &[&str]) -> u64 {
    let mut counts = std::collections::HashMap::new();
    for n in build {
        *counts.entry(*n).or_insert(0u64) += 1;
    }
    probe.iter().map(|n| counts.get(n).copied().unwrap_or(0)).sum()
}

fn name_pool() -> Vec<String> {
    // Shared prefixes and varied lengths stress byte-wise comparison.
    let mut v = Vec::new();
    for i in 0..400 {
        v.push(format!("cust-{i}"));
        v.push(format!("cust-{i}-extended-suffix"));
        v.push(format!("c{i}"));
    }
    v
}

#[test]
fn varlen_keys_all_schemes_agree() {
    let pool = name_pool();
    let build_names: Vec<&str> = pool.iter().map(|s| s.as_str()).collect();
    let probe_names: Vec<&str> =
        pool.iter().cycle().skip(100).take(2000).map(|s| s.as_str()).collect();
    let build = customers(&build_names);
    let probe = orders(&probe_names);
    let want = expected_pairs(&build_names, &probe_names);
    assert!(want > 0);
    // Var-key relations have no stashed hashes: recompute.
    for scheme in [
        JoinScheme::Baseline,
        JoinScheme::Simple,
        JoinScheme::Group { g: 16 },
        JoinScheme::Swp { d: 2 },
    ] {
        let mut sink = CountSink::new();
        join_pair(
            &mut NativeModel,
            &JoinParams { scheme, use_stored_hash: false },
            &build,
            &probe,
            1,
            &mut sink,
        );
        assert_eq!(sink.matches(), want, "{scheme:?}");
    }
}

#[test]
fn varlen_grace_end_to_end_materialized() {
    let pool = name_pool();
    let build_names: Vec<&str> = pool.iter().map(|s| s.as_str()).collect();
    let probe_names: Vec<&str> =
        pool.iter().cycle().take(1500).map(|s| s.as_str()).collect();
    let build = customers(&build_names);
    let probe = orders(&probe_names);
    let cfg = GraceConfig {
        mem_budget: 16 * 1024,
        partition_scheme: PartitionScheme::Group { g: 8 },
        join_scheme: JoinScheme::Group { g: 16 },
        ..Default::default()
    };
    let mut mem = NativeModel;
    let res = grace_join(&mut mem, &cfg, &build, &probe);
    assert!(res.num_partitions > 1);
    assert_eq!(res.output.num_tuples() as u64, expected_pairs(&build_names, &probe_names));
    // Output tuples re-encode var regions correctly: the two name
    // attributes must be byte-identical.
    let schema = res.output.schema().clone();
    for (_, t, _) in res.output.iter() {
        let v = TupleView::new(&schema, t);
        assert_eq!(v.attr_bytes(0), v.attr_bytes(2), "join keys equal");
        assert!(!v.attr_bytes(0).is_empty());
    }
}

#[test]
fn prefix_collisions_do_not_false_match() {
    // "ab" + "c" vs "abc": distinct keys that concatenate identically.
    let build = customers(&["ab", "abc", "abcd"]);
    let probe = orders(&["abc", "ab", "abx", ""]);
    let mut sink = CountSink::new();
    grace_join_with_sink(
        &mut NativeModel,
        &GraceConfig { mem_budget: 1 << 20, ..Default::default() },
        &build,
        &probe,
        &mut sink,
    );
    assert_eq!(sink.matches(), 2); // "abc" and "ab" only
}

#[test]
fn empty_string_keys_join() {
    let build = customers(&["", "x"]);
    let probe = orders(&["", "", "y"]);
    let mut sink = CountSink::new();
    join_pair(
        &mut NativeModel,
        &JoinParams { scheme: JoinScheme::Swp { d: 1 }, use_stored_hash: false },
        &build,
        &probe,
        1,
        &mut sink,
    );
    assert_eq!(sink.matches(), 2);
}
