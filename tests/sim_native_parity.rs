//! The simulated and native instantiations of the same algorithm must
//! produce identical join results (the model hooks are observational),
//! and the simulator's orderings must match the paper's qualitative
//! results at integration scale.

use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::sink::{CountSink, JoinSink};
use phj_memsim::{MemConfig, NativeModel, SimEngine};
use phj_workload::JoinSpec;

fn spec() -> JoinSpec {
    JoinSpec {
        build_tuples: 8_000,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        seed: 123,
    }
}

#[test]
fn sim_and_native_produce_identical_results() {
    let gen = spec().generate();
    for scheme in [
        JoinScheme::Baseline,
        JoinScheme::Simple,
        JoinScheme::Group { g: 16 },
        JoinScheme::Swp { d: 2 },
    ] {
        let params = JoinParams { scheme, use_stored_hash: true };
        let mut native_sink = CountSink::new();
        join_pair(&mut NativeModel, &params, &gen.build, &gen.probe, 1, &mut native_sink);
        let mut sim = SimEngine::paper();
        let mut sim_sink = CountSink::new();
        join_pair(&mut sim, &params, &gen.build, &gen.probe, 1, &mut sim_sink);
        assert_eq!(native_sink, sim_sink, "{scheme:?}");
        assert!(sim.now() > 0, "simulation advanced time");
    }
}

#[test]
fn simulated_orderings_match_paper() {
    let gen = spec().generate();
    let time = |scheme| {
        let mut sim = SimEngine::paper();
        let mut sink = CountSink::new();
        join_pair(
            &mut sim,
            &JoinParams { scheme, use_stored_hash: true },
            &gen.build,
            &gen.probe,
            1,
            &mut sink,
        );
        assert_eq!(sink.matches(), gen.expected_matches);
        sim.breakdown()
    };
    let base = time(JoinScheme::Baseline);
    let simple = time(JoinScheme::Simple);
    let group = time(JoinScheme::Group { g: 16 });
    let swp = time(JoinScheme::Swp { d: 2 });
    // Orderings from §7.3.
    assert!(simple.total() < base.total(), "simple beats baseline");
    assert!(group.total() < simple.total(), "group beats simple");
    assert!(swp.total() < simple.total(), "swp beats simple");
    // The baseline is stall-dominated; the staged schemes are busy-
    // dominated (Fig 11).
    assert!(base.dcache_fraction() > 0.5);
    assert!(group.dcache_fraction() < 0.3);
    assert!(swp.dcache_fraction() < 0.3);
    // Prefetching overhead: staged schemes are busier than the baseline.
    assert!(group.busy > base.busy);
    assert!(swp.busy >= group.busy, "swp bookkeeping >= group (S5.4)");
}

#[test]
fn t1000_prefetching_keeps_up() {
    // §7.3: "software-pipelined prefetching achieves similar performance
    // when we change T from 150 to 1000 cycles" (with a suitable D).
    let gen = spec().generate();
    let run = |cfg: MemConfig, scheme| {
        let mut sim = SimEngine::new(cfg);
        let mut sink = CountSink::new();
        join_pair(
            &mut sim,
            &JoinParams { scheme, use_stored_hash: true },
            &gen.build,
            &gen.probe,
            1,
            &mut sink,
        );
        sim.breakdown().total()
    };
    let base150 = run(MemConfig::paper(), JoinScheme::Baseline);
    let base1000 = run(MemConfig::paper_t1000(), JoinScheme::Baseline);
    assert!(base1000 > base150 * 3, "baseline collapses at T=1000");
    let swp150 = run(MemConfig::paper(), JoinScheme::Swp { d: 2 });
    let swp1000 = run(MemConfig::paper_t1000(), JoinScheme::Swp { d: 10 });
    assert!(
        (swp1000 as f64) < (swp150 as f64) * 1.6,
        "swp keeps up: {swp1000} vs {swp150}"
    );
}

#[test]
fn flush_robustness_ordering() {
    // Fig 18: prefetching degrades far less under periodic flushing than
    // the flush-free baseline degrades... more precisely: group under
    // 2ms flushing still far outperforms the unflushed baseline.
    let gen = spec().generate();
    let run = |flush: Option<u64>, scheme| {
        let cfg = MemConfig { flush_period: flush, ..MemConfig::paper() };
        let mut sim = SimEngine::new(cfg);
        let mut sink = CountSink::new();
        join_pair(
            &mut sim,
            &JoinParams { scheme, use_stored_hash: true },
            &gen.build,
            &gen.probe,
            1,
            &mut sink,
        );
        sim.breakdown().total()
    };
    let group = run(None, JoinScheme::Group { g: 16 });
    let group_flushed = run(Some(2_000_000), JoinScheme::Group { g: 16 });
    let degradation = group_flushed as f64 / group as f64;
    assert!(degradation < 1.15, "group robust to flushing: {degradation:.2}");
    let base = run(None, JoinScheme::Baseline);
    assert!(group_flushed * 2 < base, "flushed group still beats baseline 2x");
}
