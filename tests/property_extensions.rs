//! Property-based tests for the extension modules: hash aggregation,
//! hybrid hash join, the chained-bucket ablation table, and the latency
//! histograms behind memory-access attribution.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

use phj_memsim::LatencyHistogram;

use phj::aggregate::{aggregate, AggScheme};
use phj::hash::hash_key;
use phj::hybrid::{grace_equivalent, hybrid_join, HybridConfig};
use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::sink::{CountSink, JoinSink};
use phj_memsim::NativeModel;
use phj_storage::{Relation, RelationBuilder, Schema};

fn rel_from_keys(keys: &[u32], size: usize) -> Relation {
    let schema = Schema::key_payload(size);
    let mut b = RelationBuilder::new(schema);
    let mut t = vec![0u8; size];
    for (i, &k) in keys.iter().enumerate() {
        t[..4].copy_from_slice(&k.to_le_bytes());
        t[4] = i as u8;
        b.push_hashed(&t, hash_key(&k.to_le_bytes()));
    }
    b.finish()
}

fn agg_scheme() -> impl Strategy<Value = AggScheme> {
    prop_oneof![
        Just(AggScheme::Baseline),
        Just(AggScheme::Simple),
        (2usize..32).prop_map(|g| AggScheme::Group { g }),
        (1usize..8).prop_map(|d| AggScheme::Swp { d }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn aggregation_equals_hashmap(
        keys in vec(0u32..96, 0..400),
        buckets in 1usize..48,
        scheme in agg_scheme(),
    ) {
        let input = rel_from_keys(&keys, 16);
        let mut mem = NativeModel;
        let table = aggregate(&mut mem, scheme, &input, buckets, |t| t[4] as i64);
        let mut want: HashMap<u32, (u64, i64)> = HashMap::new();
        for (_, t, _) in input.iter() {
            let k = u32::from_le_bytes(t[..4].try_into().unwrap());
            let e = want.entry(k).or_default();
            e.0 += 1;
            e.1 += t[4] as i64;
        }
        prop_assert_eq!(table.num_groups(), want.len());
        for (k, (count, sum)) in want {
            let kb = k.to_le_bytes();
            let e = table.lookup(hash_key(&kb), &kb).expect("group present");
            prop_assert_eq!(e.count, count);
            prop_assert_eq!(e.sum, sum);
        }
        // Totals via iteration agree too.
        prop_assert_eq!(table.iter().map(|e| e.count).sum::<u64>() as usize, keys.len());
    }

    #[test]
    fn hybrid_equals_grace_and_plain_join(
        build_keys in vec(0u32..128, 1..250),
        probe_keys in vec(0u32..128, 0..250),
        budget_pages in 1usize..8,
        g in 2usize..24,
    ) {
        let build = rel_from_keys(&build_keys, 28);
        let probe = rel_from_keys(&probe_keys, 28);
        let cfg = HybridConfig { mem_budget: budget_pages * 8192, g, ..Default::default() };
        let mut mem = NativeModel;
        let mut hybrid_sink = CountSink::new();
        hybrid_join(&mut mem, &cfg, &build, &probe, &mut hybrid_sink);
        let mut grace_sink = CountSink::new();
        grace_equivalent(&mut mem, &cfg, &build, &probe, &mut grace_sink);
        prop_assert_eq!(hybrid_sink, grace_sink);
        // Against a single-pair group join as well.
        let mut plain = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme: JoinScheme::Group { g }, use_stored_hash: true },
            &build,
            &probe,
            1,
            &mut plain,
        );
        prop_assert_eq!(hybrid_sink.matches(), plain.matches());
    }

    #[test]
    fn chained_probe_equals_array_probe(
        build_keys in vec(0u32..64, 0..200),
        probe_keys in vec(0u32..64, 0..200),
        buckets in 1usize..32,
        g in 2usize..24,
    ) {
        use phj::chained::{build_chained, probe_chained_baseline, probe_chained_group};
        let build = rel_from_keys(&build_keys, 20);
        let probe = rel_from_keys(&probe_keys, 20);
        let params = JoinParams { scheme: JoinScheme::Baseline, use_stored_hash: true };
        let mut mem = NativeModel;
        let table = build_chained(&mut mem, &params, &build, buckets);
        prop_assert_eq!(table.len(), build.num_tuples());
        let mut a = CountSink::new();
        probe_chained_baseline(&mut mem, &params, &table, &build, &probe, &mut a);
        let mut b = CountSink::new();
        probe_chained_group(&mut mem, &params, &table, &build, &probe, g, &mut b);
        prop_assert_eq!(a, b);
        let mut reference = CountSink::new();
        join_pair(&mut mem, &params, &build, &probe, 1, &mut reference);
        prop_assert_eq!(a, reference);
    }
}

fn hist_from(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Span nesting and region totals both rely on histograms combining
    // like counters: merging must be order-insensitive.
    #[test]
    fn histogram_merge_is_commutative_and_associative(
        a in vec(0u64..1_000_000, 0..200),
        b in vec(0u64..1_000_000, 0..200),
        c in vec(0u64..1_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (hist_from(&a), hist_from(&b), hist_from(&c));
        let mut ab = ha;
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab.buckets, ba.buckets);
        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb;
        bc.merge(&hc);
        let mut a_bc = ha;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c.buckets, a_bc.buckets);
        prop_assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);
    }

    // The log2 histogram's nearest-rank quantile agrees with the exact
    // nearest-rank sample to bucket resolution: it reports the upper
    // bound of the bucket the exact answer falls in (and thus never
    // under-reports the latency).
    #[test]
    fn histogram_quantile_is_within_one_bucket_of_exact(
        samples in vec(0u64..1_000_000, 1..300),
        q_pct in 0u32..101,
    ) {
        let q = q_pct as f64 / 100.0;
        let h = hist_from(&samples);
        let mut samples = samples;
        samples.sort_unstable();
        let n = samples.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let exact = samples[(rank - 1) as usize];
        let got = h.quantile(q).expect("non-empty");
        prop_assert_eq!(
            got,
            LatencyHistogram::bucket_bound(LatencyHistogram::bucket_index(exact))
        );
        prop_assert!(got >= exact);
    }
}
