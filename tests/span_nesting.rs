//! Span nesting across the full GRACE and hybrid drivers: the recorder
//! must reproduce the paper's phase structure (partition pass, then
//! per-partition build/probe), and the recorded cycle deltas must
//! account for the whole simulated run.

use phj::grace::{grace_join_with_sink_rec, GraceConfig};
use phj::hybrid::{hybrid_join_rec, HybridConfig};
use phj::sink::{CountSink, JoinSink};
use phj_memsim::SimEngine;
use phj_obs::{Recorder, RunReport, SpanRecord};
use phj_workload::JoinSpec;

fn spec() -> JoinSpec {
    JoinSpec {
        build_tuples: 3_000,
        tuple_size: 40,
        matches_per_build: 1,
        pct_match: 100,
        seed: 7,
    }
}

fn children(spans: &[SpanRecord], parent: usize) -> Vec<(usize, &SpanRecord)> {
    spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.parent == Some(parent))
        .collect()
}

#[test]
fn grace_spans_follow_phase_structure() {
    let gen = spec().generate();
    let mut mem = SimEngine::paper();
    let mut rec = Recorder::new();
    let mut sink = CountSink::new();
    let cfg = GraceConfig { mem_budget: 32 * 1024, ..Default::default() };
    let root = rec.begin("run", mem.snapshot());
    let p = grace_join_with_sink_rec(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink, Some(&mut rec));
    rec.end(root, mem.snapshot());
    let spans = rec.spans().to_vec();
    assert!(p > 1, "budget forces multiple partitions");
    assert_eq!(sink.matches(), gen.expected_matches, "recorder is observational");

    // run -> grace_join -> { partition_pass, pair* }.
    assert_eq!(spans[0].name, "run");
    let grace = children(&spans, 0);
    assert_eq!(grace.len(), 1);
    assert_eq!(grace[0].1.name, "grace_join");
    let (gi, _) = grace[0];
    let level = children(&spans, gi);
    assert_eq!(level[0].1.name, "partition_pass");
    let pairs: Vec<_> = level.iter().filter(|(_, s)| s.name == "pair").collect();
    assert_eq!(pairs.len(), p, "one pair span per partition");

    // The partition pass holds one "partition" span per relation.
    let (pp, _) = level[0];
    let rels = children(&spans, pp);
    assert_eq!(rels.len(), 2);
    assert!(rels.iter().all(|(_, s)| s.name == "partition"));

    // Every pair span holds exactly build then probe.
    for &&(pi, _) in &pairs {
        let sub = children(&spans, pi);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub[0].1.name, "build");
        assert_eq!(sub[1].1.name, "probe");
    }

    // Cycle accounting: the root span covers the whole simulated run, and
    // grace's direct children never exceed it.
    assert_eq!(spans[0].delta.breakdown.total(), mem.now());
    let child_sum: u64 = level.iter().map(|(_, s)| s.delta.breakdown.total()).sum();
    assert!(child_sum <= spans[gi].delta.breakdown.total());

    // The whole thing exports to a valid report.
    let mut report = RunReport::from_recorder("grace", rec, mem.snapshot(), 1);
    report.simulated = true;
    report.validate().expect("grace report validates");
}

#[test]
fn hybrid_spans_follow_phase_structure() {
    let gen = spec().generate();
    let mut mem = SimEngine::paper();
    let mut rec = Recorder::new();
    let mut sink = CountSink::new();
    let cfg = HybridConfig { mem_budget: 32 * 1024, g: 8, ..Default::default() };
    let p = hybrid_join_rec(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink, Some(&mut rec));
    let spans = rec.finish();
    assert!(p > 1);
    assert_eq!(sink.matches(), gen.expected_matches);

    assert_eq!(spans[0].name, "hybrid_join");
    let top = children(&spans, 0);
    assert_eq!(top[0].1.name, "hybrid_build_pass");
    assert_eq!(top[1].1.name, "hybrid_probe_pass");
    let pairs: Vec<_> = top.iter().filter(|(_, s)| s.name == "pair").collect();
    assert_eq!(pairs.len(), p - 1, "partition 0 never spills");

    // The three phases plus pairs account for the whole run.
    let total: u64 = top.iter().map(|(_, s)| s.delta.breakdown.total()).sum();
    assert_eq!(spans[0].delta.breakdown.total(), mem.now());
    assert!(total <= spans[0].delta.breakdown.total());
}

#[test]
fn native_model_recording_is_harmless() {
    // With the native model, spans still nest and wall clocks are sane;
    // snapshots are all zero so deltas are zero.
    use phj_memsim::NativeModel;
    let gen = spec().generate();
    let mut mem = NativeModel;
    let mut rec = Recorder::new();
    let mut sink = CountSink::new();
    let cfg = GraceConfig { mem_budget: 32 * 1024, ..Default::default() };
    grace_join_with_sink_rec(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink, Some(&mut rec));
    let spans = rec.finish();
    assert_eq!(sink.matches(), gen.expected_matches);
    assert!(spans.iter().all(|s| s.delta.breakdown.total() == 0));
    assert!(spans.iter().all(|s| s.is_closed()));
    assert_eq!(spans[0].name, "grace_join");
}
