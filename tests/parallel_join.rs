//! Parallel executor invariants, end to end:
//!
//! * the correctness invariant — for `--threads 1..=8`, native and
//!   simulated parallel joins produce the identical match count and
//!   order-independent checksum as the sequential GRACE join, and
//!   parallel aggregation the identical group digest;
//! * simulated determinism — two `--threads N` sim runs render
//!   byte-identical reports once wall-clock fields are zeroed;
//! * merged observability — a parallel sim report (with region
//!   profiling) passes every [`RunReport::validate`] structural check,
//!   including region conservation and the per-worker lane rule.

use phj::aggregate::{aggregate, AggScheme};
use phj::grace::{grace_join_with_sink, GraceConfig};
use phj::sink::{CountSink, JoinSink};
use phj_exec::{agg_checksum, parallel_agg_native, parallel_agg_sim};
use phj_exec::{parallel_join_native, parallel_join_sim, SimJoinOutcome};
use phj_memsim::NativeModel;
use phj_obs::RunReport;
use phj_storage::Relation;
use phj_workload::JoinSpec;

fn workload() -> (Relation, Relation, u64) {
    let spec = JoinSpec {
        build_tuples: 1500,
        tuple_size: 40,
        matches_per_build: 2,
        pct_match: 80,
        seed: 7,
    };
    let gen = spec.generate();
    (gen.build, gen.probe, gen.expected_matches)
}

fn small_cfg() -> GraceConfig {
    // Small budget: forces a real multi-partition first pass.
    GraceConfig { mem_budget: 16 * 1024, ..Default::default() }
}

#[test]
fn parallel_join_matches_sequential_for_threads_1_to_8() {
    let (build, probe, expected) = workload();
    let cfg = small_cfg();
    let mut seq = CountSink::new();
    grace_join_with_sink(&mut NativeModel, &cfg, &build, &probe, &mut seq);
    assert_eq!(seq.matches(), expected);
    for threads in 1..=8 {
        let nat = parallel_join_native(&cfg, &build, &probe, threads, false);
        assert_eq!(nat.sink, seq, "native threads={threads}");
        let sim = parallel_join_sim(&cfg, &build, &probe, threads, false, false);
        assert_eq!(sim.sink, seq, "sim threads={threads}");
    }
}

/// Everything about a sim outcome that is independent of where the heap
/// happens to place pages: result, scheduling, and the full span-tree
/// skeleton (names, nesting, metadata). Exact cycle counts are a
/// *process-level* invariant — the set-indexed cache model keys off real
/// addresses, so byte-identical breakdowns hold across repeated CLI
/// runs (the CI threads matrix asserts this) but not across two runs
/// inside one already-fragmented heap.
fn sim_skeleton(out: SimJoinOutcome) -> (u64, u64, usize, Vec<(usize, u64)>, String) {
    let lanes = out.lanes.iter().map(|l| (l.lane, l.tasks)).collect();
    let spans = out
        .recorder
        .unwrap()
        .finish()
        .iter()
        .map(|s| format!("{}|{:?}|{}|{:?}", s.name, s.parent, s.depth, s.meta))
        .collect::<Vec<_>>()
        .join("\n");
    (out.sink.matches(), out.sink.checksum(), out.partitions, lanes, spans)
}

#[test]
fn simulated_parallel_join_is_deterministic() {
    let (build, probe, _) = workload();
    let cfg = small_cfg();
    for threads in [2, 4] {
        let a = parallel_join_sim(&cfg, &build, &probe, threads, true, true);
        let b = parallel_join_sim(&cfg, &build, &probe, threads, true, true);
        assert_eq!(sim_skeleton(a), sim_skeleton(b), "threads={threads}");
    }
}

#[test]
fn merged_sim_report_passes_validation_with_regions() {
    let (build, probe, _) = workload();
    let cfg = small_cfg();
    let out = parallel_join_sim(&cfg, &build, &probe, 3, true, true);
    let mut report = RunReport::from_recorder("join", out.recorder.unwrap(), out.totals, 1);
    report.simulated = true;
    report.regions = out.regions;
    report.validate().expect("merged parallel report (with regions) validates");
    // Worker lanes actually appear in the merged span tree.
    for w in 0..3 {
        let tag = w.to_string();
        assert!(
            report
                .spans
                .iter()
                .any(|s| s.meta.iter().any(|(k, v)| k == "worker" && *v == tag)),
            "no spans tagged worker={w}"
        );
    }
    // And the lane accounting is consistent: critical path ≤ lane sum.
    let lane_sum: u64 = out.lanes.iter().map(|l| l.cycles).sum();
    assert!(out.totals.breakdown.total() <= lane_sum);
    assert!(out.totals.breakdown.total() > 0);
}

#[test]
fn parallel_agg_matches_sequential_for_threads_1_to_8() {
    let (build, _, _) = workload();
    let buckets = 101;
    let extract = |t: &[u8]| t[6] as i64;
    let seq = aggregate(&mut NativeModel, AggScheme::Group { g: 8 }, &build, buckets, extract);
    for threads in 1..=8 {
        let nat =
            parallel_agg_native(AggScheme::Group { g: 8 }, &build, buckets, extract, threads, false);
        assert_eq!(nat.table.num_groups(), seq.num_groups(), "native threads={threads}");
        assert_eq!(agg_checksum(&nat.table), agg_checksum(&seq), "native threads={threads}");
        let sim = parallel_agg_sim(
            AggScheme::Group { g: 8 },
            &build,
            buckets,
            extract,
            threads,
            false,
            false,
        );
        assert_eq!(agg_checksum(&sim.table), agg_checksum(&seq), "sim threads={threads}");
    }
}
