//! End-to-end GRACE runs against the workload oracle, plus agreement of
//! the cache-partitioning variants with GRACE on the same inputs.

use phj::cachepart::{
    direct_cache_join, direct_cache_partition, two_step_join, two_step_partition,
    CachePartConfig,
};
use phj::grace::{grace_join, grace_join_with_sink, GraceConfig};
use phj::join::JoinScheme;
use phj::partition::PartitionScheme;
use phj::sink::{CountSink, JoinSink};
use phj_memsim::NativeModel;
use phj_storage::TupleView;
use phj_workload::JoinSpec;

fn spec() -> JoinSpec {
    JoinSpec {
        build_tuples: 6_000,
        tuple_size: 48,
        matches_per_build: 2,
        pct_match: 75,
        seed: 99,
    }
}

#[test]
fn grace_matches_workload_oracle_for_all_schemes() {
    let gen = spec().generate();
    let mut reference: Option<CountSink> = None;
    for ps in [
        PartitionScheme::Baseline,
        PartitionScheme::Simple,
        PartitionScheme::Group { g: 12 },
        PartitionScheme::Swp { d: 2 },
        PartitionScheme::combined_default(),
    ] {
        for js in [
            JoinScheme::Baseline,
            JoinScheme::Simple,
            JoinScheme::Group { g: 16 },
            JoinScheme::Swp { d: 1 },
        ] {
            let cfg = GraceConfig {
                mem_budget: 64 * 1024,
                partition_scheme: ps,
                join_scheme: js,
                ..Default::default()
            };
            let mut mem = NativeModel;
            let mut sink = CountSink::new();
            let p = grace_join_with_sink(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
            assert!(p > 1, "expected multiple partitions");
            assert_eq!(sink.matches(), gen.expected_matches);
            match &reference {
                None => reference = Some(sink),
                Some(r) => assert_eq!(&sink, r, "{ps:?}+{js:?}"),
            }
        }
    }
}

#[test]
fn cache_partitioning_agrees_with_grace() {
    let gen = spec().generate();
    let mut mem = NativeModel;
    let mut grace_sink = CountSink::new();
    grace_join_with_sink(
        &mut mem,
        &GraceConfig { mem_budget: 96 * 1024, ..Default::default() },
        &gen.build,
        &gen.probe,
        &mut grace_sink,
    );
    assert_eq!(grace_sink.matches(), gen.expected_matches);

    let cp = CachePartConfig {
        cache_budget: 16 * 1024,
        mem_budget: 96 * 1024,
        ..Default::default()
    };
    let (bp, pp, p) = direct_cache_partition(&mut mem, &cp, &gen.build, &gen.probe)
        .expect("within partition limit");
    let mut direct_sink = CountSink::new();
    direct_cache_join(&mut mem, &cp, &bp, &pp, p, &mut direct_sink);
    assert_eq!(direct_sink, grace_sink, "direct cache");

    let (bp, pp, p) = two_step_partition(&mut mem, &cp, &gen.build, &gen.probe);
    let mut ts_sink = CountSink::new();
    two_step_join(&mut mem, &cp, &bp, &pp, p, &mut ts_sink);
    assert_eq!(ts_sink, grace_sink, "two-step cache");
}

#[test]
fn materialized_output_is_well_formed() {
    let gen = spec().generate();
    let cfg = GraceConfig { mem_budget: 64 * 1024, ..Default::default() };
    let mut mem = NativeModel;
    let res = grace_join(&mut mem, &cfg, &gen.build, &gen.probe);
    assert_eq!(res.output.num_tuples() as u64, gen.expected_matches);
    let schema = res.output.schema().clone();
    assert_eq!(schema.arity(), 4); // key+payload from each side
    for (_, t, _) in res.output.iter() {
        let v = TupleView::new(&schema, t);
        assert_eq!(v.u32(0), v.u32(2), "build key == probe key in output");
        assert_eq!(t.len(), 96);
    }
}

#[test]
fn single_partition_budget_still_works() {
    let gen = JoinSpec {
        build_tuples: 500,
        tuple_size: 20,
        matches_per_build: 1,
        pct_match: 100,
        seed: 5,
    }
    .generate();
    let cfg = GraceConfig { mem_budget: 1 << 30, ..Default::default() };
    let mut mem = NativeModel;
    let res = grace_join(&mut mem, &cfg, &gen.build, &gen.probe);
    assert_eq!(res.num_partitions, 1);
    assert_eq!(res.output.num_tuples() as u64, gen.expected_matches);
}
