//! The partition phase must place every tuple in the partition its hash
//! prescribes, stash the hash code, and preserve the input multiset —
//! for every scheme and parameter setting, including the conflict-heavy
//! regimes (few partitions, large tuples).

use phj::hash::{hash_key, partition_of};
use phj::partition::{partition_relation, PartitionScheme};
use phj_memsim::NativeModel;
use phj_storage::{tuple::key_bytes_of, Relation};
use phj_workload::single_relation;

fn schemes() -> Vec<PartitionScheme> {
    let mut v = vec![PartitionScheme::Baseline, PartitionScheme::Simple];
    for g in [2usize, 5, 12, 64, 300] {
        v.push(PartitionScheme::Group { g });
    }
    for d in [1usize, 2, 7, 32] {
        v.push(PartitionScheme::Swp { d });
    }
    v.push(PartitionScheme::combined_default());
    v
}

fn check(input: &Relation, parts: &[Relation]) {
    let total: usize = parts.iter().map(|r| r.num_tuples()).sum();
    assert_eq!(total, input.num_tuples(), "no tuples lost");
    for (p, rel) in parts.iter().enumerate() {
        for (_, t, h) in rel.iter() {
            let expect = hash_key(key_bytes_of(input.schema(), t));
            assert_eq!(h, expect, "stashed hash correct");
            assert_eq!(partition_of(h, parts.len()), p, "placement correct");
        }
    }
    let mut a = input.to_tuple_vec();
    let mut b: Vec<Vec<u8>> = parts.iter().flat_map(|r| r.to_tuple_vec()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "multiset preserved");
}

#[test]
fn all_schemes_all_partition_counts() {
    let input = single_relation(5_000, 100);
    for nparts in [1usize, 2, 7, 31, 128] {
        for scheme in schemes() {
            let mut mem = NativeModel;
            let parts = partition_relation(&mut mem, scheme, &input, nparts, false);
            assert_eq!(parts.len(), nparts);
            check(&input, &parts);
        }
    }
}

#[test]
fn large_tuples_flush_constantly() {
    // 4 tuples per page: buffer-full conflicts on almost every group.
    let input = single_relation(600, 1800);
    for scheme in schemes() {
        let mut mem = NativeModel;
        let parts = partition_relation(&mut mem, scheme, &input, 3, false);
        check(&input, &parts);
    }
}

#[test]
fn stored_hash_repartition_matches_fresh() {
    // Partition, then re-partition one output with stored hashes: the
    // result must equal re-partitioning with recomputed hashes.
    let input = single_relation(4_000, 64);
    let mut mem = NativeModel;
    let first = partition_relation(&mut mem, PartitionScheme::Baseline, &input, 4, false);
    for sub in [
        partition_relation(&mut mem, PartitionScheme::Group { g: 8 }, &first[0], 5, true),
        partition_relation(&mut mem, PartitionScheme::Group { g: 8 }, &first[0], 5, false),
    ] {
        let total: usize = sub.iter().map(|r| r.num_tuples()).sum();
        assert_eq!(total, first[0].num_tuples());
        check(&first[0], &sub);
    }
}

#[test]
fn more_partitions_than_tuples() {
    let input = single_relation(10, 40);
    for scheme in schemes() {
        let mut mem = NativeModel;
        let parts = partition_relation(&mut mem, scheme, &input, 64, false);
        check(&input, &parts);
    }
}
