//! Memory-access attribution end to end: profiling must be free when
//! off (cycle-identical runs, byte-identical reports) and exact when on
//! (per-region counters partition the global cache stats, and the join
//! phase's misses land on the hash-table regions).

use phj::grace::{grace_join_with_sink_rec, GraceConfig};
use phj::hybrid::{hybrid_join_rec, HybridConfig};
use phj::profile::skew_profile;
use phj::sink::CountSink;
use phj_memsim::{RegionKind, SimEngine};
use phj_obs::{RegionsSection, Recorder, RunReport};
use phj_workload::JoinSpec;

fn spec() -> JoinSpec {
    JoinSpec {
        build_tuples: 3_000,
        tuple_size: 40,
        matches_per_build: 1,
        // Mostly-missing probes hammer the bucket headers and cell
        // arrays without the matched-tuple visits diluting them.
        pct_match: 20,
        seed: 7,
    }
}

fn cfg() -> GraceConfig {
    GraceConfig { mem_budget: 32 * 1024, ..Default::default() }
}

/// Run the GRACE join under the simulator, optionally profiling,
/// returning the engine and the finished report. Takes the generated
/// workload by reference: the simulator indexes caches by *real*
/// addresses, so comparable runs must touch the very same allocations.
fn run_grace(gen: &phj_workload::GeneratedJoin, profiled: bool) -> (SimEngine, RunReport) {
    let mut mem = SimEngine::paper();
    if profiled {
        mem.enable_region_profiling();
    }
    let mut rec = Recorder::new();
    let mut sink = CountSink::new();
    let root = rec.begin_profiled("run", mem.snapshot(), mem.latency_hist());
    grace_join_with_sink_rec(&mut mem, &cfg(), &gen.build, &gen.probe, &mut sink, Some(&mut rec));
    rec.end_profiled(root, mem.snapshot(), mem.latency_hist());
    let mut report = RunReport::from_recorder("join", rec, mem.snapshot(), 1);
    report.simulated = true;
    if profiled {
        let mut sec = RegionsSection::from_profiler(mem.region_profile().expect("profiled"));
        sec.skew = skew_profile(&report.spans);
        report.regions = Some(sec);
    }
    (mem, report)
}

#[test]
fn unprofiled_reports_carry_no_attribution_keys() {
    // Byte-identity with the pre-attribution report format: a run that
    // never enabled profiling must not mention it anywhere — no
    // `regions` section, no per-span `latency` histograms.
    let gen = spec().generate();
    let (_, off) = run_grace(&gen, false);
    let text = off.render();
    assert!(!text.contains("regions"), "unprofiled report mentions regions");
    assert!(!text.contains("latency"), "unprofiled report mentions latency");
    // And it still parses and validates as before.
    RunReport::parse(&text).expect("parse").validate().expect("validate");
}

#[test]
fn profiling_on_never_changes_the_algorithm() {
    // The simulator's caches index on *real* addresses, and the profiler's
    // own allocations shift where the join's table and buffers land, so
    // stall cycles can drift a hair between processes. The exact
    // cycle-identity guard therefore lives in phj-memsim
    // (`profiling_never_changes_timing`, synthetic addresses); here we pin
    // everything address-independent: the memory references the algorithm
    // issues, the prefetches it schedules, and the phase structure.
    let gen = spec().generate();
    let (_, off) = run_grace(&gen, false);
    let (_, on) = run_grace(&gen, true);
    assert_eq!(off.totals.stats.visits, on.totals.stats.visits);
    assert_eq!(off.totals.stats.prefetches, on.totals.stats.prefetches);
    assert_eq!(off.spans.len(), on.spans.len());
    for (a, b) in off.spans.iter().zip(&on.spans) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.delta.stats.visits, b.delta.stats.visits, "span '{}'", a.name);
        assert!(a.latency.is_none(), "unprofiled span grew a histogram");
    }
}

#[test]
fn grace_regions_sum_to_totals_and_hotspot_is_the_hash_table() {
    let gen = spec().generate();
    let (_, report) = run_grace(&gen, true);
    report.validate().expect("regions section internally consistent");
    let sec = report.regions.as_ref().unwrap();

    // Every demand line is charged somewhere: the validate() above proved
    // the sums; here we pin the qualitative claim of the paper — among the
    // structures the join phase touches, it is the hash table (random
    // bucket/cell accesses), not the sequentially scanned tuples, that
    // leaves the cache.
    let join_kinds = [
        RegionKind::HashBucketHeaders,
        RegionKind::HashCells,
        RegionKind::BuildTuples,
        RegionKind::ProbeTuples,
    ];
    let hottest = join_kinds
        .iter()
        .map(|k| &sec.regions[k.index()])
        .max_by_key(|r| (r.stats.mem_misses, r.stats.l2_hits))
        .unwrap();
    assert!(
        hottest.name == "hash_cells" || hottest.name == "hash_bucket_headers",
        "expected the hash table to dominate join-phase misses, got '{}'",
        hottest.name
    );

    // The skew profile covers every partition pair and its misses are a
    // subset of the run's.
    assert!(!sec.skew.is_empty());
    let pair_spans = report.spans.iter().filter(|s| s.name == "pair").count();
    assert_eq!(sec.skew.len(), pair_spans);
    let skew_misses: u64 = sec.skew.iter().map(|r| r.mem_misses).sum();
    let total_misses: u64 = sec.regions.iter().map(|r| r.stats.mem_misses).sum();
    assert!(skew_misses <= total_misses);
    assert!(sec.skew.iter().all(|r| r.build_tuples > 0 && r.probe_tuples > 0));

    // Span latency histograms ride along and nest: the root span's
    // histogram holds every demand line of the run.
    let root = &report.spans[0];
    let root_hist = root.latency.as_ref().expect("profiled spans carry latency");
    assert_eq!(root_hist.count(), report.totals.stats.visit_lines);

    // And the report (with regions) round-trips through JSON.
    let back = RunReport::parse(&report.render()).expect("parse");
    assert_eq!(back.regions, report.regions);
    back.validate().expect("still consistent after round trip");
}

#[test]
fn hybrid_regions_stay_consistent() {
    let gen = spec().generate();
    let mut mem = SimEngine::paper();
    mem.enable_region_profiling();
    let mut rec = Recorder::new();
    let mut sink = CountSink::new();
    let cfg = HybridConfig { mem_budget: 32 * 1024, ..Default::default() };
    let root = rec.begin_profiled("run", mem.snapshot(), mem.latency_hist());
    let p = hybrid_join_rec(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink, Some(&mut rec));
    rec.end_profiled(root, mem.snapshot(), mem.latency_hist());
    assert!(p > 1, "expected spill partitions");
    let mut report = RunReport::from_recorder("join", rec, mem.snapshot(), 1);
    report.simulated = true;
    let mut sec = RegionsSection::from_profiler(mem.region_profile().unwrap());
    sec.skew = skew_profile(&report.spans);
    report.regions = Some(sec);
    report.validate().expect("hybrid regions consistent");
    // Both the fused passes and the spilled pairs charged their
    // structures: tuple inputs and the table all saw demand lines.
    let sec = report.regions.as_ref().unwrap();
    let lines = |kind: RegionKind| {
        sec.regions[kind.index()].stats.demand_lines()
    };
    assert!(lines(RegionKind::BuildTuples) > 0);
    assert!(lines(RegionKind::ProbeTuples) > 0);
    assert!(lines(RegionKind::HashBucketHeaders) > 0);
    assert!(lines(RegionKind::PartitionBuffers) > 0);
}
