//! Every join scheme, over a grid of workloads and parameters, must
//! produce exactly the multiset of (build, probe) pairs that a
//! nested-loop reference join produces.

use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::sink::{CountSink, JoinSink};
use phj_memsim::NativeModel;
use phj_storage::tuple::key_bytes_of;
use phj_workload::{GeneratedJoin, JoinSpec};

/// Nested-loop reference: emit every key-equal pair into a CountSink.
fn reference(gen: &GeneratedJoin) -> CountSink {
    let mut sink = CountSink::new();
    let mut mem = NativeModel;
    let bs = gen.build.schema().clone();
    let ps = gen.probe.schema().clone();
    // Index build keys to keep the reference O(n+m).
    let mut index: std::collections::HashMap<&[u8], Vec<&[u8]>> =
        std::collections::HashMap::new();
    let build_tuples: Vec<&[u8]> = gen.build.iter().map(|(_, t, _)| t).collect();
    for t in &build_tuples {
        index.entry(key_bytes_of(&bs, t)).or_default().push(t);
    }
    for (_, pt, _) in gen.probe.iter() {
        if let Some(bts) = index.get(key_bytes_of(&ps, pt)) {
            for bt in bts {
                sink.emit(&mut mem, bt, pt);
            }
        }
    }
    sink
}

fn run(gen: &GeneratedJoin, scheme: JoinScheme, use_stored: bool) -> CountSink {
    let mut mem = NativeModel;
    let mut sink = CountSink::new();
    join_pair(
        &mut mem,
        &JoinParams { scheme, use_stored_hash: use_stored },
        &gen.build,
        &gen.probe,
        1,
        &mut sink,
    );
    sink
}

fn all_schemes() -> Vec<JoinScheme> {
    let mut v = vec![JoinScheme::Baseline, JoinScheme::Simple];
    for g in [2usize, 3, 16, 19, 61, 128] {
        v.push(JoinScheme::Group { g });
    }
    for d in [1usize, 2, 3, 5, 8, 16] {
        v.push(JoinScheme::Swp { d });
    }
    v
}

#[test]
fn schemes_match_reference_across_workload_grid() {
    for (bt, m, pct) in [
        (1000usize, 1usize, 100u8),
        (1000, 2, 100),
        (777, 3, 50),
        (500, 4, 25),
        (2048, 2, 75),
        (100, 1, 0), // no matches at all
    ] {
        let spec = JoinSpec {
            build_tuples: bt,
            tuple_size: 24,
            matches_per_build: m,
            pct_match: pct,
            seed: (bt + m) as u64,
        };
        let gen = spec.generate();
        let want = reference(&gen);
        assert_eq!(want.matches(), gen.expected_matches, "oracle sanity");
        for scheme in all_schemes() {
            let got = run(&gen, scheme, true);
            assert_eq!(got, want, "bt={bt} m={m} pct={pct} {scheme:?}");
        }
    }
}

#[test]
fn stored_and_recomputed_hashes_agree() {
    let spec = JoinSpec {
        build_tuples: 3000,
        tuple_size: 60,
        matches_per_build: 2,
        pct_match: 80,
        seed: 404,
    };
    let gen = spec.generate();
    let want = reference(&gen);
    for scheme in [JoinScheme::Group { g: 16 }, JoinScheme::Swp { d: 2 }] {
        assert_eq!(run(&gen, scheme, true), want, "{scheme:?} stored");
        assert_eq!(run(&gen, scheme, false), want, "{scheme:?} recomputed");
    }
}

#[test]
fn extreme_parameters_still_correct() {
    let spec = JoinSpec {
        build_tuples: 97,
        tuple_size: 16,
        matches_per_build: 2,
        pct_match: 100,
        seed: 1,
    };
    let gen = spec.generate();
    let want = reference(&gen);
    // G / D larger than the relation; G = relation size; D pushing the
    // circular state array to many slots.
    for scheme in [
        JoinScheme::Group { g: 97 },
        JoinScheme::Group { g: 500 },
        JoinScheme::Swp { d: 40 },
        JoinScheme::Swp { d: 97 },
    ] {
        assert_eq!(run(&gen, scheme, true), want, "{scheme:?}");
    }
}

#[test]
fn empty_relations() {
    let empty = JoinSpec {
        build_tuples: 0,
        tuple_size: 16,
        matches_per_build: 1,
        pct_match: 100,
        seed: 0,
    }
    .generate();
    for scheme in all_schemes() {
        let got = run(&empty, scheme, true);
        assert_eq!(got.matches(), 0, "{scheme:?}");
    }
}

#[test]
fn skewed_duplicate_keys_all_pairs_produced() {
    // 100 identical build keys x 50 identical probes of the same key:
    // 5000 output pairs, all through one bucket (maximal conflicts).
    use phj_storage::{RelationBuilder, Schema};
    let schema = Schema::key_payload(16);
    let h = phj::hash::hash_key(&7u32.to_le_bytes());
    let mut b = RelationBuilder::new(schema.clone());
    let mut p = RelationBuilder::new(schema);
    let mut t = [0u8; 16];
    t[..4].copy_from_slice(&7u32.to_le_bytes());
    for _ in 0..100 {
        b.push_hashed(&t, h);
    }
    for _ in 0..50 {
        p.push_hashed(&t, h);
    }
    let (build, probe) = (b.finish(), p.finish());
    for scheme in all_schemes() {
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme, use_stored_hash: true },
            &build,
            &probe,
            1,
            &mut sink,
        );
        assert_eq!(sink.matches(), 5000, "{scheme:?}");
    }
}
