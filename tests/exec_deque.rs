//! Work-stealing deque correctness:
//!
//! * a property test checks push/pop/steal against a reference
//!   double-ended queue under arbitrary (randomized) single-stealer
//!   interleavings — pop must be LIFO, steal FIFO, and a full ring must
//!   refuse pushes rather than overwrite;
//! * seeded two-thread race tests hammer the owner-pop vs. thief-steal
//!   window (including the last-element CAS race) and require every task
//!   to be claimed exactly once, across many jittered schedules.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

use phj_exec::deque::{Steal, WorkDeque};

const CAP: usize = 16; // power of two: with_capacity keeps it exact

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Owner ops (push/pop) interleaved with stealer ops (steal) in an
    // arbitrary order behave exactly like a bounded VecDeque: push at
    // the back, pop from the back, steal from the front.
    #[test]
    fn deque_matches_reference_model(ops in vec(0u8..3, 0..300)) {
        let d = WorkDeque::with_capacity(CAP);
        let mut model: VecDeque<usize> = VecDeque::new();
        let mut next = 0usize;
        for op in ops {
            match op {
                0 => {
                    let res = d.push(next);
                    if model.len() < CAP {
                        prop_assert_eq!(res, Ok(()));
                        model.push_back(next);
                    } else {
                        prop_assert_eq!(res, Err(next));
                    }
                    next += 1;
                }
                1 => prop_assert_eq!(d.pop(), model.pop_back()),
                _ => {
                    let got = match d.steal() {
                        Steal::Task(t) => Some(t),
                        Steal::Empty => None,
                        // No concurrent claimant exists in this test.
                        Steal::Retry => panic!("spurious Retry without a stealer race"),
                    };
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(d.len(), model.len());
            prop_assert_eq!(d.is_empty(), model.is_empty());
        }
    }
}

/// Owner pops while a thief steals, under several jittered schedules:
/// the union of their claims must be every task exactly once, however
/// the last-element race resolves.
#[test]
fn two_thread_steal_race_claims_each_task_once() {
    for seed in 0..24u64 {
        let n = 256usize;
        let d = WorkDeque::with_capacity(n);
        for i in 0..n {
            d.push(i).unwrap();
        }
        let (stolen, popped) = std::thread::scope(|s| {
            let d = &d;
            let thief = s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut got = Vec::new();
                loop {
                    match d.steal() {
                        Steal::Task(t) => {
                            got.push(t);
                            for _ in 0..(rng.next_u64() % 8) {
                                std::hint::spin_loop();
                            }
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => break,
                    }
                }
                got
            });
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD_EF01);
            let mut got = Vec::new();
            while let Some(t) = d.pop() {
                got.push(t);
                for _ in 0..(rng.next_u64() % 4) {
                    std::hint::spin_loop();
                }
            }
            (thief.join().unwrap(), got)
        });
        let mut all = stolen.clone();
        all.extend(&popped);
        all.sort_unstable();
        assert_eq!(
            all,
            (0..n).collect::<Vec<_>>(),
            "seed {seed}: stolen {} + popped {}",
            stolen.len(),
            popped.len()
        );
    }
}

/// The owner may keep pushing while a thief steals (the Chase–Lev
/// guarantee the pool relies on for deques seeded below capacity).
#[test]
fn owner_push_during_steals_stays_exactly_once() {
    for seed in 0..12u64 {
        let total = 300usize;
        let d = WorkDeque::with_capacity(512);
        for i in 0..100 {
            d.push(i).unwrap();
        }
        let done = AtomicBool::new(false);
        let (stolen, popped) = std::thread::scope(|s| {
            let (d, done) = (&d, &done);
            let thief = s.spawn(move || {
                let mut got = Vec::new();
                loop {
                    match d.steal() {
                        Steal::Task(t) => got.push(t),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            });
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut got = Vec::new();
            // Push the rest in bursts, popping a little in between.
            let mut next = 100usize;
            while next < total {
                let burst = (rng.next_u64() % 40 + 1) as usize;
                for _ in 0..burst.min(total - next) {
                    d.push(next).unwrap();
                    next += 1;
                }
                for _ in 0..(rng.next_u64() % 10) {
                    if let Some(t) = d.pop() {
                        got.push(t);
                    }
                }
            }
            while let Some(t) = d.pop() {
                got.push(t);
            }
            done.store(true, Ordering::SeqCst);
            (thief.join().unwrap(), got)
        });
        let mut all = stolen;
        all.extend(&popped);
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>(), "seed {seed}");
    }
}
