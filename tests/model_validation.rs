//! Validate the analytic models (Theorems 1 & 2) against the simulator:
//! the predicted minimal G and D must sit at the knee of the simulated
//! tuning curves — at or below the parameter value where performance
//! stops improving, and far from the degradation tail.

use phj::cost;
use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::model::{min_group_size, min_prefetch_distance};
use phj::sink::{CountSink, JoinSink};
use phj_memsim::{MemConfig, SimEngine};
use phj_workload::JoinSpec;

fn time(gen: &phj_workload::GeneratedJoin, scheme: JoinScheme, cfg: MemConfig) -> u64 {
    let mut mem = SimEngine::new(cfg);
    let mut sink = CountSink::new();
    join_pair(
        &mut mem,
        &JoinParams { scheme, use_stored_hash: true },
        &gen.build,
        &gen.probe,
        1,
        &mut sink,
    );
    assert_eq!(sink.matches(), gen.expected_matches);
    mem.breakdown().total()
}

fn workload() -> phj_workload::GeneratedJoin {
    JoinSpec {
        build_tuples: 30_000,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        seed: 0xC0DE,
    }
    .generate()
}

#[test]
fn theorem1_knee_matches_simulated_g_curve() {
    let gen = workload();
    let cfg = MemConfig::paper();
    // The counting-sink probe has a small C_3.
    let costs = cost::probe_stage_costs(true, 0);
    let g_star = min_group_size(cfg.t_full, cfg.t_next, &costs).g as usize;
    let at = |g: usize| time(&gen, JoinScheme::Group { g }, cfg.clone());
    // Performance at the predicted G is within 10% of the best over a
    // wide sweep...
    let best = [2usize, 4, 8, 12, 16, 24, 32, 48, 64]
        .into_iter()
        .map(at)
        .min()
        .unwrap();
    let predicted = at(g_star);
    assert!(
        predicted as f64 <= best as f64 * 1.10,
        "T1 prediction G={g_star}: {predicted} vs best {best}"
    );
    // ...and clearly better than a too-small G (latency not hidden).
    let tiny = at(2);
    assert!(predicted * 10 < tiny * 9, "G=2 must be visibly worse");
}

#[test]
fn theorem2_knee_matches_simulated_d_curve() {
    let gen = workload();
    let cfg = MemConfig::paper();
    let costs = cost::probe_stage_costs(true, 0);
    let d_star = min_prefetch_distance(cfg.t_full, cfg.t_next, &costs) as usize;
    let at = |d: usize| time(&gen, JoinScheme::Swp { d }, cfg.clone());
    let best = [1usize, 2, 3, 4, 6, 8, 12, 16].into_iter().map(at).min().unwrap();
    let predicted = at(d_star);
    assert!(
        predicted as f64 <= best as f64 * 1.10,
        "T2 prediction D={d_star}: {predicted} vs best {best}"
    );
}

#[test]
fn predictions_shift_right_at_t1000() {
    let costs = cost::probe_stage_costs(true, 200);
    let p150 = MemConfig::paper();
    let p1000 = MemConfig::paper_t1000();
    let g150 = min_group_size(p150.t_full, p150.t_next, &costs).g;
    let g1000 = min_group_size(p1000.t_full, p1000.t_next, &costs).g;
    assert!(g1000 > g150 * 4, "G scales with latency: {g150} -> {g1000}");
    let d150 = min_prefetch_distance(p150.t_full, p150.t_next, &costs);
    let d1000 = min_prefetch_distance(p1000.t_full, p1000.t_next, &costs);
    assert!(d1000 > d150, "D scales with latency: {d150} -> {d1000}");
}

#[test]
fn simulated_t1000_optimum_is_right_of_t150_optimum() {
    // The Fig-12 "optimal points shift right" claim, automated: the best
    // G under T=1000 must exceed the best G under T=150.
    let gen = workload();
    let sweep = [4usize, 8, 12, 16, 24, 32, 48, 64, 96, 128];
    let best_g = |cfg: MemConfig| {
        sweep
            .into_iter()
            .min_by_key(|&g| time(&gen, JoinScheme::Group { g }, cfg.clone()))
            .unwrap()
    };
    let g150 = best_g(MemConfig::paper());
    let g1000 = best_g(MemConfig::paper_t1000());
    assert!(g1000 > g150, "optimum shifts right: {g150} -> {g1000}");
}
