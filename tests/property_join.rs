//! Property-based tests (proptest) on the core invariants:
//!
//! * any scheme × any parameters == the reference join, for arbitrary
//!   key multisets (including adversarial duplicates);
//! * partitioning preserves the tuple multiset and the placement
//!   invariant for arbitrary tuples and partition counts;
//! * the hash table behaves as a multimap under arbitrary insert
//!   sequences, via either insert protocol;
//! * slotted pages round-trip arbitrary tuple sequences.

use proptest::collection::vec;
use proptest::prelude::*;

use phj::hash::hash_key;
use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::partition::{partition_relation, PartitionScheme};
use phj::sink::{CountSink, JoinSink};
use phj::table::{HashCell, HashTable, InsertStep};
use phj_memsim::NativeModel;
use phj_storage::{Page, Relation, RelationBuilder, Schema};

fn rel_from_keys(keys: &[u32], size: usize) -> Relation {
    let schema = Schema::key_payload(size);
    let mut b = RelationBuilder::new(schema);
    let mut t = vec![0u8; size];
    for &k in keys {
        t[..4].copy_from_slice(&k.to_le_bytes());
        b.push_hashed(&t, hash_key(&k.to_le_bytes()));
    }
    b.finish()
}

/// Expected number of key-equal pairs between two key multisets.
fn expected_pairs(build: &[u32], probe: &[u32]) -> u64 {
    let mut counts = std::collections::HashMap::new();
    for &k in build {
        *counts.entry(k).or_insert(0u64) += 1;
    }
    probe.iter().map(|k| counts.get(k).copied().unwrap_or(0)).sum()
}

fn scheme_strategy() -> impl Strategy<Value = JoinScheme> {
    prop_oneof![
        Just(JoinScheme::Baseline),
        Just(JoinScheme::Simple),
        (2usize..64).prop_map(|g| JoinScheme::Group { g }),
        (1usize..16).prop_map(|d| JoinScheme::Swp { d }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_equals_reference(
        build_keys in vec(0u32..64, 0..300),
        probe_keys in vec(0u32..64, 0..300),
        scheme in scheme_strategy(),
    ) {
        // Small key universe forces heavy duplication: multi-cell
        // buckets, build conflicts, multi-match probes.
        let build = rel_from_keys(&build_keys, 20);
        let probe = rel_from_keys(&probe_keys, 20);
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme, use_stored_hash: true },
            &build,
            &probe,
            1,
            &mut sink,
        );
        prop_assert_eq!(sink.matches(), expected_pairs(&build_keys, &probe_keys));
        // And the exact pair multiset matches the baseline's.
        let mut base = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme: JoinScheme::Baseline, use_stored_hash: true },
            &build,
            &probe,
            1,
            &mut base,
        );
        prop_assert_eq!(sink, base);
    }

    #[test]
    fn partition_preserves_multiset(
        keys in vec(any::<u32>(), 1..400),
        nparts in 1usize..40,
        scheme_pick in 0usize..4,
        param in 1usize..32,
    ) {
        let scheme = match scheme_pick {
            0 => PartitionScheme::Baseline,
            1 => PartitionScheme::Simple,
            2 => PartitionScheme::Group { g: param.max(2) },
            _ => PartitionScheme::Swp { d: param },
        };
        let input = rel_from_keys(&keys, 36);
        let mut mem = NativeModel;
        let parts = partition_relation(&mut mem, scheme, &input, nparts, false);
        let total: usize = parts.iter().map(|r| r.num_tuples()).sum();
        prop_assert_eq!(total, input.num_tuples());
        for (p, rel) in parts.iter().enumerate() {
            for (_, t, h) in rel.iter() {
                prop_assert_eq!(phj::hash::partition_of(h, nparts), p);
                let k = u32::from_le_bytes(t[..4].try_into().unwrap());
                prop_assert_eq!(hash_key(&k.to_le_bytes()), h);
            }
        }
        let mut a = input.to_tuple_vec();
        let mut b: Vec<Vec<u8>> = parts.iter().flat_map(|r| r.to_tuple_vec()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hash_table_is_a_multimap(
        items in vec((0u32..128, 1u32..1000), 0..300),
        buckets in 1usize..64,
        staged in any::<bool>(),
    ) {
        let mut table = HashTable::new(buckets, items.len());
        let mut reference: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &(hash, len)) in items.iter().enumerate() {
            let addr = 0x1_0000 + i * 0x100;
            let cell = HashCell::new(hash, addr, len);
            if staged {
                let b = table.bucket_of(hash);
                let mut grown = 0;
                match table.begin_insert(b, cell, 7, &mut grown) {
                    InsertStep::DoneInline => {}
                    InsertStep::WriteCell(idx) => table.finish_overflow_insert(b, idx, cell),
                    InsertStep::Busy(_) => prop_assert!(false, "no concurrency here"),
                }
            } else {
                table.insert(cell);
            }
            reference.entry(hash).or_default().push(addr);
        }
        table.assert_quiescent();
        prop_assert_eq!(table.len(), items.len());
        for (hash, addrs) in &reference {
            let got: Vec<usize> = table.lookup(*hash).map(|c| c.tuple_addr()).collect();
            prop_assert_eq!(&got, addrs, "hash {} preserves insert order", hash);
        }
        // Absent hashes find nothing.
        for h in 128u32..140 {
            prop_assert_eq!(table.lookup(h).count(), 0);
        }
    }

    #[test]
    fn slotted_page_roundtrip(
        tuples in vec((vec(any::<u8>(), 0..300), any::<u32>()), 0..60),
    ) {
        let mut page = Page::new();
        let mut stored = Vec::new();
        for (bytes, hash) in &tuples {
            match page.insert(bytes, *hash) {
                Some(slot) => stored.push((slot, bytes.clone(), *hash)),
                None => break, // page full; everything stored so far must hold
            }
        }
        prop_assert_eq!(page.nslots() as usize, stored.len());
        for (slot, bytes, hash) in &stored {
            prop_assert_eq!(page.tuple(*slot), &bytes[..]);
            prop_assert_eq!(page.hash_code(*slot), *hash);
        }
        // Iteration yields exactly the stored tuples in slot order.
        let via_iter: Vec<(u16, Vec<u8>, u32)> =
            page.iter().map(|(s, t, h)| (s, t.to_vec(), h)).collect();
        prop_assert_eq!(via_iter, stored);
    }

    #[test]
    fn grace_any_budget_matches_oracle(
        build_n in 1usize..400,
        m in 1usize..4,
        pct in 0u8..=100,
        budget_pages in 1usize..20,
    ) {
        let spec = phj_workload::JoinSpec {
            build_tuples: build_n,
            tuple_size: 20,
            matches_per_build: m,
            pct_match: pct,
            seed: build_n as u64,
        };
        let gen = spec.generate();
        let cfg = phj::grace::GraceConfig {
            mem_budget: budget_pages * 8192,
            ..Default::default()
        };
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        phj::grace::grace_join_with_sink(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
        prop_assert_eq!(sink.matches(), gen.expected_matches);
    }
}
