//! Background sampler: scrapes the registry into a ring on an interval.
//!
//! The sampler owns its thread. It takes one sample immediately on
//! start (so even a run shorter than the interval yields a point), one
//! per interval while running, and one final sample on [`Sampler::stop`]
//! (so the ring's `last` always reflects the end-of-run totals). An
//! optional observer is invoked after every push — the CLI's
//! `--dashboard` live view hangs off it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;
use crate::ring::TimeSeriesRing;

/// Handle to the background sampling thread. Dropping the handle stops
/// the thread (equivalent to [`Sampler::stop`]).
pub struct Sampler {
    registry: Arc<Registry>,
    ring: Arc<TimeSeriesRing>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Callback run on the sampler thread after each ring push.
pub type SampleObserver = Box<dyn Fn(&TimeSeriesRing) + Send>;

impl Sampler {
    /// Start sampling `registry` into a fresh ring of `cap` samples,
    /// every `interval`. `observer` (if any) runs on the sampler thread
    /// after each push.
    pub fn start(
        registry: Arc<Registry>,
        interval: Duration,
        cap: usize,
        observer: Option<SampleObserver>,
    ) -> Sampler {
        let ring = Arc::new(TimeSeriesRing::new(cap));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let registry = Arc::clone(&registry);
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            // Sleep in short slices so stop() returns promptly even with
            // a long interval.
            let slice = interval.min(Duration::from_millis(20)).max(Duration::from_micros(100));
            std::thread::Builder::new()
                .name("phj-sampler".into())
                .spawn(move || {
                    let mut elapsed = interval; // force an immediate first sample
                    loop {
                        if elapsed >= interval {
                            elapsed = Duration::ZERO;
                            ring.push(&registry.scrape());
                            if let Some(obs) = &observer {
                                obs(&ring);
                            }
                        }
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(slice);
                        elapsed += slice;
                    }
                })
                .expect("spawn sampler thread")
        };
        Sampler { registry, ring, stop, handle: Some(handle) }
    }

    /// The ring this sampler writes into.
    pub fn ring(&self) -> &Arc<TimeSeriesRing> {
        &self.ring
    }

    /// Stop the thread, take one final sample, and return the ring.
    pub fn stop(mut self) -> Arc<TimeSeriesRing> {
        self.shutdown();
        Arc::clone(&self.ring)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
            // Final sample after the thread is gone: captures counts
            // bumped between the last tick and stop().
            self.ring.push(&self.registry.scrape());
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_takes_initial_and_final_samples() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("work_total", "work");
        // Interval far longer than the test: only the initial + final
        // samples can appear.
        let s = Sampler::start(Arc::clone(&reg), Duration::from_secs(60), 16, None);
        // The initial sample lands quickly.
        for _ in 0..200 {
            if !s.ring().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!s.ring().is_empty(), "initial sample never taken");
        c.add(7);
        let ring = s.stop();
        let series = ring.series();
        let w = series.iter().find(|x| x.name == "work_total").unwrap();
        assert_eq!(w.last, 7, "final sample must see post-tick increments");
        assert!(ring.len() >= 2);
    }

    #[test]
    fn observer_runs_per_sample() {
        use std::sync::atomic::AtomicUsize;
        let reg = Arc::new(Registry::new());
        reg.counter("x_total", "x");
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let s = Sampler::start(
            Arc::clone(&reg),
            Duration::from_millis(5),
            64,
            Some(Box::new(move |_ring| {
                h.fetch_add(1, Ordering::Relaxed);
            })),
        );
        std::thread::sleep(Duration::from_millis(40));
        let ring = s.stop();
        let observed = hits.load(Ordering::Relaxed);
        assert!(observed >= 2, "observer ran {observed} times");
        // stop() pushes one final sample without the observer.
        assert!(ring.len() >= observed);
    }
}
