#![warn(missing_docs)]

//! # phj-metrics — live telemetry for the join engine
//!
//! Everything observability has produced so far (RunReports, region
//! attribution, fault sections) is post-mortem: readable only after the
//! run finishes. This crate makes the same signals *watchable while a
//! join executes*, which is what runtime decisions — spilling, recursion,
//! degradation, skew rebalancing — ultimately need:
//!
//! * [`Registry`] — a lock-free metric registry. Counters and log2
//!   histograms are **sharded per-worker atomics** (relaxed increments on
//!   a thread-local shard, merged only on scrape), so instrumented hot
//!   paths never contend on a shared cache line. Gauges are single
//!   atomics (their writers are rare).
//! * [`global`]/[`install`] — a process-global registry that is **null
//!   until explicitly installed**. Instrumentation points in the engine
//!   crates check `global()` and compile down to one atomic load + branch
//!   when telemetry is off: no registry is ever allocated, and nothing
//!   about a run's output changes.
//! * [`TimeSeriesRing`] — a fixed-capacity ring of scrape snapshots; the
//!   oldest sample is overwritten once the ring is full.
//! * [`Sampler`] — a background thread that scrapes the registry into a
//!   ring every `interval`, with an optional per-sample observer hook
//!   (the CLI's `--dashboard` live view).
//! * [`prom::encode`] — Prometheus text exposition (version 0.0.4) of a
//!   scrape: families typed `counter` / `gauge` / `histogram`, no
//!   duplicate names (the registry's name map guarantees it).
//! * [`Listener`] — the shared nonblocking TCP accept loop (one tested
//!   accept path for every hand-rolled server in the workspace).
//! * [`MetricsServer`] — a hand-rolled, std-only HTTP endpoint over
//!   [`Listener`] answering `GET /metrics`; bind to port 0 and read
//!   [`MetricsServer::local_addr`] for an ephemeral endpoint.
//!
//! The crate is std-only and dependency-free, so every layer of the
//! workspace (storage, memsim, disk, exec, cli, bench) can depend on it
//! without cycles.

pub mod listener;
pub mod names;
pub mod prom;
pub mod registry;
pub mod ring;
pub mod sampler;
pub mod server;

pub use listener::Listener;
pub use prom::encode;
pub use registry::{Counter, Family, Gauge, Histogram, MetricKind, Registry, HIST_BUCKETS};
pub use ring::{Sample, SeriesSummary, TimeSeriesRing};
pub use sampler::Sampler;
pub use server::{set_queries_provider, MetricsServer};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Install the process-global registry (idempotent: later calls return
/// the first one). Instrumented hot paths across the workspace publish
/// into this registry from the moment it exists; before the first call,
/// [`global`] is `None` and instrumentation is a single branch.
pub fn install() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

/// The process-global registry, or `None` when telemetry was never
/// enabled. The disabled path costs one atomic load.
pub fn global() -> Option<&'static Arc<Registry>> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_global_sees_it() {
        // Note: other tests in this binary may install first; all we can
        // assert portably is idempotence and visibility.
        let a = install() as *const _;
        let b = install() as *const _;
        assert_eq!(a, b);
        assert!(global().is_some());
    }
}
