//! The shared nonblocking TCP accept loop.
//!
//! Both hand-rolled servers in the workspace — the Prometheus
//! [`MetricsServer`](crate::MetricsServer) and the `phj-server` query
//! daemon — need the same plumbing: bind, flip the listener nonblocking,
//! poll `accept` on a named background thread, hand each connection to a
//! handler, and stop cleanly when the owner drops the handle. This
//! module is that plumbing, extracted so there is exactly one tested
//! accept path instead of two drifting copies.
//!
//! The handler runs **on the listener thread**: a handler that blocks
//! stalls subsequent accepts, so handlers must either answer
//! synchronously and fast (the metrics scrape) or immediately ship the
//! stream elsewhere (the query daemon dispatches it to its worker pool).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Handle to a background accept loop. Dropping the handle stops it.
pub struct Listener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Listener {
    /// Bind `addr`, flip it nonblocking, and start accepting on a
    /// thread named `thread_name`. Every accepted stream is passed to
    /// `handler` on that thread. Returns an error if the bind fails
    /// (address in use, permission).
    pub fn start(
        thread_name: &str,
        addr: &str,
        handler: impl Fn(TcpStream) + Send + 'static,
    ) -> std::io::Result<Listener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(thread_name.to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => handler(stream),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL_INTERVAL);
                            }
                            Err(_) => std::thread::sleep(POLL_INTERVAL),
                        }
                    }
                })
                .expect("spawn listener thread")
        };
        Ok(Listener { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread. Connections already
    /// handed to the handler are unaffected.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn accepts_and_hands_streams_to_the_handler() {
        let served = Arc::new(AtomicUsize::new(0));
        let l = {
            let served = Arc::clone(&served);
            Listener::start("phj-test-listener", "127.0.0.1:0", move |mut s: TcpStream| {
                let mut buf = [0u8; 4];
                let _ = s.read_exact(&mut buf);
                // Count before echoing: the client treats the echo as
                // proof of service, so the increment must already be
                // visible when the echo lands.
                served.fetch_add(1, Ordering::SeqCst);
                let _ = s.write_all(&buf); // echo
            })
            .unwrap()
        };
        let addr = l.local_addr();
        assert_ne!(addr.port(), 0, "port 0 must resolve");
        for i in 0..3u8 {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&[i, i, i, i]).unwrap();
            let mut back = [0u8; 4];
            c.read_exact(&mut back).unwrap();
            assert_eq!(back, [i, i, i, i]);
        }
        assert_eq!(served.load(Ordering::SeqCst), 3);
        l.stop();
    }

    #[test]
    fn stop_joins_the_thread_and_frees_the_port() {
        let l = Listener::start("phj-test-stop", "127.0.0.1:0", |_s| {}).unwrap();
        let addr = l.local_addr();
        l.stop();
        // After stop the port is free again: rebinding must succeed.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after stop: {rebound:?}");
    }

    #[test]
    fn bad_address_is_an_error_not_a_panic() {
        assert!(Listener::start("phj-test-bad", "256.0.0.1:0", |_s| {}).is_err());
    }
}
