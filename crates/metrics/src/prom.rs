//! Prometheus text exposition (format version 0.0.4) of a scrape.
//!
//! Each [`Family`] becomes a `# HELP` line, a `# TYPE` line, and one or
//! more sample lines. Counters and gauges emit a single sample;
//! histograms emit cumulative `_bucket{le="..."}` lines (ending in
//! `le="+Inf"`), a `_sum`, and a `_count`, per the exposition spec.
//! Family names come from the registry's sorted name map, so the output
//! is deterministic and free of duplicate names by construction.

use crate::registry::{bucket_bound, Family, MetricKind, HIST_BUCKETS};

/// Escape a HELP string per the exposition format: backslash and
/// newline only (HELP values are not quoted).
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render families as Prometheus text exposition, version 0.0.4.
pub fn encode(families: &[Family]) -> String {
    let mut out = String::new();
    for f in families {
        out.push_str(&format!("# HELP {} {}\n", f.name, escape_help(&f.help)));
        out.push_str(&format!("# TYPE {} {}\n", f.name, f.kind.as_str()));
        match f.kind {
            MetricKind::Counter | MetricKind::Gauge => {
                out.push_str(&format!("{} {}\n", f.name, f.value));
            }
            MetricKind::Histogram => {
                let mut cumulative = 0u64;
                for (i, &b) in f.buckets.iter().enumerate() {
                    cumulative += b;
                    // The last bucket is unbounded; spell it +Inf and
                    // skip the redundant finite bound.
                    if i + 1 == HIST_BUCKETS {
                        break;
                    }
                    out.push_str(&format!(
                        "{}_bucket{{le=\"{}\"}} {}\n",
                        f.name,
                        bucket_bound(i),
                        cumulative
                    ));
                }
                cumulative = f.buckets.iter().sum();
                out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", f.name, cumulative));
                out.push_str(&format!("{}_sum {}\n", f.name, f.sum));
                out.push_str(&format!("{}_count {}\n", f.name, f.value));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn counter_and_gauge_lines() {
        let reg = Registry::new();
        reg.counter("phj_tasks_total", "Tasks run").add(3);
        reg.gauge("phj_queue_depth", "Queue depth").set(5);
        let text = encode(&reg.scrape());
        assert!(text.contains("# HELP phj_tasks_total Tasks run\n"));
        assert!(text.contains("# TYPE phj_tasks_total counter\n"));
        assert!(text.contains("\nphj_tasks_total 3\n") || text.starts_with("phj_tasks_total 3\n") || text.contains("phj_tasks_total 3\n"));
        assert!(text.contains("# TYPE phj_queue_depth gauge\n"));
        assert!(text.contains("phj_queue_depth 5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_in_inf() {
        let reg = Registry::new();
        let h = reg.histogram("phj_lat", "Latency");
        h.record(1); // bucket le=1
        h.record(2); // bucket le=3
        h.record(100); // bucket le=127
        let text = encode(&reg.scrape());
        assert!(text.contains("# TYPE phj_lat histogram\n"));
        assert!(text.contains("phj_lat_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("phj_lat_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("phj_lat_bucket{le=\"127\"} 3\n"));
        assert!(text.contains("phj_lat_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("phj_lat_sum 103\n"));
        assert!(text.contains("phj_lat_count 3\n"));
        // Cumulative counts never decrease down the bucket list.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("phj_lat_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "non-cumulative bucket line: {line}");
            prev = v;
        }
    }

    #[test]
    fn help_escaping() {
        let reg = Registry::new();
        reg.counter("weird_total", "line\nbreak and back\\slash");
        let text = encode(&reg.scrape());
        assert!(text.contains("# HELP weird_total line\\nbreak and back\\\\slash\n"));
    }

    #[test]
    fn no_duplicate_family_names() {
        let reg = Registry::new();
        reg.counter("a_total", "a");
        reg.gauge("b", "b");
        reg.counter("a_total", "a"); // idempotent re-registration
        let text = encode(&reg.scrape());
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let mut names: Vec<&str> = type_lines.iter().map(|l| l.split(' ').nth(2).unwrap()).collect();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
