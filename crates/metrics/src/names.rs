//! Well-known metric family names.
//!
//! Every instrumentation point in the workspace and every consumer of a
//! scrape — the `/metrics` endpoint, the report `timeseries` section,
//! and the `phj-analyze` diagnosis engine mining that section for
//! evidence — must agree on these strings. Centralizing them here makes
//! the scrape-to-analysis plumbing a compile-time contract instead of a
//! grep: an analyzer rule that reads [`EXEC_STEALS`] cannot drift from
//! the counter the worker pool increments.

/// `phj_exec_tasks_total` — tasks run by the worker pool.
pub const EXEC_TASKS: &str = "phj_exec_tasks_total";
/// `phj_exec_steals_total` — tasks obtained by work stealing.
pub const EXEC_STEALS: &str = "phj_exec_steals_total";
/// `phj_exec_busy_ns_total` — worker wall time inside task bodies (ns).
pub const EXEC_BUSY_NS: &str = "phj_exec_busy_ns_total";
/// `phj_exec_idle_ns_total` — worker wall time hunting for work (ns).
pub const EXEC_IDLE_NS: &str = "phj_exec_idle_ns_total";
/// `phj_exec_queue_depth` — unclaimed tasks in the active execute region.
pub const EXEC_QUEUE_DEPTH: &str = "phj_exec_queue_depth";
/// `phj_exec_workers` — workers in the active execute region.
pub const EXEC_WORKERS: &str = "phj_exec_workers";
/// `phj_exec_task_ns` — per-task wall-time distribution (log2 buckets).
pub const EXEC_TASK_NS: &str = "phj_exec_task_ns";

/// `phj_disk_faults_injected_total` — injected disk faults, all kinds.
pub const DISK_FAULTS: &str = "phj_disk_faults_injected_total";
/// `phj_disk_read_retries_total` — repeated page read attempts.
pub const DISK_READ_RETRIES: &str = "phj_disk_read_retries_total";
/// `phj_disk_write_retries_total` — repeated page write attempts.
pub const DISK_WRITE_RETRIES: &str = "phj_disk_write_retries_total";
/// `phj_disk_stall_ns_total` — main-thread ns blocked on disk.
pub const DISK_STALL_NS: &str = "phj_disk_stall_ns_total";
/// `phj_disk_bytes_read_total` — bytes read from stripe files.
pub const DISK_BYTES_READ: &str = "phj_disk_bytes_read_total";
/// `phj_disk_bytes_written_total` — bytes written to stripe files.
pub const DISK_BYTES_WRITTEN: &str = "phj_disk_bytes_written_total";
/// `phj_disk_degradation_depth` — deepest degradation-ladder step.
pub const DISK_DEGRADATION_DEPTH: &str = "phj_disk_degradation_depth";

/// `phj_memsim_accesses_total` — simulated demand accesses.
pub const MEMSIM_ACCESSES: &str = "phj_memsim_accesses_total";
/// `phj_memsim_l1_misses_total` — demand lines missing L1.
pub const MEMSIM_L1_MISSES: &str = "phj_memsim_l1_misses_total";
/// `phj_memsim_l2_misses_total` — demand lines missing L2.
pub const MEMSIM_L2_MISSES: &str = "phj_memsim_l2_misses_total";
/// `phj_memsim_tlb_misses_total` — demand TLB page walks.
pub const MEMSIM_TLB_MISSES: &str = "phj_memsim_tlb_misses_total";
/// `phj_memsim_prefetches_total` — software prefetches issued.
pub const MEMSIM_PREFETCHES: &str = "phj_memsim_prefetches_total";
/// `phj_memsim_pf_hidden_cycles_total` — miss cycles hidden by prefetching.
pub const MEMSIM_PF_HIDDEN_CYCLES: &str = "phj_memsim_pf_hidden_cycles_total";

/// `phj_server_queries_admitted_total` — queries granted memory and run.
pub const SERVER_QUERIES_ADMITTED: &str = "phj_server_queries_admitted_total";
/// `phj_server_queries_rejected_total` — queries bounced by admission.
pub const SERVER_QUERIES_REJECTED: &str = "phj_server_queries_rejected_total";
/// `phj_server_queries_queued` — queries waiting for a memory grant.
pub const SERVER_QUERIES_QUEUED: &str = "phj_server_queries_queued";
/// `phj_server_queries_inflight` — queries currently executing.
pub const SERVER_QUERIES_INFLIGHT: &str = "phj_server_queries_inflight";
/// `phj_server_grant_bytes` — memory bytes currently granted out.
pub const SERVER_GRANT_BYTES: &str = "phj_server_grant_bytes";
/// `phj_server_grant_peak_bytes` — high-water mark of granted bytes.
pub const SERVER_GRANT_PEAK_BYTES: &str = "phj_server_grant_peak_bytes";
/// `phj_server_query_latency_us` — per-query wall latency (log2 buckets).
pub const SERVER_QUERY_LATENCY_US: &str = "phj_server_query_latency_us";
/// `phj_server_query_queue_wait_us` — admission FIFO wait behind
/// earlier arrivals (the query was not yet at the queue head).
pub const SERVER_QUERY_QUEUE_WAIT_US: &str = "phj_server_query_queue_wait_us";
/// `phj_server_query_grant_wait_us` — wait at the queue head for
/// budget to free up.
pub const SERVER_QUERY_GRANT_WAIT_US: &str = "phj_server_query_grant_wait_us";
/// `phj_server_query_exec_us` — kernel execution time per query.
pub const SERVER_QUERY_EXEC_US: &str = "phj_server_query_exec_us";
/// `phj_server_query_serialize_us` — response serialization time
/// (report re-render with the `query_trace` section attached).
pub const SERVER_QUERY_SERIALIZE_US: &str = "phj_server_query_serialize_us";
/// `phj_server_slow_queries_total` — slow-query captures written.
pub const SERVER_SLOW_QUERIES: &str = "phj_server_slow_queries_total";
/// `phj_server_grant_resizes_total` — live-grant resize operations.
pub const SERVER_GRANT_RESIZES: &str = "phj_server_grant_resizes_total";
/// `phj_server_shed_requests_total` — pressure callbacks asking a
/// running query to shed memory for a queued arrival.
pub const SERVER_SHED_REQUESTS: &str = "phj_server_shed_requests_total";

/// `phj_storage_pages_sealed_total` — page images sealed for disk.
pub const STORAGE_PAGES_SEALED: &str = "phj_storage_pages_sealed_total";
/// `phj_storage_pages_verified_total` — disk page images verified OK.
pub const STORAGE_PAGES_VERIFIED: &str = "phj_storage_pages_verified_total";
/// `phj_storage_checksum_failures_total` — disk images rejected.
pub const STORAGE_CHECKSUM_FAILURES: &str = "phj_storage_checksum_failures_total";
