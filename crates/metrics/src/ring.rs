//! Fixed-capacity time-series ring: the sampler's landing zone.
//!
//! Each sample is one scrape of the registry reduced to scalars (counter
//! and gauge values; histogram observation counts), stamped with
//! nanoseconds since the ring was created. Capacity is fixed up front;
//! once full, the oldest sample is overwritten — a long run keeps the
//! most recent window rather than growing without bound.
//!
//! The ring is read at human frequency (dashboard refreshes, the final
//! report) and written at sampler frequency, so interior mutability is a
//! plain mutex — the lock is never on a join hot path.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::registry::Family;

/// One scrape snapshot: a timestamp plus one scalar per tracked series
/// (in the ring's `names` order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Nanoseconds since the ring was created.
    pub t_ns: u64,
    /// One value per series name.
    pub values: Vec<u64>,
}

/// Per-series reduction of the ring: min/max/last plus the raw points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesSummary {
    /// Series (metric family) name.
    pub name: String,
    /// Smallest sampled value.
    pub min: u64,
    /// Largest sampled value.
    pub max: u64,
    /// Most recent sampled value.
    pub last: u64,
    /// `(t_ns, value)` points, oldest first.
    pub points: Vec<(u64, u64)>,
}

struct Inner {
    names: Vec<String>,
    samples: VecDeque<Sample>,
}

/// The fixed-capacity ring. See the module docs.
pub struct TimeSeriesRing {
    cap: usize,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl TimeSeriesRing {
    /// A ring holding at most `cap` samples (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> TimeSeriesRing {
        TimeSeriesRing {
            cap: cap.max(1),
            epoch: Instant::now(),
            inner: Mutex::new(Inner { names: Vec::new(), samples: VecDeque::new() }),
        }
    }

    /// Sample capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Fold one scrape into the ring. The first push fixes the series
    /// name set; later scrapes may carry *more* families (registration
    /// is dynamic) — new names are appended and their earlier samples
    /// read as zero, while vanished names (impossible today: metrics are
    /// never unregistered) would read as zero going forward.
    pub fn push(&self, families: &[Family]) {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().unwrap();
        for f in families {
            if !inner.names.iter().any(|n| n == &f.name) {
                inner.names.push(f.name.clone());
            }
        }
        let values = inner
            .names
            .iter()
            .map(|n| families.iter().find(|f| &f.name == n).map_or(0, |f| f.value))
            .collect();
        if inner.samples.len() == self.cap {
            inner.samples.pop_front();
        }
        inner.samples.push_back(Sample { t_ns, values });
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().samples.len()
    }

    /// Whether the ring holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reduce the ring to per-series summaries (ring order; empty when
    /// no samples were ever pushed). Earlier samples taken before a
    /// late-registered series appeared contribute zeros, mirroring the
    /// counter's actual value at those instants.
    pub fn series(&self) -> Vec<SeriesSummary> {
        let inner = self.inner.lock().unwrap();
        inner
            .names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let points: Vec<(u64, u64)> = inner
                    .samples
                    .iter()
                    .map(|s| (s.t_ns, s.values.get(i).copied().unwrap_or(0)))
                    .collect();
                let min = points.iter().map(|&(_, v)| v).min().unwrap_or(0);
                let max = points.iter().map(|&(_, v)| v).max().unwrap_or(0);
                let last = points.last().map_or(0, |&(_, v)| v);
                SeriesSummary { name: name.clone(), min, max, last, points }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn ring_overwrites_oldest_at_capacity() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "c");
        let ring = TimeSeriesRing::new(3);
        for i in 1..=5u64 {
            c.add(i);
            ring.push(&reg.scrape());
        }
        assert_eq!(ring.len(), 3);
        let s = ring.series();
        assert_eq!(s.len(), 1);
        // Counter values were 1, 3, 6, 10, 15; the ring keeps the last 3.
        assert_eq!(s[0].points.iter().map(|&(_, v)| v).collect::<Vec<_>>(), [6, 10, 15]);
        assert_eq!((s[0].min, s[0].max, s[0].last), (6, 15, 15));
        // Timestamps are monotonic.
        assert!(s[0].points.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn late_registered_series_backfills_zero() {
        let reg = Registry::new();
        reg.counter("a_total", "a").add(1);
        let ring = TimeSeriesRing::new(8);
        ring.push(&reg.scrape());
        reg.counter("b_total", "b").add(9);
        ring.push(&reg.scrape());
        let s = ring.series();
        assert_eq!(s.len(), 2);
        let b = s.iter().find(|x| x.name == "b_total").unwrap();
        assert_eq!(b.points.iter().map(|&(_, v)| v).collect::<Vec<_>>(), [0, 9]);
        assert_eq!((b.min, b.max, b.last), (0, 9, 9));
    }

    #[test]
    fn empty_ring_yields_no_series() {
        let ring = TimeSeriesRing::new(4);
        assert!(ring.is_empty());
        assert!(ring.series().is_empty());
    }
}
