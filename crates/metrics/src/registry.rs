//! The lock-free metric registry.
//!
//! Registration (rare) takes a mutex; the handles it returns are plain
//! `Arc`s whose increment paths touch only atomics. Counters and
//! histograms are sharded: each thread picks a shard once (round-robin at
//! first use) and all its increments land there with relaxed ordering, so
//! two workers bumping the same counter never bounce a cache line between
//! cores. A scrape folds the shards together — monotonic counters merged
//! on read, exactly the per-worker-atomics model the registry promises.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per sharded metric. Power of two; thread shard indices wrap.
const SHARDS: usize = 16;

/// Log2 histogram buckets: bucket 0 holds value 0, bucket `i` (1-based)
/// holds values in `(2^(i-2), 2^(i-1)]`… practically: `bucket_of(v)` is
/// `0` for 0 and `1 + floor(log2(v))` clamped to the last bucket.
pub const HIST_BUCKETS: usize = 33;

/// One cache-line-padded atomic cell, so shards never share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin at first use.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn my_shard() -> usize {
    SHARD.with(|s| *s)
}

/// A monotonic counter (sharded; merged on scrape).
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Add `n` to this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[my_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merged value across shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-writer-wins gauge (writers are rare — queue depth, ladder
/// depth, worker count — so a single atomic suffices).
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Set the gauge to `max(current, v)` (high-water marks).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// One shard of a histogram: per-bucket counts plus the running sum.
#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

/// A log2 histogram (sharded; merged on scrape).
#[derive(Default)]
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

/// Bucket index for a recorded value.
pub(crate) fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub(crate) fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        i if i >= HIST_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Record one observation on this thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.shards[my_shard()];
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merged per-bucket counts.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for s in &self.shards {
            for (o, b) in out.iter_mut().zip(&s.buckets) {
                *o += b.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Merged observation count.
    pub fn count(&self) -> u64 {
        self.buckets().iter().sum()
    }

    /// Merged observation sum.
    pub fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.sum.load(Ordering::Relaxed)).sum()
    }
}

/// What kind of metric a family is (drives the exposition type line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Log2 histogram.
    Histogram,
}

impl MetricKind {
    /// Prometheus type keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One scraped metric family: a consistent-enough point-in-time read of
/// a metric (shards are merged with relaxed loads; a scrape concurrent
/// with increments may split an update between two samples, which is the
/// standard monotonic-counter contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Family {
    /// Family name (unique within the registry, exposition-safe).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Family type.
    pub kind: MetricKind,
    /// Counter/gauge value; for histograms, the observation count.
    pub value: u64,
    /// Histogram per-bucket counts (empty for counters/gauges).
    pub buckets: Vec<u64>,
    /// Histogram observation sum (0 for counters/gauges).
    pub sum: u64,
}

/// The metric registry. See the module docs for the concurrency model.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, (String, Metric)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register (or fetch) a counter. Panics if `name` is already a
    /// different kind — duplicate names with conflicting types would
    /// corrupt the exposition.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Counter(Arc::new(Counter::default()))))
        {
            (_, Metric::Counter(c)) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Gauge(Arc::new(Gauge::default()))))
        {
            (_, Metric::Gauge(g)) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Register (or fetch) a log2 histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Metric::Histogram(Arc::new(Histogram::default()))))
        {
            (_, Metric::Histogram(h)) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Scrape every family, merged across shards, sorted by name.
    pub fn scrape(&self) -> Vec<Family> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .map(|(name, (help, metric))| match metric {
                Metric::Counter(c) => Family {
                    name: name.clone(),
                    help: help.clone(),
                    kind: MetricKind::Counter,
                    value: c.value(),
                    buckets: Vec::new(),
                    sum: 0,
                },
                Metric::Gauge(g) => Family {
                    name: name.clone(),
                    help: help.clone(),
                    kind: MetricKind::Gauge,
                    value: g.value(),
                    buckets: Vec::new(),
                    sum: 0,
                },
                Metric::Histogram(h) => {
                    let buckets = h.buckets();
                    Family {
                        name: name.clone(),
                        help: help.clone(),
                        kind: MetricKind::Histogram,
                        value: buckets.iter().sum(),
                        buckets: buckets.to_vec(),
                        sum: h.sum(),
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("phj_test_ops_total", "ops");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8_000);
        // Re-registering the same name returns the same counter.
        let again = reg.counter("phj_test_ops_total", "ops");
        again.add(5);
        assert_eq!(c.value(), 8_005);
    }

    #[test]
    fn gauges_last_write_and_high_water() {
        let g = Gauge::default();
        g.set(7);
        g.set(3);
        assert_eq!(g.value(), 3);
        g.set_max(10);
        g.set_max(4);
        assert_eq!(g.value(), 10);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
        // Every value falls in the bucket whose bound is >= it.
        for v in [0u64, 1, 2, 5, 100, 1 << 20, u64::MAX] {
            assert!(bucket_bound(bucket_of(v)) >= v, "{v}");
        }

        let h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(1 << 40);
        let b = h.buckets();
        assert_eq!(b[0], 1);
        assert_eq!(b[2], 2);
        // 1<<40 overflows the finite buckets and clamps to the last one.
        assert_eq!(b[HIST_BUCKETS - 1], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), (1 << 40) + 6);
    }

    #[test]
    fn scrape_sorts_and_types_families() {
        let reg = Registry::new();
        reg.counter("z_total", "z").add(2);
        reg.gauge("a_depth", "a").set(9);
        reg.histogram("m_hist", "m").record(5);
        let fams = reg.scrape();
        let names: Vec<&str> = fams.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a_depth", "m_hist", "z_total"]);
        assert_eq!(fams[0].kind, MetricKind::Gauge);
        assert_eq!(fams[0].value, 9);
        assert_eq!(fams[1].kind, MetricKind::Histogram);
        assert_eq!(fams[1].value, 1);
        assert_eq!(fams[1].sum, 5);
        assert_eq!(fams[2].kind, MetricKind::Counter);
        assert_eq!(fams[2].value, 2);
        // No duplicate names, ever: the map enforces it.
        let mut sorted = names.clone();
        sorted.dedup();
        assert_eq!(sorted, names);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("phj_conflict", "c");
        reg.gauge("phj_conflict", "g");
    }
}
