//! A hand-rolled, std-only `/metrics` endpoint.
//!
//! The accept loop is the shared [`Listener`]; each accepted connection
//! is answered synchronously on the listener thread: read the request
//! head, scrape the registry, write one HTTP/1.0-style response, close.
//! There is no keep-alive, no routing beyond `GET /metrics`,
//! `GET /healthz`, and `GET /queries`, and no TLS — this is a scrape
//! target, not a web server. Bind to port 0 and read
//! [`MetricsServer::local_addr`] for an ephemeral endpoint (CI does).
//!
//! `/queries` serves whatever JSON document the installed
//! [`set_queries_provider`] callback renders — the query daemon
//! installs its live query table there; without a provider the route
//! answers 404 with a hint. The indirection keeps this crate free of
//! any dependency on the server crate (which depends on *this* one).
//!
//! The server registers self-metrics on the registry it serves:
//! `phj_http_scrapes_total` (count of successful `/metrics` responses,
//! incremented before encoding so the very first scrape reports 1) and
//! `phj_http_scrape_duration_us` (a histogram of scrape latencies).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::listener::Listener;
use crate::prom;
use crate::registry::Registry;

/// Content type of the Prometheus text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Renders the `/queries` response body (a JSON document).
type QueriesProvider = Arc<dyn Fn() -> String + Send + Sync>;

static QUERIES_PROVIDER: std::sync::OnceLock<std::sync::Mutex<Option<QueriesProvider>>> =
    std::sync::OnceLock::new();

fn provider_slot() -> &'static std::sync::Mutex<Option<QueriesProvider>> {
    QUERIES_PROVIDER.get_or_init(|| std::sync::Mutex::new(None))
}

/// Install (or replace) the `GET /queries` body provider. The query
/// daemon points this at its live query table; the callback runs on
/// the listener thread per request, so it should snapshot, not block.
pub fn set_queries_provider(f: Arc<dyn Fn() -> String + Send + Sync>) {
    *provider_slot().lock().unwrap() = Some(f);
}

fn queries_body() -> Option<String> {
    let f = provider_slot().lock().unwrap().clone();
    f.map(|f| f())
}

/// Handle to the listener thread. Dropping the handle stops it.
pub struct MetricsServer {
    listener: Listener,
}

impl MetricsServer {
    /// Bind `addr` and start answering `GET /metrics` with scrapes of
    /// `registry`. Returns an error if the bind fails (address in use,
    /// permission).
    pub fn start(addr: &str, registry: Arc<Registry>) -> std::io::Result<MetricsServer> {
        let listener = Listener::start("phj-metrics-http", addr, move |stream| {
            serve_one(stream, &registry)
        })?;
        Ok(MetricsServer { listener })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr()
    }

    /// Stop the listener thread.
    pub fn stop(self) {
        self.listener.stop();
    }
}

fn serve_one(mut stream: TcpStream, registry: &Registry) {
    // Scrape targets send tiny requests; cap the read and bail on slow
    // clients rather than stalling the accept loop. The cap is generous
    // because a loaded host (CI running the whole suite) can delay a
    // local request head by hundreds of milliseconds.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let mut ctype = CONTENT_TYPE;
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", String::from("method not allowed\n"))
    } else if path == "/queries" || path.starts_with("/queries?") {
        match queries_body() {
            Some(json) => {
                ctype = "application/json";
                ("200 OK", json)
            }
            None => (
                "404 Not Found",
                String::from("no queries provider installed; is the query daemon running?\n"),
            ),
        }
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        // Count before encoding so the scrape observes itself — the
        // first response already reports phj_http_scrapes_total 1.
        registry
            .counter("phj_http_scrapes_total", "Successful /metrics scrapes served")
            .inc();
        let t0 = Instant::now();
        let text = prom::encode(&registry.scrape());
        registry
            .histogram("phj_http_scrape_duration_us", "Scrape encode latency (us)")
            .record(t0.elapsed().as_micros() as u64);
        ("200 OK", text)
    } else if path == "/healthz" {
        ("200 OK", String::from("ok\n"))
    } else {
        ("404 Not Found", String::from("not found; scrape /metrics\n"))
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: phj\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let mut halves = raw.splitn(2, "\r\n\r\n");
        (halves.next().unwrap().to_string(), halves.next().unwrap_or("").to_string())
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let reg = Arc::new(Registry::new());
        reg.counter("phj_http_test_total", "test").add(42);
        let srv = MetricsServer::start("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let addr = srv.local_addr();
        assert_ne!(addr.port(), 0, "port 0 must resolve to an ephemeral port");

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains(CONTENT_TYPE));
        assert!(body.contains("phj_http_test_total 42\n"));

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");

        // A second scrape after more increments sees fresh values.
        reg.counter("phj_http_test_total", "test").add(1);
        let (_, body) = http_get(addr, "/metrics");
        assert!(body.contains("phj_http_test_total 43\n"));
        srv.stop();
    }

    #[test]
    fn healthz_and_self_metrics() {
        let reg = Arc::new(Registry::new());
        let srv = MetricsServer::start("127.0.0.1:0", Arc::clone(&reg)).unwrap();
        let addr = srv.local_addr();

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "ok\n");

        // Health checks are not scrapes: the first real scrape observes
        // itself and reports exactly 1.
        let (_, body) = http_get(addr, "/metrics");
        assert!(body.contains("phj_http_scrapes_total 1\n"), "{body}");
        let (_, body) = http_get(addr, "/metrics");
        assert!(body.contains("phj_http_scrapes_total 2\n"), "{body}");
        // The second scrape carries the first one's duration sample.
        assert!(body.contains("phj_http_scrape_duration_us_count"), "{body}");
        srv.stop();
    }

    #[test]
    fn non_get_is_rejected() {
        let reg = Arc::new(Registry::new());
        let srv = MetricsServer::start("127.0.0.1:0", reg).unwrap();
        let mut s = TcpStream::connect(srv.local_addr()).unwrap();
        write!(s, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.0 405"), "{raw}");
    }
}
