//! Live-telemetry handles for the storage layer.
//!
//! Sealing and verification happen once per page crossing a disk
//! boundary (not per tuple), so these counters update directly at the
//! event site — no batching needed. All updates sit behind the usual
//! `phj_metrics::global()` null check: with telemetry off, each site is
//! one atomic load.

use std::sync::{Arc, OnceLock};

use phj_metrics::{names, Counter};

/// Registered handles for the storage metric family.
pub(crate) struct StorageMetrics {
    /// `phj_storage_pages_sealed_total` — page images checksummed for disk.
    pub pages_sealed: Arc<Counter>,
    /// `phj_storage_pages_verified_total` — disk images that passed
    /// verification.
    pub pages_verified: Arc<Counter>,
    /// `phj_storage_checksum_failures_total` — disk images rejected (torn
    /// header or checksum mismatch).
    pub checksum_failures: Arc<Counter>,
}

/// The storage handles, or `None` when telemetry is off.
pub(crate) fn storage_metrics() -> Option<&'static StorageMetrics> {
    static CACHE: OnceLock<StorageMetrics> = OnceLock::new();
    let reg = phj_metrics::global()?;
    Some(CACHE.get_or_init(|| StorageMetrics {
        pages_sealed: reg
            .counter(names::STORAGE_PAGES_SEALED, "Page images sealed for disk"),
        pages_verified: reg
            .counter(names::STORAGE_PAGES_VERIFIED, "Disk page images verified OK"),
        checksum_failures: reg.counter(
            names::STORAGE_CHECKSUM_FAILURES,
            "Disk page images rejected (torn or checksum mismatch)",
        ),
    }))
}
