//! Relation schemas: attribute types, layout computation, key location.
//!
//! The paper's experiments use tuples of a 4-byte join key plus a
//! fixed-length payload, but the engine itself "supports fixed length and
//! variable length attributes in tuples" (§7.1). A [`Schema`] describes the
//! attributes of a relation and precomputes the byte layout used by the
//! tuple codec in [`crate::tuple`].

use std::fmt;

/// The type of a single attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 32-bit unsigned integer (the paper's 4-byte join keys).
    U32,
    /// 64-bit unsigned integer.
    U64,
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Fixed-length byte string of the given width (padded payloads).
    FixedBytes(u16),
    /// Variable-length byte string (stored in the tuple's var region).
    VarBytes,
}

impl AttrType {
    /// Width in bytes of the fixed part of this attribute.
    ///
    /// Variable-length attributes store a 4-byte `(offset: u16, len: u16)`
    /// descriptor in the fixed region; their bytes live in the var region
    /// at the end of the tuple.
    pub fn fixed_width(self) -> usize {
        match self {
            AttrType::U32 => 4,
            AttrType::U64 | AttrType::I64 | AttrType::F64 => 8,
            AttrType::FixedBytes(w) => w as usize,
            AttrType::VarBytes => 4,
        }
    }

    /// Whether the attribute is variable-length.
    pub fn is_var(self) -> bool {
        matches!(self, AttrType::VarBytes)
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::U32 => write!(f, "u32"),
            AttrType::U64 => write!(f, "u64"),
            AttrType::I64 => write!(f, "i64"),
            AttrType::F64 => write!(f, "f64"),
            AttrType::FixedBytes(w) => write!(f, "bytes[{w}]"),
            AttrType::VarBytes => write!(f, "varbytes"),
        }
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (for diagnostics; the engine addresses by index).
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute { name: name.into(), ty }
    }
}

/// Schema of a relation: ordered attributes plus the index of the join key.
///
/// The layout places all fixed-width parts first, in attribute order
/// (variable-length attributes contribute a 4-byte descriptor), followed by
/// the concatenated var-region bytes. Precomputed fixed offsets make typed
/// access O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
    /// Index into `attrs` of the join key attribute.
    key: usize,
    /// Byte offset of each attribute's fixed part.
    fixed_offsets: Vec<usize>,
    /// Total size of the fixed region.
    fixed_size: usize,
    /// Whether any attribute is variable-length.
    has_var: bool,
}

impl Schema {
    /// Build a schema. `key` is the index of the join-key attribute.
    ///
    /// # Panics
    /// Panics if `attrs` is empty, `key` is out of range, or the key
    /// attribute is variable-length with width 0 (keys must be comparable
    /// as byte slices; `VarBytes` keys are allowed and compared by bytes).
    pub fn new(attrs: Vec<Attribute>, key: usize) -> Self {
        assert!(!attrs.is_empty(), "schema must have at least one attribute");
        assert!(key < attrs.len(), "join key index {key} out of range");
        let mut fixed_offsets = Vec::with_capacity(attrs.len());
        let mut off = 0usize;
        let mut has_var = false;
        for a in &attrs {
            fixed_offsets.push(off);
            off += a.ty.fixed_width();
            has_var |= a.ty.is_var();
        }
        Schema { attrs, key, fixed_offsets, fixed_size: off, has_var }
    }

    /// The paper's experimental schema: a 4-byte `u32` join key followed by
    /// a fixed payload bringing the tuple to `tuple_size` bytes total.
    ///
    /// # Panics
    /// Panics if `tuple_size < 4`.
    pub fn key_payload(tuple_size: usize) -> Self {
        assert!(tuple_size >= 4, "tuple must at least hold the 4-byte key");
        let mut attrs = vec![Attribute::new("key", AttrType::U32)];
        if tuple_size > 4 {
            attrs.push(Attribute::new(
                "payload",
                AttrType::FixedBytes((tuple_size - 4) as u16),
            ));
        }
        Schema::new(attrs, 0)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute list.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Index of the join-key attribute.
    pub fn key_index(&self) -> usize {
        self.key
    }

    /// Type of the join-key attribute.
    pub fn key_type(&self) -> AttrType {
        self.attrs[self.key].ty
    }

    /// Byte offset of attribute `i`'s fixed part within a tuple.
    pub fn fixed_offset(&self, i: usize) -> usize {
        self.fixed_offsets[i]
    }

    /// Size of the fixed region (== tuple size when `!has_var()`).
    pub fn fixed_size(&self) -> usize {
        self.fixed_size
    }

    /// Whether tuples of this schema have a variable-length region.
    pub fn has_var(&self) -> bool {
        self.has_var
    }

    /// Exact encoded size of a tuple with the given var-region payload
    /// lengths (one entry per `VarBytes` attribute, in order).
    pub fn tuple_size(&self, var_lens: &[usize]) -> usize {
        debug_assert_eq!(
            var_lens.len(),
            self.attrs.iter().filter(|a| a.ty.is_var()).count()
        );
        self.fixed_size + var_lens.iter().sum::<usize>()
    }

    /// Schema of the join output: all attributes of `build` then all of
    /// `probe` ("an output tuple contains all the fields of the matching
    /// build and probe tuples", §7.1). The output key is the build key.
    pub fn join_output(build: &Schema, probe: &Schema) -> Schema {
        let mut attrs = Vec::with_capacity(build.arity() + probe.arity());
        for a in build.attrs() {
            attrs.push(Attribute::new(format!("b_{}", a.name), a.ty));
        }
        for a in probe.attrs() {
            attrs.push(Attribute::new(format!("p_{}", a.name), a.ty));
        }
        Schema::new(attrs, build.key_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_payload_layout() {
        let s = Schema::key_payload(100);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.fixed_size(), 100);
        assert_eq!(s.fixed_offset(0), 0);
        assert_eq!(s.fixed_offset(1), 4);
        assert!(!s.has_var());
        assert_eq!(s.key_index(), 0);
        assert_eq!(s.key_type(), AttrType::U32);
    }

    #[test]
    fn key_only_tuple() {
        let s = Schema::key_payload(4);
        assert_eq!(s.arity(), 1);
        assert_eq!(s.fixed_size(), 4);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_small_tuple_panics() {
        let _ = Schema::key_payload(3);
    }

    #[test]
    fn var_layout() {
        let s = Schema::new(
            vec![
                Attribute::new("k", AttrType::U32),
                Attribute::new("name", AttrType::VarBytes),
                Attribute::new("qty", AttrType::I64),
            ],
            0,
        );
        assert!(s.has_var());
        assert_eq!(s.fixed_offset(0), 0);
        assert_eq!(s.fixed_offset(1), 4); // 4-byte var descriptor
        assert_eq!(s.fixed_offset(2), 8);
        assert_eq!(s.fixed_size(), 16);
        assert_eq!(s.tuple_size(&[5]), 21);
    }

    #[test]
    fn join_output_schema() {
        let b = Schema::key_payload(20);
        let p = Schema::key_payload(12);
        let o = Schema::join_output(&b, &p);
        assert_eq!(o.arity(), 4);
        assert_eq!(o.fixed_size(), 32);
        assert_eq!(o.key_index(), 0);
        assert_eq!(o.attrs()[0].name, "b_key");
        assert_eq!(o.attrs()[2].name, "p_key");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_key_index() {
        let _ = Schema::new(vec![Attribute::new("k", AttrType::U32)], 1);
    }
}
