//! Relations as append-only arenas of slotted pages.
//!
//! A [`Relation`] stands in for a disk file holding a base relation or one
//! intermediate partition (the paper stores both as files and streams them
//! page-by-page; its simulation study measures user-mode CPU time only, so
//! an in-memory page arena is behaviour-preserving — see DESIGN.md).
//!
//! [`TupleRef`] is a compact `(page, slot)` tuple locator used by scans
//! and diagnostics. (Hash-table cells store *direct* tuple pointers
//! instead — see `phj::table` — because the staged probe must prefetch a
//! build tuple the moment its cell is read, without a further dependent
//! slot lookup.)

use crate::page::{Page, SlotId, PAGE_SIZE};
use crate::schema::Schema;

/// Compact reference to a tuple: 48-bit page index + 16-bit slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef(u64);

impl TupleRef {
    /// Pack a page/slot pair.
    #[inline]
    pub fn new(page: usize, slot: SlotId) -> Self {
        debug_assert!(page < (1usize << 48));
        TupleRef(((page as u64) << 16) | slot as u64)
    }

    /// Page index.
    #[inline]
    pub fn page(self) -> usize {
        (self.0 >> 16) as usize
    }

    /// Slot within the page.
    #[inline]
    pub fn slot(self) -> SlotId {
        (self.0 & 0xFFFF) as u16
    }

    /// Raw packed value (for arena-friendly storage in hash cells).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild from [`TupleRef::raw`].
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        TupleRef(raw)
    }
}

/// An append-only paged relation (or intermediate partition).
///
/// `Clone` deep-copies every page (each clone gets fresh, stable buffer
/// addresses).
#[derive(Clone)]
pub struct Relation {
    schema: Schema,
    pages: Vec<Page>,
    tuples: usize,
    bytes: usize,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation { schema, pages: Vec::new(), tuples: 0, bytes: 0 }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of tuples.
    pub fn num_tuples(&self) -> usize {
        self.tuples
    }

    /// Total tuple payload bytes (excluding slot/header overhead).
    pub fn tuple_bytes(&self) -> usize {
        self.bytes
    }

    /// Total size as it would occupy on disk (whole pages).
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Borrow a page.
    #[inline]
    pub fn page(&self, i: usize) -> &Page {
        &self.pages[i]
    }

    /// Mutably borrow a page.
    #[inline]
    pub fn page_mut(&mut self, i: usize) -> &mut Page {
        &mut self.pages[i]
    }

    /// All pages.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Append a tuple, allocating a new page when the last one is full.
    /// Returns the tuple's reference.
    ///
    /// # Panics
    /// Panics if the tuple cannot fit even in an empty page.
    pub fn append(&mut self, tuple: &[u8], hash: u32) -> TupleRef {
        if let Some(last) = self.pages.last_mut() {
            if let Some(slot) = last.insert(tuple, hash) {
                self.tuples += 1;
                self.bytes += tuple.len();
                return TupleRef::new(self.pages.len() - 1, slot);
            }
        }
        let mut page = Page::new();
        let slot = page
            .insert(tuple, hash)
            .expect("tuple larger than an empty page");
        self.pages.push(page);
        self.tuples += 1;
        self.bytes += tuple.len();
        TupleRef::new(self.pages.len() - 1, slot)
    }

    /// Push an externally filled page (used by the partition phase when it
    /// flushes a full output buffer).
    pub fn push_page(&mut self, page: Page) {
        self.tuples += page.nslots() as usize;
        self.bytes += page
            .iter()
            .map(|(_, t, _)| t.len())
            .sum::<usize>();
        self.pages.push(page);
    }

    /// Move every page of `other` onto the end of this relation.
    ///
    /// Used by the parallel partition phase to concatenate per-worker
    /// partition buffers at the barrier: pages are *moved*, not cloned, so
    /// absorbing is O(pages) pointer work and the tuples keep their buffer
    /// addresses (any registered memory-model regions stay valid).
    ///
    /// # Panics
    /// Panics if the schemas differ.
    pub fn absorb(&mut self, other: Relation) {
        assert_eq!(
            self.schema, other.schema,
            "absorb requires identical schemas"
        );
        self.tuples += other.tuples;
        self.bytes += other.bytes;
        self.pages.extend(other.pages);
    }

    /// Tuple bytes behind a reference.
    #[inline]
    pub fn tuple(&self, r: TupleRef) -> &[u8] {
        self.pages[r.page()].tuple(r.slot())
    }

    /// Stashed hash code behind a reference.
    #[inline]
    pub fn hash_code(&self, r: TupleRef) -> u32 {
        self.pages[r.page()].hash_code(r.slot())
    }

    /// Address of the tuple bytes behind a reference (memory-model hook).
    #[inline]
    pub fn tuple_addr(&self, r: TupleRef) -> usize {
        self.pages[r.page()].tuple_addr(r.slot())
    }

    /// Iterate `(TupleRef, tuple_bytes, hash_code)` in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleRef, &[u8], u32)> + '_ {
        self.pages.iter().enumerate().flat_map(|(pi, page)| {
            page.iter()
                .map(move |(s, t, h)| (TupleRef::new(pi, s), t, h))
        })
    }

    /// Collect every tuple as an owned byte vector (test/diagnostic helper).
    pub fn to_tuple_vec(&self) -> Vec<Vec<u8>> {
        self.iter().map(|(_, t, _)| t.to_vec()).collect()
    }
}

/// Streaming relation writer that reuses a fill page; convenience over
/// [`Relation::append`] when generating workloads.
pub struct RelationBuilder {
    rel: Relation,
}

impl RelationBuilder {
    /// Start building a relation with `schema`.
    pub fn new(schema: Schema) -> Self {
        RelationBuilder { rel: Relation::new(schema) }
    }

    /// Append one tuple (hash code stash defaults to 0 for base relations).
    pub fn push(&mut self, tuple: &[u8]) -> TupleRef {
        self.rel.append(tuple, 0)
    }

    /// Append one tuple with a stashed hash code.
    pub fn push_hashed(&mut self, tuple: &[u8], hash: u32) -> TupleRef {
        self.rel.append(tuple, hash)
    }

    /// Finish and return the relation.
    pub fn finish(self) -> Relation {
        self.rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_100b(n: usize) -> Relation {
        let schema = Schema::key_payload(100);
        let mut b = RelationBuilder::new(schema);
        let mut tuple = [0u8; 100];
        for i in 0..n {
            tuple[..4].copy_from_slice(&(i as u32).to_le_bytes());
            b.push_hashed(&tuple, i as u32);
        }
        b.finish()
    }

    #[test]
    fn tuple_ref_packing() {
        let r = TupleRef::new(123_456, 789);
        assert_eq!(r.page(), 123_456);
        assert_eq!(r.slot(), 789);
        assert_eq!(TupleRef::from_raw(r.raw()), r);
    }

    #[test]
    fn append_spills_to_new_pages() {
        let rel = rel_100b(200);
        assert_eq!(rel.num_tuples(), 200);
        // 75 tuples of (100+8) bytes per 8 KB page.
        assert_eq!(rel.num_pages(), 200usize.div_ceil(75));
        assert_eq!(rel.tuple_bytes(), 200 * 100);
    }

    #[test]
    fn iter_and_resolve_agree() {
        let rel = rel_100b(100);
        let mut seen = 0usize;
        for (r, t, h) in rel.iter() {
            assert_eq!(rel.tuple(r), t);
            assert_eq!(rel.hash_code(r), h);
            let key = u32::from_le_bytes(t[..4].try_into().unwrap());
            assert_eq!(key, h); // we stashed key as hash
            assert_eq!(rel.tuple_addr(r), t.as_ptr() as usize);
            seen += 1;
        }
        assert_eq!(seen, 100);
    }

    #[test]
    fn push_page_accounts() {
        let schema = Schema::key_payload(16);
        let mut rel = Relation::new(schema);
        let mut page = Page::new();
        page.insert(&[1u8; 16], 3).unwrap();
        page.insert(&[2u8; 16], 4).unwrap();
        rel.push_page(page);
        assert_eq!(rel.num_tuples(), 2);
        assert_eq!(rel.tuple_bytes(), 32);
        assert_eq!(rel.num_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "larger than an empty page")]
    fn oversized_tuple_panics() {
        let schema = Schema::key_payload(4);
        let mut rel = Relation::new(schema);
        rel.append(&vec![0u8; PAGE_SIZE], 0);
    }

    #[test]
    fn size_bytes_counts_whole_pages() {
        let rel = rel_100b(1);
        assert_eq!(rel.size_bytes(), PAGE_SIZE);
    }
}
