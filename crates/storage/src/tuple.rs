//! Tuple encoding and decoding.
//!
//! A tuple is a byte string laid out per its [`Schema`]: the fixed region
//! holds fixed-width attribute values in attribute order, with each
//! variable-length attribute contributing a 4-byte `(offset: u16, len: u16)`
//! descriptor pointing into the var region that follows the fixed region.
//!
//! [`TupleAssembler`] builds encoded tuples (reusing its buffer to avoid
//! per-tuple allocation, per the workhorse-collection idiom), and
//! [`TupleView`] provides zero-copy typed access over an encoded slice.

use crate::schema::{AttrType, Schema};

/// Reusable tuple encoder.
///
/// ```
/// use phj_storage::{Schema, TupleAssembler};
/// let schema = Schema::key_payload(16);
/// let mut asm = TupleAssembler::new(&schema);
/// asm.set_u32(0, 42);
/// asm.fill_payload(1, 0xAB);
/// let bytes = asm.finish();
/// assert_eq!(bytes.len(), 16);
/// assert_eq!(&bytes[..4], &42u32.to_le_bytes());
/// ```
pub struct TupleAssembler<'s> {
    schema: &'s Schema,
    buf: Vec<u8>,
    var_vals: Vec<Vec<u8>>,
}

impl<'s> TupleAssembler<'s> {
    /// Create an assembler for `schema` with all-zero initial values.
    pub fn new(schema: &'s Schema) -> Self {
        let nvar = schema.attrs().iter().filter(|a| a.ty.is_var()).count();
        TupleAssembler {
            schema,
            buf: vec![0u8; schema.fixed_size()],
            var_vals: vec![Vec::new(); nvar],
        }
    }

    /// Set a `U32` attribute.
    pub fn set_u32(&mut self, attr: usize, v: u32) -> &mut Self {
        self.put_fixed(attr, AttrType::U32, &v.to_le_bytes())
    }

    /// Set a `U64` attribute.
    pub fn set_u64(&mut self, attr: usize, v: u64) -> &mut Self {
        self.put_fixed(attr, AttrType::U64, &v.to_le_bytes())
    }

    /// Set an `I64` attribute.
    pub fn set_i64(&mut self, attr: usize, v: i64) -> &mut Self {
        self.put_fixed(attr, AttrType::I64, &v.to_le_bytes())
    }

    /// Set an `F64` attribute.
    pub fn set_f64(&mut self, attr: usize, v: f64) -> &mut Self {
        self.put_fixed(attr, AttrType::F64, &v.to_le_bytes())
    }

    /// Set a `FixedBytes` attribute. `v` must match the declared width.
    pub fn set_fixed_bytes(&mut self, attr: usize, v: &[u8]) -> &mut Self {
        let ty = self.schema.attrs()[attr].ty;
        match ty {
            AttrType::FixedBytes(w) => {
                assert_eq!(v.len(), w as usize, "fixed bytes width mismatch");
            }
            other => panic!("attribute {attr} is {other}, not bytes[n]"),
        }
        let off = self.schema.fixed_offset(attr);
        self.buf[off..off + v.len()].copy_from_slice(v);
        self
    }

    /// Fill a `FixedBytes` attribute with a repeated byte (payload filler).
    pub fn fill_payload(&mut self, attr: usize, byte: u8) -> &mut Self {
        let w = match self.schema.attrs()[attr].ty {
            AttrType::FixedBytes(w) => w as usize,
            other => panic!("attribute {attr} is {other}, not bytes[n]"),
        };
        let off = self.schema.fixed_offset(attr);
        self.buf[off..off + w].fill(byte);
        self
    }

    /// Set a `VarBytes` attribute.
    pub fn set_var_bytes(&mut self, attr: usize, v: &[u8]) -> &mut Self {
        assert!(
            self.schema.attrs()[attr].ty.is_var(),
            "attribute {attr} is not varbytes"
        );
        let vi = self.var_slot(attr);
        self.var_vals[vi].clear();
        self.var_vals[vi].extend_from_slice(v);
        self
    }

    /// Encode the current values; the returned slice is valid until the
    /// next mutation of this assembler.
    pub fn finish(&mut self) -> &[u8] {
        if !self.schema.has_var() {
            return &self.buf;
        }
        // Lay out var region after the fixed region and patch descriptors.
        self.buf.truncate(self.schema.fixed_size());
        let mut off = self.schema.fixed_size();
        let mut vi = 0usize;
        let mut patches: Vec<(usize, u16, u16)> = Vec::new();
        for (i, a) in self.schema.attrs().iter().enumerate() {
            if a.ty.is_var() {
                let len = self.var_vals[vi].len();
                assert!(len <= u16::MAX as usize, "var attribute too long");
                assert!(off <= u16::MAX as usize, "tuple too long");
                patches.push((self.schema.fixed_offset(i), off as u16, len as u16));
                off += len;
                vi += 1;
            }
        }
        for (fo, o, l) in patches {
            self.buf[fo..fo + 2].copy_from_slice(&o.to_le_bytes());
            self.buf[fo + 2..fo + 4].copy_from_slice(&l.to_le_bytes());
        }
        for vi in 0..self.var_vals.len() {
            // Appending after the fixed region; descriptors already point here.
            let v = std::mem::take(&mut self.var_vals[vi]);
            self.buf.extend_from_slice(&v);
            self.var_vals[vi] = v;
        }
        &self.buf
    }

    fn put_fixed(&mut self, attr: usize, want: AttrType, bytes: &[u8]) -> &mut Self {
        let ty = self.schema.attrs()[attr].ty;
        assert_eq!(ty, want, "attribute {attr} type mismatch");
        let off = self.schema.fixed_offset(attr);
        self.buf[off..off + bytes.len()].copy_from_slice(bytes);
        self
    }

    fn var_slot(&self, attr: usize) -> usize {
        self.schema.attrs()[..attr]
            .iter()
            .filter(|a| a.ty.is_var())
            .count()
    }
}

/// Zero-copy typed reader over an encoded tuple.
#[derive(Clone, Copy)]
pub struct TupleView<'a> {
    schema: &'a Schema,
    bytes: &'a [u8],
}

impl<'a> TupleView<'a> {
    /// Wrap encoded bytes. The caller asserts they were produced for
    /// `schema` (checked cheaply: length ≥ fixed size).
    pub fn new(schema: &'a Schema, bytes: &'a [u8]) -> Self {
        debug_assert!(bytes.len() >= schema.fixed_size());
        TupleView { schema, bytes }
    }

    /// Raw encoded bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Read a `U32` attribute.
    pub fn u32(&self, attr: usize) -> u32 {
        let off = self.fixed(attr, AttrType::U32);
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Read a `U64` attribute.
    pub fn u64(&self, attr: usize) -> u64 {
        let off = self.fixed(attr, AttrType::U64);
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read an `I64` attribute.
    pub fn i64(&self, attr: usize) -> i64 {
        let off = self.fixed(attr, AttrType::I64);
        i64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read an `F64` attribute.
    pub fn f64(&self, attr: usize) -> f64 {
        let off = self.fixed(attr, AttrType::F64);
        f64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap())
    }

    /// Read the raw bytes of any attribute (fixed or var).
    pub fn attr_bytes(&self, attr: usize) -> &'a [u8] {
        let ty = self.schema.attrs()[attr].ty;
        let off = self.schema.fixed_offset(attr);
        if ty.is_var() {
            let vo =
                u16::from_le_bytes(self.bytes[off..off + 2].try_into().unwrap()) as usize;
            let vl = u16::from_le_bytes(self.bytes[off + 2..off + 4].try_into().unwrap())
                as usize;
            &self.bytes[vo..vo + vl]
        } else {
            &self.bytes[off..off + ty.fixed_width()]
        }
    }

    /// The join-key bytes of this tuple.
    pub fn key_bytes(&self) -> &'a [u8] {
        self.attr_bytes(self.schema.key_index())
    }

    fn fixed(&self, attr: usize, want: AttrType) -> usize {
        debug_assert_eq!(self.schema.attrs()[attr].ty, want);
        self.schema.fixed_offset(attr)
    }
}

/// Extract the join-key bytes from an encoded tuple without constructing a
/// view (hot-path helper for the join inner loops).
#[inline]
pub fn key_bytes_of<'a>(schema: &Schema, tuple: &'a [u8]) -> &'a [u8] {
    let ki = schema.key_index();
    let ty = schema.attrs()[ki].ty;
    let off = schema.fixed_offset(ki);
    if ty.is_var() {
        let vo = u16::from_le_bytes(tuple[off..off + 2].try_into().unwrap()) as usize;
        let vl = u16::from_le_bytes(tuple[off + 2..off + 4].try_into().unwrap()) as usize;
        &tuple[vo..vo + vl]
    } else {
        &tuple[off..off + ty.fixed_width()]
    }
}

/// Concatenate a build tuple and probe tuple into the join-output encoding
/// for [`Schema::join_output`], appending into `out` (which is cleared).
///
/// Only fixed-size schemas are concatenation-trivial; schemas with var
/// attributes are re-encoded so descriptors stay valid.
pub fn materialize_join_output(
    build_schema: &Schema,
    probe_schema: &Schema,
    build: &[u8],
    probe: &[u8],
    out: &mut Vec<u8>,
) {
    out.clear();
    if !build_schema.has_var() && !probe_schema.has_var() {
        out.extend_from_slice(build);
        out.extend_from_slice(probe);
        return;
    }
    // Slow path: copy fixed regions, then re-pack var regions and patch
    // descriptors relative to the combined tuple.
    let bf = build_schema.fixed_size();
    let pf = probe_schema.fixed_size();
    out.extend_from_slice(&build[..bf]);
    out.extend_from_slice(&probe[..pf]);
    let mut var_off = bf + pf;
    let patch = |fixed_base: usize,
                     schema: &Schema,
                     src: &[u8],
                     out: &mut Vec<u8>,
                     var_off: &mut usize| {
        for (i, a) in schema.attrs().iter().enumerate() {
            if a.ty.is_var() {
                let off = schema.fixed_offset(i);
                let vo =
                    u16::from_le_bytes(src[off..off + 2].try_into().unwrap()) as usize;
                let vl = u16::from_le_bytes(src[off + 2..off + 4].try_into().unwrap())
                    as usize;
                let dst = fixed_base + off;
                out[dst..dst + 2].copy_from_slice(&(*var_off as u16).to_le_bytes());
                out[dst + 2..dst + 4].copy_from_slice(&(vl as u16).to_le_bytes());
                let (head, _) = (&src[vo..vo + vl], ());
                let bytes = head.to_vec();
                out.extend_from_slice(&bytes);
                *var_off += vl;
            }
        }
    };
    patch(0, build_schema, build, out, &mut var_off);
    patch(bf, probe_schema, probe, out, &mut var_off);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    #[test]
    fn fixed_roundtrip() {
        let s = Schema::key_payload(24);
        let mut asm = TupleAssembler::new(&s);
        asm.set_u32(0, 0xDEADBEEF).fill_payload(1, 0x5A);
        let bytes = asm.finish().to_vec();
        let v = TupleView::new(&s, &bytes);
        assert_eq!(v.u32(0), 0xDEADBEEF);
        assert_eq!(v.attr_bytes(1), &[0x5A; 20][..]);
        assert_eq!(v.key_bytes(), &0xDEADBEEFu32.to_le_bytes());
        assert_eq!(key_bytes_of(&s, &bytes), v.key_bytes());
    }

    #[test]
    fn var_roundtrip() {
        let s = Schema::new(
            vec![
                Attribute::new("k", AttrType::U32),
                Attribute::new("name", AttrType::VarBytes),
                Attribute::new("qty", AttrType::I64),
                Attribute::new("note", AttrType::VarBytes),
            ],
            0,
        );
        let mut asm = TupleAssembler::new(&s);
        asm.set_u32(0, 7)
            .set_var_bytes(1, b"widget")
            .set_i64(2, -99)
            .set_var_bytes(3, b"fragile!");
        let bytes = asm.finish().to_vec();
        assert_eq!(bytes.len(), s.tuple_size(&[6, 8]));
        let v = TupleView::new(&s, &bytes);
        assert_eq!(v.u32(0), 7);
        assert_eq!(v.attr_bytes(1), b"widget");
        assert_eq!(v.i64(2), -99);
        assert_eq!(v.attr_bytes(3), b"fragile!");
    }

    #[test]
    fn var_key() {
        let s = Schema::new(
            vec![
                Attribute::new("name", AttrType::VarBytes),
                Attribute::new("x", AttrType::U32),
            ],
            0,
        );
        let mut asm = TupleAssembler::new(&s);
        asm.set_var_bytes(0, b"alpha").set_u32(1, 3);
        let bytes = asm.finish().to_vec();
        assert_eq!(key_bytes_of(&s, &bytes), b"alpha");
    }

    #[test]
    fn assembler_reuse_is_clean() {
        let s = Schema::new(
            vec![
                Attribute::new("k", AttrType::U32),
                Attribute::new("v", AttrType::VarBytes),
            ],
            0,
        );
        let mut asm = TupleAssembler::new(&s);
        asm.set_u32(0, 1).set_var_bytes(1, b"long-first-value");
        let first = asm.finish().to_vec();
        asm.set_u32(0, 2).set_var_bytes(1, b"x");
        let second = asm.finish().to_vec();
        assert_eq!(TupleView::new(&s, &first).attr_bytes(1), b"long-first-value");
        let v2 = TupleView::new(&s, &second);
        assert_eq!(v2.u32(0), 2);
        assert_eq!(v2.attr_bytes(1), b"x");
        assert_eq!(second.len(), s.tuple_size(&[1]));
    }

    #[test]
    fn join_output_fixed_concat() {
        let b = Schema::key_payload(8);
        let p = Schema::key_payload(12);
        let o = Schema::join_output(&b, &p);
        let mut ab = TupleAssembler::new(&b);
        ab.set_u32(0, 5).fill_payload(1, 1);
        let bt = ab.finish().to_vec();
        let mut ap = TupleAssembler::new(&p);
        ap.set_u32(0, 5).fill_payload(1, 2);
        let pt = ap.finish().to_vec();
        let mut out = Vec::new();
        materialize_join_output(&b, &p, &bt, &pt, &mut out);
        assert_eq!(out.len(), 20);
        let v = TupleView::new(&o, &out);
        assert_eq!(v.u32(0), 5);
        assert_eq!(v.u32(2), 5);
        assert_eq!(v.attr_bytes(1), &[1; 4][..]);
        assert_eq!(v.attr_bytes(3), &[2; 8][..]);
    }

    #[test]
    fn join_output_with_var() {
        let b = Schema::new(
            vec![
                Attribute::new("k", AttrType::U32),
                Attribute::new("bn", AttrType::VarBytes),
            ],
            0,
        );
        let p = Schema::new(
            vec![
                Attribute::new("k", AttrType::U32),
                Attribute::new("pn", AttrType::VarBytes),
            ],
            0,
        );
        let o = Schema::join_output(&b, &p);
        let mut ab = TupleAssembler::new(&b);
        ab.set_u32(0, 9).set_var_bytes(1, b"build-side");
        let bt = ab.finish().to_vec();
        let mut ap = TupleAssembler::new(&p);
        ap.set_u32(0, 9).set_var_bytes(1, b"probe");
        let pt = ap.finish().to_vec();
        let mut out = Vec::new();
        materialize_join_output(&b, &p, &bt, &pt, &mut out);
        let v = TupleView::new(&o, &out);
        assert_eq!(v.u32(0), 9);
        assert_eq!(v.attr_bytes(1), b"build-side");
        assert_eq!(v.u32(2), 9);
        assert_eq!(v.attr_bytes(3), b"probe");
    }
}
