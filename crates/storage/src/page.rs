//! Slotted pages.
//!
//! The engine "employs slotted page structure" (§7.1). A page is a fixed
//! 8 KB buffer (matching the simulated system's page size, Table 2) with:
//!
//! ```text
//! +--------+--------+------------------ ... -------------------+
//! | header | slots →                         ← tuple data      |
//! +--------+--------+------------------ ... -------------------+
//! ```
//!
//! * header: `nslots: u16`, `data_start: u16`, `checksum: u32` (8 bytes).
//!   The checksum word covers every other byte of the page and is written
//!   only when a page image is **sealed** for disk ([`Page::sealed_image`]);
//!   in-memory pages carry a stale/zero checksum. Readers verify it with
//!   [`Page::try_from_image`], so a torn or bit-flipped on-disk page is
//!   detected instead of silently joining garbage;
//! * slot `i` (8 bytes, growing upward): `offset: u16`, `len: u16`,
//!   `hash: u32` — the 4-byte **stashed hash code**. For base relations it
//!   is unused; for intermediate partitions the partition phase writes the
//!   join-key hash code here so the join phase can reuse it without
//!   re-reading the key (§7.1: "storing hash codes in the page slot area in
//!   the intermediate partitions and reusing them in the join phase");
//! * tuple data grows downward from the end of the page.

/// Page size in bytes (Table 2 of the paper).
pub const PAGE_SIZE: usize = 8192;

/// Header bytes at the front of every page (`nslots`, `data_start`,
/// `checksum`).
pub const PAGE_HEADER_BYTES: usize = 8;

const HDR: usize = PAGE_HEADER_BYTES;
const SLOT: usize = 8;
/// Byte range of the header checksum word (skipped when checksumming).
const CKSUM_RANGE: std::ops::Range<usize> = 4..8;

/// Why a disk page image failed verification.
///
/// Carries no file/page location — the I/O layer that read the image adds
/// that context when it wraps the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// The header is structurally impossible (slot area and data area
    /// overlap, or `data_start` past the page end) — a torn write, a hole
    /// in the file, or a foreign page.
    Torn {
        /// Slot count found in the header.
        nslots: u16,
        /// Data-start offset found in the header.
        data_start: u16,
    },
    /// Header structure is plausible but the checksum word does not match
    /// the page contents — corruption inside the slot or data area.
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum recomputed from the image.
        computed: u32,
    },
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Torn { nslots, data_start } => write!(
                f,
                "torn page image: {nslots} slots, data_start {data_start}"
            ),
            PageError::ChecksumMismatch { stored, computed } => write!(
                f,
                "page checksum mismatch: header {stored:#010x}, contents {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for PageError {}

/// Index of a tuple slot within one page.
pub type SlotId = u16;

/// A fixed-size slotted page.
///
/// The buffer is boxed so `Vec<Page>` growth moves only thin handles and
/// each page's bytes stay at a stable heap address — the memory model keys
/// its cache simulation off those addresses.
///
/// `Clone` deep-copies the buffer (used when an output buffer is "written
/// to disk": the engine copies the page out and keeps reusing the same
/// buffer, as a real buffer manager would — the copy stands in for the
/// DMA transfer and is not charged to the memory model).
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page { buf: self.buf.clone() }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("nslots", &self.nslots())
            .field("data_start", &self.data_start())
            .field("checksum", &self.checksum())
            .finish_non_exhaustive()
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// An empty page.
    pub fn new() -> Self {
        let mut buf: Box<[u8; PAGE_SIZE]> = vec![0u8; PAGE_SIZE]
            .into_boxed_slice()
            .try_into()
            .expect("exact size");
        buf[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { buf }
    }

    /// Remove all tuples, returning the page to its empty state.
    pub fn reset(&mut self) {
        self.set_nslots(0);
        self.set_data_start(PAGE_SIZE as u16);
    }

    /// Number of tuples stored.
    #[inline]
    pub fn nslots(&self) -> u16 {
        u16::from_le_bytes([self.buf[0], self.buf[1]])
    }

    /// Free bytes available for one more `insert` (slot + data).
    #[inline]
    pub fn free_space(&self) -> usize {
        self.data_start() as usize - (HDR + SLOT * self.nslots() as usize)
    }

    /// Whether a tuple of `len` bytes fits.
    #[inline]
    pub fn fits(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT
    }

    /// Append a tuple with its stashed hash code. Returns the slot id, or
    /// `None` if the page is full.
    pub fn insert(&mut self, tuple: &[u8], hash: u32) -> Option<SlotId> {
        if !self.fits(tuple.len()) {
            return None;
        }
        let n = self.nslots();
        let start = self.data_start() as usize - tuple.len();
        self.buf[start..start + tuple.len()].copy_from_slice(tuple);
        let so = HDR + SLOT * n as usize;
        self.buf[so..so + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.buf[so + 2..so + 4].copy_from_slice(&(tuple.len() as u16).to_le_bytes());
        self.buf[so + 4..so + 8].copy_from_slice(&hash.to_le_bytes());
        self.set_data_start(start as u16);
        self.set_nslots(n + 1);
        Some(n)
    }

    /// Tuple bytes at `slot`.
    ///
    /// # Panics
    /// Panics (in debug) or returns garbage-free but arbitrary data (never
    /// out of bounds) if `slot >= nslots()`; callers iterate valid slots.
    #[inline]
    pub fn tuple(&self, slot: SlotId) -> &[u8] {
        debug_assert!(slot < self.nslots());
        let so = HDR + SLOT * slot as usize;
        let off = u16::from_le_bytes([self.buf[so], self.buf[so + 1]]) as usize;
        let len = u16::from_le_bytes([self.buf[so + 2], self.buf[so + 3]]) as usize;
        &self.buf[off..off + len]
    }

    /// Stashed hash code at `slot`.
    #[inline]
    pub fn hash_code(&self, slot: SlotId) -> u32 {
        debug_assert!(slot < self.nslots());
        let so = HDR + SLOT * slot as usize;
        u32::from_le_bytes(self.buf[so + 4..so + 8].try_into().unwrap())
    }

    /// Overwrite the stashed hash code at `slot`.
    pub fn set_hash_code(&mut self, slot: SlotId, hash: u32) {
        assert!(slot < self.nslots());
        let so = HDR + SLOT * slot as usize;
        self.buf[so + 4..so + 8].copy_from_slice(&hash.to_le_bytes());
    }

    /// Address of the start of the page buffer (memory-model hook).
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.buf.as_ptr() as usize
    }

    /// Address of slot `slot`'s 8-byte entry (memory-model hook).
    #[inline]
    pub fn slot_addr(&self, slot: SlotId) -> usize {
        self.base_addr() + HDR + SLOT * slot as usize
    }

    /// Address of the tuple bytes at `slot` (memory-model hook). This reads
    /// the slot entry, mirroring the real dependency chain slot → tuple.
    #[inline]
    pub fn tuple_addr(&self, slot: SlotId) -> usize {
        let so = HDR + SLOT * slot as usize;
        let off = u16::from_le_bytes([self.buf[so], self.buf[so + 1]]) as usize;
        self.base_addr() + off
    }

    /// Address where the *next* inserted tuple's data would start, given its
    /// length, plus the address of the next slot entry. Used by the
    /// partition phase to prefetch the output-buffer locations it is about
    /// to write (§6).
    #[inline]
    pub fn next_insert_addrs(&self, len: usize) -> (usize, usize) {
        let data = self.base_addr() + self.data_start() as usize - len;
        let slot = self.slot_addr(self.nslots());
        (data, slot)
    }

    /// Iterate `(slot, tuple_bytes, hash_code)`.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8], u32)> + '_ {
        (0..self.nslots()).map(move |s| (s, self.tuple(s), self.hash_code(s)))
    }

    /// The raw page image (for writing the page to disk).
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    /// FNV-1a over the page image, skipping the checksum word itself.
    fn compute_checksum(buf: &[u8; PAGE_SIZE]) -> u32 {
        let mut h: u32 = 0x811C_9DC5;
        for &b in buf[..CKSUM_RANGE.start].iter().chain(&buf[CKSUM_RANGE.end..]) {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
        h
    }

    /// Checksum word currently stored in the header. Only meaningful after
    /// [`seal`](Page::seal) — in-memory pages carry a stale or zero word.
    #[inline]
    pub fn checksum(&self) -> u32 {
        u32::from_le_bytes(self.buf[CKSUM_RANGE].try_into().unwrap())
    }

    /// Stamp the header checksum word from the current page contents.
    /// Any later mutation invalidates it; prefer [`sealed_image`]
    /// (Page::sealed_image) at the point a page leaves for disk.
    pub fn seal(&mut self) {
        let c = Self::compute_checksum(&self.buf);
        self.buf[CKSUM_RANGE].copy_from_slice(&c.to_le_bytes());
        if let Some(m) = crate::telemetry::storage_metrics() {
            m.pages_sealed.inc();
        }
    }

    /// A copy of the page image with a freshly computed checksum — the form
    /// every page takes on its way to disk. Copying here (rather than
    /// sealing in place) means a buffer that keeps being reused in memory
    /// never carries a checksum that has silently gone stale.
    pub fn sealed_image(&self) -> Box<[u8; PAGE_SIZE]> {
        let mut img = Box::new(*self.as_bytes());
        let c = Self::compute_checksum(&img);
        img[CKSUM_RANGE].copy_from_slice(&c.to_le_bytes());
        if let Some(m) = crate::telemetry::storage_metrics() {
            m.pages_sealed.inc();
        }
        img
    }

    /// Verify and reconstruct a page from a sealed disk image.
    ///
    /// Structural validation first (a torn write or file hole rarely leaves
    /// a plausible header), then the checksum word. Use this on every page
    /// that crossed a disk boundary; [`from_bytes`](Page::from_bytes) stays
    /// available for trusted in-memory images.
    pub fn try_from_image(buf: Box<[u8; PAGE_SIZE]>) -> Result<Page, PageError> {
        let page = Page { buf };
        let nslots = page.nslots();
        let ds = page.data_start();
        if (ds as usize) > PAGE_SIZE
            || (ds as usize) < HDR
            || HDR + SLOT * nslots as usize > ds as usize
        {
            if let Some(m) = crate::telemetry::storage_metrics() {
                m.checksum_failures.inc();
            }
            return Err(PageError::Torn { nslots, data_start: ds });
        }
        let stored = page.checksum();
        let computed = Self::compute_checksum(&page.buf);
        if stored != computed {
            if let Some(m) = crate::telemetry::storage_metrics() {
                m.checksum_failures.inc();
            }
            return Err(PageError::ChecksumMismatch { stored, computed });
        }
        if let Some(m) = crate::telemetry::storage_metrics() {
            m.pages_verified.inc();
        }
        Ok(page)
    }

    /// Reconstruct a page from a disk image.
    ///
    /// # Panics
    /// Panics if the header is structurally invalid (slot area and data
    /// area overlapping) — a torn or foreign page.
    pub fn from_bytes(buf: Box<[u8; PAGE_SIZE]>) -> Page {
        let page = Page { buf };
        let ds = page.data_start() as usize;
        assert!(
            ds <= PAGE_SIZE && HDR + SLOT * page.nslots() as usize <= ds,
            "corrupt page image: {} slots, data_start {}",
            page.nslots(),
            ds
        );
        page
    }

    #[inline]
    fn data_start(&self) -> u16 {
        u16::from_le_bytes([self.buf[2], self.buf[3]])
    }

    fn set_nslots(&mut self, n: u16) {
        self.buf[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn set_data_start(&mut self, d: u16) {
        self.buf[2..4].copy_from_slice(&d.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_page() {
        let p = Page::new();
        assert_eq!(p.nslots(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HDR);
        assert!(p.fits(PAGE_SIZE - HDR - SLOT));
        assert!(!p.fits(PAGE_SIZE - HDR - SLOT + 1));
    }

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello", 0x1111).unwrap();
        let s1 = p.insert(b"world!!", 0x2222).unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(p.tuple(0), b"hello");
        assert_eq!(p.tuple(1), b"world!!");
        assert_eq!(p.hash_code(0), 0x1111);
        assert_eq!(p.hash_code(1), 0x2222);
        assert_eq!(p.nslots(), 2);
    }

    #[test]
    fn fill_to_capacity() {
        let mut p = Page::new();
        let tuple = [7u8; 100];
        let mut n = 0;
        while p.insert(&tuple, n).is_some() {
            n += 1;
        }
        // 8184 / 108 = 75 tuples of 100 B (+8 B slot) fit in an 8 KB page.
        assert_eq!(n as usize, (PAGE_SIZE - HDR) / (100 + SLOT));
        assert_eq!(p.nslots() as u32, n);
        assert!(p.free_space() < 100 + SLOT);
        for s in 0..p.nslots() {
            assert_eq!(p.tuple(s), &tuple);
            assert_eq!(p.hash_code(s), s as u32);
        }
    }

    #[test]
    fn reset_empties() {
        let mut p = Page::new();
        p.insert(b"x", 1).unwrap();
        p.reset();
        assert_eq!(p.nslots(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HDR);
        assert_eq!(p.insert(b"y", 2), Some(0));
        assert_eq!(p.tuple(0), b"y");
    }

    #[test]
    fn set_hash_code_updates() {
        let mut p = Page::new();
        p.insert(b"t", 0).unwrap();
        p.set_hash_code(0, 42);
        assert_eq!(p.hash_code(0), 42);
        assert_eq!(p.tuple(0), b"t");
    }

    #[test]
    fn addresses_are_consistent() {
        let mut p = Page::new();
        p.insert(&[1u8; 16], 9).unwrap();
        let base = p.base_addr();
        assert_eq!(p.slot_addr(0), base + HDR);
        assert_eq!(p.tuple_addr(0), base + PAGE_SIZE - 16);
        let (data, slot) = p.next_insert_addrs(32);
        assert_eq!(data, base + PAGE_SIZE - 16 - 32);
        assert_eq!(slot, base + HDR + SLOT);
        // The tuple slice really lives at tuple_addr.
        assert_eq!(p.tuple(0).as_ptr() as usize, p.tuple_addr(0));
    }

    #[test]
    fn iter_yields_all() {
        let mut p = Page::new();
        for i in 0..10u32 {
            p.insert(&i.to_le_bytes(), i * 7).unwrap();
        }
        let collected: Vec<_> = p.iter().map(|(s, t, h)| (s, t.to_vec(), h)).collect();
        assert_eq!(collected.len(), 10);
        for (i, (s, t, h)) in collected.iter().enumerate() {
            assert_eq!(*s as usize, i);
            assert_eq!(t, &(i as u32).to_le_bytes());
            assert_eq!(*h, i as u32 * 7);
        }
    }

    #[test]
    fn zero_length_tuple() {
        let mut p = Page::new();
        let s = p.insert(b"", 5).unwrap();
        assert_eq!(p.tuple(s), b"");
        assert_eq!(p.hash_code(s), 5);
    }
}

#[cfg(test)]
mod io_tests {
    use super::*;

    #[test]
    fn page_image_roundtrip() {
        let mut p = Page::new();
        for i in 0..20u32 {
            p.insert(&i.to_le_bytes(), i * 3).unwrap();
        }
        let image = Box::new(*p.as_bytes());
        let q = Page::from_bytes(image);
        assert_eq!(q.nslots(), 20);
        for (s, t, h) in q.iter() {
            assert_eq!(t, (s as u32).to_le_bytes());
            assert_eq!(h, s as u32 * 3);
        }
    }

    #[test]
    #[should_panic(expected = "corrupt page image")]
    fn corrupt_image_rejected() {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf[0..2].copy_from_slice(&2000u16.to_le_bytes()); // 2000 slots
        buf[2..4].copy_from_slice(&8u16.to_le_bytes()); // data_start 8
        let _ = Page::from_bytes(buf);
    }

    #[test]
    fn sealed_image_roundtrips() {
        let mut p = Page::new();
        for i in 0..30u32 {
            p.insert(&i.to_le_bytes(), i).unwrap();
        }
        let q = Page::try_from_image(p.sealed_image()).expect("sealed image verifies");
        assert_eq!(q.nslots(), 30);
        for (s, t, h) in q.iter() {
            assert_eq!(t, (s as u32).to_le_bytes());
            assert_eq!(h, s as u32);
        }
        // sealed_image leaves the source page itself untouched.
        assert_eq!(p.checksum(), 0);
    }

    #[test]
    fn seal_in_place_matches_sealed_image() {
        let mut p = Page::new();
        p.insert(b"abc", 7).unwrap();
        let img = p.sealed_image();
        p.seal();
        assert_eq!(&img[..], &p.as_bytes()[..]);
        assert_ne!(p.checksum(), 0);
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut p = Page::new();
        p.insert(&[0xAB; 64], 1).unwrap();
        let mut img = p.sealed_image();
        img[PAGE_SIZE - 17] ^= 0x04; // one bit in the data area
        match Page::try_from_image(img) {
            Err(PageError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unsealed_image_is_rejected() {
        let mut p = Page::new();
        p.insert(b"x", 0).unwrap();
        // Raw (never sealed) image: structurally fine, checksum word zero.
        let err = Page::try_from_image(Box::new(*p.as_bytes())).unwrap_err();
        assert!(matches!(err, PageError::ChecksumMismatch { stored: 0, .. }));
    }

    #[test]
    fn zeroed_image_is_torn() {
        // A hole in a sparse file reads back as zeroes: data_start 0 is
        // structurally impossible (it would sit inside the header).
        let err = Page::try_from_image(Box::new([0u8; PAGE_SIZE])).unwrap_err();
        assert_eq!(err, PageError::Torn { nslots: 0, data_start: 0 });
        assert!(err.to_string().contains("torn page"));
    }

    #[test]
    fn garbage_header_is_torn() {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf[0..2].copy_from_slice(&2000u16.to_le_bytes());
        buf[2..4].copy_from_slice(&8u16.to_le_bytes());
        assert!(matches!(
            Page::try_from_image(buf),
            Err(PageError::Torn { nslots: 2000, data_start: 8 })
        ));
    }

    #[test]
    fn empty_sealed_page_verifies() {
        let p = Page::new();
        let q = Page::try_from_image(p.sealed_image()).unwrap();
        assert_eq!(q.nslots(), 0);
        assert_eq!(q.free_space(), PAGE_SIZE - HDR);
    }
}
