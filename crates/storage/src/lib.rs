#![warn(missing_docs)]

//! Storage layer for the `phj` hash join engine.
//!
//! This crate implements the on-"disk" representation the paper's engine
//! uses (§7.1 of *Improving Hash Join Performance through Prefetching*,
//! Chen et al.):
//!
//! * relations and intermediate partitions are stored in **slotted pages**
//!   ([`page::Page`], 8 KB by default, same as the simulated system);
//! * tuples support **fixed- and variable-length attributes**
//!   ([`schema::Schema`], [`mod@tuple`]);
//! * the slot area of intermediate-partition pages can **stash the 4-byte
//!   hash code** of each tuple, so the join phase reuses the hash computed
//!   by the partition phase instead of re-reading the join key
//!   (the paper's "storing hash codes in the page slot area" optimization);
//! * a [`relation::Relation`] is an append-only arena of pages, which stands
//!   in for a disk file of a relation or of one intermediate partition. The
//!   simulation study in the paper measures user-mode CPU time only, so an
//!   in-memory page arena preserves the measured behaviour.
//!
//! Everything is plain safe Rust; the memory-model instrumentation hooks
//! live in `phj-memsim` and consume the *addresses* of the buffers exposed
//! here (e.g. [`relation::Relation::tuple_addr`]).

pub mod page;
pub mod relation;
pub mod schema;
mod telemetry;
pub mod tuple;

pub use page::{Page, PageError, SlotId, PAGE_HEADER_BYTES, PAGE_SIZE};
pub use relation::{Relation, RelationBuilder, TupleRef};
pub use schema::{AttrType, Attribute, Schema};
pub use tuple::{TupleAssembler, TupleView};
