#![warn(missing_docs)]

//! Discrete-event I/O model for the paper's CPU-bound-vs-I/O-bound study
//! (Figure 9).
//!
//! The paper measures GRACE hash join on a quad-550 MHz Pentium III with
//! up to six Seagate Cheetah X15 36LP disks (≤ 68 MB/s each), relations
//! striped in 256 KB units, and a buffer manager with "a dedicated worker
//! thread for each of the disks, which performs I/O operations on behalf
//! of the main hash join thread [...] implements I/O prefetching and
//! background writing so that I/O operations can be overlapped with
//! computations as much as possible" (§7.2).
//!
//! We do not have that disk array; this crate reproduces the experiment's
//! *mechanics* instead: a main thread consuming striped input pages with
//! bounded read-ahead, producing output pages written back in the
//! background, over `d` disks of fixed bandwidth. The published claim —
//! the join becomes CPU-bound at ≥ 4 disks, with the worker-I/O curve
//! falling as disks are added while total elapsed time flattens at the
//! CPU time — is bandwidth arithmetic that this model preserves exactly
//! (see DESIGN.md, substitutions).

/// Hardware/configuration parameters of the simulated I/O subsystem.
#[derive(Debug, Clone, Copy)]
pub struct IoConfig {
    /// Number of disks the relation is striped across.
    pub disks: usize,
    /// Peak per-disk transfer rate in MB/s (Cheetah X15 36LP: 68).
    pub disk_mb_per_s: f64,
    /// Stripe unit in bytes (256 KB in §7.2).
    pub stripe_bytes: u64,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Read-ahead window: how many pages the workers may run ahead of the
    /// main thread (bounded by the buffer pool).
    pub readahead_pages: u64,
    /// Main-thread clock rate in MHz (550 for the paper's machine).
    pub cpu_mhz: f64,
    /// One degraded disk: `(index, slowdown factor)`. The analytic
    /// counterpart of `phj-disk`'s slow-disk fault injection — every page
    /// serviced by that disk takes `factor` times as long, so the model
    /// predicts how far one sick spindle drags the whole array.
    pub slow_disk: Option<(usize, f64)>,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            disks: 1,
            disk_mb_per_s: 68.0,
            stripe_bytes: 256 * 1024,
            page_bytes: 8 * 1024,
            readahead_pages: 256,
            cpu_mhz: 550.0,
            slow_disk: None,
        }
    }
}

impl IoConfig {
    /// The paper's testbed with `disks` disks.
    pub fn paper(disks: usize) -> Self {
        IoConfig { disks, ..Default::default() }
    }

    fn page_service_s(&self) -> f64 {
        self.page_bytes as f64 / (self.disk_mb_per_s * 1e6)
    }

    fn page_service_s_on(&self, disk: usize) -> f64 {
        match self.slow_disk {
            Some((d, factor)) if d == disk => self.page_service_s() * factor,
            _ => self.page_service_s(),
        }
    }

    fn pages_per_stripe(&self) -> u64 {
        (self.stripe_bytes / self.page_bytes).max(1)
    }
}

/// One phase's workload: bytes streamed in, bytes streamed out, and the
/// total CPU work in cycles.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSpec {
    /// Sequential input volume (bytes), striped across the disks.
    pub read_bytes: u64,
    /// Sequential output volume (bytes), written in the background.
    pub write_bytes: u64,
    /// Total main-thread computation (cycles at `cpu_mhz`).
    pub cpu_cycles: u64,
}

/// Timing outcome of a simulated phase (all in seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseResult {
    /// Wall-clock: when both the main thread and every disk finished.
    pub elapsed_s: f64,
    /// The busiest disk's total I/O time — the paper's "worker I/O stall
    /// time [...] the time to finish all the I/Os in background".
    pub worker_io_s: f64,
    /// Time the main thread spent waiting for input pages.
    pub main_stall_s: f64,
    /// Pure computation time of the main thread.
    pub cpu_s: f64,
}

/// Simulate one phase.
///
/// ```
/// use phj_iosim::{simulate_phase, IoConfig, PhaseSpec};
/// let spec = PhaseSpec {
///     read_bytes: 1 << 30,
///     write_bytes: 1 << 30,
///     cpu_cycles: 4_000_000_000,
/// };
/// let one = simulate_phase(&IoConfig::paper(1), &spec);
/// let six = simulate_phase(&IoConfig::paper(6), &spec);
/// assert!(one.elapsed_s > six.elapsed_s, "disks help");
/// assert!(six.elapsed_s >= six.cpu_s, "but never below the CPU time");
/// ```
pub fn simulate_phase(cfg: &IoConfig, spec: &PhaseSpec) -> PhaseResult {
    assert!(cfg.disks > 0, "need at least one disk");
    let svc: Vec<f64> = (0..cfg.disks).map(|d| cfg.page_service_s_on(d)).collect();
    let pps = cfg.pages_per_stripe();
    let read_pages = spec.read_bytes / cfg.page_bytes;
    let write_pages = spec.write_bytes / cfg.page_bytes;
    let cpu_s_total = spec.cpu_cycles as f64 / (cfg.cpu_mhz * 1e6);
    let cpu_per_page = if read_pages > 0 { cpu_s_total / read_pages as f64 } else { 0.0 };
    let write_ratio = if read_pages > 0 {
        write_pages as f64 / read_pages as f64
    } else {
        0.0
    };
    let stripe_of = |page: u64| ((page / pps) % cfg.disks as u64) as usize;

    let mut disk_free = vec![0.0f64; cfg.disks];
    let mut disk_busy = vec![0.0f64; cfg.disks];
    // Background writes queue per disk with their issue (production)
    // times; each disk services requests in issue-time order, so a write
    // produced at time `t` never delays a read that was issued (by
    // read-ahead) before `t`.
    let mut write_queue: Vec<std::collections::VecDeque<f64>> =
        vec![std::collections::VecDeque::new(); cfg.disks];
    let mut t = 0.0f64; // main-thread clock
    let mut main_stall = 0.0f64;
    let mut write_accum = 0.0f64;
    let mut writes_issued = 0u64;
    // Ring of main-thread consumption times for the read-ahead bound.
    let ra = cfg.readahead_pages.max(1) as usize;
    let mut consumed_at = vec![0.0f64; ra];

    let service =
        |disk_free: &mut [f64], disk_busy: &mut [f64], d: usize, issue: f64| -> f64 {
            let start = disk_free[d].max(issue);
            disk_free[d] = start + svc[d];
            disk_busy[d] += svc[d];
            start + svc[d]
        };

    for page in 0..read_pages {
        let d = stripe_of(page);
        // Workers may not run more than `ra` pages ahead of consumption.
        let gate = if page as usize >= ra {
            consumed_at[(page as usize - ra) % ra]
        } else {
            0.0
        };
        // Service older write requests on this disk first (issue order).
        while write_queue[d].front().is_some_and(|&w| w <= gate) {
            let w = write_queue[d].pop_front().unwrap();
            service(&mut disk_free, &mut disk_busy, d, w);
        }
        let ready = service(&mut disk_free, &mut disk_busy, d, gate);
        // Main thread waits for the page, then computes.
        if ready > t {
            main_stall += ready - t;
            t = ready;
        }
        t += cpu_per_page;
        consumed_at[page as usize % ra] = t;
        // Background writes paced by production (enqueued, not serviced).
        write_accum += write_ratio;
        while write_accum >= 1.0 {
            write_accum -= 1.0;
            write_queue[stripe_of(writes_issued)].push_back(t);
            writes_issued += 1;
        }
    }
    // Enqueue any remaining writes (rounding / write-only phases).
    while writes_issued < write_pages {
        write_queue[stripe_of(writes_issued)].push_back(t);
        writes_issued += 1;
    }
    if read_pages == 0 {
        t += cpu_s_total;
    }
    // Drain the write backlog.
    for (d, queue) in write_queue.iter_mut().enumerate() {
        while let Some(w) = queue.pop_front() {
            service(&mut disk_free, &mut disk_busy, d, w);
        }
    }
    let io_end = disk_free.iter().cloned().fold(0.0f64, f64::max);
    PhaseResult {
        elapsed_s: t.max(io_end),
        worker_io_s: disk_busy.iter().cloned().fold(0.0f64, f64::max),
        main_stall_s: main_stall,
        cpu_s: cpu_s_total,
    }
}

/// Sweep a phase over 1..=`max_disks` disks (the Fig 9 x-axis).
pub fn disk_sweep(base: &IoConfig, spec: &PhaseSpec, max_disks: usize) -> Vec<(usize, PhaseResult)> {
    (1..=max_disks)
        .map(|d| {
            let cfg = IoConfig { disks: d, ..*base };
            (d, simulate_phase(&cfg, spec))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    fn spec() -> PhaseSpec {
        // Partition 1.5 GB: read it, write it, ~400 cycles per 100 B tuple.
        let read = 3 * GB / 2;
        let tuples = read / 108; // incl. slot overhead
        PhaseSpec { read_bytes: read, write_bytes: read, cpu_cycles: tuples * 400 }
    }

    #[test]
    fn conservation_laws() {
        for d in 1..=6 {
            let r = simulate_phase(&IoConfig::paper(d), &spec());
            assert!(r.elapsed_s >= r.cpu_s, "elapsed ≥ cpu at {d} disks");
            assert!(r.elapsed_s >= r.worker_io_s, "elapsed ≥ busiest disk at {d}");
            assert!(r.main_stall_s >= 0.0);
            // Busiest disk carries at least volume/(bw·d).
            let min_io = (spec().read_bytes + spec().write_bytes) as f64 / (68e6 * d as f64);
            assert!(r.worker_io_s >= min_io * 0.99, "{} < {}", r.worker_io_s, min_io);
        }
    }

    #[test]
    fn io_bound_with_one_disk() {
        let r = simulate_phase(&IoConfig::paper(1), &spec());
        // One disk: elapsed ≈ total I/O time, far above CPU time.
        assert!(r.worker_io_s > r.cpu_s * 2.0);
        assert!(r.elapsed_s >= r.worker_io_s * 0.99);
        assert!(r.main_stall_s > r.cpu_s, "main thread mostly waits");
    }

    #[test]
    fn cpu_bound_with_many_disks() {
        let r = simulate_phase(&IoConfig::paper(6), &spec());
        // Six disks: elapsed flattens near the CPU time.
        assert!(r.elapsed_s < r.cpu_s * 1.25, "{} vs {}", r.elapsed_s, r.cpu_s);
        assert!(r.main_stall_s < r.cpu_s * 0.25);
    }

    #[test]
    fn elapsed_monotonically_improves_with_disks() {
        let sweep = disk_sweep(&IoConfig::default(), &spec(), 6);
        for w in sweep.windows(2) {
            assert!(
                w[1].1.elapsed_s <= w[0].1.elapsed_s * 1.001,
                "{} disks {} vs {} disks {}",
                w[0].0,
                w[0].1.elapsed_s,
                w[1].0,
                w[1].1.elapsed_s
            );
            assert!(w[1].1.worker_io_s < w[0].1.worker_io_s);
        }
    }

    #[test]
    fn crossover_at_about_four_disks() {
        // The paper: "With four or more disks, hash join is clearly
        // CPU-bound; the total elapsed time becomes flat."
        let sweep = disk_sweep(&IoConfig::default(), &spec(), 6);
        let e4 = sweep[3].1.elapsed_s;
        let e6 = sweep[5].1.elapsed_s;
        assert!(e4 / e6 < 1.15, "flat after 4 disks: {e4} vs {e6}");
        let e1 = sweep[0].1.elapsed_s;
        assert!(e1 / e6 > 2.0, "large gain from 1 to 6 disks");
    }

    #[test]
    fn write_only_phase() {
        let r = simulate_phase(
            &IoConfig::paper(2),
            &PhaseSpec { read_bytes: 0, write_bytes: GB, cpu_cycles: 1_000_000 },
        );
        assert!(r.elapsed_s >= GB as f64 / (2.0 * 68e6) * 0.99);
        assert!(r.cpu_s > 0.0);
    }

    #[test]
    fn one_degraded_disk_drags_the_array() {
        let healthy = simulate_phase(&IoConfig::paper(6), &spec());
        let sick_cfg = IoConfig { slow_disk: Some((0, 4.0)), ..IoConfig::paper(6) };
        let sick = simulate_phase(&sick_cfg, &spec());
        // Pages are striped evenly, so a 4x-slow disk 0 bounds the run:
        // its I/O time alone is ~4/6 of the healthy array's total volume.
        assert!(sick.elapsed_s > healthy.elapsed_s * 1.5, "{} vs {}", sick.elapsed_s, healthy.elapsed_s);
        assert!(sick.worker_io_s > healthy.worker_io_s * 3.5);
        // The degradation is bounded too: never worse than 4x overall.
        assert!(sick.elapsed_s < healthy.elapsed_s * 4.5);
    }

    #[test]
    fn readahead_limits_worker_lead() {
        // With a tiny read-ahead window and fast CPU, disks stay gated by
        // consumption; elapsed approaches serial behaviour on one disk.
        let cfg = IoConfig { readahead_pages: 1, ..IoConfig::paper(1) };
        let tight = simulate_phase(&cfg, &spec());
        let loose = simulate_phase(&IoConfig::paper(1), &spec());
        assert!(tight.elapsed_s >= loose.elapsed_s * 0.999);
    }
}
