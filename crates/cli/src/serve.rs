//! `phj serve` / `phj client`: the query-service daemon and the
//! one-shot client that talks to it.
//!
//! `serve` binds the address, prints the resolved `serving on ADDR`
//! line (scraped by scripts and the CI smoke job to learn an ephemeral
//! port), then parks until SIGTERM/SIGINT. For a daemon those signals
//! mean *clean shutdown*, not a crash, so this command replaces the
//! flight recorder's SIGTERM hook (which dumps a postmortem and exits
//! 143) with one that just sets a stop flag; the accept loop and worker
//! pool are then torn down in order and the process exits 0.
//!
//! `client` mirrors the `phj join` / `phj agg` knobs, sends exactly one
//! request, and prints the same result line the local drivers print
//! (`partitions: .., matches: .., checksum: 0x..`), so a daemon's
//! answer can be diffed textually against the sequential CLI path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use phj_obs::{Json, QueryTraceSection, RunReport};
use phj_server::proto::{AggRequest, DiskJoinRequest, JoinRequest, Request, Response, WireScheme};
use phj_server::{ClientTiming, Connection, ServeConfig, Server, SlowQueryConfig};
use phj_workload::tuples_for;

use crate::args::Args;
use crate::log;

/// Set by the SIGTERM/SIGINT handler; polled by the serve loop.
static STOP: AtomicBool = AtomicBool::new(false);

/// Route SIGTERM and SIGINT to a stop-flag store (async-signal-safe),
/// overriding the postmortem hook `main` installed earlier.
#[cfg(unix)]
fn install_stop_signals() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_stop(_sig: i32) {
        STOP.store(true, Ordering::Release);
    }
    unsafe {
        signal(SIGTERM, on_stop as extern "C" fn(i32) as usize);
        signal(SIGINT, on_stop as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_stop_signals() {}

/// `phj serve`: run the daemon until SIGTERM/SIGINT.
pub fn cmd_serve(args: &Args) -> Result<(), String> {
    args.allow(&[
        "addr", "threads", "mem-mb", "mem-budget", "min-grant-mb", "max-queue",
        "max-conns", "idle-timeout-ms", "metrics-addr", "sample-interval", "dashboard",
        "flightrec", "postmortem", "log-format", "trace", "slow-query-ms",
        "slow-query-sheds", "slow-query-dir", "slow-query-keep", "scratch-dir",
    ])?;
    // `--mem-budget BYTES` wins over `--mem-mb N` when both are given,
    // matching `phj disk`.
    let mem_budget = match args.get_str("mem-budget", "") {
        s if s.is_empty() => (args.get_usize("mem-mb", 256)? as u64) << 20,
        s => s.parse::<u64>().map_err(|_| format!("--mem-budget expects bytes, got `{s}`"))?,
    };
    let threads = args.get_usize("threads", 4)?.max(1);
    // Slow-query capture arms when either trigger is set; `--slow-query-ms 0`
    // with a shed trigger means "latency never fires, sheds do".
    let sq_ms = args.get_usize("slow-query-ms", 0)?;
    let sq_sheds = args.get_usize("slow-query-sheds", 0)? as u32;
    let slow_query = if sq_ms > 0 || sq_sheds > 0 {
        Some(SlowQueryConfig {
            latency: if sq_ms > 0 {
                Duration::from_millis(sq_ms as u64)
            } else {
                Duration::MAX
            },
            max_sheds: sq_sheds,
            dir: std::path::PathBuf::from(args.get_str("slow-query-dir", "slow_queries")),
            keep: args.get_usize("slow-query-keep", 8)?.max(1),
        })
    } else {
        None
    };
    let cfg = ServeConfig {
        addr: args.get_str("addr", "127.0.0.1:0"),
        threads,
        mem_budget,
        min_grant: (args.get_usize("min-grant-mb", 1)?.max(1) as u64) << 20,
        max_queue: args.get_usize("max-queue", 32)?,
        max_conns: args.get_usize("max-conns", 64)?.max(1),
        idle_timeout: Duration::from_millis(
            args.get_usize("idle-timeout-ms", 30_000)?.max(1) as u64
        ),
        trace: args.flag("trace"),
        slow_query,
        scratch_dir: match args.get_str("scratch-dir", "") {
            s if s.is_empty() => None,
            s => Some(std::path::PathBuf::from(s)),
        },
    };
    let trace_on = cfg.trace;
    let slow_on = cfg.slow_query.is_some();
    let bind = cfg.addr.clone();
    let srv = Server::start(cfg).map_err(|e| format!("bind {bind}: {e}"))?;
    // The metrics endpoint's `/queries` route serves the live query
    // table; installing the provider is harmless without `--metrics-addr`
    // (no HTTP server ever calls it).
    let reg = std::sync::Arc::clone(srv.registry());
    phj_metrics::set_queries_provider(std::sync::Arc::new(move || reg.to_json()));
    if slow_on {
        srv.set_slow_query_hook(|query_id, trace_id, latency, path| {
            let latency_us = latency.as_micros() as u64;
            log::warn(
                "slow_query",
                &format!(
                    "slow query {query_id} (trace {trace_id:#018x}): {latency_us} us, dump {}",
                    path.display()
                ),
                &[
                    ("query_id", query_id.to_string()),
                    ("trace_id", format!("{trace_id:#018x}")),
                    ("latency_us", latency_us.to_string()),
                    ("dump", path.display().to_string()),
                ],
            );
        });
    }
    println!(
        "serving on {} ({} workers, budget {} MB{}{})",
        srv.local_addr(),
        threads,
        mem_budget >> 20,
        if trace_on { ", tracing on" } else { "" },
        if slow_on { ", slow-query capture on" } else { "" },
    );
    install_stop_signals();
    while !STOP.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let adm = std::sync::Arc::clone(srv.admission());
    srv.stop();
    let (admitted, rejected) = adm.totals();
    println!(
        "shutdown: {admitted} admitted, {rejected} rejected, peak grant {} MB",
        adm.peak_outstanding() >> 20
    );
    Ok(())
}

/// `--scheme`/`--g`/`--d` as the wire enum (same names and defaults as
/// the local `phj join` scheme flags).
fn wire_scheme_of(args: &Args) -> Result<WireScheme, String> {
    let g = args.get_usize("g", 16)? as u32;
    let d = args.get_usize("d", 1)? as u32;
    match args.get_str("scheme", "group").as_str() {
        "baseline" => Ok(WireScheme::Baseline),
        "simple" => Ok(WireScheme::Simple),
        "group" => Ok(WireScheme::Group { g }),
        "swp" => Ok(WireScheme::Swp { d }),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

/// `--seed` accepts decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("--seed expects a number, got `{s}`"))
}

/// Build the request `phj client` sends from the same flag vocabulary
/// the local drivers use. `phj join` hardcodes seed 0x11D0, so that is
/// the default here too — a flagless client join asks the daemon for
/// byte-for-byte the workload a flagless `phj join` runs locally.
fn client_request(args: &Args, trace_id: u64) -> Result<Request, String> {
    let scheme = wire_scheme_of(args)?;
    match args.get_str("query", "join").as_str() {
        "ping" => Ok(Request::Ping),
        "join" => {
            let tuple_size = args.get_usize("tuple-size", 100)?;
            let build_mb = args.get_usize("build-mb", 16)?;
            let build_tuples = match args.get_str("build-tuples", "") {
                s if s.is_empty() => tuples_for(build_mb << 20, tuple_size) as u64,
                s => s
                    .parse()
                    .map_err(|_| format!("--build-tuples expects a count, got `{s}`"))?,
            };
            let mem_mb = args.get_usize("mem-mb", build_mb.div_ceil(4).max(1))?;
            Ok(Request::Join(JoinRequest {
                build_tuples,
                tuple_size: tuple_size as u32,
                matches_per_build: args.get_usize("matches", 2)? as u32,
                pct_match: args.get_usize("pct", 100)?.min(100) as u8,
                scheme,
                mem_budget: (mem_mb as u64) << 20,
                seed: parse_seed(&args.get_str("seed", "0x11D0"))?,
                trace_id,
            }))
        }
        "agg" => Ok(Request::Agg(AggRequest {
            rows: args.get_usize("rows", 1_000_000)? as u64,
            keys: args.get_usize("keys", 100_000)?.max(1) as u64,
            scheme,
            mem_budget: 0,
            trace_id,
        })),
        "disk" => {
            let mode_str = args.get_str("mode", "dynamic");
            let mode = match mode_str.as_str() {
                "grace" => 0,
                "hybrid" => 1,
                "dynamic" => 2,
                other => return Err(format!("--mode: unknown `{other}` (grace|hybrid|dynamic)")),
            };
            let tuple_size = args.get_usize("tuple-size", 100)?;
            let build_mb = args.get_usize("build-mb", 4)?;
            let mem_mb = args.get_usize("mem-mb", build_mb.div_ceil(4).max(1))?;
            Ok(Request::DiskJoin(DiskJoinRequest {
                build_tuples: tuples_for(build_mb << 20, tuple_size) as u64,
                tuple_size: tuple_size as u32,
                matches_per_build: args.get_usize("matches", 2)? as u32,
                pct_match: args.get_usize("pct", 100)?.min(100) as u8,
                mem_budget: (mem_mb as u64) << 20,
                seed: parse_seed(&args.get_str("seed", "0xD15C"))?,
                mode,
                trace_id,
            }))
        }
        other => Err(format!("unknown --query `{other}` (join|agg|disk|ping)")),
    }
}

/// The trace id `phj client` sends: `--trace-id X` verbatim, minted
/// from wall clock ⊕ pid when `--trace`/`--trace-out` ask for tracing
/// without an explicit id, and `0` (untraced) otherwise. Never mints 0.
fn client_trace_id(args: &Args) -> Result<u64, String> {
    let explicit = args.get_str("trace-id", "");
    if !explicit.is_empty() {
        let id = match explicit.strip_prefix("0x").or_else(|| explicit.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => explicit.parse(),
        }
        .map_err(|_| format!("--trace-id expects a number, got `{explicit}`"))?;
        if id == 0 {
            return Err("--trace-id 0 means `untraced`; pick a nonzero id".to_string());
        }
        return Ok(id);
    }
    if !args.flag("trace") && args.get_str("trace-out", "").is_empty() {
        return Ok(0);
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    Ok((nanos ^ ((std::process::id() as u64) << 48)).max(1))
}

/// Merge the client-side timing with the server's `query_trace` section
/// into one Trace Event Format document: the client's send/wait/recv
/// spans on pid 1, the server's queue/grant/exec/serialize breakdown on
/// pid 2 nested inside the client's wait window, and a flow arrow pair
/// (request over, response back) keyed by the trace id. One clock (the
/// client's) positions everything: the server window is centered in the
/// wait span, so skewed host clocks can never fold spans negative.
fn merged_trace_json(trace_id: u64, timing: &ClientTiming, section: Option<&QueryTraceSection>) -> Json {
    let us = |d: Duration| d.as_nanos() as f64 / 1e3;
    let mut events = vec![];
    for (pid, name) in [(1u64, "phj client"), (2, "phj daemon")] {
        events.push(Json::obj(vec![
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(pid)),
            ("tid", Json::U64(1)),
            ("name", Json::Str("process_name".into())),
            ("args", Json::obj(vec![("name", Json::Str(name.into()))])),
        ]));
    }
    let span = |pid: u64, name: &str, ts: f64, dur: f64| {
        Json::obj(vec![
            ("ph", Json::Str("X".into())),
            ("pid", Json::U64(pid)),
            ("tid", Json::U64(1)),
            ("name", Json::Str(name.into())),
            ("cat", Json::Str("query".into())),
            ("ts", Json::F64(ts)),
            ("dur", Json::F64(dur)),
            ("args", Json::obj(vec![("trace_id", Json::Str(format!("{trace_id:#018x}")))])),
        ])
    };
    let send_end = us(timing.send);
    let wait_end = send_end + us(timing.wait);
    events.push(span(1, "send", 0.0, us(timing.send)));
    events.push(span(1, "wait", send_end, us(timing.wait)));
    events.push(span(1, "recv", wait_end, us(timing.recv)));
    if let Some(sec) = section {
        let parts = [
            ("queue_wait", sec.queue_wait_ns),
            ("grant_wait", sec.grant_wait_ns),
            ("exec", sec.exec_ns),
            ("serialize", sec.serialize_ns),
        ];
        let total_us = parts.iter().map(|&(_, ns)| ns as f64 / 1e3).sum::<f64>();
        // Center the server window inside the client's wait span; the
        // slack on either side is the network + framing overhead.
        let mut at = send_end + ((us(timing.wait) - total_us) / 2.0).max(0.0);
        let server_start = at;
        for (name, ns) in parts {
            events.push(span(2, name, at, ns as f64 / 1e3));
            at += ns as f64 / 1e3;
        }
        // State transitions as instants on the server lane.
        for (state, t_ns) in &sec.states {
            events.push(Json::obj(vec![
                ("ph", Json::Str("i".into())),
                ("pid", Json::U64(2)),
                ("tid", Json::U64(1)),
                ("name", Json::Str(state.clone())),
                ("s", Json::Str("t".into())),
                ("ts", Json::F64(server_start + *t_ns as f64 / 1e3)),
            ]));
        }
        // Flow arrows: request (client send → server window) and
        // response (server window end → client recv), both keyed by the
        // trace id so Perfetto draws them as one connected flow.
        let flow = |ph: &str, pid: u64, ts: f64, id: String| {
            let mut fields = vec![
                ("ph", Json::Str(ph.into())),
                ("pid", Json::U64(pid)),
                ("tid", Json::U64(1)),
                ("name", Json::Str("query".into())),
                ("cat", Json::Str("flow".into())),
                ("id", Json::Str(id)),
                ("ts", Json::F64(ts)),
            ];
            if ph == "f" {
                fields.push(("bp", Json::Str("e".into())));
            }
            Json::obj(fields)
        };
        events.push(flow("s", 1, send_end, format!("req-{trace_id:x}")));
        events.push(flow("f", 2, server_start, format!("req-{trace_id:x}")));
        events.push(flow("s", 2, server_start + total_us, format!("resp-{trace_id:x}")));
        events.push(flow("f", 1, wait_end, format!("resp-{trace_id:x}")));
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

/// `phj client`: send one request, print the daemon's answer.
pub fn cmd_client(args: &Args) -> Result<(), String> {
    args.allow(&[
        "addr", "query", "build-mb", "build-tuples", "tuple-size", "matches", "pct",
        "scheme", "g", "d", "mem-mb", "mode", "seed", "rows", "keys", "json", "flightrec",
        "postmortem", "log-format", "trace", "trace-id", "trace-out",
    ])?;
    let addr = args.get_str("addr", "");
    if addr.is_empty() {
        return Err("client needs --addr HOST:PORT (the daemon's `serving on` line)".to_string());
    }
    let trace_id = client_trace_id(args)?;
    let req = client_request(args, trace_id)?;
    let mut conn =
        Connection::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    let t0 = Instant::now();
    let (resp, timing) = conn.request_timed(&req).map_err(|e| format!("{addr}: {e}"))?;
    let rtt = t0.elapsed();
    match resp {
        Response::Pong => {
            println!("pong from {addr} in {rtt:?}");
            Ok(())
        }
        Response::Status(_) => Err("unexpected status response to a query request".to_string()),
        Response::Result(r) => {
            // The same result line the local drivers print, so scripts
            // can diff a daemon run against the sequential CLI path.
            if r.kind == phj_server::query::KIND_JOIN || r.kind == phj_server::query::KIND_DISK {
                println!(
                    "partitions: {}, matches: {}, checksum: {:#018x}",
                    r.partitions, r.matches, r.checksum
                );
            } else {
                println!("groups: {}, checksum: {:#018x}", r.matches, r.checksum);
            }
            println!(
                "query {} served in {} us ({rtt:?} round trip)",
                r.query_id, r.elapsed_us
            );
            let section = RunReport::parse(&r.report_json)
                .ok()
                .and_then(|rep| rep.query_trace);
            if trace_id != 0 {
                println!(
                    "trace {trace_id:#018x}: send {:?}, wait {:?}, recv {:?}",
                    timing.send, timing.wait, timing.recv
                );
                match &section {
                    Some(sec) => println!(
                        "  server: queue {} us, grant {} us, exec {} us, serialize {} us, sheds {}",
                        sec.queue_wait_ns / 1_000,
                        sec.grant_wait_ns / 1_000,
                        sec.exec_ns / 1_000,
                        sec.serialize_ns / 1_000,
                        sec.shed_count,
                    ),
                    None => println!(
                        "  server returned no query_trace section (daemon run without --trace?)"
                    ),
                }
            }
            let trace_out = args.get_str("trace-out", "");
            if !trace_out.is_empty() {
                let doc = merged_trace_json(trace_id, &timing, section.as_ref());
                std::fs::write(&trace_out, doc.render())
                    .map_err(|e| format!("{trace_out}: {e}"))?;
                println!("trace (load in chrome://tracing or ui.perfetto.dev): {trace_out}");
            }
            let out = args.get_str("json", "");
            if !out.is_empty() {
                std::fs::write(&out, &r.report_json).map_err(|e| format!("{out}: {e}"))?;
                println!("run report: {out}");
            }
            Ok(())
        }
        Response::Error { code, message } => {
            Err(format!("server rejected the query ({code:?}): {message}"))
        }
    }
}
