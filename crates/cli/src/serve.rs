//! `phj serve` / `phj client`: the query-service daemon and the
//! one-shot client that talks to it.
//!
//! `serve` binds the address, prints the resolved `serving on ADDR`
//! line (scraped by scripts and the CI smoke job to learn an ephemeral
//! port), then parks until SIGTERM/SIGINT. For a daemon those signals
//! mean *clean shutdown*, not a crash, so this command replaces the
//! flight recorder's SIGTERM hook (which dumps a postmortem and exits
//! 143) with one that just sets a stop flag; the accept loop and worker
//! pool are then torn down in order and the process exits 0.
//!
//! `client` mirrors the `phj join` / `phj agg` knobs, sends exactly one
//! request, and prints the same result line the local drivers print
//! (`partitions: .., matches: .., checksum: 0x..`), so a daemon's
//! answer can be diffed textually against the sequential CLI path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use phj_server::proto::{AggRequest, DiskJoinRequest, JoinRequest, Request, Response, WireScheme};
use phj_server::{Connection, ServeConfig, Server};
use phj_workload::tuples_for;

use crate::args::Args;

/// Set by the SIGTERM/SIGINT handler; polled by the serve loop.
static STOP: AtomicBool = AtomicBool::new(false);

/// Route SIGTERM and SIGINT to a stop-flag store (async-signal-safe),
/// overriding the postmortem hook `main` installed earlier.
#[cfg(unix)]
fn install_stop_signals() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_stop(_sig: i32) {
        STOP.store(true, Ordering::Release);
    }
    unsafe {
        signal(SIGTERM, on_stop as extern "C" fn(i32) as usize);
        signal(SIGINT, on_stop as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_stop_signals() {}

/// `phj serve`: run the daemon until SIGTERM/SIGINT.
pub fn cmd_serve(args: &Args) -> Result<(), String> {
    args.allow(&[
        "addr", "threads", "mem-mb", "mem-budget", "min-grant-mb", "max-queue",
        "max-conns", "idle-timeout-ms", "metrics-addr", "sample-interval", "dashboard",
        "flightrec", "postmortem", "log-format",
    ])?;
    // `--mem-budget BYTES` wins over `--mem-mb N` when both are given,
    // matching `phj disk`.
    let mem_budget = match args.get_str("mem-budget", "") {
        s if s.is_empty() => (args.get_usize("mem-mb", 256)? as u64) << 20,
        s => s.parse::<u64>().map_err(|_| format!("--mem-budget expects bytes, got `{s}`"))?,
    };
    let threads = args.get_usize("threads", 4)?.max(1);
    let cfg = ServeConfig {
        addr: args.get_str("addr", "127.0.0.1:0"),
        threads,
        mem_budget,
        min_grant: (args.get_usize("min-grant-mb", 1)?.max(1) as u64) << 20,
        max_queue: args.get_usize("max-queue", 32)?,
        max_conns: args.get_usize("max-conns", 64)?.max(1),
        idle_timeout: Duration::from_millis(
            args.get_usize("idle-timeout-ms", 30_000)?.max(1) as u64
        ),
    };
    let bind = cfg.addr.clone();
    let srv = Server::start(cfg).map_err(|e| format!("bind {bind}: {e}"))?;
    println!(
        "serving on {} ({} workers, budget {} MB)",
        srv.local_addr(),
        threads,
        mem_budget >> 20
    );
    install_stop_signals();
    while !STOP.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let adm = std::sync::Arc::clone(srv.admission());
    srv.stop();
    let (admitted, rejected) = adm.totals();
    println!(
        "shutdown: {admitted} admitted, {rejected} rejected, peak grant {} MB",
        adm.peak_outstanding() >> 20
    );
    Ok(())
}

/// `--scheme`/`--g`/`--d` as the wire enum (same names and defaults as
/// the local `phj join` scheme flags).
fn wire_scheme_of(args: &Args) -> Result<WireScheme, String> {
    let g = args.get_usize("g", 16)? as u32;
    let d = args.get_usize("d", 1)? as u32;
    match args.get_str("scheme", "group").as_str() {
        "baseline" => Ok(WireScheme::Baseline),
        "simple" => Ok(WireScheme::Simple),
        "group" => Ok(WireScheme::Group { g }),
        "swp" => Ok(WireScheme::Swp { d }),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

/// `--seed` accepts decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("--seed expects a number, got `{s}`"))
}

/// Build the request `phj client` sends from the same flag vocabulary
/// the local drivers use. `phj join` hardcodes seed 0x11D0, so that is
/// the default here too — a flagless client join asks the daemon for
/// byte-for-byte the workload a flagless `phj join` runs locally.
fn client_request(args: &Args) -> Result<Request, String> {
    let scheme = wire_scheme_of(args)?;
    match args.get_str("query", "join").as_str() {
        "ping" => Ok(Request::Ping),
        "join" => {
            let tuple_size = args.get_usize("tuple-size", 100)?;
            let build_mb = args.get_usize("build-mb", 16)?;
            let build_tuples = match args.get_str("build-tuples", "") {
                s if s.is_empty() => tuples_for(build_mb << 20, tuple_size) as u64,
                s => s
                    .parse()
                    .map_err(|_| format!("--build-tuples expects a count, got `{s}`"))?,
            };
            let mem_mb = args.get_usize("mem-mb", build_mb.div_ceil(4).max(1))?;
            Ok(Request::Join(JoinRequest {
                build_tuples,
                tuple_size: tuple_size as u32,
                matches_per_build: args.get_usize("matches", 2)? as u32,
                pct_match: args.get_usize("pct", 100)?.min(100) as u8,
                scheme,
                mem_budget: (mem_mb as u64) << 20,
                seed: parse_seed(&args.get_str("seed", "0x11D0"))?,
            }))
        }
        "agg" => Ok(Request::Agg(AggRequest {
            rows: args.get_usize("rows", 1_000_000)? as u64,
            keys: args.get_usize("keys", 100_000)?.max(1) as u64,
            scheme,
            mem_budget: 0,
        })),
        "disk" => {
            let mode_str = args.get_str("mode", "dynamic");
            let mode = match mode_str.as_str() {
                "grace" => 0,
                "hybrid" => 1,
                "dynamic" => 2,
                other => return Err(format!("--mode: unknown `{other}` (grace|hybrid|dynamic)")),
            };
            let tuple_size = args.get_usize("tuple-size", 100)?;
            let build_mb = args.get_usize("build-mb", 4)?;
            let mem_mb = args.get_usize("mem-mb", build_mb.div_ceil(4).max(1))?;
            Ok(Request::DiskJoin(DiskJoinRequest {
                build_tuples: tuples_for(build_mb << 20, tuple_size) as u64,
                tuple_size: tuple_size as u32,
                matches_per_build: args.get_usize("matches", 2)? as u32,
                pct_match: args.get_usize("pct", 100)?.min(100) as u8,
                mem_budget: (mem_mb as u64) << 20,
                seed: parse_seed(&args.get_str("seed", "0xD15C"))?,
                mode,
            }))
        }
        other => Err(format!("unknown --query `{other}` (join|agg|disk|ping)")),
    }
}

/// `phj client`: send one request, print the daemon's answer.
pub fn cmd_client(args: &Args) -> Result<(), String> {
    args.allow(&[
        "addr", "query", "build-mb", "build-tuples", "tuple-size", "matches", "pct",
        "scheme", "g", "d", "mem-mb", "mode", "seed", "rows", "keys", "json", "flightrec",
        "postmortem", "log-format",
    ])?;
    let addr = args.get_str("addr", "");
    if addr.is_empty() {
        return Err("client needs --addr HOST:PORT (the daemon's `serving on` line)".to_string());
    }
    let req = client_request(args)?;
    let mut conn =
        Connection::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    let t0 = Instant::now();
    let resp = conn.request(&req).map_err(|e| format!("{addr}: {e}"))?;
    let rtt = t0.elapsed();
    match resp {
        Response::Pong => {
            println!("pong from {addr} in {rtt:?}");
            Ok(())
        }
        Response::Result(r) => {
            // The same result line the local drivers print, so scripts
            // can diff a daemon run against the sequential CLI path.
            if r.kind == phj_server::query::KIND_JOIN || r.kind == phj_server::query::KIND_DISK {
                println!(
                    "partitions: {}, matches: {}, checksum: {:#018x}",
                    r.partitions, r.matches, r.checksum
                );
            } else {
                println!("groups: {}, checksum: {:#018x}", r.matches, r.checksum);
            }
            println!(
                "query {} served in {} us ({rtt:?} round trip)",
                r.query_id, r.elapsed_us
            );
            let out = args.get_str("json", "");
            if !out.is_empty() {
                std::fs::write(&out, &r.report_json).map_err(|e| format!("{out}: {e}"))?;
                println!("run report: {out}");
            }
            Ok(())
        }
        Response::Error { code, message } => {
            Err(format!("server rejected the query ({code:?}): {message}"))
        }
    }
}
