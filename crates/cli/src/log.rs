//! Structured CLI warnings.
//!
//! Runtime warnings (degradation steps, fault summaries, history
//! failures) used to be ad-hoc `println!`/`eprintln!` lines scattered
//! through the commands; they now route through [`warn`], which renders
//! them in the format picked by `--log-format`:
//!
//! * `text` (the default) keeps the historical one-line form, on stderr
//!   so machine-readable stdout (tables, checksums) stays clean;
//! * `json` emits one JSON object per event — `{"level":"warn",
//!   "event":"degradation","msg":"…",…}` — with every structured field
//!   the caller supplied, so log shippers need no regex scraping.
//!
//! The format lives in a process-global so library-ish helpers
//! (`append_history` error paths, telemetry) can warn without threading
//! a logger value through every signature.

use std::sync::atomic::{AtomicU8, Ordering};

/// Output shape for CLI warnings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// Historical one-line text form.
    Text,
    /// One JSON object per event.
    Json,
}

static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Parse a `--log-format` value.
pub fn parse(s: &str) -> Result<LogFormat, String> {
    match s {
        "text" => Ok(LogFormat::Text),
        "json" => Ok(LogFormat::Json),
        other => Err(format!("--log-format must be text or json, got `{other}`")),
    }
}

/// Install the process-wide warning format (called once from `main`).
pub fn init(format: LogFormat) {
    FORMAT.store(format as u8, Ordering::Relaxed);
}

fn format() -> LogFormat {
    match FORMAT.load(Ordering::Relaxed) {
        1 => LogFormat::Json,
        _ => LogFormat::Text,
    }
}

/// Emit one warning. `line` is the human text form; `fields` are the
/// structured key/value pairs the JSON form carries alongside it.
/// Values are rendered as JSON strings (numbers stay parseable; this is
/// a log line, not a schema).
pub fn warn(event: &str, line: &str, fields: &[(&str, String)]) {
    match format() {
        LogFormat::Text => eprintln!("{line}"),
        LogFormat::Json => {
            let mut out = String::from("{\"level\":\"warn\",\"event\":\"");
            push_escaped(&mut out, event);
            out.push_str("\",\"msg\":\"");
            push_escaped(&mut out, line);
            out.push('"');
            for (k, v) in fields {
                out.push_str(",\"");
                push_escaped(&mut out, k);
                out.push_str("\":\"");
                push_escaped(&mut out, v);
                out.push('"');
            }
            out.push('}');
            eprintln!("{out}");
        }
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_formats() {
        assert_eq!(parse("text").unwrap(), LogFormat::Text);
        assert_eq!(parse("json").unwrap(), LogFormat::Json);
        assert!(parse("yaml").is_err());
    }

    #[test]
    fn escaping_produces_valid_json_strings() {
        let mut s = String::new();
        push_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
