//! Tiny flag parser: `--name value` pairs and boolean `--name` flags.
//! Hand-rolled to keep the dependency set at the sanctioned minimum.

use std::collections::BTreeMap;

/// Parsed flags.
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `--key value` / `--flag` pairs from an argument iterator.
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut values = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = argv.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("expected a --flag, got `{arg}`"));
            };
            match name {
                // Boolean flags take no value.
                "sim" | "hybrid" | "profile-regions" | "heatmap" | "dashboard" | "explain"
                | "trace" => flags.push(name.to_string()),
                _ => {
                    let value = argv
                        .next()
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    values.insert(name.to_string(), value);
                }
            }
        }
        Ok(Args { values, flags })
    }

    /// Reject any provided option not in `known` (boolean flags checked
    /// too), so typos fail loudly instead of silently using defaults.
    pub fn allow(&self, known: &[&str]) -> Result<(), String> {
        for k in self.values.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option --{k}"));
            }
        }
        for f in &self.flags {
            if !known.contains(&f.as_str()) {
                return Err(format!("unknown flag --{f}"));
            }
        }
        Ok(())
    }

    /// String option with a default.
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values.get(name).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Unsigned option with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }

    /// Whether a boolean flag is present.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, String> {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn values_and_flags() {
        let a = parse(&["--g", "19", "--sim", "--scheme", "group"]).unwrap();
        assert_eq!(a.get_usize("g", 1).unwrap(), 19);
        assert_eq!(a.get_str("scheme", "x"), "group");
        assert!(a.flag("sim"));
        assert!(!a.flag("hybrid"));
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--g"]).is_err());
        let a = parse(&["--g", "abc"]).unwrap();
        assert!(a.get_usize("g", 1).is_err());
    }

    #[test]
    fn allow_catches_typos() {
        let a = parse(&["--tuplesize", "100"]).unwrap();
        assert!(a.allow(&["tuple-size"]).is_err());
        let a = parse(&["--tuple-size", "100", "--sim"]).unwrap();
        assert!(a.allow(&["tuple-size", "sim"]).is_ok());
    }
}
