//! `phj` — command-line driver for the prefetching hash join engine.
//!
//! ```text
//! phj join   [--build-mb N] [--tuple-size B] [--matches M] [--pct P]
//!            [--scheme baseline|simple|group|swp] [--g G] [--d D]
//!            [--mem-mb N] [--sim] [--hybrid]
//!            [--json PATH] [--trace-out PATH]
//! phj agg    [--rows N] [--keys K] [--scheme ...] [--sim]
//!            [--json PATH] [--trace-out PATH]
//! phj tune   [--build-mb N] [--tuple-size B] [--json PATH] [--trace-out PATH]
//! phj params [--tuple-size B]
//! ```
//!
//! `--sim` runs under the cycle-level memory-hierarchy simulator (Table-2
//! configuration) and prints the execution-time breakdown; without it the
//! join runs natively with real prefetch instructions and reports
//! wall-clock time.
//!
//! `--threads N` routes `join`/`agg` through the morsel-driven parallel
//! executor (`phj-exec`): native runs use a work-stealing thread pool with
//! partition pairs scheduled largest-first; simulated runs execute on `N`
//! deterministic virtual lanes and report the critical-path breakdown.
//! The match count and order-independent checksum are identical for every
//! thread count (a debug-build assertion, and printed so CI can compare).
//!
//! `--json PATH` writes a structured run report (config fingerprint,
//! per-phase spans with cycle breakdowns, derived prefetch-coverage and
//! pollution rates); `--trace-out PATH` writes the same spans as a
//! `chrome://tracing` / Perfetto trace-event file.
//!
//! `--profile-regions` (simulated runs) charges every cache hit, miss,
//! TLB walk, and prefetch outcome to the data structure it touched
//! (bucket headers, hash cells, tuples, partition buffers…) and adds a
//! `regions` section — per-region counters, latency histograms, and the
//! per-partition skew profile — to the JSON report and counter tracks to
//! the trace. `--heatmap` implies it and prints the region × latency
//! heatmap, miss-hotspot table, and skew bars to stdout (`--width` sets
//! the rendered width of heatmaps, skew bars, and sparklines).
//!
//! `--metrics-addr`, `--sample-interval`, and `--dashboard` enable live
//! telemetry: a lock-free registry every engine crate publishes into, a
//! background sampler feeding a time-series ring, an optional Prometheus
//! `/metrics` endpoint, and a `timeseries` section (with Perfetto counter
//! tracks) in the run report. See `crates/cli/src/telemetry.rs`.

use std::process::ExitCode;
use std::time::Instant;

use phj::grace::{grace_join_with_sink_rec, GraceConfig};
use phj::hybrid::{hybrid_join_rec, HybridConfig};
use phj::join::JoinScheme;
use phj::model::{min_group_size, min_prefetch_distance};
use phj::partition::PartitionScheme;
use phj::cost::CostModel;
use phj::sink::{CountSink, JoinSink};
use phj::plan;
use phj_memsim::{MemConfig, MemoryModel, NativeModel, SimEngine};
use phj_obs::{trace_text, Recorder, RunReport};
use phj_workload::{single_relation, tuples_for, JoinSpec};

mod args;
mod log;
mod serve;
mod telemetry;
mod top;
use args::Args;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `explain` and `blackbox` take a positional path ahead of their
    // flags — the only positionals in the CLI, peeled off before flag
    // parsing.
    let mut rest: Vec<String> = argv.collect();
    let mut positional = None;
    if matches!(cmd.as_str(), "explain" | "blackbox")
        && rest.first().is_some_and(|a| !a.starts_with("--"))
    {
        positional = Some(rest.remove(0));
    }
    let args = match Args::parse(rest.into_iter()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match log::parse(&args.get_str("log-format", "text")) {
        Ok(f) => log::init(f),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    // The flight recorder is always on (phase granularity) unless
    // `--flightrec off`; a crash, typed failure, or SIGTERM then dumps
    // the journal as a postmortem (`--postmortem PATH`).
    match phj_flightrec::Mode::parse(&args.get_str("flightrec", "phase")) {
        Ok(Some(mode)) => {
            phj_flightrec::install(mode);
            phj_flightrec::install_crash_hooks();
            phj_flightrec::set_postmortem_path(args.get_str("postmortem", "postmortem.json"));
            phj_flightrec::set_context_provider(Box::new(postmortem_context));
        }
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: --flightrec: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    // Telemetry starts before the command so the sampler and /metrics
    // endpoint observe the whole run; with none of its flags present
    // this is a no-op and nothing is installed.
    if let Err(e) = telemetry::init(&args) {
        eprintln!("error: {e}\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let result = match cmd.as_str() {
        "join" => cmd_join(&args),
        "agg" => cmd_agg(&args),
        "disk" => cmd_disk(&args),
        "serve" => serve::cmd_serve(&args),
        "client" => serve::cmd_client(&args),
        "top" => top::cmd_top(&args),
        "tune" => cmd_tune(&args),
        "params" => cmd_params(&args),
        "explain" => match &positional {
            Some(path) => cmd_explain(path, &args),
            None => Err("explain needs a report path: phj explain <report.json>".to_string()),
        },
        "blackbox" => match &positional {
            Some(path) => cmd_blackbox(path, &args),
            None => {
                Err("blackbox needs a dump path: phj blackbox <postmortem.json>".to_string())
            }
        },
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    telemetry::finish();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Runtime failures (I/O faults, corruption, overflow) get the
            // rendered error chain only; usage is for argument mistakes.
            eprintln!("error: {e}");
            // A typed failure after real work is a crash as far as the
            // flight recorder is concerned: dump the black box. Argument
            // mistakes never recorded an event, so they skip this.
            if phj_flightrec::global().is_some_and(|r| r.total_written() > 0) {
                match phj_flightrec::dump(phj_flightrec::Cause::TypedError, &e) {
                    Ok(Some(path)) => eprintln!("postmortem: {}", path.display()),
                    Ok(None) => {}
                    Err(io) => eprintln!("warning: postmortem dump failed: {io}"),
                }
            }
            ExitCode::FAILURE
        }
    }
}

/// Extra context attached to postmortem dumps: the live metrics registry
/// (when telemetry is on) flattened to one JSON object. Values must be
/// pre-rendered JSON — the flight recorder never learns the schema.
fn postmortem_context() -> Vec<(String, String)> {
    let Some(reg) = phj_metrics::global() else { return Vec::new() };
    let mut obj = Vec::new();
    for f in reg.scrape() {
        obj.push((f.name.clone(), phj_obs::json::Json::U64(f.value)));
    }
    if obj.is_empty() {
        return Vec::new();
    }
    vec![("metrics".to_string(), phj_obs::json::Json::Obj(obj).render())]
}

const USAGE: &str = "\
phj — prefetching hash join engine (Chen et al., ICDE 2004)

USAGE:
  phj join   [--build-mb N] [--tuple-size B] [--matches M] [--pct P]
             [--scheme baseline|simple|group|swp] [--g G] [--d D]
             [--mem-mb N] [--sim] [--hybrid] [--threads N]
             [--profile-regions] [--heatmap] [--width W]
             [--json PATH] [--trace-out PATH] [DIAGNOSIS] [TELEMETRY]
  phj agg    [--rows N] [--keys K] [--scheme S] [--g G] [--d D] [--sim]
             [--threads N] [--profile-regions] [--heatmap] [--width W]
             [--json PATH] [--trace-out PATH] [DIAGNOSIS] [TELEMETRY]
  phj disk   [--build-mb N] [--mem-mb N] [--mem-budget BYTES] [--stripes S]
             [--mode grace|hybrid|dynamic] [--dir PATH] [--fault-plan SPEC]
             [--max-depth D] [--json PATH] [DIAGNOSIS] [TELEMETRY]
  phj tune   [--build-mb N] [--tuple-size B] [--profile-regions] [--heatmap]
             [--width W] [--json PATH] [--trace-out PATH] [DIAGNOSIS]
             [TELEMETRY]
  phj serve  [--addr HOST:PORT] [--threads N] [--mem-mb N | --mem-budget BYTES]
             [--min-grant-mb N] [--max-queue N] [--trace]
             [--slow-query-ms MS] [--slow-query-sheds N]
             [--slow-query-dir PATH] [--slow-query-keep N]
             [--scratch-dir PATH] [TELEMETRY]
             query-service daemon: prints `serving on ADDR` (port 0 =
             ephemeral), runs queries concurrently under one memory
             budget, stops cleanly on SIGTERM/SIGINT. --trace attaches a
             `query_trace` section to every result report; the slow-query
             flags dump a bounded ring of flightrec captures (renderable
             by `phj blackbox`) for queries over the latency/shed bar
  phj client --addr HOST:PORT [--query join|agg|disk|ping] [--seed S]
             [--mode grace|hybrid|dynamic] [--trace] [--trace-id X]
             [--trace-out PATH] [--json PATH] [join/agg knobs as above]
             send one query to a daemon; prints the same result line as
             the local drivers, so outputs diff textually. --trace mints
             a trace id the daemon echoes end-to-end; --trace-out merges
             client send/wait/recv spans with the server's breakdown
             into one Perfetto file with flow arrows
  phj top    --addr HOST:PORT [--interval-ms MS] [--iters N]
             live query table (in-flight + recently completed); one
             snapshot by default, --iters 0 refreshes until interrupted;
             the same table is JSON at the metrics /queries route
  phj explain REPORT.json [--cost-model k=v,...] [--json PATH]
             model-vs-measured diagnosis of a saved run report
  phj blackbox DUMP.json [--width W] [--tail N] [--trace-out PATH]
             render a crash postmortem as per-thread timeline lanes
  phj params [--tuple-size B] [--cost-model k=v,...]
  phj help

DIAGNOSIS:
  --explain                  after the run, print the model-vs-measured
                             diagnosis, attach the `analysis` section to
                             the report, and archive a perf-trajectory
                             record under bench_out/history/
  --cost-model k=v,...       override calibrated stage costs (keys:
                             hash_fn, mod, hash_reuse, header_check,
                             cell_check, cell_write, key_compare,
                             tuple_fetch, copy_base, copy_bpc)

TELEMETRY (any of these turns live metrics on; none = zero overhead):
  --metrics-addr HOST:PORT   serve Prometheus text at GET /metrics and
                             GET /healthz (port 0 = ephemeral; resolved
                             address printed)
  --sample-interval MS       background sampling period (default 50)
  --dashboard                live sparkline view + end-of-run summary

GLOBAL (accepted by every command):
  --flightrec off|phase|full always-on event journal granularity
                             (default phase; full adds per-task, steal-
                             miss, spill, and batch marks)
  --postmortem PATH          where crashes, typed failures, and SIGTERM
                             dump the journal (default postmortem.json)
  --log-format text|json     runtime warning format (degradation steps,
                             fault summaries) on stderr";

/// Where (if anywhere) the observability artifacts of a run go.
struct ObsOut {
    json: Option<String>,
    trace: Option<String>,
    /// `--explain`: run the model-vs-measured diagnosis after the run,
    /// print it, attach the `analysis` section, and archive a history
    /// record.
    explain: bool,
    /// The calibration the diagnosis assumes (`--cost-model` overrides).
    cost: CostModel,
}

impl ObsOut {
    fn from_args(args: &Args) -> Result<ObsOut, String> {
        let path = |name: &str| match args.get_str(name, "") {
            s if s.is_empty() => None,
            s => Some(s),
        };
        Ok(ObsOut {
            json: path("json"),
            trace: path("trace-out"),
            explain: args.flag("explain"),
            cost: cost_model_of(args)?,
        })
    }

    /// A recorder, but only when some output wants it — otherwise the
    /// pipeline runs recorder-free. `--explain` counts: the diagnosis
    /// needs a report even when nothing is written to disk.
    fn recorder(&self) -> Option<Recorder> {
        (self.json.is_some() || self.trace.is_some() || self.explain).then(Recorder::new)
    }

    /// Fingerprint the memory-system configuration into the report.
    fn config_mem(report: &mut RunReport, cfg: &MemConfig) {
        report.config_kv("t_full", cfg.t_full);
        report.config_kv("t_next", cfg.t_next);
        report.config_kv("tlb_walk", cfg.tlb_walk);
        report.config_kv("l2_size", cfg.l2_size);
        report.config_kv("line_size", cfg.line_size);
    }

    /// Validate and write the report (and its trace) where requested.
    /// Every report passes through here, so this is also where the
    /// sampled telemetry (if any) joins the report and where `--explain`
    /// runs the diagnosis over the finished run.
    fn write(&self, report: &mut RunReport) -> Result<(), String> {
        telemetry::attach(report);
        attach_flightrec(report);
        if self.explain {
            let sec = phj_analyze::analyze(report, &self.cost);
            print!("{}", phj_analyze::render(report, &sec));
            report.analysis = Some(sec);
            match append_history(report) {
                Ok(path) => println!("history: {}", path.display()),
                Err(e) => log::warn(
                    "history",
                    &format!("warning: could not append history: {e}"),
                    &[("error", e.clone())],
                ),
            }
        }
        report.validate().map_err(|e| format!("internal: invalid run report: {e}"))?;
        if let Some(path) = &self.json {
            std::fs::write(path, report.render()).map_err(|e| format!("{path}: {e}"))?;
            println!("run report: {path}");
        }
        if let Some(path) = &self.trace {
            std::fs::write(path, trace_text(report)).map_err(|e| format!("{path}: {e}"))?;
            println!("trace (load in chrome://tracing or ui.perfetto.dev): {path}");
        }
        Ok(())
    }
}

/// Attach the flight-recorder summary (event counts, ring accounting)
/// to a run report. The section carries no timestamps, so deterministic
/// runs summarize byte-identically; with `--flightrec off` nothing is
/// installed and the report is unchanged.
fn attach_flightrec(report: &mut RunReport) {
    let Some(rec) = phj_flightrec::global() else { return };
    let s = rec.summary();
    report.flightrec = Some(phj_obs::FlightrecSection {
        mode: s.mode.name().to_string(),
        capacity: s.capacity as u64,
        threads: s.threads.len() as u64,
        written: s.written(),
        dropped: s.dropped(),
        counts: phj_flightrec::EventKind::ALL
            .iter()
            .filter(|k| s.counts[**k as usize] > 0)
            .map(|k| (k.name().to_string(), s.counts[*k as usize]))
            .collect(),
    });
}

/// `phj blackbox <postmortem.json>`: validate a crash dump and render
/// its merged timeline as per-thread ASCII lanes (`--width`, `--tail`);
/// `--trace-out PATH` additionally exports it as a Perfetto trace.
fn cmd_blackbox(path: &str, args: &Args) -> Result<(), String> {
    args.allow(&["width", "tail", "trace-out", "log-format", "flightrec", "postmortem"])?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let pm = phj_obs::Postmortem::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    pm.validate().map_err(|e| format!("{path}: invalid postmortem: {e}"))?;
    let width = args.get_usize("width", 100)?;
    let tail = args.get_usize("tail", 20)?;
    print!("{}", pm.render(width, tail));
    let out = args.get_str("trace-out", "");
    if !out.is_empty() {
        std::fs::write(&out, pm.to_trace().render()).map_err(|e| format!("{out}: {e}"))?;
        println!("trace (load in chrome://tracing or ui.perfetto.dev): {out}");
    }
    Ok(())
}

/// Parse `--cost-model k=v,...` overrides over the calibrated defaults.
fn cost_model_of(args: &Args) -> Result<CostModel, String> {
    CostModel::parse_overrides(&args.get_str("cost-model", ""))
        .map_err(|e| format!("--cost-model: {e}"))
}

/// Root of the perf-trajectory archive: `$PHJ_BENCH_OUT/history` (same
/// environment override the bench harness honors), `bench_out/history`
/// otherwise.
fn history_dir() -> std::path::PathBuf {
    std::env::var("PHJ_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("bench_out"))
        .join("history")
}

/// Append this run to `history/<command>.jsonl`, returning the path.
fn append_history(report: &RunReport) -> Result<std::path::PathBuf, String> {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let rec = phj_analyze::HistoryRecord::from_report(&report.command, report, unix_s);
    let path = history_dir().join(format!("{}.jsonl", report.command));
    phj_analyze::history::append(&path, &rec).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// `phj explain <report.json>`: load, diagnose, and print. `--json PATH`
/// writes the report back out with the `analysis` section attached.
fn cmd_explain(path: &str, args: &Args) -> Result<(), String> {
    args.allow(&["cost-model", "json", "flightrec", "postmortem", "log-format"])?;
    let cost = cost_model_of(args)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut report = RunReport::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    report.validate().map_err(|e| format!("{path}: invalid report: {e}"))?;
    let sec = phj_analyze::analyze(&report, &cost);
    print!("{}", phj_analyze::render(&report, &sec));
    report.analysis = Some(sec);
    report
        .validate()
        .map_err(|e| format!("internal: analysis section failed validation: {e}"))?;
    let out = args.get_str("json", "");
    if !out.is_empty() {
        std::fs::write(&out, report.render()).map_err(|e| format!("{out}: {e}"))?;
        println!("annotated report: {out}");
    }
    Ok(())
}

/// Whether either attribution flag is set (`--heatmap` implies
/// profiling — the heatmap is rendered from the region profile).
fn wants_regions(args: &Args) -> bool {
    args.flag("profile-regions") || args.flag("heatmap")
}

/// Heatmap/skew-bar width from `--width` (shared with the sparkline
/// renderer, which applies its own default).
fn heat_width(args: &Args) -> Result<usize, String> {
    args.get_usize("width", phj_obs::heatmap::DEFAULT_WIDTH)
}

/// Attach the engine's region profile (when enabled) to `report` —
/// per-region counters and histograms plus the skew profile derived from
/// the recorded `pair` spans — then print the heatmap if requested.
fn attach_regions(report: &mut RunReport, engine: &SimEngine, heatmap: bool, width: usize) {
    if let Some(p) = engine.region_profile() {
        let mut sec = phj_obs::RegionsSection::from_profiler(p);
        sec.skew = phj::profile::skew_profile(&report.spans);
        report.regions = Some(sec);
    }
    if heatmap {
        if let Some(text) = phj_obs::heatmap::render_width(report, width) {
            print!("{text}");
        }
    }
}

fn scheme_of(args: &Args) -> Result<JoinScheme, String> {
    let g = args.get_usize("g", 16)?;
    let d = args.get_usize("d", 1)?;
    match args.get_str("scheme", "group").as_str() {
        "baseline" => Ok(JoinScheme::Baseline),
        "simple" => Ok(JoinScheme::Simple),
        "group" => Ok(JoinScheme::Group { g }),
        "swp" => Ok(JoinScheme::Swp { d }),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

fn cmd_join(args: &Args) -> Result<(), String> {
    args.allow(&[
        "build-mb", "tuple-size", "matches", "pct", "scheme", "g", "d", "mem-mb", "sim",
        "hybrid", "threads", "profile-regions", "heatmap", "json", "trace-out",
        "metrics-addr", "sample-interval", "dashboard", "width", "explain", "cost-model",
        "flightrec", "postmortem", "log-format",
    ])?;
    let build_mb = args.get_usize("build-mb", 16)?;
    let tuple_size = args.get_usize("tuple-size", 100)?;
    let spec = JoinSpec {
        build_tuples: tuples_for(build_mb << 20, tuple_size),
        tuple_size,
        matches_per_build: args.get_usize("matches", 2)?,
        pct_match: args.get_usize("pct", 100)?.min(100) as u8,
        seed: 0x11D0,
    };
    let mem_budget = args.get_usize("mem-mb", build_mb.div_ceil(4).max(1))? << 20;
    let scheme = scheme_of(args)?;
    println!(
        "join: {} build x {} probe tuples of {}B, scheme {}, memory {} MB{}",
        spec.build_tuples,
        spec.probe_tuples(),
        tuple_size,
        scheme.label(),
        mem_budget >> 20,
        if args.flag("hybrid") { ", hybrid" } else { "" }
    );
    let gen = spec.generate();
    let obs_out = ObsOut::from_args(args)?;
    let mut recorder = obs_out.recorder();
    // Attribution needs the span tree (for the skew profile), so the
    // flags force a recorder even without --json/--trace-out.
    if wants_regions(args) && recorder.is_none() {
        recorder = Some(Recorder::new());
    }
    let fingerprint = |report: &mut RunReport| {
        report.config_kv("scheme", scheme.label());
        report.config_kv("tuple_size", tuple_size);
        report.config_kv("build_tuples", spec.build_tuples);
        report.config_kv("probe_tuples", spec.probe_tuples());
        report.config_kv("mem_budget", mem_budget);
        report.config_kv("hybrid", args.flag("hybrid"));
    };
    let g = match scheme {
        JoinScheme::Group { g } => g,
        _ => 16,
    };
    let grace_cfg = GraceConfig {
        mem_budget,
        partition_scheme: PartitionScheme::combined_default(),
        join_scheme: scheme,
        ..Default::default()
    };
    let hybrid_cfg = HybridConfig { mem_budget, g, ..Default::default() };
    // `--threads` (even `--threads 1`) routes through the parallel
    // executor, so thread counts print in a comparable format; without
    // the flag the sequential driver runs exactly as before.
    if !args.get_str("threads", "").is_empty() {
        if args.flag("hybrid") {
            return Err("--hybrid runs single-threaded; drop --threads or --hybrid".to_string());
        }
        let threads = args.get_usize("threads", 1)?.max(1);
        return join_parallel(args, &obs_out, &grace_cfg, &gen, &spec, scheme, mem_budget, threads);
    }
    if args.flag("sim") {
        let mut engine = SimEngine::paper();
        if wants_regions(args) {
            engine.enable_region_profiling();
        }
        let root = recorder
            .as_mut()
            .map(|r| r.begin_profiled("run", engine.snapshot(), engine.latency_hist()));
        let mut sink = CountSink::new();
        let t0 = Instant::now();
        let p = if args.flag("hybrid") {
            hybrid_join_rec(&mut engine, &hybrid_cfg, &gen.build, &gen.probe, &mut sink, recorder.as_mut())
        } else {
            grace_join_with_sink_rec(&mut engine, &grace_cfg, &gen.build, &gen.probe, &mut sink, recorder.as_mut())
        };
        let wall = t0.elapsed();
        if let (Some(r), Some(root)) = (recorder.as_mut(), root) {
            r.end_profiled(root, engine.snapshot(), engine.latency_hist());
        }
        let b = engine.breakdown();
        println!("partitions: {p}, matches: {}", sink.matches());
        println!(
            "simulated: {:.1} Mcycles = busy {:.1} + dcache {:.1} + dtlb {:.1} + other {:.1}",
            b.total() as f64 / 1e6,
            b.busy as f64 / 1e6,
            b.dcache_stall as f64 / 1e6,
            b.dtlb_stall as f64 / 1e6,
            b.other_stall as f64 / 1e6,
        );
        if let Some(rec) = recorder.take() {
            let mut report =
                RunReport::from_recorder("join", rec, engine.snapshot(), wall.as_nanos() as u64);
            report.simulated = true;
            report.tuples = (gen.build.num_tuples() + gen.probe.num_tuples()) as u64;
            report.matches = sink.matches();
            fingerprint(&mut report);
            ObsOut::config_mem(&mut report, &MemConfig::paper());
            println!(
                "prefetch coverage: {:.1}%, pollution: {:.1}%",
                100.0 * report.prefetch_coverage(),
                100.0 * report.pollution_rate()
            );
            attach_regions(&mut report, &engine, args.flag("heatmap"), heat_width(args)?);
            obs_out.write(&mut report)?;
        }
    } else {
        if wants_regions(args) {
            println!("note: --profile-regions/--heatmap attribute simulated accesses; add --sim");
        }
        let mut native = NativeModel;
        let root = recorder.as_mut().map(|r| r.begin("run", native.snapshot()));
        let mut sink = CountSink::new();
        let t0 = Instant::now();
        let p = if args.flag("hybrid") {
            hybrid_join_rec(&mut native, &hybrid_cfg, &gen.build, &gen.probe, &mut sink, recorder.as_mut())
        } else {
            grace_join_with_sink_rec(&mut native, &grace_cfg, &gen.build, &gen.probe, &mut sink, recorder.as_mut())
        };
        let wall = t0.elapsed();
        if let (Some(r), Some(root)) = (recorder.as_mut(), root) {
            r.end(root, native.snapshot());
        }
        println!("partitions: {p}, matches: {}", sink.matches());
        println!(
            "native: {:?} ({:.1} M tuples/s through the probe side)",
            wall,
            gen.probe.num_tuples() as f64 / wall.as_secs_f64() / 1e6
        );
        if let Some(rec) = recorder.take() {
            let mut report =
                RunReport::from_recorder("join", rec, native.snapshot(), wall.as_nanos() as u64);
            report.tuples = (gen.build.num_tuples() + gen.probe.num_tuples()) as u64;
            report.matches = sink.matches();
            fingerprint(&mut report);
            obs_out.write(&mut report)?;
        }
    }
    if gen.expected_matches > 0 {
        let mut s = CountSink::new();
        let mut m = NativeModel;
        grace_join_with_sink_rec(&mut m, &grace_cfg, &gen.build, &gen.probe, &mut s, None);
        assert_eq!(s.matches(), gen.expected_matches);
    }
    Ok(())
}

/// The `--threads N` arm of `phj join`: run the morsel-driven parallel
/// drivers from `phj-exec` and report per-worker (native) or per-lane
/// (simulated) accounting alongside the usual result line. The checksum
/// prints unconditionally so runs at different thread counts can be
/// compared textually.
#[allow(clippy::too_many_arguments)]
fn join_parallel(
    args: &Args,
    obs_out: &ObsOut,
    cfg: &GraceConfig,
    gen: &phj_workload::GeneratedJoin,
    spec: &JoinSpec,
    scheme: JoinScheme,
    mem_budget: usize,
    threads: usize,
) -> Result<(), String> {
    let want_regions = wants_regions(args);
    let fingerprint = |report: &mut RunReport| {
        report.config_kv("scheme", scheme.label());
        report.config_kv("tuple_size", spec.tuple_size);
        report.config_kv("build_tuples", spec.build_tuples);
        report.config_kv("probe_tuples", spec.probe_tuples());
        report.config_kv("mem_budget", mem_budget);
        report.config_kv("threads", threads);
        report.tuples = (gen.build.num_tuples() + gen.probe.num_tuples()) as u64;
    };
    let matches;
    if args.flag("sim") {
        let want_obs =
            obs_out.json.is_some() || obs_out.trace.is_some() || obs_out.explain || want_regions;
        let t0 = Instant::now();
        let out =
            phj_exec::parallel_join_sim(cfg, &gen.build, &gen.probe, threads, want_obs, want_regions);
        let wall = t0.elapsed();
        matches = out.sink.matches();
        println!(
            "partitions: {}, matches: {}, checksum: {:#018x}",
            out.partitions,
            out.sink.matches(),
            out.sink.checksum()
        );
        let b = out.totals.breakdown;
        println!(
            "simulated critical path over {threads} lanes: {:.1} Mcycles = busy {:.1} + dcache {:.1} + dtlb {:.1} + other {:.1}",
            b.total() as f64 / 1e6,
            b.busy as f64 / 1e6,
            b.dcache_stall as f64 / 1e6,
            b.dtlb_stall as f64 / 1e6,
            b.other_stall as f64 / 1e6,
        );
        for lane in &out.lanes {
            println!(
                "  lane {}: {} tasks, {:.1} Mcycles",
                lane.lane,
                lane.tasks,
                lane.cycles as f64 / 1e6
            );
        }
        if let Some(rec) = out.recorder {
            let mut report =
                RunReport::from_recorder("join", rec, out.totals, wall.as_nanos() as u64);
            report.simulated = true;
            report.matches = out.sink.matches();
            fingerprint(&mut report);
            ObsOut::config_mem(&mut report, &MemConfig::paper());
            println!(
                "prefetch coverage: {:.1}%, pollution: {:.1}%",
                100.0 * report.prefetch_coverage(),
                100.0 * report.pollution_rate()
            );
            if let Some(mut sec) = out.regions {
                sec.skew = phj::profile::skew_profile(&report.spans);
                report.regions = Some(sec);
            }
            if args.flag("heatmap") {
                if let Some(text) = phj_obs::heatmap::render_width(&report, heat_width(args)?) {
                    print!("{text}");
                }
            }
            obs_out.write(&mut report)?;
        }
    } else {
        if want_regions {
            println!("note: --profile-regions/--heatmap attribute simulated accesses; add --sim");
        }
        let want_obs = obs_out.json.is_some() || obs_out.trace.is_some() || obs_out.explain;
        let t0 = Instant::now();
        let out = phj_exec::parallel_join_native(cfg, &gen.build, &gen.probe, threads, want_obs);
        let wall = t0.elapsed();
        matches = out.sink.matches();
        println!(
            "partitions: {}, matches: {}, checksum: {:#018x}",
            out.partitions,
            out.sink.matches(),
            out.sink.checksum()
        );
        println!(
            "native ({threads} threads): {:?} ({:.1} M tuples/s through the probe side)",
            wall,
            gen.probe.num_tuples() as f64 / wall.as_secs_f64() / 1e6
        );
        for (phase, stats) in [("partition", &out.partition_stats), ("join", &out.join_stats)] {
            for w in stats.iter() {
                println!(
                    "  {phase} worker {}: {} tasks ({} stolen), busy {:.2} ms, idle {:.2} ms",
                    w.worker,
                    w.tasks,
                    w.steals,
                    w.busy_ns as f64 / 1e6,
                    w.idle_ns as f64 / 1e6
                );
            }
        }
        if let Some(rec) = out.recorder {
            let mut report =
                RunReport::from_recorder("join", rec, phj_memsim::Snapshot::default(), wall.as_nanos() as u64);
            report.matches = out.sink.matches();
            fingerprint(&mut report);
            obs_out.write(&mut report)?;
        }
    }
    if gen.expected_matches > 0 {
        assert_eq!(matches, gen.expected_matches, "parallel join missed matches");
    }
    Ok(())
}

fn cmd_agg(args: &Args) -> Result<(), String> {
    use phj::aggregate::{aggregate, AggScheme};
    args.allow(&[
        "rows", "keys", "scheme", "g", "d", "sim", "threads", "profile-regions", "heatmap",
        "json", "trace-out", "metrics-addr", "sample-interval", "dashboard", "width",
        "explain", "cost-model", "flightrec", "postmortem", "log-format",
    ])?;
    let rows = args.get_usize("rows", 1_000_000)?;
    let keys = args.get_usize("keys", 100_000)?.max(1);
    let scheme = match args.get_str("scheme", "group").as_str() {
        "baseline" => AggScheme::Baseline,
        "simple" => AggScheme::Simple,
        "group" => AggScheme::Group { g: args.get_usize("g", 16)? },
        "swp" => AggScheme::Swp { d: args.get_usize("d", 2)? },
        other => return Err(format!("unknown scheme `{other}`")),
    };
    // Reuse the workload generator, folding the key space down to `keys`.
    let input = {
        use phj_storage::{RelationBuilder, Schema};
        let schema = Schema::key_payload(100);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 100];
        for i in 0..rows {
            let key = phj_workload::key_of_index((i % keys) as u32);
            t[..4].copy_from_slice(&key.to_le_bytes());
            b.push(&t);
        }
        b.finish()
    };
    let buckets = plan::hash_table_buckets(keys, 1);
    let extract = |t: &[u8]| t[4] as i64;
    println!("aggregating {rows} rows into {keys} groups ({scheme:?})");
    let obs_out = ObsOut::from_args(args)?;
    if !args.get_str("threads", "").is_empty() {
        let threads = args.get_usize("threads", 1)?.max(1);
        return agg_parallel(args, &obs_out, scheme, &input, buckets, extract, rows, keys, threads);
    }
    let mut recorder = obs_out.recorder();
    if wants_regions(args) && recorder.is_none() {
        recorder = Some(Recorder::new());
    }
    let fingerprint = |report: &mut RunReport, groups: u64| {
        report.config_kv("scheme", format!("{scheme:?}"));
        report.config_kv("rows", rows);
        report.config_kv("keys", keys);
        report.tuples = rows as u64;
        report.matches = groups;
    };
    if args.flag("sim") {
        let mut engine = SimEngine::paper();
        if wants_regions(args) {
            engine.enable_region_profiling();
        }
        let root = recorder
            .as_mut()
            .map(|r| r.begin_profiled("run", engine.snapshot(), engine.latency_hist()));
        let inner = recorder
            .as_mut()
            .map(|r| r.begin_profiled("aggregate", engine.snapshot(), engine.latency_hist()));
        let t0 = Instant::now();
        let table = aggregate(&mut engine, scheme, &input, buckets, extract);
        let wall = t0.elapsed();
        if let Some(r) = recorder.as_mut() {
            r.end_profiled(inner.unwrap(), engine.snapshot(), engine.latency_hist());
            r.end_profiled(root.unwrap(), engine.snapshot(), engine.latency_hist());
        }
        let b = engine.breakdown();
        println!(
            "groups: {}; simulated {:.1} Mcycles ({:.0}% dcache stalls)",
            table.num_groups(),
            b.total() as f64 / 1e6,
            100.0 * b.dcache_fraction()
        );
        if let Some(rec) = recorder.take() {
            let mut report =
                RunReport::from_recorder("agg", rec, engine.snapshot(), wall.as_nanos() as u64);
            report.simulated = true;
            fingerprint(&mut report, table.num_groups() as u64);
            ObsOut::config_mem(&mut report, &MemConfig::paper());
            attach_regions(&mut report, &engine, args.flag("heatmap"), heat_width(args)?);
            obs_out.write(&mut report)?;
        }
    } else {
        if wants_regions(args) {
            println!("note: --profile-regions/--heatmap attribute simulated accesses; add --sim");
        }
        let mut native = NativeModel;
        let root = recorder.as_mut().map(|r| r.begin("run", native.snapshot()));
        let inner = recorder.as_mut().map(|r| r.begin("aggregate", native.snapshot()));
        let t0 = Instant::now();
        let table = aggregate(&mut native, scheme, &input, buckets, extract);
        let wall = t0.elapsed();
        if let Some(r) = recorder.as_mut() {
            r.end(inner.unwrap(), native.snapshot());
            r.end(root.unwrap(), native.snapshot());
        }
        println!("groups: {}; native {:?}", table.num_groups(), wall);
        if let Some(rec) = recorder.take() {
            let mut report =
                RunReport::from_recorder("agg", rec, native.snapshot(), wall.as_nanos() as u64);
            fingerprint(&mut report, table.num_groups() as u64);
            obs_out.write(&mut report)?;
        }
    }
    Ok(())
}

/// The `--threads N` arm of `phj agg`: morsel-parallel aggregation with
/// the group-set digest printed for cross-thread-count comparison.
#[allow(clippy::too_many_arguments)]
fn agg_parallel(
    args: &Args,
    obs_out: &ObsOut,
    scheme: phj::aggregate::AggScheme,
    input: &phj_storage::Relation,
    buckets: usize,
    extract: impl Fn(&[u8]) -> i64 + Sync + Copy,
    rows: usize,
    keys: usize,
    threads: usize,
) -> Result<(), String> {
    let want_regions = wants_regions(args);
    let fingerprint = |report: &mut RunReport, groups: u64| {
        report.config_kv("scheme", format!("{scheme:?}"));
        report.config_kv("rows", rows);
        report.config_kv("keys", keys);
        report.config_kv("threads", threads);
        report.tuples = rows as u64;
        report.matches = groups;
    };
    if args.flag("sim") {
        let want_obs =
            obs_out.json.is_some() || obs_out.trace.is_some() || obs_out.explain || want_regions;
        let t0 = Instant::now();
        let out =
            phj_exec::parallel_agg_sim(scheme, input, buckets, extract, threads, want_obs, want_regions);
        let wall = t0.elapsed();
        let b = out.totals.breakdown;
        println!(
            "groups: {}, checksum: {:#018x}; simulated critical path over {threads} lanes: {:.1} Mcycles ({:.0}% dcache stalls)",
            out.table.num_groups(),
            phj_exec::agg_checksum(&out.table),
            b.total() as f64 / 1e6,
            100.0 * b.dcache_fraction()
        );
        for lane in &out.lanes {
            println!(
                "  lane {}: {} tasks, {:.1} Mcycles",
                lane.lane,
                lane.tasks,
                lane.cycles as f64 / 1e6
            );
        }
        if let Some(rec) = out.recorder {
            let mut report =
                RunReport::from_recorder("agg", rec, out.totals, wall.as_nanos() as u64);
            report.simulated = true;
            fingerprint(&mut report, out.table.num_groups() as u64);
            ObsOut::config_mem(&mut report, &MemConfig::paper());
            if let Some(mut sec) = out.regions {
                sec.skew = phj::profile::skew_profile(&report.spans);
                report.regions = Some(sec);
            }
            if args.flag("heatmap") {
                if let Some(text) = phj_obs::heatmap::render_width(&report, heat_width(args)?) {
                    print!("{text}");
                }
            }
            obs_out.write(&mut report)?;
        }
    } else {
        if want_regions {
            println!("note: --profile-regions/--heatmap attribute simulated accesses; add --sim");
        }
        let want_obs = obs_out.json.is_some() || obs_out.trace.is_some() || obs_out.explain;
        let t0 = Instant::now();
        let out = phj_exec::parallel_agg_native(scheme, input, buckets, extract, threads, want_obs);
        let wall = t0.elapsed();
        println!(
            "groups: {}, checksum: {:#018x}; native ({threads} threads) {:?}",
            out.table.num_groups(),
            phj_exec::agg_checksum(&out.table),
            wall
        );
        for w in &out.stats {
            println!(
                "  worker {}: {} tasks ({} stolen), busy {:.2} ms, idle {:.2} ms",
                w.worker,
                w.tasks,
                w.steals,
                w.busy_ns as f64 / 1e6,
                w.idle_ns as f64 / 1e6
            );
        }
        if let Some(rec) = out.recorder {
            let mut report = RunReport::from_recorder(
                "agg",
                rec,
                phj_memsim::Snapshot::default(),
                wall.as_nanos() as u64,
            );
            fingerprint(&mut report, out.table.num_groups() as u64);
            obs_out.write(&mut report)?;
        }
    }
    Ok(())
}

/// Render a disk error with its full cause chain, one `caused by` line
/// per link — the CLI's nonzero-exit diagnostic for I/O and corruption.
fn render_chain(e: &phj_disk::PhjError) -> String {
    use std::error::Error;
    let mut s = e.to_string();
    let mut src = e.source();
    while let Some(c) = src {
        s.push_str("\n  caused by: ");
        s.push_str(&c.to_string());
        src = c.source();
    }
    s
}

fn cmd_disk(args: &Args) -> Result<(), String> {
    args.allow(&[
        "build-mb", "mem-mb", "mem-budget", "stripes", "dir", "fault-plan", "max-depth",
        "mode", "json", "trace-out", "metrics-addr", "sample-interval", "dashboard", "width",
        "explain", "cost-model", "flightrec", "postmortem", "log-format",
    ])?;
    let mode_str = args.get_str("mode", "grace");
    let mode = phj_disk::DiskJoinMode::parse(&mode_str)
        .ok_or_else(|| format!("--mode: unknown `{mode_str}` (grace|hybrid|dynamic)"))?;
    let build_mb = args.get_usize("build-mb", 16)?;
    let mem_mb = args.get_usize("mem-mb", build_mb.div_ceil(4).max(1))?;
    // --mem-budget takes the budget in bytes (wins over --mem-mb), so
    // degradation can be forced below one megabyte.
    let mem_budget = match args.get_usize("mem-budget", 0)? {
        0 => mem_mb << 20,
        bytes => bytes,
    };
    let stripes = args.get_usize("stripes", 6)?.max(1);
    let max_depth = args.get_usize("max-depth", 2)? as u32;
    let fault = match args.get_str("fault-plan", "").as_str() {
        "" => phj_disk::FaultPlan::disabled(),
        spec => phj_disk::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?,
    };
    let retry = phj_disk::RetryPolicy::default();
    let dir = match args.get_str("dir", "").as_str() {
        "" => std::env::temp_dir().join(format!("phj-cli-disk-{}", std::process::id())),
        d => std::path::PathBuf::from(d),
    };
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let spec = JoinSpec {
        build_tuples: tuples_for(build_mb << 20, 100),
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        seed: 0xD15C,
    };
    let gen = spec.generate();
    println!(
        "on-disk {} join: {} MB build x {} MB probe across {stripes} stripe files under {}{}",
        mode.label(),
        build_mb,
        2 * build_mb,
        dir.display(),
        if fault.is_active() { " (fault plan active)" } else { "" }
    );
    let mut fb = phj_disk::FileRelation::create(&dir, "build", &gen.build, stripes, 32)
        .map_err(|e| render_chain(&e))?;
    let mut fp = phj_disk::FileRelation::create(&dir, "probe", &gen.probe, stripes, 32)
        .map_err(|e| render_chain(&e))?;
    // Inputs are written clean, then all subsequent I/O runs under the plan.
    fb.set_faults(fault.clone(), retry);
    fp.set_faults(fault.clone(), retry);
    let cfg = phj_disk::DiskGraceConfig {
        mem_budget,
        num_stripes: stripes,
        fault: fault.clone(),
        retry,
        max_repartition_depth: max_depth,
        mode,
        ..phj_disk::DiskGraceConfig::new(&dir)
    };
    let obs_out = ObsOut::from_args(args)?;
    let mut recorder = obs_out.recorder();
    let root = recorder.as_mut().map(|r| r.begin("run", NativeModel.snapshot()));
    let t0 = Instant::now();
    let report = phj_disk::grace_join_files_rec(&cfg, &fb, &fp, recorder.as_mut())
        .map_err(|e| render_chain(&e))?;
    let wall_ns = t0.elapsed().as_nanos() as u64;
    if report.matches != gen.expected_matches {
        return Err(format!(
            "wrong match count: {} vs {}",
            report.matches, gen.expected_matches
        ));
    }
    println!(
        "partitions: {}; partition {:.2}s + join {:.2}s; input stall {:.3}s; {} matches -> {} output pages",
        report.num_partitions,
        report.partition_s,
        report.join_s,
        report.input_stall_s,
        report.matches,
        report.output.num_pages()
    );
    println!("result checksum: {:#018x}", report.checksum);
    if mode != phj_disk::DiskJoinMode::Grace {
        println!(
            "residency: {} of {} partitions stayed in memory; final budget {} KB",
            report.resident_partitions,
            report.num_partitions,
            report.final_budget >> 10
        );
        // Transition-by-transition attribution, capped: the full list
        // lives in the JSON report's config block and the flightrec.
        const SHOWN: usize = 12;
        for t in report.transitions.iter().take(SHOWN) {
            println!("  {t}");
        }
        if report.transitions.len() > SHOWN {
            println!("  ... and {} more transitions", report.transitions.len() - SHOWN);
        }
    }
    for e in &report.degradation {
        let (action, detail) = match e.kind {
            phj_disk::DegradationKind::Repartition { fanout, .. } => ("repartition", fanout as u64),
            phj_disk::DegradationKind::NljFallback { chunks } => ("nlj_fallback", chunks as u64),
        };
        log::warn(
            "degradation",
            &format!("degraded: {e}"),
            &[
                ("partition", e.partition.clone()),
                ("depth", e.depth.to_string()),
                ("bytes", e.bytes.to_string()),
                ("budget", e.budget.to_string()),
                ("action", action.to_string()),
                ("detail", detail.to_string()),
            ],
        );
    }
    if fault.is_active() || report.read_retries + report.write_retries > 0 {
        log::warn(
            "faults",
            &format!(
                "faults: injected={} read_retries={} write_retries={} slow_stall_us={}",
                report.faults_injected, report.read_retries, report.write_retries,
                report.slow_stall_us
            ),
            &[
                ("injected", report.faults_injected.to_string()),
                ("read_retries", report.read_retries.to_string()),
                ("write_retries", report.write_retries.to_string()),
                ("slow_stall_us", report.slow_stall_us.to_string()),
            ],
        );
    }
    if let Some(mut rec) = recorder {
        if let Some(root) = root {
            rec.end(root, NativeModel.snapshot());
        }
        let mut run = RunReport::from_recorder("disk", rec, NativeModel.snapshot(), wall_ns);
        run.tuples = fb.num_tuples() + fp.num_tuples();
        run.matches = report.matches;
        run.config_kv("mem_budget", cfg.mem_budget);
        run.config_kv("mode", mode.label());
        run.config_kv("stripes", stripes);
        run.config_kv("max_depth", max_depth);
        if mode != phj_disk::DiskJoinMode::Grace {
            run.config_kv("resident_partitions", report.resident_partitions);
            run.config_kv("final_budget", report.final_budget);
            run.config_kv("transitions", report.transitions.len());
        }
        run.config_kv("checksum", format!("{:#018x}", report.checksum));
        if fault.is_active() {
            run.config_kv("fault_seed", fault.seed);
        }
        if fault.is_active() || !report.degradation.is_empty() {
            run.faults = Some(phj_obs::FaultsSection {
                faults_injected: report.faults_injected,
                read_retries: report.read_retries,
                write_retries: report.write_retries,
                slow_stall_us: report.slow_stall_us,
                degradation: report
                    .degradation
                    .iter()
                    .map(|e| phj_obs::DegradationRow {
                        partition: e.partition.clone(),
                        depth: e.depth as u64,
                        bytes: e.bytes,
                        budget: e.budget,
                        action: match e.kind {
                            phj_disk::DegradationKind::Repartition { .. } => "repartition",
                            phj_disk::DegradationKind::NljFallback { .. } => "nlj_fallback",
                        }
                        .to_string(),
                        detail: match e.kind {
                            phj_disk::DegradationKind::Repartition { fanout, .. } => fanout as u64,
                            phj_disk::DegradationKind::NljFallback { chunks } => chunks as u64,
                        },
                    })
                    .collect(),
            });
        }
        obs_out.write(&mut run)?;
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn cmd_tune(args: &Args) -> Result<(), String> {
    args.allow(&[
        "build-mb", "tuple-size", "profile-regions", "heatmap", "json", "trace-out",
        "metrics-addr", "sample-interval", "dashboard", "width", "explain", "cost-model",
        "flightrec", "postmortem", "log-format",
    ])?;
    let build_mb = args.get_usize("build-mb", 8)?;
    let tuple_size = args.get_usize("tuple-size", 20)?;
    if wants_regions(args) {
        println!("note: --profile-regions/--heatmap attribute simulated accesses; tune runs natively");
    }
    let spec = JoinSpec {
        build_tuples: tuples_for(build_mb << 20, tuple_size),
        tuple_size,
        matches_per_build: 2,
        pct_match: 100,
        seed: 0x70E,
    };
    let gen = spec.generate();
    let obs_out = ObsOut::from_args(args)?;
    let mut recorder = obs_out.recorder();
    let root = recorder.as_mut().map(|r| r.begin("run", NativeModel.snapshot()));
    let t0 = Instant::now();
    // Each measured configuration becomes its own span; under the native
    // model wall-clock is the signal, so the spans carry best-of-3 ms.
    let measure = |rec: &mut Option<Recorder>, scheme: JoinScheme| {
        let span = rec.as_mut().map(|r| r.begin("measure", NativeModel.snapshot()));
        if let Some(r) = rec.as_mut() {
            r.meta("scheme", scheme.label());
        }
        let best = (0..3)
            .map(|_| {
                let mut sink = CountSink::new();
                let t0 = Instant::now();
                phj::join::join_pair(
                    &mut NativeModel,
                    &phj::join::JoinParams { scheme, use_stored_hash: true },
                    &gen.build,
                    &gen.probe,
                    1,
                    &mut sink,
                );
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        if let Some(r) = rec.as_mut() {
            r.meta("best_ms", format!("{:.3}", best * 1e3));
            r.end(span.unwrap(), NativeModel.snapshot());
        }
        best
    };
    let base = measure(&mut recorder, JoinScheme::Baseline);
    println!("baseline: {:.1} ms", base * 1e3);
    println!("  G    ms  speedup");
    for g in [2usize, 4, 8, 16, 32, 64] {
        let t = measure(&mut recorder, JoinScheme::Group { g });
        println!("{g:>3} {:>6.1}  {:.2}x", t * 1e3, base / t);
    }
    println!("  D    ms  speedup");
    for d in [1usize, 2, 4, 8, 16] {
        let t = measure(&mut recorder, JoinScheme::Swp { d });
        println!("{d:>3} {:>6.1}  {:.2}x", t * 1e3, base / t);
    }
    let wall = t0.elapsed();
    if let Some(mut rec) = recorder.take() {
        rec.end(root.unwrap(), NativeModel.snapshot());
        let mut report =
            RunReport::from_recorder("tune", rec, NativeModel.snapshot(), wall.as_nanos() as u64);
        // Full workload fingerprint, so a diffed pair of tune reports can
        // prove it compared like with like.
        report.config_kv("build_mb", build_mb);
        report.config_kv("tuple_size", tuple_size);
        report.config_kv("build_tuples", spec.build_tuples);
        report.config_kv("probe_tuples", spec.probe_tuples());
        report.config_kv("matches_per_build", spec.matches_per_build);
        report.config_kv("pct_match", spec.pct_match);
        report.config_kv("seed", spec.seed);
        report.tuples = (gen.build.num_tuples() + gen.probe.num_tuples()) as u64;
        obs_out.write(&mut report)?;
    }
    Ok(())
}

fn cmd_params(args: &Args) -> Result<(), String> {
    args.allow(&["tuple-size", "cost-model", "flightrec", "postmortem", "log-format"])?;
    let tuple_size = args.get_usize("tuple-size", 100)?;
    let cfg = MemConfig::paper();
    let model = cost_model_of(args)?;
    let probe_costs = model.probe_stage_costs(true, 2 * tuple_size);
    let build_costs = model.build_stage_costs(true);
    let part_costs = model.partition_stage_costs(tuple_size);
    if model != CostModel::default() {
        let overrides: Vec<String> = model
            .entries()
            .into_iter()
            .zip(CostModel::default().entries())
            .filter(|(a, b)| a.1 != b.1)
            .map(|(a, _)| format!("{}={}", a.0, a.1))
            .collect();
        println!("cost model overrides: {}", overrides.join(", "));
    }
    println!("Table-2 memory system: T={} T_next={} cycles", cfg.t_full, cfg.t_next);
    println!(
        "probe:     Theorem 1 G >= {:<4} Theorem 2 D >= {}",
        min_group_size(cfg.t_full, cfg.t_next, &probe_costs).g,
        min_prefetch_distance(cfg.t_full, cfg.t_next, &probe_costs)
    );
    println!(
        "build:     Theorem 1 G >= {:<4} Theorem 2 D >= {}",
        min_group_size(cfg.t_full, cfg.t_next, &build_costs).g,
        min_prefetch_distance(cfg.t_full, cfg.t_next, &build_costs)
    );
    println!(
        "partition: Theorem 1 G >= {:<4} Theorem 2 D >= {}",
        min_group_size(cfg.t_full, cfg.t_next, &part_costs).g,
        min_prefetch_distance(cfg.t_full, cfg.t_next, &part_costs)
    );
    let _ = single_relation(1, tuple_size); // sanity: tuple size valid
    Ok(())
}
