//! `phj top`: live view of a daemon's query table.
//!
//! Polls the daemon's `Status` request and renders the rows as a
//! fixed-width table — in-flight queries first (oldest at the top),
//! then the recently-completed tail the registry retains. One snapshot
//! by default; `--iters N --interval-ms M` refreshes like `top(1)`
//! (`--iters 0` = until interrupted), clearing the screen between
//! frames. The same table is served as JSON at the metrics endpoint's
//! `/queries` route; this command is the terminal-native view.

use std::time::Duration;

use phj_obs::QUERY_STATES;
use phj_server::proto::{Request, Response, StatusRow};
use phj_server::Connection;

use crate::args::Args;

/// Kind code → short name (mirrors `phj_server::query::KIND_*`).
fn kind_name(kind: u8) -> &'static str {
    match kind {
        1 => "join",
        2 => "agg",
        3 => "disk",
        _ => "?",
    }
}

fn state_name(state: u8) -> &'static str {
    QUERY_STATES.get(state as usize).copied().unwrap_or("?")
}

/// Render one status snapshot as a table.
fn render(rows: &[StatusRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6}  {:>18}  {:<4}  {:<10}  {:>9}  {:>9}  {:>4}  {:>9}  {:>9}  {:>9}\n",
        "QID", "TRACE", "KIND", "STATE", "AGE_MS", "GRANT_MB", "SHED", "QWAIT_US", "GWAIT_US",
        "EXEC_US"
    ));
    for r in rows {
        let trace = if r.trace_id == 0 {
            "-".to_string()
        } else {
            format!("{:#018x}", r.trace_id)
        };
        out.push_str(&format!(
            "{:>6}  {:>18}  {:<4}  {:<10}  {:>9.1}  {:>9.1}  {:>4}  {:>9}  {:>9}  {:>9}\n",
            r.query_id,
            trace,
            kind_name(r.kind),
            state_name(r.state),
            r.age_us as f64 / 1e3,
            r.grant_bytes as f64 / (1u64 << 20) as f64,
            r.shed_count,
            r.queue_wait_us,
            r.grant_wait_us,
            r.exec_us,
        ));
    }
    if rows.is_empty() {
        out.push_str("(no queries yet)\n");
    }
    out
}

/// `phj top`: poll a daemon's live query table.
pub fn cmd_top(args: &Args) -> Result<(), String> {
    args.allow(&[
        "addr", "interval-ms", "iters", "log-format", "flightrec", "postmortem",
    ])?;
    let addr = args.get_str("addr", "");
    if addr.is_empty() {
        return Err("top needs --addr HOST:PORT (the daemon's `serving on` line)".to_string());
    }
    let interval = Duration::from_millis(args.get_usize("interval-ms", 1_000)?.max(10) as u64);
    let iters = args.get_usize("iters", 1)?;
    let mut frame = 0usize;
    loop {
        // One connection per frame: the daemon's idle-timeout reaper
        // must never kill a long-lived watcher mid-run.
        let mut conn =
            Connection::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
        let rows = match conn.request(&Request::Status) {
            Ok(Response::Status(rows)) => rows,
            Ok(other) => return Err(format!("unexpected response to Status: {other:?}")),
            Err(e) => return Err(format!("{addr}: {e}")),
        };
        frame += 1;
        if frame > 1 {
            // ANSI clear + home between refreshes, top(1)-style.
            print!("\x1b[2J\x1b[H");
        }
        let live = rows.iter().filter(|r| r.state < 5).count();
        println!("phj top — {addr}: {live} in flight, {} shown", rows.len());
        print!("{}", render(&rows));
        if iters != 0 && frame >= iters {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(state: u8) -> StatusRow {
        StatusRow {
            query_id: 7,
            trace_id: 0xABCD,
            kind: 1,
            state,
            age_us: 1_500,
            grant_bytes: 2 << 20,
            shed_count: 1,
            queue_wait_us: 10,
            grant_wait_us: 20,
            exec_us: 30,
        }
    }

    #[test]
    fn renders_rows_and_placeholder() {
        let s = render(&[row(3)]);
        assert!(s.contains("executing"), "{s}");
        assert!(s.contains("join"), "{s}");
        assert!(s.contains("0x000000000000abcd"), "{s}");
        assert!(render(&[]).contains("(no queries yet)"));
    }

    #[test]
    fn untraced_rows_render_a_dash() {
        let mut r = row(5);
        r.trace_id = 0;
        let s = render(&[r]);
        assert!(s.contains("done"), "{s}");
        // The TRACE column shows `-` rather than a zero id.
        assert!(s.contains("  -  ") || s.contains(" -  "), "{s}");
    }
}
