//! CLI wiring for live telemetry.
//!
//! `--metrics-addr`, `--sample-interval`, or `--dashboard` turn the
//! global metrics registry on for the run; without any of them nothing
//! is installed, no threads start, and run reports come out byte-for-byte
//! identical to a build that never heard of telemetry.
//!
//! When enabled:
//! * the background [`Sampler`] scrapes every counter/gauge into a
//!   fixed-capacity ring (`--sample-interval` ms, default 50);
//! * `--metrics-addr HOST:PORT` additionally serves the live registry in
//!   Prometheus text format (`GET /metrics`); port 0 binds an ephemeral
//!   port and prints the resolved address;
//! * `--dashboard` redraws a sparkline view of the ring about once a
//!   second (stderr) and prints the final view when the run ends;
//! * any run report written by the command gains a `timeseries` section
//!   derived from the ring ([`attach`] is called from `ObsOut::write`).

use std::sync::Mutex;
use std::time::{Duration, Instant};

use phj_metrics::{MetricsServer, Sampler, TimeSeriesRing};
use phj_obs::{RunReport, TimeseriesRow, TimeseriesSection};

use crate::args::Args;

/// Samples kept in the ring (oldest dropped beyond this).
const RING_CAP: usize = 600;
/// Sampling interval used when telemetry is on but `--sample-interval`
/// was not given.
const DEFAULT_INTERVAL_MS: usize = 50;

struct State {
    sampler: Option<Sampler>,
    server: Option<MetricsServer>,
    interval_ms: u64,
    dashboard: bool,
    width: usize,
    /// Frozen section, built once when the sampler is stopped.
    section: Option<TimeseriesSection>,
}

static STATE: Mutex<Option<State>> = Mutex::new(None);

/// Start telemetry if any of its flags are present. Call once, before
/// the command runs.
pub fn init(args: &Args) -> Result<(), String> {
    let addr = args.get_str("metrics-addr", "");
    let interval_given = !args.get_str("sample-interval", "").is_empty();
    let dashboard = args.flag("dashboard");
    if addr.is_empty() && !interval_given && !dashboard {
        return Ok(());
    }
    let interval_ms = args.get_usize("sample-interval", DEFAULT_INTERVAL_MS)?;
    if interval_ms == 0 {
        return Err("--sample-interval must be at least 1 (milliseconds)".to_string());
    }
    let width = args.get_usize("width", phj_obs::spark::DEFAULT_WIDTH)?;
    let registry = phj_metrics::install().clone();
    let server = match addr.as_str() {
        "" => None,
        addr => {
            let s = MetricsServer::start(addr, registry.clone())
                .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
            println!("metrics: http://{}/metrics", s.local_addr());
            Some(s)
        }
    };
    let observer = dashboard.then(|| live_observer(interval_ms as u64, width));
    let sampler = Sampler::start(
        registry,
        Duration::from_millis(interval_ms as u64),
        RING_CAP,
        observer,
    );
    *STATE.lock().unwrap() = Some(State {
        sampler: Some(sampler),
        server,
        interval_ms: interval_ms as u64,
        dashboard,
        width,
        section: None,
    });
    Ok(())
}

/// The `--dashboard` live view: redraw the sparkline block on stderr at
/// most once a second (the sampler may tick far faster).
fn live_observer(interval_ms: u64, width: usize) -> Box<dyn Fn(&TimeSeriesRing) + Send> {
    let last_draw = Mutex::new(None::<Instant>);
    Box::new(move |ring| {
        let mut last = last_draw.lock().unwrap();
        if last.is_some_and(|t| t.elapsed() < Duration::from_secs(1)) {
            return;
        }
        *last = Some(Instant::now());
        let sec = section_of(ring, interval_ms);
        if !sec.series.is_empty() {
            eprint!("-- telemetry ({} samples)\n{}", ring.len(), phj_obs::render_timeseries(&sec, width));
        }
    })
}

/// Convert the sampler's ring into the report section shape.
fn section_of(ring: &TimeSeriesRing, interval_ms: u64) -> TimeseriesSection {
    TimeseriesSection {
        interval_ms,
        capacity: ring.capacity() as u64,
        series: ring
            .series()
            .into_iter()
            .map(|s| TimeseriesRow {
                name: s.name,
                min: s.min,
                max: s.max,
                last: s.last,
                points: s.points,
            })
            .collect(),
    }
}

/// Stop the sampler (final sample included) and cache the frozen section.
fn freeze(state: &mut State) -> Option<TimeseriesSection> {
    if let Some(s) = state.sampler.take() {
        let ring = s.stop();
        let sec = section_of(&ring, state.interval_ms);
        // A run with no instrumented work leaves the ring nameless;
        // omitting the section keeps reports meaningful.
        if !sec.series.is_empty() {
            state.section = Some(sec);
        }
    }
    state.section.clone()
}

/// Attach the sampled time series to a run report. No-op (and the report
/// stays byte-identical) when telemetry is off.
pub fn attach(report: &mut RunReport) {
    if let Some(state) = STATE.lock().unwrap().as_mut() {
        report.timeseries = freeze(state);
    }
}

/// End-of-run hook: print the final dashboard view and stop the server.
pub fn finish() {
    if let Some(state) = STATE.lock().unwrap().as_mut() {
        let section = freeze(state);
        if state.dashboard {
            if let Some(sec) = section {
                print!("{}", phj_obs::render_timeseries(&sec, state.width));
            }
        }
        if let Some(srv) = state.server.take() {
            srv.stop();
        }
    }
}
