//! Morsel-driven parallel GRACE join drivers.
//!
//! Both phases parallelize without touching the single-threaded kernels:
//!
//! * **Partition**: the input is split into page-range morsels
//!   ([`page_morsels`]); each worker runs
//!   the ordinary partition loop over its morsels into *private* output
//!   buffers, and the per-worker partition outputs are concatenated (a
//!   page move, not a copy) at the phase barrier. Tuple placement depends
//!   only on the hash, so the concatenation reproduces a sequential
//!   partitioning's per-partition tuple multisets.
//! * **Build + probe**: partition pairs are scheduled largest-first
//!   ([`lpt_assign`] over pair bytes — the
//!   skew data the partition phase just produced); each worker joins its
//!   pairs with the unmodified sequential kernel into a private
//!   [`CountSink`], merged at the end (XOR checksum and match count are
//!   order-independent). An oversized (skewed) pair recursively
//!   re-partitions inside its task via
//!   [`grace_join_pair_rec`].
//!
//! **Native** ([`parallel_join_native`]) runs real threads with work
//! stealing. **Simulated** ([`parallel_join_sim`]) runs no threads at
//! all: tasks are statically LPT-assigned to `threads` virtual lanes and
//! each lane executes sequentially on its own fresh
//! [`SimEngine`], so repeated runs are
//! deterministic. The merged simulated cost of a phase is the **critical
//! path** — the slowest lane's breakdown — while event counters (cache
//! hits, misses, prefetches) are *summed* over lanes, so region
//! conservation checks keep holding on merged reports.

use phj::grace::{grace_join_pair_rec, grace_join_with_sink, GraceConfig};
use phj::partition::partition_page_range_rec;
use phj::plan;
use phj::sink::{CountSink, JoinSink};
use phj_memsim::{NativeModel, SimEngine, Snapshot};
use phj_obs::{Recorder, RegionsSection};
use phj_storage::{Relation, RelationBuilder};

use crate::pool::{self, WorkerStats};
use crate::schedule::{lpt_assign, page_morsels};

/// Morsels per worker per relation: enough over-decomposition that
/// stealing can rebalance, small enough that per-morsel overhead stays
/// negligible.
const MORSELS_PER_WORKER: usize = 4;

/// One virtual lane's share of a simulated parallel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Lane (virtual worker) index.
    pub lane: usize,
    /// Tasks the lane executed.
    pub tasks: u64,
    /// Simulated cycles the lane consumed across all phases.
    pub cycles: u64,
}

/// Result of [`parallel_join_native`].
pub struct NativeJoinOutcome {
    /// Merged match count + order-independent checksum.
    pub sink: CountSink,
    /// First-pass partition fan-out.
    pub partitions: usize,
    /// Merged span recorder (present when observability was requested).
    pub recorder: Option<Recorder>,
    /// Per-worker counters for the partition phase.
    pub partition_stats: Vec<WorkerStats>,
    /// Per-worker counters for the build+probe phase.
    pub join_stats: Vec<WorkerStats>,
}

/// Result of [`parallel_join_sim`].
pub struct SimJoinOutcome {
    /// Merged match count + order-independent checksum.
    pub sink: CountSink,
    /// First-pass partition fan-out.
    pub partitions: usize,
    /// Merged run totals: critical-path breakdown, summed event counts.
    pub totals: Snapshot,
    /// Merged span recorder (present when observability was requested).
    pub recorder: Option<Recorder>,
    /// Merged per-region attribution (present when profiling was on).
    pub regions: Option<RegionsSection>,
    /// Per-lane share of the simulated work.
    pub lanes: Vec<LaneStats>,
}

/// First-pass fan-out: what the memory budget needs, but at least two
/// pairs per worker so the join phase has something to schedule.
fn fanout(cfg: &GraceConfig, build: &Relation, threads: usize) -> usize {
    let needed = plan::num_partitions(build.size_bytes(), cfg.mem_budget);
    let target = needed.max(2 * threads).max(2);
    plan::coprime_partitions(target.min(cfg.max_active_partitions), 1)
}

/// The partition-phase task list: page-range morsels over both inputs.
/// `true` marks build-side morsels. Weights are page counts.
fn partition_tasks(
    build: &Relation,
    probe: &Relation,
    threads: usize,
) -> (Vec<(bool, std::ops::Range<usize>)>, Vec<u64>) {
    let mut tasks: Vec<(bool, std::ops::Range<usize>)> = Vec::new();
    for r in page_morsels(build.num_pages(), threads, MORSELS_PER_WORKER) {
        tasks.push((true, r));
    }
    for r in page_morsels(probe.num_pages(), threads, MORSELS_PER_WORKER) {
        tasks.push((false, r));
    }
    let weights = tasks.iter().map(|(_, r)| r.len() as u64).collect();
    (tasks, weights)
}

/// Concatenate per-morsel partition outputs (in task order) into one
/// relation per partition and side. Pages move; nothing is copied.
fn concat_parts(
    build: &Relation,
    probe: &Relation,
    p: usize,
    tasks: &[(bool, std::ops::Range<usize>)],
    outputs: Vec<Vec<Relation>>,
) -> (Vec<Relation>, Vec<Relation>) {
    let empty = |rel: &Relation| -> Vec<Relation> {
        (0..p).map(|_| RelationBuilder::new(rel.schema().clone()).finish()).collect()
    };
    let mut bp = empty(build);
    let mut pp = empty(probe);
    for ((is_build, _), out) in tasks.iter().zip(outputs) {
        let dst = if *is_build { &mut bp } else { &mut pp };
        for (j, part) in out.into_iter().enumerate() {
            dst[j].absorb(part);
        }
    }
    (bp, pp)
}

/// In debug builds, replay the join sequentially and require the exact
/// same match count and checksum — the parallel drivers' correctness
/// invariant, enforced on every debug-build run.
fn debug_check_against_sequential(cfg: &GraceConfig, build: &Relation, probe: &Relation, got: &CountSink) {
    if cfg!(debug_assertions) {
        let mut seq = CountSink::new();
        grace_join_with_sink(&mut NativeModel, cfg, build, probe, &mut seq);
        debug_assert_eq!(
            (seq.matches(), seq.checksum()),
            (got.matches(), got.checksum()),
            "parallel join diverged from sequential"
        );
    }
}

/// Parallel GRACE join on real threads (native model, real prefetches).
///
/// `want_obs` turns on span recording: each worker records into its own
/// [`Recorder`] sharing the main recorder's wall-clock origin, and the
/// worker span trees are grafted under the phase spans (tagged
/// `worker=N`) at each barrier, so the merged report shows per-worker
/// lanes without losing any span.
pub fn parallel_join_native(
    cfg: &GraceConfig,
    build: &Relation,
    probe: &Relation,
    threads: usize,
    want_obs: bool,
) -> NativeJoinOutcome {
    let threads = threads.max(1);
    let p = fanout(cfg, build, threads);
    let mut rec = want_obs.then(Recorder::new);
    let origin = rec.as_ref().map(|r| r.origin());
    let root = rec.as_mut().map(|r| {
        let id = r.begin("run", Snapshot::default());
        r.meta("threads", threads);
        id
    });

    // Phase 1: partition both relations from page-range morsels into
    // per-worker private buffers.
    let (tasks, weights) = partition_tasks(build, probe, threads);
    let pass = rec.as_mut().map(|r| {
        let id = r.begin("partition_pass", Snapshot::default());
        r.meta("fanout", p);
        r.meta("moduli", 1);
        r.meta("threads", threads);
        id
    });
    let states: Vec<(NativeModel, Option<Recorder>)> = (0..threads)
        .map(|_| (NativeModel, origin.map(Recorder::with_origin)))
        .collect();
    let scheme = cfg.partition_scheme;
    let (outputs, states, partition_stats) =
        pool::execute(states, &tasks, &weights, |st, _i, (is_build, range)| {
            let rel = if *is_build { build } else { probe };
            partition_page_range_rec(&mut st.0, scheme, rel, range.clone(), p, false, st.1.as_mut())
        });
    if let Some(r) = rec.as_mut() {
        for (w, (_, wrec)) in states.into_iter().enumerate() {
            if let Some(wr) = wrec {
                r.graft(w, Snapshot::default(), wr.finish());
            }
        }
    }
    if let (Some(r), Some(id)) = (rec.as_mut(), pass) {
        r.end(id, Snapshot::default());
    }
    let (bp, pp) = concat_parts(build, probe, p, &tasks, outputs);

    // Phase 2: join pairs, heaviest first, into per-worker sinks.
    let pairs: Vec<(Relation, Relation, usize)> =
        bp.into_iter().zip(pp).enumerate().map(|(i, (b, q))| (b, q, i)).collect();
    let weights: Vec<u64> =
        pairs.iter().map(|(b, q, _)| (b.size_bytes() + q.size_bytes()).max(1) as u64).collect();
    let pass = rec.as_mut().map(|r| {
        let id = r.begin("join_pass", Snapshot::default());
        r.meta("pairs", pairs.len());
        r.meta("threads", threads);
        id
    });
    let states: Vec<(NativeModel, CountSink, Option<Recorder>)> = (0..threads)
        .map(|_| (NativeModel, CountSink::new(), origin.map(Recorder::with_origin)))
        .collect();
    let (_, states, join_stats) =
        pool::execute(states, &pairs, &weights, |st, _i, (b, q, idx)| {
            grace_join_pair_rec(&mut st.0, cfg, b, q, &mut st.1, p, *idx, st.2.as_mut());
        });
    let mut sink = CountSink::new();
    for (w, (_, s, wrec)) in states.into_iter().enumerate() {
        sink.merge(s);
        if let Some(r) = rec.as_mut() {
            if let Some(wr) = wrec {
                r.graft(w, Snapshot::default(), wr.finish());
            }
        }
    }
    if let (Some(r), Some(id)) = (rec.as_mut(), pass) {
        r.end(id, Snapshot::default());
    }
    if let (Some(r), Some(id)) = (rec.as_mut(), root) {
        r.end(id, Snapshot::default());
    }
    debug_check_against_sequential(cfg, build, probe, &sink);
    NativeJoinOutcome { sink, partitions: p, recorder: rec, partition_stats, join_stats }
}

/// One simulated phase: statically LPT-assign tasks to lanes, run each
/// lane sequentially on a fresh engine, merge lane recorders/regions,
/// and return the phase delta (critical-path breakdown, summed stats).
/// `rec` must have the phase span open — lane spans graft under it at
/// `cursor`, the merged timeline's phase start.
#[allow(clippy::too_many_arguments)]
fn run_sim_phase<T, R, F>(
    threads: usize,
    tasks: &[T],
    weights: &[u64],
    want_regions: bool,
    regions: &mut Option<RegionsSection>,
    lanes_out: &mut [LaneStats],
    rec: &mut Option<Recorder>,
    cursor: Snapshot,
    mut f: F,
) -> (Vec<R>, Snapshot)
where
    F: FnMut(&mut SimEngine, Option<&mut Recorder>, usize, &T) -> R,
{
    let assignment = lpt_assign(weights, threads);
    let mut slots: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
    let mut phase = Snapshot::default();
    for (w, list) in assignment.iter().enumerate() {
        let mut engine = SimEngine::paper();
        if want_regions {
            engine.enable_region_profiling();
        }
        let mut lane_rec = rec.as_ref().map(|_| Recorder::new());
        for &i in list {
            slots[i] = Some(f(&mut engine, lane_rec.as_mut(), i, &tasks[i]));
        }
        let snap = engine.snapshot();
        lanes_out[w].tasks += list.len() as u64;
        lanes_out[w].cycles += snap.breakdown.total();
        phase.stats = phase.stats + snap.stats;
        if snap.breakdown.total() > phase.breakdown.total() {
            phase.breakdown = snap.breakdown;
        }
        if let (Some(reg), Some(prof)) = (regions.as_mut(), engine.region_profile()) {
            reg.merge(&RegionsSection::from_profiler(prof));
        }
        if let (Some(r), Some(lr)) = (rec.as_mut(), lane_rec) {
            r.graft(w, cursor, lr.finish());
        }
    }
    let results = slots.into_iter().map(|r| r.expect("task assigned")).collect();
    (results, phase)
}

/// Parallel GRACE join under the cycle simulator, with `threads`
/// deterministic virtual lanes (no OS threads — byte-identical
/// breakdowns across repeated runs).
pub fn parallel_join_sim(
    cfg: &GraceConfig,
    build: &Relation,
    probe: &Relation,
    threads: usize,
    want_obs: bool,
    want_regions: bool,
) -> SimJoinOutcome {
    let threads = threads.max(1);
    let p = fanout(cfg, build, threads);
    let mut rec = want_obs.then(Recorder::new);
    let root = rec.as_mut().map(|r| {
        let id = r.begin("run", Snapshot::default());
        r.meta("threads", threads);
        id
    });
    let mut cursor = Snapshot::default();
    let mut regions = want_regions.then(RegionsSection::default);
    let mut lanes: Vec<LaneStats> =
        (0..threads).map(|lane| LaneStats { lane, ..Default::default() }).collect();

    // Phase 1: partition.
    let (tasks, weights) = partition_tasks(build, probe, threads);
    let pass = rec.as_mut().map(|r| {
        let id = r.begin("partition_pass", cursor);
        r.meta("fanout", p);
        r.meta("moduli", 1);
        r.meta("threads", threads);
        id
    });
    let (outputs, phase) = run_sim_phase(
        threads,
        &tasks,
        &weights,
        want_regions,
        &mut regions,
        &mut lanes,
        &mut rec,
        cursor,
        |engine, lane_rec, _i, (is_build, range)| {
            let rel = if *is_build { build } else { probe };
            partition_page_range_rec(
                engine,
                cfg.partition_scheme,
                rel,
                range.clone(),
                p,
                false,
                lane_rec,
            )
        },
    );
    cursor = cursor + phase;
    if let (Some(r), Some(id)) = (rec.as_mut(), pass) {
        r.end(id, cursor);
    }
    let (bp, pp) = concat_parts(build, probe, p, &tasks, outputs);

    // Phase 2: join pairs.
    let pairs: Vec<(Relation, Relation, usize)> =
        bp.into_iter().zip(pp).enumerate().map(|(i, (b, q))| (b, q, i)).collect();
    let weights: Vec<u64> =
        pairs.iter().map(|(b, q, _)| (b.size_bytes() + q.size_bytes()).max(1) as u64).collect();
    let pass = rec.as_mut().map(|r| {
        let id = r.begin("join_pass", cursor);
        r.meta("pairs", pairs.len());
        r.meta("threads", threads);
        id
    });
    let (task_sinks, phase) = run_sim_phase(
        threads,
        &pairs,
        &weights,
        want_regions,
        &mut regions,
        &mut lanes,
        &mut rec,
        cursor,
        |engine, lane_rec, _i, (b, q, idx)| {
            let mut s = CountSink::new();
            grace_join_pair_rec(engine, cfg, b, q, &mut s, p, *idx, lane_rec);
            s
        },
    );
    cursor = cursor + phase;
    if let (Some(r), Some(id)) = (rec.as_mut(), pass) {
        r.end(id, cursor);
    }
    let mut sink = CountSink::new();
    for s in task_sinks {
        sink.merge(s);
    }
    if let (Some(r), Some(id)) = (rec.as_mut(), root) {
        r.end(id, cursor);
    }
    debug_check_against_sequential(cfg, build, probe, &sink);
    SimJoinOutcome { sink, partitions: p, totals: cursor, recorder: rec, regions, lanes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_storage::{RelationBuilder, Schema};

    fn rel(keys: impl Iterator<Item = u32>, size: usize) -> Relation {
        let mut b = RelationBuilder::new(Schema::key_payload(size));
        let mut t = vec![0u8; size];
        for k in keys {
            t[..4].copy_from_slice(&k.to_le_bytes());
            b.push(&t);
        }
        b.finish()
    }

    fn small_cfg() -> GraceConfig {
        GraceConfig { mem_budget: 16 * 1024, ..Default::default() }
    }

    #[test]
    fn native_matches_sequential_across_thread_counts() {
        let build = rel(0..1500, 40);
        let probe = rel((500..2500).map(|k| k % 2000), 40);
        let cfg = small_cfg();
        let mut seq = CountSink::new();
        grace_join_with_sink(&mut NativeModel, &cfg, &build, &probe, &mut seq);
        for threads in [1, 2, 3, 4] {
            let out = parallel_join_native(&cfg, &build, &probe, threads, false);
            assert_eq!(out.sink, seq, "threads={threads}");
            assert!(out.partitions >= 2);
        }
    }

    #[test]
    fn sim_lanes_match_sequential_and_report_validates() {
        let build = rel(0..800, 40);
        let probe = rel(0..800, 40);
        let cfg = small_cfg();
        let mut seq = CountSink::new();
        grace_join_with_sink(&mut NativeModel, &cfg, &build, &probe, &mut seq);
        let out = parallel_join_sim(&cfg, &build, &probe, 3, true, false);
        assert_eq!(out.sink, seq);
        // Critical path ≤ sum of lane cycles; every lane did something.
        let lane_sum: u64 = out.lanes.iter().map(|l| l.cycles).sum();
        assert!(out.totals.breakdown.total() <= lane_sum);
        assert!(out.totals.breakdown.total() > 0);
        let mut report = phj_obs::RunReport::from_recorder(
            "join",
            out.recorder.unwrap(),
            out.totals,
            1,
        );
        report.simulated = true;
        report.validate().expect("merged parallel report validates");
        // Worker-tagged spans exist under both phases.
        assert!(report
            .spans
            .iter()
            .any(|s| s.meta.iter().any(|(k, v)| k == "worker" && v == "2")));
    }

    #[test]
    fn empty_inputs_join_to_nothing() {
        let build = rel(0..0, 40);
        let probe = rel(0..0, 40);
        let cfg = small_cfg();
        let out = parallel_join_native(&cfg, &build, &probe, 2, false);
        assert_eq!(out.sink.matches(), 0);
        let out = parallel_join_sim(&cfg, &build, &probe, 2, false, false);
        assert_eq!(out.sink.matches(), 0);
    }
}
