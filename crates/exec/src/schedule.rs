//! Skew-aware task scheduling: LPT (longest-processing-time-first)
//! greedy assignment, and page-range morsel construction.
//!
//! Partition pairs after a skewed partitioning can differ in size by
//! orders of magnitude; naive round-robin then leaves most workers idle
//! while one grinds through the heavy pair. LPT — sort tasks by
//! descending weight, give each to the currently least-loaded worker —
//! is the classic 4/3-approximation to makespan and needs only the
//! per-partition sizes the partition phase already produces.

use std::ops::Range;

/// Assign `weights.len()` tasks to `workers` workers, LPT-greedy.
///
/// Returns one task-index list per worker, each in **descending** weight
/// order — the order the worker should execute them (and the order the
/// pool seeds its deque so that bottom-pop yields the largest remaining
/// task while thieves steal the smallest). Ties break toward the lower
/// task index and the lower worker id, so the assignment is fully
/// deterministic.
pub fn lpt_assign(weights: &[u64], workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    let mut lists: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut load = vec![0u64; workers];
    for i in order {
        let w = (0..workers).min_by_key(|&w| (load[w], w)).unwrap();
        load[w] += weights[i];
        lists[w].push(i);
    }
    lists
}

/// Split `num_pages` input pages into morsels of roughly equal size,
/// about `per_worker` morsels per worker (over-decomposed so stealing
/// can rebalance), each at least one page.
pub fn page_morsels(num_pages: usize, workers: usize, per_worker: usize) -> Vec<Range<usize>> {
    if num_pages == 0 {
        return Vec::new();
    }
    let target = (workers.max(1) * per_worker.max(1)).min(num_pages);
    let chunk = num_pages.div_ceil(target);
    (0..num_pages)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(num_pages))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_balances_skewed_weights() {
        // One heavy task and many light ones: the heavy task gets a
        // worker almost to itself.
        let weights = [100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10];
        let lists = lpt_assign(&weights, 2);
        let load = |l: &Vec<usize>| l.iter().map(|&i| weights[i]).sum::<u64>();
        assert_eq!(load(&lists[0]) + load(&lists[1]), 200);
        assert!(load(&lists[0]).abs_diff(load(&lists[1])) <= 20);
        // Worker 0 took the heavy task first.
        assert_eq!(lists[0][0], 0);
        // Each list is in descending weight order.
        for l in &lists {
            for pair in l.windows(2) {
                assert!(weights[pair[0]] >= weights[pair[1]]);
            }
        }
    }

    #[test]
    fn lpt_assigns_every_task_exactly_once() {
        let weights: Vec<u64> = (0..37).map(|i| (i * 7919) % 100).collect();
        for workers in [1, 2, 3, 8, 64] {
            let lists = lpt_assign(&weights, workers);
            assert_eq!(lists.len(), workers);
            let mut seen: Vec<usize> = lists.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..37).collect::<Vec<_>>());
        }
    }

    #[test]
    fn morsels_cover_all_pages_without_overlap() {
        for (pages, workers) in [(0, 4), (1, 4), (7, 2), (100, 3), (5, 16)] {
            let m = page_morsels(pages, workers, 4);
            let covered: usize = m.iter().map(|r| r.len()).sum();
            assert_eq!(covered, pages);
            for pair in m.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            if pages > 0 {
                assert_eq!(m[0].start, 0);
                assert_eq!(m.last().unwrap().end, pages);
                assert!(m.len() <= pages.max(1));
            }
        }
    }
}
