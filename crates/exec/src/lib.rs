#![warn(missing_docs)]

//! # phj-exec — morsel-driven parallel join executor
//!
//! Intra-query parallelism for the prefetching hash join, in the
//! morsel-driven style: inputs are split into page-range **morsels**,
//! a fixed pool of workers pulls work from per-worker Chase–Lev
//! work-stealing deques (plus a global injector), and partition pairs
//! are scheduled **largest-first** (LPT) using the partition sizes the
//! partition phase just produced — the executor's skew defense.
//!
//! The single-threaded kernels in `phj` are reused unchanged; this
//! crate only decides *who runs what when* and how the results (and the
//! observability record) merge back together:
//!
//! * native runs use real `std::thread::scope` threads, real stealing,
//!   and per-worker wall-clock counters;
//! * simulated runs (`--sim`) spawn **no threads**: tasks are statically
//!   LPT-assigned to virtual lanes, each lane executes sequentially on
//!   its own fresh cycle engine, and the merged cost of a phase is its
//!   **critical path** (the slowest lane) while event counters sum —
//!   so `--threads N` yields a deterministic simulated breakdown;
//! * per-worker span recorders are grafted into one merged
//!   [`Recorder`](phj_obs::Recorder) tree (tagged `worker=N`) at each
//!   phase barrier, losslessly: every span a worker recorded appears in
//!   the merged report, and per-lane cycle sums stay within their
//!   parent phase span.
//!
//! Everything is std-only: the deque, injector, and pool are hand-rolled
//! in safe Rust (see [`deque`]).

pub mod agg;
pub mod deque;
pub mod join;
pub mod pool;
pub mod schedule;
mod telemetry;

pub use agg::{agg_checksum, parallel_agg_native, parallel_agg_sim, NativeAggOutcome, SimAggOutcome};
pub use deque::{Injector, Steal, WorkDeque};
pub use join::{
    parallel_join_native, parallel_join_sim, LaneStats, NativeJoinOutcome, SimJoinOutcome,
};
pub use pool::{execute, Pool, WorkerStats};
pub use schedule::{lpt_assign, page_morsels};
