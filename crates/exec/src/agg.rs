//! Morsel-driven parallel aggregation.
//!
//! Each worker aggregates its page-range morsels into private
//! [`AggTable`]s with the unmodified sequential kernel
//! ([`aggregate_page_range`]); the per-morsel tables are folded together
//! at the barrier with [`AggTable::merge_from`] (COUNT and SUM are
//! commutative and associative, so the merged table equals the
//! sequential one for any morsel split). The simulated driver mirrors
//! [`parallel_join_sim`](crate::join::parallel_join_sim): static LPT
//! lanes, critical-path cycles, summed event counts.

use phj::aggregate::{aggregate, aggregate_page_range, AggScheme, AggTable};
use phj_memsim::{NativeModel, SimEngine, Snapshot};
use phj_obs::{Recorder, RegionsSection};
use phj_storage::Relation;

use crate::join::LaneStats;
use crate::pool::{self, WorkerStats};
use crate::schedule::{lpt_assign, page_morsels};

/// Morsels per worker (over-decomposed for stealing, as in the join).
const MORSELS_PER_WORKER: usize = 4;

/// Result of [`parallel_agg_native`].
pub struct NativeAggOutcome {
    /// The merged aggregation table.
    pub table: AggTable,
    /// Merged span recorder (present when observability was requested).
    pub recorder: Option<Recorder>,
    /// Per-worker execution counters.
    pub stats: Vec<WorkerStats>,
}

/// Result of [`parallel_agg_sim`].
pub struct SimAggOutcome {
    /// The merged aggregation table.
    pub table: AggTable,
    /// Merged run totals: critical-path breakdown, summed event counts.
    pub totals: Snapshot,
    /// Merged span recorder (present when observability was requested).
    pub recorder: Option<Recorder>,
    /// Merged per-region attribution (present when profiling was on).
    pub regions: Option<RegionsSection>,
    /// Per-lane share of the simulated work.
    pub lanes: Vec<LaneStats>,
}

/// Order-independent digest of an aggregation result: XOR of one FNV
/// hash per group over (key, count, sum). Two tables built from the same
/// input in any morsel/merge order digest identically.
pub fn agg_checksum(table: &AggTable) -> u64 {
    table
        .iter()
        .map(|e| {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            let mut eat = |bytes: &[u8]| {
                for &b in bytes {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01B3);
                }
            };
            eat(e.key());
            eat(&e.count.to_le_bytes());
            eat(&e.sum.to_le_bytes());
            h.max(1)
        })
        .fold(0u64, |acc, h| acc ^ h)
}

/// Fold per-morsel tables (in task order) into one, sized for the sum of
/// the per-morsel group counts.
fn merge_tables(buckets: usize, parts: Vec<AggTable>) -> AggTable {
    let groups: usize = parts.iter().map(|t| t.num_groups()).sum();
    let mut table = AggTable::new(buckets, groups.max(1));
    for part in &parts {
        table.merge_from(part);
    }
    table
}

/// In debug builds, replay the aggregation sequentially and require the
/// identical group set.
fn debug_check_against_sequential<F>(
    scheme: AggScheme,
    input: &Relation,
    buckets: usize,
    extract: &F,
    got: &AggTable,
) where
    F: Fn(&[u8]) -> i64,
{
    if cfg!(debug_assertions) {
        let seq = aggregate(&mut NativeModel, scheme, input, buckets, extract);
        debug_assert_eq!(
            (seq.num_groups(), agg_checksum(&seq)),
            (got.num_groups(), agg_checksum(got)),
            "parallel aggregation diverged from sequential"
        );
    }
}

/// Parallel aggregation on real threads (native model).
pub fn parallel_agg_native<F>(
    scheme: AggScheme,
    input: &Relation,
    buckets: usize,
    extract: F,
    threads: usize,
    want_obs: bool,
) -> NativeAggOutcome
where
    F: Fn(&[u8]) -> i64 + Sync,
{
    let threads = threads.max(1);
    let mut rec = want_obs.then(Recorder::new);
    let origin = rec.as_ref().map(|r| r.origin());
    let root = rec.as_mut().map(|r| {
        let id = r.begin("run", Snapshot::default());
        r.meta("threads", threads);
        id
    });
    let pass = rec.as_mut().map(|r| {
        let id = r.begin("aggregate", Snapshot::default());
        r.meta("threads", threads);
        id
    });
    let tasks = page_morsels(input.num_pages(), threads, MORSELS_PER_WORKER);
    let weights: Vec<u64> = tasks.iter().map(|r| r.len() as u64).collect();
    let states: Vec<(NativeModel, Option<Recorder>)> = (0..threads)
        .map(|_| (NativeModel, origin.map(Recorder::with_origin)))
        .collect();
    let (parts, states, stats) = pool::execute(states, &tasks, &weights, |st, _i, range| {
        let span = st.1.as_mut().map(|r| {
            let id = r.begin("agg_morsel", Snapshot::default());
            r.meta("pages", range.len());
            id
        });
        let t = aggregate_page_range(&mut st.0, scheme, input, range.clone(), buckets, &extract);
        if let (Some(r), Some(id)) = (st.1.as_mut(), span) {
            r.end(id, Snapshot::default());
        }
        t
    });
    if let Some(r) = rec.as_mut() {
        for (w, (_, wrec)) in states.into_iter().enumerate() {
            if let Some(wr) = wrec {
                r.graft(w, Snapshot::default(), wr.finish());
            }
        }
    }
    if let (Some(r), Some(id)) = (rec.as_mut(), pass) {
        r.end(id, Snapshot::default());
    }
    let table = merge_tables(buckets, parts);
    if let (Some(r), Some(id)) = (rec.as_mut(), root) {
        r.end(id, Snapshot::default());
    }
    debug_check_against_sequential(scheme, input, buckets, &extract, &table);
    NativeAggOutcome { table, recorder: rec, stats }
}

/// Parallel aggregation under the cycle simulator on `threads`
/// deterministic virtual lanes.
pub fn parallel_agg_sim<F>(
    scheme: AggScheme,
    input: &Relation,
    buckets: usize,
    extract: F,
    threads: usize,
    want_obs: bool,
    want_regions: bool,
) -> SimAggOutcome
where
    F: Fn(&[u8]) -> i64,
{
    let threads = threads.max(1);
    let mut rec = want_obs.then(Recorder::new);
    let root = rec.as_mut().map(|r| {
        let id = r.begin("run", Snapshot::default());
        r.meta("threads", threads);
        id
    });
    let pass = rec.as_mut().map(|r| {
        let id = r.begin("aggregate", Snapshot::default());
        r.meta("threads", threads);
        id
    });
    let tasks = page_morsels(input.num_pages(), threads, MORSELS_PER_WORKER);
    let weights: Vec<u64> = tasks.iter().map(|r| r.len() as u64).collect();
    let assignment = lpt_assign(&weights, threads);
    let mut regions = want_regions.then(RegionsSection::default);
    let mut lanes: Vec<LaneStats> =
        (0..threads).map(|lane| LaneStats { lane, ..Default::default() }).collect();
    let mut slots: Vec<Option<AggTable>> = (0..tasks.len()).map(|_| None).collect();
    let mut phase = Snapshot::default();
    for (w, list) in assignment.iter().enumerate() {
        let mut engine = SimEngine::paper();
        if want_regions {
            engine.enable_region_profiling();
        }
        let mut lane_rec = rec.as_ref().map(|_| Recorder::new());
        for &i in list {
            let span = lane_rec.as_mut().map(|r| {
                let id = r.begin("agg_morsel", engine.snapshot());
                r.meta("pages", tasks[i].len());
                id
            });
            let t = aggregate_page_range(
                &mut engine,
                scheme,
                input,
                tasks[i].clone(),
                buckets,
                &extract,
            );
            if let (Some(r), Some(id)) = (lane_rec.as_mut(), span) {
                r.end(id, engine.snapshot());
            }
            slots[i] = Some(t);
        }
        let snap = engine.snapshot();
        lanes[w].tasks += list.len() as u64;
        lanes[w].cycles += snap.breakdown.total();
        phase.stats = phase.stats + snap.stats;
        if snap.breakdown.total() > phase.breakdown.total() {
            phase.breakdown = snap.breakdown;
        }
        if let (Some(reg), Some(prof)) = (regions.as_mut(), engine.region_profile()) {
            reg.merge(&RegionsSection::from_profiler(prof));
        }
        if let (Some(r), Some(lr)) = (rec.as_mut(), lane_rec) {
            r.graft(w, Snapshot::default(), lr.finish());
        }
    }
    if let (Some(r), Some(id)) = (rec.as_mut(), pass) {
        r.end(id, phase);
    }
    let table = merge_tables(buckets, slots.into_iter().map(|t| t.expect("morsel ran")).collect());
    if let (Some(r), Some(id)) = (rec.as_mut(), root) {
        r.end(id, phase);
    }
    debug_check_against_sequential(scheme, input, buckets, &extract, &table);
    SimAggOutcome { table, totals: phase, recorder: rec, regions, lanes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj::hash::hash_key;
    use phj_storage::{RelationBuilder, Schema};

    fn input(rows: usize, keys: usize) -> Relation {
        let mut b = RelationBuilder::new(Schema::key_payload(24));
        let mut t = [0u8; 24];
        for i in 0..rows {
            t[..4].copy_from_slice(&((i % keys) as u32).to_le_bytes());
            t[4] = (i % 7) as u8;
            b.push(&t);
        }
        b.finish()
    }

    #[test]
    fn parallel_agg_equals_sequential() {
        let rel = input(5000, 97);
        let extract = |t: &[u8]| t[4] as i64;
        let seq = aggregate(&mut NativeModel, AggScheme::Group { g: 8 }, &rel, 101, extract);
        for threads in [1, 2, 4] {
            let nat = parallel_agg_native(AggScheme::Group { g: 8 }, &rel, 101, extract, threads, false);
            assert_eq!(nat.table.num_groups(), seq.num_groups(), "threads={threads}");
            assert_eq!(agg_checksum(&nat.table), agg_checksum(&seq), "threads={threads}");
            let sim = parallel_agg_sim(AggScheme::Swp { d: 2 }, &rel, 101, extract, threads, false, false);
            assert_eq!(sim.table.num_groups(), seq.num_groups());
            assert_eq!(agg_checksum(&sim.table), agg_checksum(&seq));
            assert!(threads == 1 || sim.totals.breakdown.total() > 0);
        }
        // Every group's accumulators survive the merge exactly.
        let key = 11u32.to_le_bytes();
        let nat = parallel_agg_native(AggScheme::Baseline, &rel, 101, extract, 3, false);
        let a = nat.table.lookup(hash_key(&key), &key).unwrap();
        let b = seq.lookup(hash_key(&key), &key).unwrap();
        assert_eq!((a.count, a.sum), (b.count, b.sum));
    }

    #[test]
    fn checksum_is_order_independent_but_value_sensitive() {
        let rel = input(400, 13);
        let extract = |t: &[u8]| t[4] as i64;
        let a = aggregate(&mut NativeModel, AggScheme::Baseline, &rel, 17, extract);
        let b = aggregate(&mut NativeModel, AggScheme::Baseline, &rel, 5, extract);
        // Different bucket counts order entries differently; same digest.
        assert_eq!(agg_checksum(&a), agg_checksum(&b));
        let other = aggregate(&mut NativeModel, AggScheme::Baseline, &rel, 17, |t| t[4] as i64 + 1);
        assert_ne!(agg_checksum(&a), agg_checksum(&other));
    }
}
