//! The scoped worker pool: seed per-worker deques LPT-greedy, run one
//! OS thread per worker, rebalance by stealing.
//!
//! [`execute`] is a single fork-join region: it consumes one state value
//! per worker (the worker's private memory model, sink, recorder…),
//! runs every task exactly once, and hands the states back along with
//! the per-task results and per-worker counters. There is no long-lived
//! pool object — the join drivers call `execute` once per phase, which
//! keeps the barrier between phases explicit and the borrows simple
//! (`std::thread::scope` lets workers share the task slice by
//! reference).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::deque::{Injector, Steal, WorkDeque};
use crate::schedule::lpt_assign;
use crate::telemetry::exec_metrics;

/// Per-worker execution counters for one [`execute`] region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Tasks this worker ran.
    pub tasks: u64,
    /// Tasks it obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Wall time spent inside task bodies, in nanoseconds.
    pub busy_ns: u64,
    /// Wall time spent looking for work, in nanoseconds.
    pub idle_ns: u64,
}

/// Run every task exactly once across `states.len()` workers.
///
/// Tasks are pre-assigned to workers by [`lpt_assign`] over `weights`
/// (heaviest first to the least-loaded worker); a worker that drains its
/// own deque pulls from the injector, then steals FIFO from the other
/// workers, so a bad estimate degrades into rebalancing rather than
/// idling. `f` is called as `f(&mut state, task_index, &tasks[task_index])`.
///
/// Returns the per-task results (indexed like `tasks`), the worker
/// states (in worker order, for merging), and the per-worker counters.
///
/// With a single worker the tasks run inline on the caller's thread in
/// the same LPT order — no threads are spawned, so a `threads == 1`
/// driver stays deterministic to the instruction.
pub fn execute<W, T, R, F>(
    states: Vec<W>,
    tasks: &[T],
    weights: &[u64],
    f: F,
) -> (Vec<R>, Vec<W>, Vec<WorkerStats>)
where
    W: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut W, usize, &T) -> R + Sync,
{
    assert_eq!(tasks.len(), weights.len(), "one weight per task");
    assert!(!states.is_empty(), "need at least one worker");
    let n = states.len();
    let assignment = lpt_assign(weights, n);

    if let Some(m) = exec_metrics() {
        m.workers.set(n as u64);
        m.queue_depth.set(tasks.len() as u64);
    }
    // Journal the fork-join region itself on the caller's thread; workers
    // journal their own task/steal events from their own rings.
    phj_flightrec::event(
        phj_flightrec::EventKind::PhaseEnter,
        phj_flightrec::phase_code("execute"),
        tasks.len() as u64,
        n as u64,
    );

    if n == 1 {
        let mut states = states;
        let mut stats = WorkerStats::default();
        let t0 = Instant::now();
        let mut slots: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
        for &i in &assignment[0] {
            let task_t0 = Instant::now();
            phj_flightrec::event_full(phj_flightrec::EventKind::Task, 0, i as u64, 0);
            slots[i] = Some(f(&mut states[0], i, &tasks[i]));
            stats.tasks += 1;
            if let Some(m) = exec_metrics() {
                m.task_ns.record(task_t0.elapsed().as_nanos() as u64);
                m.queue_depth.set((tasks.len() - stats.tasks as usize) as u64);
            }
        }
        stats.busy_ns = t0.elapsed().as_nanos() as u64;
        publish_worker(&stats);
        phj_flightrec::event(
            phj_flightrec::EventKind::PhaseExit,
            phj_flightrec::phase_code("execute"),
            tasks.len() as u64,
            1,
        );
        let results = slots.into_iter().map(|r| r.expect("task ran")).collect();
        return (results, states, vec![stats]);
    }

    // Seed each worker's deque in reverse (ascending weight), so the
    // owner's LIFO pop yields its largest task first while thieves'
    // FIFO steals take its smallest.
    let deques: Vec<WorkDeque> = assignment
        .iter()
        .map(|list| {
            let d = WorkDeque::with_capacity(tasks.len());
            for &i in list.iter().rev() {
                d.push(i).expect("deque sized for the whole task list");
            }
            d
        })
        .collect();
    let injector = Injector::new();
    let claimed = AtomicUsize::new(0);
    let total = tasks.len();

    // (worker index, state, task-indexed results, counters).
    type WorkerOut<W, R> = (usize, W, Vec<(usize, R)>, WorkerStats);
    let mut out: Vec<WorkerOut<W, R>> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for (w, mut state) in states.into_iter().enumerate() {
            let deques = &deques;
            let injector = &injector;
            let claimed = &claimed;
            let f = &f;
            handles.push(s.spawn(move || {
                let start = Instant::now();
                let mut stats = WorkerStats { worker: w, ..Default::default() };
                let mut results: Vec<(usize, R)> = Vec::new();
                let mut busy_ns = 0u64;
                loop {
                    let next = deques[w]
                        .pop()
                        .or_else(|| injector.pop())
                        .or_else(|| steal_round(w, deques, &mut stats));
                    match next {
                        Some(i) => {
                            let done = claimed.fetch_add(1, Ordering::SeqCst) + 1;
                            if let Some(m) = exec_metrics() {
                                m.queue_depth.set((total - done.min(total)) as u64);
                            }
                            let t0 = Instant::now();
                            phj_flightrec::event_full(
                                phj_flightrec::EventKind::Task,
                                w as u16,
                                i as u64,
                                0,
                            );
                            let r = f(&mut state, i, &tasks[i]);
                            let dt = t0.elapsed().as_nanos() as u64;
                            busy_ns += dt;
                            stats.tasks += 1;
                            if let Some(m) = exec_metrics() {
                                m.task_ns.record(dt);
                            }
                            results.push((i, r));
                        }
                        // Tasks never spawn tasks, so once every task has
                        // been claimed no new work can appear.
                        None if claimed.load(Ordering::SeqCst) >= total => break,
                        None => std::thread::yield_now(),
                    }
                }
                stats.busy_ns = busy_ns;
                stats.idle_ns = (start.elapsed().as_nanos() as u64).saturating_sub(busy_ns);
                publish_worker(&stats);
                (w, state, results, stats)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    phj_flightrec::event(
        phj_flightrec::EventKind::PhaseExit,
        phj_flightrec::phase_code("execute"),
        total as u64,
        n as u64,
    );

    out.sort_by_key(|(w, ..)| *w);
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    let mut states_back = Vec::with_capacity(n);
    let mut all_stats = Vec::with_capacity(n);
    for (_, state, results, stats) in out {
        for (i, r) in results {
            debug_assert!(slots[i].is_none(), "task {i} ran twice");
            slots[i] = Some(r);
        }
        states_back.push(state);
        all_stats.push(stats);
    }
    let results = slots.into_iter().map(|r| r.expect("task unclaimed")).collect();
    (results, states_back, all_stats)
}

/// Publish one worker's finished region counters into the live
/// registry (no-op when telemetry is off).
fn publish_worker(stats: &WorkerStats) {
    if let Some(m) = exec_metrics() {
        m.tasks.add(stats.tasks);
        m.steals.add(stats.steals);
        m.busy_ns.add(stats.busy_ns);
        m.idle_ns.add(stats.idle_ns);
    }
}

/// One full round of steal attempts over the other workers' deques.
fn steal_round(me: usize, deques: &[WorkDeque], stats: &mut WorkerStats) -> Option<usize> {
    let n = deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        loop {
            match deques[victim].steal() {
                Steal::Task(i) => {
                    stats.steals += 1;
                    phj_flightrec::event(
                        phj_flightrec::EventKind::Steal,
                        1,
                        me as u64,
                        victim as u64,
                    );
                    return Some(i);
                }
                Steal::Retry => std::hint::spin_loop(),
                Steal::Empty => break,
            }
        }
    }
    // A fully empty round is journaled only in full mode: misses are
    // frequent during ramp-down and would wash out the ring otherwise.
    phj_flightrec::event_full(phj_flightrec::EventKind::Steal, 0, me as u64, 0);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_task_runs_once_and_results_line_up() {
        for threads in [1usize, 2, 3, 8] {
            let tasks: Vec<u64> = (0..100).collect();
            let weights: Vec<u64> = tasks.iter().map(|t| t % 13 + 1).collect();
            let ran = AtomicU64::new(0);
            let states: Vec<u64> = vec![0; threads];
            let (results, states, stats) = execute(states, &tasks, &weights, |acc, i, t| {
                ran.fetch_add(1, Ordering::SeqCst);
                *acc += t;
                i as u64 * 2
            });
            assert_eq!(ran.load(Ordering::SeqCst), 100);
            assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<u64>>());
            // Per-worker accumulators sum to the whole input.
            assert_eq!(states.iter().sum::<u64>(), tasks.iter().sum::<u64>());
            assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 100);
            assert_eq!(stats.len(), threads);
        }
    }

    #[test]
    fn single_worker_runs_inline_in_lpt_order() {
        let tasks = [1u64, 2, 3];
        let weights = [5u64, 50, 20];
        let (results, states, _) =
            execute(vec![Vec::new()], &tasks, &weights, |log: &mut Vec<usize>, i, _| {
                log.push(i);
                i
            });
        // Results come back task-indexed regardless of execution order...
        assert_eq!(results, vec![0, 1, 2]);
        // ...which was heaviest-first.
        assert_eq!(states[0], vec![1, 2, 0]);
    }

    #[test]
    fn uneven_tasks_still_all_complete() {
        // Tasks that sleep differently force real stealing.
        let tasks: Vec<u64> = (0..32).map(|i| if i == 0 { 20 } else { 1 }).collect();
        let weights = vec![1u64; 32]; // deliberately wrong estimates
        let (results, _, stats) = execute(vec![(); 4], &tasks, &weights, |_, i, ms| {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            i
        });
        assert_eq!(results, (0..32).collect::<Vec<_>>());
        assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 32);
    }
}
