//! The worker pool: seed per-worker deques LPT-greedy, run one OS
//! thread per worker, rebalance by stealing.
//!
//! Two entry points share one scheduling core:
//!
//! * [`execute`] — the original one-shot fork-join region. It consumes
//!   one state value per worker (the worker's private memory model,
//!   sink, recorder…), runs every task exactly once, and hands the
//!   states back along with the per-task results and per-worker
//!   counters. Threads live only for the duration of the call, which
//!   keeps the barrier between join phases explicit and is all the CLI
//!   drivers need.
//! * [`Pool`] — a persistent handle whose worker threads outlive any
//!   single region. A long-running daemon creates one `Pool` at startup
//!   and reuses the same OS threads for every query instead of
//!   respawning per request: [`Pool::spawn`] runs fire-and-forget jobs
//!   (connection handlers), and [`Pool::execute`] runs the same
//!   fork-join region as the free function on the pooled threads.
//!
//! [`execute`] is now a thin wrapper — `Pool::new(n - 1)` plus one
//! region plus shutdown — so both paths exercise identical scheduling
//! code. A region on a `Pool` works by *caller participation*: the
//! calling thread becomes worker 0 and runs the normal work-stealing
//! loop inline, while workers `1..n` are enqueued at the *front* of the
//! pool's job queue (regions must not be starved by a backlog of
//! fire-and-forget jobs). Because the caller is itself a worker, the
//! region makes progress even when every pool thread is busy: worker 0
//! drains and steals everything, and once its own loop is done it
//! dequeues and runs *its own region's* still-queued jobs inline (each
//! finds every task already claimed and no-ops) before blocking on the
//! completion barrier. That drain step is what makes the progress
//! guarantee unconditional: a pool saturated by long-lived
//! [`Pool::spawn`] jobs — or by other callers' regions — never gets the
//! chance to strand a region's jobs in the queue, so mixing persistent
//! connection handlers and fork-join regions on one pool cannot
//! deadlock.
//!
//! Region jobs borrow the caller's stack (the task slice, the deques,
//! `f`). The pool queue requires `'static` jobs, so the borrow is
//! erased with a `transmute` and re-justified at runtime: `execute`
//! blocks on a completion barrier until *every* region job has finished
//! running before it touches the results or lets the borrowed frame
//! unwind — the same argument `std::thread::scope` makes, with the
//! scope's join replaced by the barrier.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::deque::{Injector, Steal, WorkDeque};
use crate::schedule::lpt_assign;
use crate::telemetry::exec_metrics;

/// Per-worker execution counters for one [`execute`] region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Tasks this worker ran.
    pub tasks: u64,
    /// Tasks it obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Wall time spent inside task bodies, in nanoseconds.
    pub busy_ns: u64,
    /// Wall time spent looking for work, in nanoseconds.
    pub idle_ns: u64,
}

/// Run every task exactly once across `states.len()` workers.
///
/// Tasks are pre-assigned to workers by [`lpt_assign`] over `weights`
/// (heaviest first to the least-loaded worker); a worker that drains its
/// own deque pulls from the injector, then steals FIFO from the other
/// workers, so a bad estimate degrades into rebalancing rather than
/// idling. `f` is called as `f(&mut state, task_index, &tasks[task_index])`.
///
/// Returns the per-task results (indexed like `tasks`), the worker
/// states (in worker order, for merging), and the per-worker counters.
///
/// With a single worker the tasks run inline on the caller's thread in
/// the same LPT order — no threads are spawned, so a `threads == 1`
/// driver stays deterministic to the instruction.
pub fn execute<W, T, R, F>(
    states: Vec<W>,
    tasks: &[T],
    weights: &[u64],
    f: F,
) -> (Vec<R>, Vec<W>, Vec<WorkerStats>)
where
    W: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut W, usize, &T) -> R + Sync,
{
    assert!(!states.is_empty(), "need at least one worker");
    let pool = Pool::new(states.len() - 1);
    let out = pool.execute(states, tasks, weights, f);
    pool.shutdown();
    out
}

/// A fire-and-forget job on the pool's queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One queue slot: `region` is 0 for plain [`Pool::spawn`] jobs, or the
/// owning region's id so that region's caller can reclaim the job and
/// run it inline when no pool thread is free to.
struct QueueEntry {
    region: u64,
    job: Job,
}

struct Shared {
    queue: Mutex<VecDeque<QueueEntry>>,
    cv: Condvar,
    stop: AtomicBool,
    /// Region ids start at 1; 0 tags non-region jobs.
    next_region: AtomicU64,
}

/// (state back, task-indexed results, counters) from one region worker.
type WorkerOut<W, R> = (W, Vec<(usize, R)>, WorkerStats);

/// A region job's result slot: filled exactly once, panic payloads kept.
type OutSlot<W, R> = Option<std::thread::Result<WorkerOut<W, R>>>;

/// Completion barrier + result slots for one fork-join region. Shared
/// by `Arc` so a region job's final memory accesses (the barrier
/// increment and its own `Arc` drop) touch only heap state that is
/// allowed to outlive the caller's stack frame.
struct RegionSync<W, R> {
    /// One slot per region job (worker `1..n`), index `w - 1`.
    slots: Mutex<Vec<OutSlot<W, R>>>,
    done: Mutex<usize>,
    cv: Condvar,
}

/// A persistent worker pool whose threads outlive any single
/// [`Pool::execute`] region.
///
/// Jobs submitted with [`Pool::spawn`] run FIFO; regions started with
/// [`Pool::execute`] jump the queue (their per-worker jobs are pushed
/// to the front). [`Pool::shutdown`] (or drop) drains the remaining
/// queue, then joins every thread.
///
/// `execute` takes `&self`, so multiple threads may run regions on one
/// pool concurrently; each region terminates independently because its
/// caller participates as a worker and reclaims its own queued region
/// jobs when no pool thread is free — so regions stay live even mixed
/// with long-running [`Pool::spawn`] jobs on a saturated pool.
pub struct Pool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn `threads` worker threads (named `phj-pool-N`). A pool of 0
    /// threads is valid: [`Pool::spawn`]ed jobs would never run, but
    /// single-worker regions execute inline on the caller.
    pub fn new(threads: usize) -> Pool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            next_region: AtomicU64::new(1),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("phj-pool-{i}"))
                    .spawn(move || worker_thread(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, threads, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueue a fire-and-forget job at the back of the queue. A panic
    /// inside the job is caught and discarded; the worker thread
    /// survives.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock().unwrap();
        q.push_back(QueueEntry { region: 0, job: Box::new(job) });
        drop(q);
        self.shared.cv.notify_one();
    }

    /// Jobs currently waiting in the queue (not those mid-run).
    pub fn pending(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Stop accepting the illusion of immortality: drain every queued
    /// job, then join all worker threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Run a fork-join region on the pool: semantics identical to the
    /// free [`execute`], but worker threads are reused across calls.
    ///
    /// The calling thread participates as worker 0, so a region needs
    /// only `states.len() - 1` pool jobs and completes even on a
    /// saturated pool: after its own work-stealing loop finishes, the
    /// caller dequeues and runs any of its region jobs no pool thread
    /// picked up (each finds every task already claimed and no-ops), so
    /// the completion barrier cannot wait on a job that never runs.
    /// Requires at least one pool thread when `states.len() > 1`.
    pub fn execute<W, T, R, F>(
        &self,
        states: Vec<W>,
        tasks: &[T],
        weights: &[u64],
        f: F,
    ) -> (Vec<R>, Vec<W>, Vec<WorkerStats>)
    where
        W: Send,
        T: Sync,
        R: Send,
        F: Fn(&mut W, usize, &T) -> R + Sync,
    {
        assert_eq!(tasks.len(), weights.len(), "one weight per task");
        assert!(!states.is_empty(), "need at least one worker");
        let n = states.len();
        assert!(
            n == 1 || self.threads >= 1,
            "a multi-worker region needs at least one pool thread"
        );
        let assignment = lpt_assign(weights, n);

        if let Some(m) = exec_metrics() {
            m.workers.set(n as u64);
            m.queue_depth.set(tasks.len() as u64);
        }
        // Journal the fork-join region itself on the caller's thread;
        // workers journal their own task/steal events from their own
        // rings.
        phj_flightrec::event(
            phj_flightrec::EventKind::PhaseEnter,
            phj_flightrec::phase_code("execute"),
            tasks.len() as u64,
            n as u64,
        );

        if n == 1 {
            let mut states = states;
            let mut stats = WorkerStats::default();
            let t0 = Instant::now();
            let mut slots: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
            for &i in &assignment[0] {
                let task_t0 = Instant::now();
                phj_flightrec::event_full(phj_flightrec::EventKind::Task, 0, i as u64, 0);
                slots[i] = Some(f(&mut states[0], i, &tasks[i]));
                stats.tasks += 1;
                if let Some(m) = exec_metrics() {
                    m.task_ns.record(task_t0.elapsed().as_nanos() as u64);
                    m.queue_depth.set((tasks.len() - stats.tasks as usize) as u64);
                }
            }
            stats.busy_ns = t0.elapsed().as_nanos() as u64;
            publish_worker(&stats);
            phj_flightrec::event(
                phj_flightrec::EventKind::PhaseExit,
                phj_flightrec::phase_code("execute"),
                tasks.len() as u64,
                1,
            );
            let results = slots.into_iter().map(|r| r.expect("task ran")).collect();
            return (results, states, vec![stats]);
        }

        // Seed each worker's deque in reverse (ascending weight), so the
        // owner's LIFO pop yields its largest task first while thieves'
        // FIFO steals take its smallest.
        let deques: Vec<WorkDeque> = assignment
            .iter()
            .map(|list| {
                let d = WorkDeque::with_capacity(tasks.len());
                for &i in list.iter().rev() {
                    d.push(i).expect("deque sized for the whole task list");
                }
                d
            })
            .collect();
        let injector = Injector::new();
        let claimed = AtomicUsize::new(0);
        let total = tasks.len();

        let sync: Arc<RegionSync<W, R>> = Arc::new(RegionSync {
            slots: Mutex::new((1..n).map(|_| None).collect()),
            done: Mutex::new(0),
            cv: Condvar::new(),
        });

        let mut states = states.into_iter();
        let state0 = states.next().expect("n >= 1");
        let region_id = self.shared.next_region.fetch_add(1, Ordering::Relaxed);
        {
            let deques = &deques;
            let injector = &injector;
            let claimed = &claimed;
            let f = &f;
            let mut q = self.shared.queue.lock().unwrap();
            for (off, state) in states.enumerate() {
                let w = off + 1;
                let sync = Arc::clone(&sync);
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(move || {
                        worker_loop(w, state, tasks, deques, injector, claimed, total, f)
                    }));
                    sync.slots.lock().unwrap()[w - 1] = Some(out);
                    let mut d = sync.done.lock().unwrap();
                    *d += 1;
                    sync.cv.notify_all();
                });
                // SAFETY: the job borrows `tasks`, `deques`, `injector`,
                // `claimed`, and `f` from this stack frame. Its last
                // access to any of them is inside `worker_loop`, which
                // returns before the job stores into `sync` and bumps
                // the barrier — and this function blocks on that
                // barrier (all `n - 1` jobs) before returning or
                // unwinding, so every erased borrow is dead before the
                // frame is. `sync` itself is `Arc`-owned heap state and
                // may legitimately be released after the frame ends.
                let job: Job = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job)
                };
                q.push_front(QueueEntry { region: region_id, job });
            }
            drop(q);
            self.shared.cv.notify_all();
        }

        // The caller is worker 0: run the same loop inline. Catch a
        // panic (a task body may throw) but do NOT propagate it yet —
        // region jobs still borrow this frame until the barrier opens.
        let out0 = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(0, state0, tasks, &deques, &injector, &claimed, total, &f)
        }));

        // A saturated pool (long-lived `spawn` jobs, other callers'
        // regions) may never dequeue this region's jobs; reclaim any
        // still queued and run them inline so the barrier below cannot
        // wait forever on a job that will never be scheduled. Each
        // reclaimed job finds every task already claimed (worker 0 only
        // returned once `claimed == total`) and no-ops straight into
        // its barrier increment.
        loop {
            let reclaimed = {
                let mut q = self.shared.queue.lock().unwrap();
                match q.iter().position(|e| e.region == region_id) {
                    Some(i) => q.remove(i).map(|e| e.job),
                    None => None,
                }
            };
            match reclaimed {
                Some(job) => job(),
                None => break,
            }
        }

        // Completion barrier: every region job has finished running.
        {
            let mut d = sync.done.lock().unwrap();
            while *d < n - 1 {
                d = sync.cv.wait(d).unwrap();
            }
        }

        phj_flightrec::event(
            phj_flightrec::EventKind::PhaseExit,
            phj_flightrec::phase_code("execute"),
            total as u64,
            n as u64,
        );

        let mut outs: Vec<WorkerOut<W, R>> = Vec::with_capacity(n);
        let mut panic_payload = None;
        match out0 {
            Ok(o) => outs.push(o),
            Err(p) => panic_payload = Some(p),
        }
        for slot in sync.slots.lock().unwrap().drain(..) {
            match slot.expect("barrier opened, so every slot is filled") {
                Ok(o) => outs.push(o),
                Err(p) => panic_payload = panic_payload.or(Some(p)),
            }
        }
        if let Some(p) = panic_payload {
            resume_unwind(p);
        }

        let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
        let mut states_back = Vec::with_capacity(n);
        let mut all_stats = Vec::with_capacity(n);
        for (state, results, stats) in outs {
            for (i, r) in results {
                debug_assert!(slots[i].is_none(), "task {i} ran twice");
                slots[i] = Some(r);
            }
            states_back.push(state);
            all_stats.push(stats);
        }
        let results = slots.into_iter().map(|r| r.expect("task unclaimed")).collect();
        (results, states_back, all_stats)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The pool thread body: pop jobs FIFO, run them, survive their panics.
/// On stop, the remaining queue is drained before the thread exits.
fn worker_thread(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(e) = q.pop_front() {
                    break Some(e.job);
                }
                if shared.stop.load(Ordering::Acquire) {
                    break None;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        match job {
            Some(j) => {
                let _ = catch_unwind(AssertUnwindSafe(j));
            }
            None => return,
        }
    }
}

/// One region worker: drain the own deque, pull from the injector,
/// steal from the others, stop once every task is claimed.
#[allow(clippy::too_many_arguments)]
fn worker_loop<W, T, R, F>(
    w: usize,
    mut state: W,
    tasks: &[T],
    deques: &[WorkDeque],
    injector: &Injector,
    claimed: &AtomicUsize,
    total: usize,
    f: &F,
) -> WorkerOut<W, R>
where
    F: Fn(&mut W, usize, &T) -> R,
{
    let start = Instant::now();
    let mut stats = WorkerStats { worker: w, ..Default::default() };
    let mut results: Vec<(usize, R)> = Vec::new();
    let mut busy_ns = 0u64;
    loop {
        let next = deques[w]
            .pop()
            .or_else(|| injector.pop())
            .or_else(|| steal_round(w, deques, &mut stats));
        match next {
            Some(i) => {
                let done = claimed.fetch_add(1, Ordering::SeqCst) + 1;
                if let Some(m) = exec_metrics() {
                    m.queue_depth.set((total - done.min(total)) as u64);
                }
                let t0 = Instant::now();
                phj_flightrec::event_full(phj_flightrec::EventKind::Task, w as u16, i as u64, 0);
                let r = f(&mut state, i, &tasks[i]);
                let dt = t0.elapsed().as_nanos() as u64;
                busy_ns += dt;
                stats.tasks += 1;
                if let Some(m) = exec_metrics() {
                    m.task_ns.record(dt);
                }
                results.push((i, r));
            }
            // Tasks never spawn tasks, so once every task has been
            // claimed no new work can appear.
            None if claimed.load(Ordering::SeqCst) >= total => break,
            None => std::thread::yield_now(),
        }
    }
    stats.busy_ns = busy_ns;
    stats.idle_ns = (start.elapsed().as_nanos() as u64).saturating_sub(busy_ns);
    publish_worker(&stats);
    (state, results, stats)
}

/// Publish one worker's finished region counters into the live
/// registry (no-op when telemetry is off).
fn publish_worker(stats: &WorkerStats) {
    if let Some(m) = exec_metrics() {
        m.tasks.add(stats.tasks);
        m.steals.add(stats.steals);
        m.busy_ns.add(stats.busy_ns);
        m.idle_ns.add(stats.idle_ns);
    }
}

/// One full round of steal attempts over the other workers' deques.
fn steal_round(me: usize, deques: &[WorkDeque], stats: &mut WorkerStats) -> Option<usize> {
    let n = deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        loop {
            match deques[victim].steal() {
                Steal::Task(i) => {
                    stats.steals += 1;
                    phj_flightrec::event(
                        phj_flightrec::EventKind::Steal,
                        1,
                        me as u64,
                        victim as u64,
                    );
                    return Some(i);
                }
                Steal::Retry => std::hint::spin_loop(),
                Steal::Empty => break,
            }
        }
    }
    // A fully empty round is journaled only in full mode: misses are
    // frequent during ramp-down and would wash out the ring otherwise.
    phj_flightrec::event_full(phj_flightrec::EventKind::Steal, 0, me as u64, 0);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;
    use std::thread::ThreadId;

    #[test]
    fn every_task_runs_once_and_results_line_up() {
        for threads in [1usize, 2, 3, 8] {
            let tasks: Vec<u64> = (0..100).collect();
            let weights: Vec<u64> = tasks.iter().map(|t| t % 13 + 1).collect();
            let ran = AtomicU64::new(0);
            let states: Vec<u64> = vec![0; threads];
            let (results, states, stats) = execute(states, &tasks, &weights, |acc, i, t| {
                ran.fetch_add(1, Ordering::SeqCst);
                *acc += t;
                i as u64 * 2
            });
            assert_eq!(ran.load(Ordering::SeqCst), 100);
            assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<u64>>());
            // Per-worker accumulators sum to the whole input.
            assert_eq!(states.iter().sum::<u64>(), tasks.iter().sum::<u64>());
            assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 100);
            assert_eq!(stats.len(), threads);
        }
    }

    #[test]
    fn single_worker_runs_inline_in_lpt_order() {
        let tasks = [1u64, 2, 3];
        let weights = [5u64, 50, 20];
        let (results, states, _) =
            execute(vec![Vec::new()], &tasks, &weights, |log: &mut Vec<usize>, i, _| {
                log.push(i);
                i
            });
        // Results come back task-indexed regardless of execution order...
        assert_eq!(results, vec![0, 1, 2]);
        // ...which was heaviest-first.
        assert_eq!(states[0], vec![1, 2, 0]);
    }

    #[test]
    fn uneven_tasks_still_all_complete() {
        // Tasks that sleep differently force real stealing.
        let tasks: Vec<u64> = (0..32).map(|i| if i == 0 { 20 } else { 1 }).collect();
        let weights = vec![1u64; 32]; // deliberately wrong estimates
        let (results, _, stats) = execute(vec![(); 4], &tasks, &weights, |_, i, ms| {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
            i
        });
        assert_eq!(results, (0..32).collect::<Vec<_>>());
        assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 32);
    }

    #[test]
    fn pool_reuses_the_same_threads_across_regions() {
        let pool = Pool::new(3);
        let mut seen: HashSet<ThreadId> = HashSet::new();
        for _ in 0..3 {
            let tasks: Vec<u64> = (0..64).collect();
            let weights = vec![1u64; 64];
            let states: Vec<Vec<ThreadId>> = vec![Vec::new(); 4];
            let (_, states, stats) =
                pool.execute(states, &tasks, &weights, |ids: &mut Vec<ThreadId>, i, _| {
                    ids.push(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    i
                });
            assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 64);
            for ids in states {
                seen.extend(ids);
            }
        }
        // ThreadIds are never reused, so fresh threads per region would
        // accumulate up to 3 regions × 3 threads + caller = 10 distinct
        // ids. A persistent pool shows at most its 3 threads + caller.
        assert!(
            seen.len() <= pool.threads() + 1,
            "expected thread reuse, saw {} distinct threads",
            seen.len()
        );
        pool.shutdown();
    }

    #[test]
    fn spawned_jobs_run_and_drain_on_shutdown() {
        let pool = Pool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown(); // drains the queue before joining
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn task_panic_propagates_and_the_pool_survives() {
        let pool = Pool::new(2);
        let tasks: Vec<u64> = (0..8).collect();
        let weights = vec![1u64; 8];
        let boom = catch_unwind(AssertUnwindSafe(|| {
            pool.execute(vec![(); 3], &tasks, &weights, |_, i, _| {
                if i == 5 {
                    panic!("task 5 exploded");
                }
                i
            })
        }));
        assert!(boom.is_err(), "panic in a task must reach the caller");

        // The pool is still usable after a panicked region.
        let (results, _, _) = pool.execute(vec![(); 3], &tasks, &weights, |_, i, _| i * 10);
        assert_eq!(results, (0..8).map(|i| i * 10).collect::<Vec<_>>());

        // And a panicking fire-and-forget job doesn't kill a worker.
        pool.spawn(|| panic!("spawned job panic"));
        let hit = Arc::new(AtomicU64::new(0));
        {
            let hit = Arc::clone(&hit);
            pool.spawn(move || {
                hit.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn region_completes_while_every_pool_thread_is_busy() {
        // Both workers are parked on long-lived spawn() jobs — exactly
        // how the query daemon holds connections. A region must still
        // complete: worker 0 runs everything and reclaims the queued
        // region jobs inline instead of waiting for workers that will
        // never free up.
        let pool = Pool::new(2);
        let running = Arc::new(AtomicU64::new(0));
        let release = Arc::new(AtomicBool::new(false));
        for _ in 0..2 {
            let running = Arc::clone(&running);
            let release = Arc::clone(&release);
            pool.spawn(move || {
                running.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            });
        }
        while running.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }

        let tasks: Vec<u64> = (0..40).collect();
        let weights = vec![1u64; 40];
        let (results, states, stats) =
            pool.execute(vec![0u64; 3], &tasks, &weights, |acc, i, t| {
                *acc += t;
                i
            });
        assert_eq!(results, (0..40).collect::<Vec<_>>());
        assert_eq!(states.iter().sum::<u64>(), tasks.iter().sum::<u64>());
        assert_eq!(stats.iter().map(|s| s.tasks).sum::<u64>(), 40);

        release.store(true, Ordering::Release);
        pool.shutdown();
    }

    #[test]
    fn concurrent_regions_inside_pool_jobs_do_not_deadlock() {
        // Two spawn() jobs each run a multi-worker region on the same
        // 2-thread pool: both callers occupy both workers, so neither
        // region's queued jobs can be scheduled — each caller must
        // reclaim its own.
        let pool = Arc::new(Pool::new(2));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let done = Arc::new(AtomicU64::new(0));
        for k in 0..2u64 {
            let pool2 = Arc::clone(&pool);
            let b = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            pool.spawn(move || {
                b.wait(); // both jobs now occupy both workers
                let tasks: Vec<u64> = (0..16).collect();
                let weights = vec![1u64; 16];
                let (r, _, _) =
                    pool2.execute(vec![(); 2], &tasks, &weights, |_, i, _| i as u64 + k);
                if r == (k..16 + k).collect::<Vec<_>>() {
                    done.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        while done.load(Ordering::SeqCst) < 2 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        Arc::try_unwrap(pool).ok().expect("last reference").shutdown();
    }

    #[test]
    fn zero_thread_pool_runs_single_worker_regions_inline() {
        let pool = Pool::new(0);
        let tasks = [7u64, 8, 9];
        let weights = [1u64, 1, 1];
        let (results, _, stats) = pool.execute(vec![0u64], &tasks, &weights, |acc, i, t| {
            *acc += t;
            i
        });
        assert_eq!(results, vec![0, 1, 2]);
        assert_eq!(stats.len(), 1);
        pool.shutdown();
    }
}
