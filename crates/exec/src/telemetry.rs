//! Live-telemetry handles for the executor.
//!
//! All instrumentation is gated on the process-global registry: when
//! telemetry was never installed (`phj_metrics::global()` is `None`),
//! [`exec_metrics`] is a single atomic load returning `None` and the
//! pool publishes nothing. Handles are registered once and cached, but
//! the global is re-checked on every call so a registry installed after
//! the first `execute` still picks up metrics from then on.

use std::sync::{Arc, OnceLock};

use phj_metrics::{names, Counter, Gauge, Histogram};

/// Registered handles for the exec metric family.
pub(crate) struct ExecMetrics {
    /// `phj_exec_tasks_total` — tasks run across all execute regions.
    pub tasks: Arc<Counter>,
    /// `phj_exec_steals_total` — tasks obtained by stealing.
    pub steals: Arc<Counter>,
    /// `phj_exec_busy_ns_total` — wall ns inside task bodies.
    pub busy_ns: Arc<Counter>,
    /// `phj_exec_idle_ns_total` — wall ns hunting for work.
    pub idle_ns: Arc<Counter>,
    /// `phj_exec_queue_depth` — unclaimed tasks in the current region.
    pub queue_depth: Arc<Gauge>,
    /// `phj_exec_workers` — workers in the current execute region.
    pub workers: Arc<Gauge>,
    /// `phj_exec_task_ns` — per-task wall-time distribution.
    pub task_ns: Arc<Histogram>,
}

/// The exec handles, or `None` when telemetry is off.
pub(crate) fn exec_metrics() -> Option<&'static ExecMetrics> {
    static CACHE: OnceLock<ExecMetrics> = OnceLock::new();
    let reg = phj_metrics::global()?;
    Some(CACHE.get_or_init(|| ExecMetrics {
        tasks: reg.counter(names::EXEC_TASKS, "Tasks run by the worker pool"),
        steals: reg.counter(names::EXEC_STEALS, "Tasks obtained by work stealing"),
        busy_ns: reg.counter(names::EXEC_BUSY_NS, "Worker wall time inside task bodies (ns)"),
        idle_ns: reg.counter(names::EXEC_IDLE_NS, "Worker wall time hunting for work (ns)"),
        queue_depth: reg.gauge(names::EXEC_QUEUE_DEPTH, "Unclaimed tasks in the active execute region"),
        workers: reg.gauge(names::EXEC_WORKERS, "Workers in the active execute region"),
        task_ns: reg.histogram(names::EXEC_TASK_NS, "Per-task wall time (ns, log2 buckets)"),
    }))
}
