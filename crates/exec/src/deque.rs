//! A fixed-capacity Chase–Lev work-stealing deque over `usize` task ids,
//! plus the shared injector queue.
//!
//! The owner pushes and pops at the *bottom* (LIFO — it works on the
//! largest task it was seeded with first, see
//! [`lpt_assign`](crate::schedule::lpt_assign)); thieves steal from the
//! *top* (FIFO — they take the victim's smallest remaining task, which
//! minimizes the damage to the victim's locality and keeps the big tasks
//! with their assigned worker).
//!
//! The implementation is the classic Chase–Lev algorithm in fully safe
//! Rust: the ring buffer is a `Box<[AtomicUsize]>` (every slot access is
//! an atomic load/store, so there are no data races to justify with
//! `unsafe`), `top`/`bottom` are atomics, and the two racy claims — a
//! thief taking `top`, and the owner taking the *last* element — are
//! settled by a compare-exchange on `top`. The pool sizes each deque for
//! the whole task list up front, so the ring never wraps while threads
//! are running and the ABA hazards of the growing variant do not arise
//! (`push` returns the task back instead of ever overwriting a live
//! slot).

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The victim's deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Claimed this task.
    Task(usize),
}

/// The per-worker work-stealing deque.
pub struct WorkDeque {
    buf: Box<[AtomicUsize]>,
    mask: usize,
    /// Steal end. Only ever advances; claims go through compare-exchange.
    top: AtomicIsize,
    /// Owner end. Only the owner writes it.
    bottom: AtomicIsize,
}

impl WorkDeque {
    /// A deque holding at most `capacity` tasks (rounded up to a power of
    /// two).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        WorkDeque {
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
        }
    }

    /// Number of tasks currently in the deque (racy under concurrency;
    /// exact when quiescent).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Acquire);
        let t = self.top.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Whether the deque is (observed) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-side push. Fails (returning the task) when the ring is full,
    /// rather than overwriting a slot a concurrent thief may be reading.
    pub fn push(&self, task: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buf.len() as isize {
            return Err(task);
        }
        self.buf[(b as usize) & self.mask].store(task, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-side pop (LIFO). On the last element it races thieves via
    /// compare-exchange on `top`.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // Publish the decremented bottom before reading top, so a thief
        // that still sees the old bottom loses the CAS below.
        self.bottom.store(b, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t > b {
            // Already empty; restore.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let task = self.buf[(b as usize) & self.mask].load(Ordering::Relaxed);
        if t == b {
            // Last element: whoever moves `top` first owns it.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(task);
        }
        Some(task)
    }

    /// Thief-side steal (FIFO).
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let task = self.buf[(t as usize) & self.mask].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Task(task)
        } else {
            Steal::Retry
        }
    }
}

/// The global injector: tasks not pre-assigned to any worker (overflow
/// from a full deque, late arrivals). A plain mutex-guarded FIFO — it is
/// off the hot path, touched only when a worker's own deque runs dry.
#[derive(Default)]
pub struct Injector {
    queue: Mutex<std::collections::VecDeque<usize>>,
}

impl Injector {
    /// An empty injector.
    pub fn new() -> Self {
        Injector::default()
    }

    /// Enqueue a task for whichever worker gets there first.
    pub fn push(&self, task: usize) {
        self.queue.lock().unwrap().push_back(task);
    }

    /// Dequeue in FIFO order.
    pub fn pop(&self) -> Option<usize> {
        self.queue.lock().unwrap().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = WorkDeque::with_capacity(8);
        for t in [10, 20, 30] {
            d.push(t).unwrap();
        }
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), Steal::Task(10));
        assert_eq!(d.pop(), Some(30));
        assert_eq!(d.pop(), Some(20));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn push_refuses_overflow() {
        let d = WorkDeque::with_capacity(2);
        d.push(1).unwrap();
        d.push(2).unwrap();
        assert_eq!(d.push(3), Err(3));
        // Draining one slot frees capacity again.
        assert_eq!(d.steal(), Steal::Task(1));
        d.push(3).unwrap();
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push(7);
        inj.push(8);
        assert_eq!(inj.pop(), Some(7));
        assert_eq!(inj.pop(), Some(8));
        assert_eq!(inj.pop(), None);
    }
}
