//! Executing one admitted request: generate the workload, run the
//! sequential kernel, produce a validated per-query [`RunReport`].
//!
//! The daemon runs each query with the same single-threaded kernels the
//! CLI's sequential path uses (`grace_join_with_sink_rec`,
//! `aggregate`), so a query's checksum is *definitionally* comparable
//! to `phj join` / `phj agg` with the same knobs — the CI smoke test
//! and `serve_load` both lean on that. Concurrency comes from running
//! many such queries on the shared pool, not from intra-query threads;
//! the memory grant a query holds covers its whole working set
//! (relations + join budget), which is what makes the global budget a
//! real cap.

use std::sync::Arc;
use std::time::Instant;

use phj::aggregate::{aggregate, AggScheme};
use phj::grace::{grace_join_with_sink_rec, GraceConfig};
use phj::join::JoinScheme;
use phj::partition::PartitionScheme;
use phj::plan;
use phj::sink::{CountSink, JoinSink};
use phj_disk::{grace_join_files_rec, DiskGraceConfig, DiskJoinMode, FileRelation, LiveBudget};
use phj_memsim::{MemoryModel, NativeModel};
use phj_obs::{Recorder, RunReport};
use phj_workload::JoinSpec;

use crate::proto::{AggRequest, DiskJoinRequest, JoinRequest, Request, WireScheme};

/// Result kind tag: a hash join.
pub const KIND_JOIN: u8 = 1;
/// Result kind tag: an aggregation.
pub const KIND_AGG: u8 = 2;
/// Result kind tag: an on-disk join.
pub const KIND_DISK: u8 = 3;

/// Tuples above this cannot be generated (they approach the 8 KiB page
/// bound); rejected up front as a bad request.
const MAX_TUPLE_SIZE: u32 = 2048;

/// What one query produced, ready to frame as a
/// [`QueryResult`](crate::proto::QueryResult).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// [`KIND_JOIN`], [`KIND_AGG`], or [`KIND_DISK`].
    pub kind: u8,
    /// Matches (join) or groups (agg).
    pub matches: u64,
    /// Order-independent result checksum.
    pub checksum: u64,
    /// Partitions produced (join only).
    pub partitions: u64,
    /// The validated per-query RunReport, rendered as JSON.
    pub report_json: String,
}

/// Reject requests whose *shape* is invalid before any admission or
/// allocation. Size-based rejection is admission's job (the estimate
/// below), shape-based rejection is this one's.
pub fn validate(req: &Request) -> Result<(), String> {
    match req {
        Request::Join(j) => {
            if j.tuple_size > MAX_TUPLE_SIZE {
                return Err(format!("tuple_size {} exceeds {MAX_TUPLE_SIZE}", j.tuple_size));
            }
            if j.mem_budget == 0 {
                return Err("mem_budget must be > 0".to_string());
            }
            Ok(())
        }
        Request::DiskJoin(dj) => {
            if dj.tuple_size > MAX_TUPLE_SIZE {
                return Err(format!("tuple_size {} exceeds {MAX_TUPLE_SIZE}", dj.tuple_size));
            }
            if dj.mem_budget == 0 {
                return Err("mem_budget must be > 0".to_string());
            }
            Ok(())
        }
        Request::Agg(_) | Request::Ping | Request::Status => Ok(()),
    }
}

/// Bytes of memory the query needs while running: both generated
/// relations plus the join-phase budget (join), or the input relation
/// plus the group table (agg). Saturating, so hostile cardinalities
/// become a huge estimate that admission rejects as `TooLarge` — never
/// an overflow or an allocation.
pub fn estimated_bytes(req: &Request) -> u64 {
    match req {
        Request::Join(j) => {
            let tuples = j
                .build_tuples
                .saturating_add(j.build_tuples.saturating_mul(j.matches_per_build as u64));
            tuples
                .saturating_mul(j.tuple_size as u64)
                .saturating_add(j.mem_budget)
        }
        Request::Agg(a) => {
            // 100 B tuples (the agg input schema) + ~48 B/group of table.
            let explicit = a.mem_budget;
            let estimate =
                a.rows.saturating_mul(100).saturating_add(a.keys.saturating_mul(48));
            explicit.max(estimate)
        }
        // Disk joins stage their relations on disk — the grant covers
        // exactly the join's working memory, which is also the live
        // budget admission can later revoke parts of.
        Request::DiskJoin(dj) => dj.mem_budget,
        Request::Ping | Request::Status => 0,
    }
}

fn join_scheme(ws: WireScheme) -> JoinScheme {
    match ws {
        WireScheme::Baseline => JoinScheme::Baseline,
        WireScheme::Simple => JoinScheme::Simple,
        WireScheme::Group { g } => JoinScheme::Group { g: g.max(1) as usize },
        WireScheme::Swp { d } => JoinScheme::Swp { d: d.max(1) as usize },
    }
}

fn agg_scheme(ws: WireScheme) -> AggScheme {
    match ws {
        WireScheme::Baseline => AggScheme::Baseline,
        WireScheme::Simple => AggScheme::Simple,
        WireScheme::Group { g } => AggScheme::Group { g: g.max(1) as usize },
        WireScheme::Swp { d } => AggScheme::Swp { d: d.max(1) as usize },
    }
}

/// Run one query to completion on the calling thread. The query id is
/// journaled into the flight recorder (phase events) and fingerprinted
/// into the report (`query_id` key), so one process's observability
/// streams can be demultiplexed per query.
pub fn run(query_id: u64, req: &Request) -> Result<QueryOutcome, String> {
    run_with_budget(query_id, req, None)
}

/// [`run`] with a revocable live budget attached. Only disk joins use
/// the budget (dynamic mode observes shrink requests at page-granular
/// safe points and spills victim partitions); other kinds ignore it.
pub fn run_with_budget(
    query_id: u64,
    req: &Request,
    live: Option<Arc<LiveBudget>>,
) -> Result<QueryOutcome, String> {
    run_in(query_id, req, live, None)
}

/// [`run_with_budget`] with an explicit scratch base directory for
/// disk-join staging (`None` = the system temp dir). The override
/// exists so tests can point the scratch path somewhere that fails
/// deterministically and exercise the error path end to end.
pub fn run_in(
    query_id: u64,
    req: &Request,
    live: Option<Arc<LiveBudget>>,
    scratch: Option<&std::path::Path>,
) -> Result<QueryOutcome, String> {
    phj_flightrec::event(
        phj_flightrec::EventKind::PhaseEnter,
        phj_flightrec::phase_code("query"),
        query_id,
        0,
    );
    let out = match req {
        Request::Join(j) => run_join(query_id, j),
        Request::Agg(a) => run_agg(query_id, a),
        Request::DiskJoin(dj) => run_disk(query_id, dj, live, scratch),
        Request::Ping | Request::Status => Err("not a query".to_string()),
    };
    phj_flightrec::event(
        phj_flightrec::EventKind::PhaseExit,
        phj_flightrec::phase_code("query"),
        query_id,
        out.is_ok() as u64,
    );
    out
}

fn run_join(query_id: u64, j: &JoinRequest) -> Result<QueryOutcome, String> {
    let spec = JoinSpec {
        build_tuples: j.build_tuples as usize,
        tuple_size: j.tuple_size as usize,
        matches_per_build: j.matches_per_build as usize,
        pct_match: j.pct_match,
        seed: j.seed,
    };
    let gen = spec.generate();
    let cfg = GraceConfig {
        mem_budget: j.mem_budget as usize,
        partition_scheme: PartitionScheme::combined_default(),
        join_scheme: join_scheme(j.scheme),
        ..Default::default()
    };
    let mut native = NativeModel;
    let mut recorder = Recorder::new();
    let root = recorder.begin("run", native.snapshot());
    let mut sink = CountSink::new();
    let t0 = Instant::now();
    let partitions =
        grace_join_with_sink_rec(&mut native, &cfg, &gen.build, &gen.probe, &mut sink, Some(&mut recorder));
    let wall = t0.elapsed();
    recorder.end(root, native.snapshot());

    let mut report =
        RunReport::from_recorder("join", recorder, native.snapshot(), wall.as_nanos() as u64);
    report.tuples = (gen.build.num_tuples() + gen.probe.num_tuples()) as u64;
    report.matches = sink.matches();
    report.config_kv("query_id", query_id);
    report.config_kv("scheme", j.scheme.label());
    report.config_kv("tuple_size", j.tuple_size);
    report.config_kv("build_tuples", j.build_tuples);
    report.config_kv("probe_tuples", spec.probe_tuples());
    report.config_kv("mem_budget", j.mem_budget);
    report.config_kv("seed", j.seed);
    report.validate()?;

    if gen.expected_matches > 0 && sink.matches() != gen.expected_matches {
        return Err(format!(
            "join produced {} matches, workload oracle expects {}",
            sink.matches(),
            gen.expected_matches
        ));
    }
    Ok(QueryOutcome {
        kind: KIND_JOIN,
        matches: sink.matches(),
        checksum: sink.checksum(),
        partitions: partitions as u64,
        report_json: report.render(),
    })
}

fn run_agg(query_id: u64, a: &AggRequest) -> Result<QueryOutcome, String> {
    let rows = a.rows as usize;
    let keys = a.keys as usize;
    // Same input construction as `phj agg`: 100 B key+payload tuples,
    // key space folded down to `keys` distinct values.
    let input = {
        use phj_storage::{RelationBuilder, Schema};
        let schema = Schema::key_payload(100);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 100];
        for i in 0..rows {
            let key = phj_workload::key_of_index((i % keys) as u32);
            t[..4].copy_from_slice(&key.to_le_bytes());
            b.push(&t);
        }
        b.finish()
    };
    let buckets = plan::hash_table_buckets(keys, 1);
    let extract = |t: &[u8]| t[4] as i64;

    let mut native = NativeModel;
    let mut recorder = Recorder::new();
    let root = recorder.begin("run", native.snapshot());
    let inner = recorder.begin("aggregate", native.snapshot());
    let t0 = Instant::now();
    let table = aggregate(&mut native, agg_scheme(a.scheme), &input, buckets, extract);
    let wall = t0.elapsed();
    recorder.end(inner, native.snapshot());
    recorder.end(root, native.snapshot());

    let mut report =
        RunReport::from_recorder("agg", recorder, native.snapshot(), wall.as_nanos() as u64);
    report.tuples = rows as u64;
    report.matches = table.num_groups() as u64;
    report.config_kv("query_id", query_id);
    report.config_kv("scheme", a.scheme.label());
    report.config_kv("rows", rows);
    report.config_kv("keys", keys);
    report.validate()?;

    Ok(QueryOutcome {
        kind: KIND_AGG,
        matches: table.num_groups() as u64,
        checksum: phj_exec::agg_checksum(&table),
        partitions: 0,
        report_json: report.render(),
    })
}

fn run_disk(
    query_id: u64,
    dj: &DiskJoinRequest,
    live: Option<Arc<LiveBudget>>,
    scratch: Option<&std::path::Path>,
) -> Result<QueryOutcome, String> {
    let spec = JoinSpec {
        build_tuples: dj.build_tuples as usize,
        tuple_size: dj.tuple_size as usize,
        matches_per_build: dj.matches_per_build as usize,
        pct_match: dj.pct_match,
        seed: dj.seed,
    };
    let gen = spec.generate();
    // Each query stages its relations and spill files in its own
    // scratch directory so concurrent disk queries never collide.
    let dir = scratch
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(std::env::temp_dir)
        .join(format!("phj-serve-disk-{}-{query_id}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("scratch dir: {e}"))?;
    let out = run_disk_in(query_id, dj, &spec, &gen, &dir, live);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn run_disk_in(
    query_id: u64,
    dj: &DiskJoinRequest,
    spec: &JoinSpec,
    gen: &phj_workload::GeneratedJoin,
    dir: &std::path::Path,
    live: Option<Arc<LiveBudget>>,
) -> Result<QueryOutcome, String> {
    let mode = match dj.mode {
        0 => DiskJoinMode::Grace,
        1 => DiskJoinMode::Hybrid,
        _ => DiskJoinMode::Dynamic,
    };
    let build = FileRelation::create(dir, "build", &gen.build, 2, 16)
        .map_err(|e| format!("stage build relation: {e}"))?;
    let probe = FileRelation::create(dir, "probe", &gen.probe, 2, 16)
        .map_err(|e| format!("stage probe relation: {e}"))?;

    let cfg = DiskGraceConfig {
        mem_budget: dj.mem_budget as usize,
        mode,
        live_budget: live,
        grant_tag: query_id,
        ..DiskGraceConfig::new(dir)
    };
    let native = NativeModel;
    let mut recorder = Recorder::new();
    let root = recorder.begin("run", native.snapshot());
    let t0 = Instant::now();
    let disk = grace_join_files_rec(&cfg, &build, &probe, Some(&mut recorder))
        .map_err(|e| format!("disk join: {e}"))?;
    let wall = t0.elapsed();
    recorder.end(root, native.snapshot());

    let mut report =
        RunReport::from_recorder("disk_join", recorder, native.snapshot(), wall.as_nanos() as u64);
    report.tuples = (gen.build.num_tuples() + gen.probe.num_tuples()) as u64;
    report.matches = disk.matches;
    report.config_kv("query_id", query_id);
    report.config_kv("mode", mode.label());
    report.config_kv("tuple_size", dj.tuple_size);
    report.config_kv("build_tuples", dj.build_tuples);
    report.config_kv("probe_tuples", spec.probe_tuples());
    report.config_kv("mem_budget", dj.mem_budget);
    report.config_kv("final_budget", disk.final_budget);
    report.config_kv("resident_partitions", disk.resident_partitions);
    report.config_kv("transitions", disk.transitions.len());
    report.config_kv("degradations", disk.degradation.len());
    report.config_kv("seed", dj.seed);
    report.validate()?;

    if gen.expected_matches > 0 && disk.matches != gen.expected_matches {
        return Err(format!(
            "disk join produced {} matches, workload oracle expects {}",
            disk.matches, gen.expected_matches
        ));
    }
    Ok(QueryOutcome {
        kind: KIND_DISK,
        matches: disk.matches,
        checksum: disk.checksum,
        partitions: disk.num_partitions as u64,
        report_json: report.render(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;

    fn join_req() -> Request {
        Request::Join(JoinRequest {
            build_tuples: 2_000,
            tuple_size: 100,
            matches_per_build: 2,
            pct_match: 100,
            scheme: WireScheme::Group { g: 16 },
            mem_budget: 1 << 20,
            seed: 0x11D0,
            trace_id: 0,
        })
    }

    #[test]
    fn join_runs_and_reports_parse_back() {
        let out = run(7, &join_req()).unwrap();
        assert_eq!(out.kind, KIND_JOIN);
        assert_eq!(out.matches, 4_000);
        assert_ne!(out.checksum, 0);
        let report = RunReport::parse(&out.report_json).unwrap();
        report.validate().unwrap();
        assert!(report.config.iter().any(|(k, v)| k == "query_id" && v == "7"));
        assert_eq!(report.matches, 4_000);
    }

    #[test]
    fn same_request_same_checksum() {
        let a = run(1, &join_req()).unwrap();
        let b = run(2, &join_req()).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.matches, b.matches);
    }

    #[test]
    fn agg_runs_and_counts_groups() {
        let req = Request::Agg(AggRequest {
            rows: 10_000,
            keys: 500,
            scheme: WireScheme::Group { g: 16 },
            mem_budget: 0,
            trace_id: 0,
        });
        let out = run(3, &req).unwrap();
        assert_eq!(out.kind, KIND_AGG);
        assert_eq!(out.matches, 500);
        let report = RunReport::parse(&out.report_json).unwrap();
        report.validate().unwrap();
    }

    fn disk_req(mode: u8, budget: u64) -> Request {
        Request::DiskJoin(DiskJoinRequest {
            build_tuples: 1_500,
            tuple_size: 48,
            matches_per_build: 2,
            pct_match: 80,
            mem_budget: budget,
            seed: 0xD15C,
            mode,
            trace_id: 0,
        })
    }

    #[test]
    fn disk_modes_agree_on_checksum() {
        let grace = run(11, &disk_req(0, 32 << 10)).unwrap();
        let hybrid = run(12, &disk_req(1, 32 << 10)).unwrap();
        let dynamic = run(13, &disk_req(2, 32 << 10)).unwrap();
        assert_eq!(grace.kind, KIND_DISK);
        assert_ne!(grace.checksum, 0);
        assert_eq!(grace.checksum, hybrid.checksum);
        assert_eq!(grace.checksum, dynamic.checksum);
        assert_eq!(grace.matches, dynamic.matches);
        let report = RunReport::parse(&dynamic.report_json).unwrap();
        report.validate().unwrap();
        assert!(report.config.iter().any(|(k, v)| k == "mode" && v == "dynamic"));
    }

    #[test]
    fn disk_query_honors_a_preshrunk_live_budget() {
        let live = Arc::new(LiveBudget::new(64 << 10));
        live.request_shrink(16 << 10);
        let out = run_with_budget(14, &disk_req(2, 64 << 10), Some(Arc::clone(&live))).unwrap();
        assert_eq!(out.kind, KIND_DISK);
        assert_ne!(out.checksum, 0);
        // The join acked compliance with the shrunken limit.
        assert!(live.acked() <= 16 << 10);
    }

    #[test]
    fn estimates_saturate_on_hostile_cardinalities() {
        let req = Request::Join(JoinRequest {
            build_tuples: u64::MAX,
            tuple_size: 2048,
            matches_per_build: u32::MAX,
            pct_match: 100,
            scheme: WireScheme::Baseline,
            mem_budget: u64::MAX,
            seed: 0,
            trace_id: 0,
        });
        assert_eq!(estimated_bytes(&req), u64::MAX);
        assert_eq!(estimated_bytes(&Request::Ping), 0);
    }

    #[test]
    fn oversized_tuple_rejected_by_shape_validation() {
        let req = Request::Join(JoinRequest {
            build_tuples: 10,
            tuple_size: 4096,
            matches_per_build: 1,
            pct_match: 100,
            scheme: WireScheme::Baseline,
            mem_budget: 1 << 20,
            seed: 0,
            trace_id: 0,
        });
        assert!(validate(&req).is_err());
    }
}
