//! The daemon: accept loop → persistent pool → admission → kernel.
//!
//! One [`Listener`](phj_metrics::Listener) accepts connections and
//! immediately ships each to the shared persistent
//! [`Pool`](phj_exec::Pool) as a fire-and-forget job (the accept
//! handler never blocks on a connection: over the
//! [`ServeConfig::max_conns`] cap it answers a typed
//! [`ErrorCode::Busy`] frame and closes right in the accept thread, so
//! a flood of connections gets backpressure instead of an unbounded
//! queue). A connection job reads request frames in a loop; each
//! join/agg request becomes a query: it gets a process-wide id, passes
//! shape validation, acquires a [`MemGrant`] (possibly waiting FIFO),
//! runs the kernel, and answers with a result frame embedding its
//! validated RunReport. Admission rejections and execution failures
//! answer typed error frames — a malformed or hostile request must
//! never take the daemon down (query panics are caught and answered as
//! [`ErrorCode::Internal`]).
//!
//! Reading is a two-phase poll so a slow-but-honest client cannot be
//! desynced: the *first* byte of a frame is probed under a 100 ms
//! timeout (a timeout there is an idle tick — zero frame bytes have
//! been consumed, so nothing is lost), and only once it arrives does
//! the loop commit to the frame under a long per-read deadline. A
//! timeout *mid-frame* can discard consumed bytes, so it closes the
//! connection rather than re-parsing the stream out of phase.
//! Connections idle past [`ServeConfig::idle_timeout`] are closed —
//! a worker is freed for queued connections instead of being parked
//! forever by a client that never sends (hostile or otherwise).
//!
//! Shutdown is cooperative: [`Server::stop`] stops the accept loop,
//! raises a stop flag every connection loop polls (their first-byte
//! probes time out every 100 ms), and then joins the pool — which
//! drains queries already running. A clean stop is *not* a crash: the
//! flight recorder's postmortem machinery stays untriggered.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phj_exec::Pool;
use phj_metrics::Listener;

use crate::admission::{Admission, AdmissionConfig, AdmitError};
use crate::proto::{
    read_frame_rest, write_frame, ErrorCode, FrameError, QueryResult, Request, Response,
};
use crate::query;

/// Daemon configuration (`phj serve` flags map onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Pool worker threads — the daemon's concurrency (each in-flight
    /// connection occupies one worker while it serves requests).
    pub threads: usize,
    /// Global memory budget shared by all concurrent queries, bytes.
    pub mem_budget: u64,
    /// Smallest grant; see [`AdmissionConfig::min_grant`].
    pub min_grant: u64,
    /// Admission wait-queue bound; see [`AdmissionConfig::max_queue`].
    pub max_queue: usize,
    /// Concurrent-connection cap: connections accepted beyond this are
    /// answered a typed [`ErrorCode::Busy`] frame and closed instead of
    /// queueing without bound behind busy workers.
    pub max_conns: usize,
    /// Close a connection that has not completed a frame for this
    /// long, freeing its worker for queued connections. Idle or
    /// abandoned clients therefore cannot hold workers forever.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            mem_budget: 256 << 20,
            min_grant: 1 << 20,
            max_queue: 32,
            max_conns: 64,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

struct Ctx {
    admission: Arc<Admission>,
    stop: Arc<AtomicBool>,
    next_query: AtomicU64,
    inflight: AtomicU64,
    /// Live connection jobs (queued + serving), bounded by `max_conns`.
    conns: AtomicU64,
    idle_timeout: Duration,
}

/// RAII share of the connection cap: decrements `conns` when the
/// connection job ends, however it ends.
struct ConnSlot<'a>(&'a Ctx);

impl Drop for ConnSlot<'_> {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon. [`Server::stop`] (or drop) shuts it down cleanly.
pub struct Server {
    listener: Option<Listener>,
    pool: Option<Arc<Pool>>,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Bind and start serving. Returns once the listener is live;
    /// queries run on background pool threads from then on.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let admission = Admission::new(AdmissionConfig {
            budget: cfg.mem_budget,
            min_grant: cfg.min_grant,
            max_queue: cfg.max_queue,
        });
        let ctx = Arc::new(Ctx {
            admission,
            stop: Arc::new(AtomicBool::new(false)),
            next_query: AtomicU64::new(1),
            inflight: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            idle_timeout: cfg.idle_timeout,
        });
        let pool = Arc::new(Pool::new(cfg.threads.max(1)));
        let max_conns = cfg.max_conns.max(1) as u64;
        let listener = {
            let pool = Arc::clone(&pool);
            let ctx = Arc::clone(&ctx);
            Listener::start("phj-serve-accept", &cfg.addr, move |stream| {
                // Claim a connection slot or bounce right here in the
                // accept thread: queueing past the cap would strand the
                // client behind workers that may be busy for a long
                // time, with no signal and no bound.
                if ctx.conns.fetch_add(1, Ordering::SeqCst) >= max_conns {
                    ctx.conns.fetch_sub(1, Ordering::SeqCst);
                    reject_busy(stream);
                    return;
                }
                let ctx = Arc::clone(&ctx);
                pool.spawn(move || {
                    let slot = ConnSlot(&ctx);
                    serve_conn(stream, &ctx);
                    drop(slot);
                });
            })?
        };
        Ok(Server { listener: Some(listener), pool: Some(pool), ctx })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.as_ref().expect("server running").local_addr()
    }

    /// The admission table (for tests and the load generator to assert
    /// grant invariants).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.ctx.admission
    }

    /// Queries currently executing.
    pub fn inflight(&self) -> u64 {
        self.ctx.inflight.load(Ordering::SeqCst)
    }

    /// Stop accepting, wake every connection loop, and join the pool —
    /// queries already running finish first.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(l) = self.listener.take() {
            l.stop();
        }
        self.ctx.stop.store(true, Ordering::Release);
        if let Some(pool) = self.pool.take() {
            // The listener is joined, so its handler's pool clone is
            // gone: this is the last reference and joins the workers.
            if let Ok(p) = Arc::try_unwrap(pool) {
                p.shutdown();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How often an idle connection wakes to poll the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Per-read deadline once a frame has started arriving. Generous — a
/// legitimate client may fragment a frame — but bounded, so a peer
/// that stalls mid-frame cannot park a worker forever.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Answer an over-cap connection with a typed [`ErrorCode::Busy`] frame
/// (best-effort, short write deadline — this runs on the accept thread)
/// and drop it.
fn reject_busy(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = Response::Error {
        code: ErrorCode::Busy,
        message: "server at connection capacity; retry later".to_string(),
    };
    let _ = write_frame(&mut stream, &resp.encode());
}

fn serve_conn(mut stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut last_frame = Instant::now();
    loop {
        // Phase 1: probe for the first header byte under the short
        // poll timeout. A timeout here has consumed nothing, so it is
        // a pure idle tick — the only place a timeout is recoverable.
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let mut first = [0u8; 1];
        let version = match stream.read(&mut first) {
            Ok(0) => return, // peer closed cleanly
            Ok(_) => first[0],
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.stop.load(Ordering::Acquire) {
                    return;
                }
                if last_frame.elapsed() >= ctx.idle_timeout {
                    return; // idle deadline: free this worker
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        // Phase 2: a frame has started — commit to it under the long
        // per-read deadline. From here a timeout means the stream is
        // broken mid-frame (read_exact discards partial progress), so
        // any Io error closes the connection instead of re-parsing the
        // remaining bytes out of phase.
        let _ = stream.set_read_timeout(Some(FRAME_READ_TIMEOUT));
        match read_frame_rest(version, &mut stream) {
            Ok(body) => {
                last_frame = Instant::now();
                let resp = match Request::decode(&body) {
                    Ok(req) => handle_request(ctx, &req),
                    Err(e) => Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                };
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    return;
                }
            }
            Err(FrameError::Proto(e)) => {
                // Garbage on the wire: answer typed, then drop the
                // connection (framing is no longer trustworthy).
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

fn handle_request(ctx: &Ctx, req: &Request) -> Response {
    if let Request::Ping = req {
        return Response::Pong;
    }
    if ctx.stop.load(Ordering::Acquire) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is shutting down".to_string(),
        };
    }
    if let Err(msg) = query::validate(req) {
        return Response::Error { code: ErrorCode::BadRequest, message: msg };
    }
    let query_id = ctx.next_query.fetch_add(1, Ordering::SeqCst);
    let grant = match ctx.admission.admit(query_id, query::estimated_bytes(req)) {
        Ok(g) => g,
        Err(e @ AdmitError::TooLarge { .. }) => {
            return Response::Error { code: ErrorCode::TooLarge, message: e.to_string() }
        }
        Err(e @ AdmitError::QueueFull { .. }) => {
            return Response::Error { code: ErrorCode::QueueFull, message: e.to_string() }
        }
    };

    // Dynamic disk joins run against a revocable live budget: the
    // grant and budget are registered so admission's pressure path can
    // ask this query to shed memory mid-run, and the query's
    // compliance acks propagate straight back into the grant (freed
    // bytes re-enter the global budget while the join keeps running).
    let grant = Arc::new(grant);
    let (live, revocation) = match req {
        Request::DiskJoin(dj) if dj.mode == 2 => {
            let live = Arc::new(phj_disk::LiveBudget::new(grant.bytes()));
            let hooked = Arc::clone(&grant);
            live.set_on_ack(move |b| {
                hooked.try_shrink(b);
            });
            let reg = ctx.admission.register_revocable(query_id, &grant, &live);
            (Some(live), Some(reg))
        }
        _ => (None, None),
    };

    ctx.inflight.fetch_add(1, Ordering::SeqCst);
    publish_inflight(ctx);
    let t0 = Instant::now();
    // A panicking kernel answers Internal instead of killing the
    // worker thread (and with it, every queued connection).
    let outcome =
        catch_unwind(AssertUnwindSafe(|| query::run_with_budget(query_id, req, live.clone())));
    let elapsed = t0.elapsed();
    drop(revocation);
    ctx.inflight.fetch_sub(1, Ordering::SeqCst);
    publish_inflight(ctx);
    if let Some(reg) = phj_metrics::global() {
        reg.histogram(
            phj_metrics::names::SERVER_QUERY_LATENCY_US,
            "Per-query wall latency (us)",
        )
        .record(elapsed.as_micros() as u64);
    }
    drop(grant);

    match outcome {
        Ok(Ok(out)) => Response::Result(QueryResult {
            query_id,
            kind: out.kind,
            matches: out.matches,
            checksum: out.checksum,
            partitions: out.partitions,
            elapsed_us: elapsed.as_micros() as u64,
            report_json: out.report_json,
        }),
        Ok(Err(msg)) => Response::Error { code: ErrorCode::Internal, message: msg },
        Err(_) => Response::Error {
            code: ErrorCode::Internal,
            message: format!("query {query_id} panicked"),
        },
    }
}

fn publish_inflight(ctx: &Ctx) {
    if let Some(reg) = phj_metrics::global() {
        reg.gauge(
            phj_metrics::names::SERVER_QUERIES_INFLIGHT,
            "Queries currently executing",
        )
        .set(ctx.inflight.load(Ordering::SeqCst));
    }
}
