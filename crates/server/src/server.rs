//! The daemon: accept loop → persistent pool → admission → kernel.
//!
//! One [`Listener`](phj_metrics::Listener) accepts connections and
//! immediately ships each to the shared persistent
//! [`Pool`](phj_exec::Pool) as a fire-and-forget job (the accept
//! handler never blocks on a connection: over the
//! [`ServeConfig::max_conns`] cap it answers a typed
//! [`ErrorCode::Busy`] frame and closes right in the accept thread, so
//! a flood of connections gets backpressure instead of an unbounded
//! queue). A connection job reads request frames in a loop; each
//! join/agg request becomes a query: it gets a process-wide id, passes
//! shape validation, acquires a [`MemGrant`] (possibly waiting FIFO),
//! runs the kernel, and answers with a result frame embedding its
//! validated RunReport. Admission rejections and execution failures
//! answer typed error frames — a malformed or hostile request must
//! never take the daemon down (query panics are caught and answered as
//! [`ErrorCode::Internal`]).
//!
//! Reading is a two-phase poll so a slow-but-honest client cannot be
//! desynced: the *first* byte of a frame is probed under a 100 ms
//! timeout (a timeout there is an idle tick — zero frame bytes have
//! been consumed, so nothing is lost), and only once it arrives does
//! the loop commit to the frame under a long per-read deadline. A
//! timeout *mid-frame* can discard consumed bytes, so it closes the
//! connection rather than re-parsing the stream out of phase.
//! Connections idle past [`ServeConfig::idle_timeout`] are closed —
//! a worker is freed for queued connections instead of being parked
//! forever by a client that never sends (hostile or otherwise).
//!
//! Shutdown is cooperative: [`Server::stop`] stops the accept loop,
//! raises a stop flag every connection loop polls (their first-byte
//! probes time out every 100 ms), and then joins the pool — which
//! drains queries already running. A clean stop is *not* a crash: the
//! flight recorder's postmortem machinery stays untriggered.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use phj_exec::Pool;
use phj_metrics::Listener;
use phj_obs::{QueryTraceSection, RunReport};

use crate::admission::{Admission, AdmissionConfig, AdmitError};
use crate::proto::{
    read_frame_rest, write_frame, ErrorCode, FrameError, QueryResult, Request, Response,
};
use crate::query;
use crate::registry::{QueryRegistry, QueryState};

/// Automatic slow-query capture knobs ([`ServeConfig::slow_query`]).
#[derive(Debug, Clone)]
pub struct SlowQueryConfig {
    /// Capture a query whose end-to-end server latency (received →
    /// response built) meets or exceeds this.
    pub latency: Duration,
    /// Also capture a query that absorbed at least this many shed
    /// requests, regardless of latency. `0` disables the shed trigger.
    pub max_sheds: u32,
    /// Directory the dump files land in (created on first capture).
    pub dir: PathBuf,
    /// Dump-file ring bound: once more than `keep` dumps exist, the
    /// oldest are deleted. A misbehaving workload therefore cannot
    /// fill the disk with postmortems.
    pub keep: usize,
}

/// Called after each slow-query dump lands on disk:
/// `(query_id, trace_id, server latency, dump path)`.
type SlowQueryHook = Box<dyn Fn(u64, u64, Duration, &Path) + Send + Sync>;

/// Daemon configuration (`phj serve` flags map onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Pool worker threads — the daemon's concurrency (each in-flight
    /// connection occupies one worker while it serves requests).
    pub threads: usize,
    /// Global memory budget shared by all concurrent queries, bytes.
    pub mem_budget: u64,
    /// Smallest grant; see [`AdmissionConfig::min_grant`].
    pub min_grant: u64,
    /// Admission wait-queue bound; see [`AdmissionConfig::max_queue`].
    pub max_queue: usize,
    /// Concurrent-connection cap: connections accepted beyond this are
    /// answered a typed [`ErrorCode::Busy`] frame and closed instead of
    /// queueing without bound behind busy workers.
    pub max_conns: usize,
    /// Close a connection that has not completed a frame for this
    /// long, freeing its worker for queued connections. Idle or
    /// abandoned clients therefore cannot hold workers forever.
    pub idle_timeout: Duration,
    /// Attach a `query_trace` section to every result's RunReport
    /// (lifecycle spans + wait breakdown). Off by default: untraced
    /// result frames stay byte-identical to pre-tracing builds.
    pub trace: bool,
    /// Automatic slow-query capture; `None` disables it.
    pub slow_query: Option<SlowQueryConfig>,
    /// Scratch base directory for disk-join staging (`None` = the
    /// system temp dir). Tests point this somewhere that fails
    /// deterministically to exercise the post-grant error path.
    pub scratch_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            mem_budget: 256 << 20,
            min_grant: 1 << 20,
            max_queue: 32,
            max_conns: 64,
            idle_timeout: Duration::from_secs(30),
            trace: false,
            slow_query: None,
            scratch_dir: None,
        }
    }
}

struct Ctx {
    admission: Arc<Admission>,
    registry: Arc<QueryRegistry>,
    stop: Arc<AtomicBool>,
    next_query: AtomicU64,
    inflight: AtomicU64,
    /// Live connection jobs (queued + serving), bounded by `max_conns`.
    conns: AtomicU64,
    idle_timeout: Duration,
    trace: bool,
    slow_query: Option<SlowQueryConfig>,
    scratch_dir: Option<PathBuf>,
    /// Monotone dump ordinal — dump filenames sort by capture order,
    /// which is what the keep-ring prune relies on.
    slow_seq: AtomicU64,
    slow_hook: Mutex<Option<SlowQueryHook>>,
}

/// RAII share of the connection cap: decrements `conns` when the
/// connection job ends, however it ends.
struct ConnSlot<'a>(&'a Ctx);

impl Drop for ConnSlot<'_> {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A running daemon. [`Server::stop`] (or drop) shuts it down cleanly.
pub struct Server {
    listener: Option<Listener>,
    pool: Option<Arc<Pool>>,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Bind and start serving. Returns once the listener is live;
    /// queries run on background pool threads from then on.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let admission = Admission::new(AdmissionConfig {
            budget: cfg.mem_budget,
            min_grant: cfg.min_grant,
            max_queue: cfg.max_queue,
        });
        let registry = Arc::new(QueryRegistry::new());
        // Shed attribution: admission knows *which* query it asked to
        // shrink; the registry is where that shows up in `/queries`,
        // `phj top`, and the slow-query shed trigger.
        {
            let reg = Arc::clone(&registry);
            admission.set_shed_observer(move |victim| reg.note_shed(victim));
        }
        let ctx = Arc::new(Ctx {
            admission,
            registry,
            stop: Arc::new(AtomicBool::new(false)),
            next_query: AtomicU64::new(1),
            inflight: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            idle_timeout: cfg.idle_timeout,
            trace: cfg.trace,
            slow_query: cfg.slow_query.clone(),
            scratch_dir: cfg.scratch_dir.clone(),
            slow_seq: AtomicU64::new(1),
            slow_hook: Mutex::new(None),
        });
        let pool = Arc::new(Pool::new(cfg.threads.max(1)));
        let max_conns = cfg.max_conns.max(1) as u64;
        let listener = {
            let pool = Arc::clone(&pool);
            let ctx = Arc::clone(&ctx);
            Listener::start("phj-serve-accept", &cfg.addr, move |stream| {
                // Claim a connection slot or bounce right here in the
                // accept thread: queueing past the cap would strand the
                // client behind workers that may be busy for a long
                // time, with no signal and no bound.
                if ctx.conns.fetch_add(1, Ordering::SeqCst) >= max_conns {
                    ctx.conns.fetch_sub(1, Ordering::SeqCst);
                    reject_busy(stream);
                    return;
                }
                let ctx = Arc::clone(&ctx);
                pool.spawn(move || {
                    let slot = ConnSlot(&ctx);
                    serve_conn(stream, &ctx);
                    drop(slot);
                });
            })?
        };
        Ok(Server { listener: Some(listener), pool: Some(pool), ctx })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.as_ref().expect("server running").local_addr()
    }

    /// The admission table (for tests and the load generator to assert
    /// grant invariants).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.ctx.admission
    }

    /// Queries currently executing.
    pub fn inflight(&self) -> u64 {
        self.ctx.inflight.load(Ordering::SeqCst)
    }

    /// The live query table (the `Status` protocol response, the
    /// `/queries` endpoint, and `phj top` all render its snapshots).
    pub fn registry(&self) -> &Arc<QueryRegistry> {
        &self.ctx.registry
    }

    /// Install a callback fired after each slow-query dump lands:
    /// `(query_id, trace_id, server latency, dump path)`. The CLI uses
    /// this to emit a structured `slow_query` warning.
    pub fn set_slow_query_hook(&self, f: impl Fn(u64, u64, Duration, &Path) + Send + Sync + 'static) {
        *self.ctx.slow_hook.lock().unwrap() = Some(Box::new(f));
    }

    /// Stop accepting, wake every connection loop, and join the pool —
    /// queries already running finish first.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(l) = self.listener.take() {
            l.stop();
        }
        self.ctx.stop.store(true, Ordering::Release);
        if let Some(pool) = self.pool.take() {
            // The listener is joined, so its handler's pool clone is
            // gone: this is the last reference and joins the workers.
            if let Ok(p) = Arc::try_unwrap(pool) {
                p.shutdown();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How often an idle connection wakes to poll the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Per-read deadline once a frame has started arriving. Generous — a
/// legitimate client may fragment a frame — but bounded, so a peer
/// that stalls mid-frame cannot park a worker forever.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Answer an over-cap connection with a typed [`ErrorCode::Busy`] frame
/// (best-effort, short write deadline — this runs on the accept thread)
/// and drop it.
fn reject_busy(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = Response::Error {
        code: ErrorCode::Busy,
        message: "server at connection capacity; retry later".to_string(),
    };
    let _ = write_frame(&mut stream, &resp.encode());
}

fn serve_conn(mut stream: TcpStream, ctx: &Ctx) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut last_frame = Instant::now();
    loop {
        // Phase 1: probe for the first header byte under the short
        // poll timeout. A timeout here has consumed nothing, so it is
        // a pure idle tick — the only place a timeout is recoverable.
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let mut first = [0u8; 1];
        let version = match stream.read(&mut first) {
            Ok(0) => return, // peer closed cleanly
            Ok(_) => first[0],
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if ctx.stop.load(Ordering::Acquire) {
                    return;
                }
                if last_frame.elapsed() >= ctx.idle_timeout {
                    return; // idle deadline: free this worker
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        // Phase 2: a frame has started — commit to it under the long
        // per-read deadline. From here a timeout means the stream is
        // broken mid-frame (read_exact discards partial progress), so
        // any Io error closes the connection instead of re-parsing the
        // remaining bytes out of phase.
        let _ = stream.set_read_timeout(Some(FRAME_READ_TIMEOUT));
        match read_frame_rest(version, &mut stream) {
            Ok(body) => {
                last_frame = Instant::now();
                let resp = match Request::decode(&body) {
                    Ok(req) => handle_request(ctx, &req),
                    Err(e) => Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    },
                };
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    return;
                }
            }
            Err(FrameError::Proto(e)) => {
                // Garbage on the wire: answer typed, then drop the
                // connection (framing is no longer trustworthy).
                let resp = Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
            Err(FrameError::Io(_)) => return,
        }
    }
}

/// The client-minted trace id a request carries (0 = untraced).
fn request_trace_id(req: &Request) -> u64 {
    match req {
        Request::Join(j) => j.trace_id,
        Request::Agg(a) => a.trace_id,
        Request::DiskJoin(dj) => dj.trace_id,
        Request::Ping | Request::Status => 0,
    }
}

fn request_kind(req: &Request) -> u8 {
    match req {
        Request::Join(_) => query::KIND_JOIN,
        Request::Agg(_) => query::KIND_AGG,
        Request::DiskJoin(_) => query::KIND_DISK,
        Request::Ping | Request::Status => 0,
    }
}

fn handle_request(ctx: &Ctx, req: &Request) -> Response {
    if let Request::Ping = req {
        return Response::Pong;
    }
    if let Request::Status = req {
        return Response::Status(ctx.registry.snapshot());
    }
    if ctx.stop.load(Ordering::Acquire) {
        return Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is shutting down".to_string(),
        };
    }
    let query_id = ctx.next_query.fetch_add(1, Ordering::SeqCst);
    let trace_id = request_trace_id(req);
    let received = Instant::now();
    ctx.registry.register(query_id, trace_id, request_kind(req));
    if trace_id != 0 {
        // Bind the client-minted trace id to the server-side query id
        // in the flight recorder, so a postmortem can be grepped by
        // either id.
        phj_flightrec::event(
            phj_flightrec::EventKind::Grant,
            phj_flightrec::grant_op::TRACE,
            trace_id,
            query_id,
        );
    }
    if let Err(msg) = query::validate(req) {
        ctx.registry.finish(query_id, QueryState::Failed);
        return Response::Error { code: ErrorCode::BadRequest, message: msg };
    }
    // Best-effort `queued` transition for the live view: admission
    // re-checks under its own lock, so this can race — the grant's
    // queue/grant wait split (copied in `set_grant`) is the precise
    // record; this just makes a waiting query *visible* as waiting.
    let want = query::estimated_bytes(req).max(ctx.admission.config().min_grant);
    if ctx.admission.waiting() > 0
        || ctx.admission.outstanding().saturating_add(want) > ctx.admission.config().budget
    {
        ctx.registry.set_state(query_id, QueryState::Queued);
    }
    let grant = match ctx.admission.admit(query_id, query::estimated_bytes(req)) {
        Ok(g) => g,
        Err(e @ AdmitError::TooLarge { .. }) => {
            ctx.registry.finish(query_id, QueryState::Failed);
            return Response::Error { code: ErrorCode::TooLarge, message: e.to_string() };
        }
        Err(e @ AdmitError::QueueFull { .. }) => {
            ctx.registry.finish(query_id, QueryState::Failed);
            return Response::Error { code: ErrorCode::QueueFull, message: e.to_string() };
        }
    };

    // Dynamic disk joins run against a revocable live budget: the
    // grant and budget are registered so admission's pressure path can
    // ask this query to shed memory mid-run, and the query's
    // compliance acks propagate straight back into the grant (freed
    // bytes re-enter the global budget while the join keeps running).
    let grant = Arc::new(grant);
    ctx.registry.set_state(query_id, QueryState::Admitted);
    ctx.registry.set_grant(query_id, &grant);
    let (live, revocation) = match req {
        Request::DiskJoin(dj) if dj.mode == 2 => {
            let live = Arc::new(phj_disk::LiveBudget::new(grant.bytes()));
            let hooked = Arc::clone(&grant);
            live.set_on_ack(move |b| {
                hooked.try_shrink(b);
            });
            let reg = ctx.admission.register_revocable(query_id, &grant, &live);
            (Some(live), Some(reg))
        }
        _ => (None, None),
    };

    ctx.registry.set_state(query_id, QueryState::Executing);
    ctx.inflight.fetch_add(1, Ordering::SeqCst);
    publish_inflight(ctx);
    let t0 = Instant::now();
    // A panicking kernel answers Internal instead of killing the
    // worker thread (and with it, every queued connection).
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        query::run_in(query_id, req, live.clone(), ctx.scratch_dir.as_deref())
    }));
    let elapsed = t0.elapsed();
    drop(revocation);
    ctx.inflight.fetch_sub(1, Ordering::SeqCst);
    publish_inflight(ctx);
    record_query_histograms(&grant, elapsed);

    let resp = match outcome {
        Ok(Ok(out)) => {
            ctx.registry.set_state(query_id, QueryState::Responding);
            let report_json = if ctx.trace {
                attach_query_trace(ctx, query_id, trace_id, out.report_json)
            } else {
                out.report_json
            };
            Response::Result(QueryResult {
                query_id,
                kind: out.kind,
                matches: out.matches,
                checksum: out.checksum,
                partitions: out.partitions,
                elapsed_us: elapsed.as_micros() as u64,
                report_json,
                trace_id,
            })
        }
        Ok(Err(msg)) => Response::Error { code: ErrorCode::Internal, message: msg },
        Err(_) => Response::Error {
            code: ErrorCode::Internal,
            message: format!("query {query_id} panicked"),
        },
    };
    let failed = !matches!(resp, Response::Result(_));
    maybe_capture_slow(ctx, query_id, trace_id, received.elapsed());
    drop(grant);
    ctx.registry.finish(query_id, if failed { QueryState::Failed } else { QueryState::Done });
    resp
}

/// Break the wall latency into its lifecycle spans for Prometheus.
/// `phj_server_query_latency_us` keeps recording the total.
fn record_query_histograms(grant: &crate::admission::MemGrant, elapsed: Duration) {
    let Some(reg) = phj_metrics::global() else { return };
    reg.histogram(phj_metrics::names::SERVER_QUERY_LATENCY_US, "Per-query wall latency (us)")
        .record(elapsed.as_micros() as u64);
    reg.histogram(
        phj_metrics::names::SERVER_QUERY_QUEUE_WAIT_US,
        "Per-query admission FIFO wait behind earlier arrivals (us)",
    )
    .record(grant.queue_wait().as_micros() as u64);
    reg.histogram(
        phj_metrics::names::SERVER_QUERY_GRANT_WAIT_US,
        "Per-query wait at the queue head for budget (us)",
    )
    .record(grant.grant_wait().as_micros() as u64);
    reg.histogram(
        phj_metrics::names::SERVER_QUERY_EXEC_US,
        "Per-query kernel execution time (us)",
    )
    .record(elapsed.as_micros() as u64);
}

/// Re-render a query's RunReport with its `query_trace` section
/// attached. Parse → set → render is an identity transform for every
/// other section (u64s are exact, floats render shortest-repr), so a
/// traced report differs from the untraced one *only* by the new
/// section. Falls back to the original JSON if the report does not
/// parse (it always should — it was rendered by `RunReport::render`).
fn attach_query_trace(ctx: &Ctx, query_id: u64, trace_id: u64, report_json: String) -> String {
    let Some(lc) = ctx.registry.lifecycle(query_id) else { return report_json };
    let ser0 = Instant::now();
    phj_flightrec::event(
        phj_flightrec::EventKind::PhaseEnter,
        phj_flightrec::phase_code("serialize"),
        query_id,
        0,
    );
    let out = match RunReport::parse(&report_json) {
        Ok(mut report) => {
            // Serialization cost = the parse just done plus the render
            // below; the parse is the dominant half, so charge it and
            // a floor of 1 us so the span is visible in breakdowns.
            let serialize_ns = (ser0.elapsed().as_nanos() as u64).max(1_000);
            report.query_trace = Some(QueryTraceSection {
                trace_id,
                query_id,
                queue_wait_ns: lc.queue_wait_ns,
                grant_wait_ns: lc.grant_wait_ns,
                exec_ns: lc.exec_ns,
                serialize_ns,
                shed_count: lc.shed_count as u64,
                states: lc
                    .transitions
                    .iter()
                    .map(|(s, t)| (s.name().to_string(), *t))
                    .collect(),
            });
            report.render()
        }
        Err(_) => report_json,
    };
    phj_flightrec::event(
        phj_flightrec::EventKind::PhaseExit,
        phj_flightrec::phase_code("serialize"),
        query_id,
        1,
    );
    if let Some(reg) = phj_metrics::global() {
        reg.histogram(
            phj_metrics::names::SERVER_QUERY_SERIALIZE_US,
            "Per-query response serialization time (us)",
        )
        .record(ser0.elapsed().as_micros() as u64);
    }
    out
}

/// If the query tripped a slow-query trigger, snapshot its slice of
/// the flight-recorder ring plus its lifecycle breakdown into the
/// bounded dump directory and fire the hook.
fn maybe_capture_slow(ctx: &Ctx, query_id: u64, trace_id: u64, latency: Duration) {
    let Some(sq) = &ctx.slow_query else { return };
    let lc = ctx.registry.lifecycle(query_id).unwrap_or_default();
    let slow = latency >= sq.latency;
    let shed_heavy = sq.max_sheds > 0 && lc.shed_count >= sq.max_sheds;
    if !slow && !shed_heavy {
        return;
    }
    // This query's slice of the ring: its phase spans plus every grant
    // event it owns. Grant events carry the query id in payload `a` —
    // except TRACE, where `a` is the trace id and `b` the query id.
    let events: Vec<phj_flightrec::Event> = phj_flightrec::global()
        .map(|r| r.timeline())
        .unwrap_or_default()
        .into_iter()
        .filter(|ev| match ev.kind {
            phj_flightrec::EventKind::Grant => {
                if ev.code == phj_flightrec::grant_op::TRACE {
                    ev.b == query_id
                } else {
                    ev.a == query_id
                }
            }
            phj_flightrec::EventKind::PhaseEnter | phj_flightrec::EventKind::PhaseExit => {
                ev.a == query_id
            }
            _ => false,
        })
        .collect();
    let seq = ctx.slow_seq.fetch_add(1, Ordering::SeqCst);
    let path = sq.dir.join(format!("slow-query-{seq:06}-q{query_id}.json"));
    let trigger = if slow { "latency" } else { "sheds" };
    // Context values are raw JSON fragments (the postmortem schema's
    // convention): numbers bare, strings quoted.
    let context = [
        ("query_id".to_string(), query_id.to_string()),
        ("trace_id".to_string(), format!("\"{trace_id:#018x}\"")),
        ("trigger".to_string(), format!("\"{trigger}\"")),
        ("latency_us".to_string(), (latency.as_micros() as u64).to_string()),
        ("queue_wait_us".to_string(), (lc.queue_wait_ns / 1_000).to_string()),
        ("grant_wait_us".to_string(), (lc.grant_wait_ns / 1_000).to_string()),
        ("exec_us".to_string(), (lc.exec_ns / 1_000).to_string()),
        ("shed_count".to_string(), lc.shed_count.to_string()),
    ];
    if std::fs::create_dir_all(&sq.dir).is_err() {
        return;
    }
    let message = format!(
        "query {query_id} exceeded the slow-query {trigger} threshold ({} us, {} sheds)",
        latency.as_micros(),
        lc.shed_count,
    );
    if phj_flightrec::dump_events_to(&path, phj_flightrec::Cause::Manual, &message, &events, &context)
        .is_err()
    {
        return;
    }
    prune_slow_dumps(&sq.dir, sq.keep);
    if let Some(reg) = phj_metrics::global() {
        reg.counter(
            phj_metrics::names::SERVER_SLOW_QUERIES,
            "Slow-query captures written",
        )
        .inc();
    }
    if let Some(hook) = ctx.slow_hook.lock().unwrap().as_ref() {
        hook(query_id, trace_id, latency, &path);
    }
}

/// Keep the newest `keep` dumps (filenames embed a monotone sequence
/// number, so lexicographic order is capture order).
fn prune_slow_dumps(dir: &Path, keep: usize) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut dumps: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("slow-query-") && n.ends_with(".json"))
        })
        .collect();
    if dumps.len() <= keep.max(1) {
        return;
    }
    dumps.sort();
    let excess = dumps.len() - keep.max(1);
    for p in &dumps[..excess] {
        let _ = std::fs::remove_file(p);
    }
}

fn publish_inflight(ctx: &Ctx) {
    if let Some(reg) = phj_metrics::global() {
        reg.gauge(
            phj_metrics::names::SERVER_QUERIES_INFLIGHT,
            "Queries currently executing",
        )
        .set(ctx.inflight.load(Ordering::SeqCst));
    }
}
