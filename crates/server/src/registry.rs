//! The live query table: every in-flight query's lifecycle state, plus
//! a bounded ring of recently-completed ones.
//!
//! The daemon registers each query the moment its frame decodes and
//! walks it through a typed state machine (DESIGN.md §17):
//!
//! ```text
//! received → queued → admitted → executing → responding → done
//!     └──────────────┴──────────────┴────────────┴─────→ failed
//! ```
//!
//! `queued` is skipped when admission grants without waiting, and any
//! state can fall through to `failed` (rejection, typed error, panic).
//! Every transition records its wall-clock offset from arrival, which
//! is what the `query_trace` report section, the `Status` protocol
//! response, the `/queries` HTTP endpoint, and `phj top` all render —
//! one registry, four views.
//!
//! The registry never extends a query's life: it holds a [`Weak`] to
//! the grant (live size readable until release, then 0) and plain
//! copies of everything else. Completed entries age out of a bounded
//! ring, so a long-running daemon's table stays O(live + recent).

use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::admission::MemGrant;
use crate::proto::StatusRow;
use phj_obs::QUERY_STATES;

/// How many completed queries the registry remembers.
const RECENT_CAP: usize = 32;

/// Lifecycle states, in machine order. The discriminant is the wire
/// state code in [`StatusRow`] and the index into
/// [`phj_obs::QUERY_STATES`] — the three must stay aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum QueryState {
    /// Frame decoded, nothing else yet.
    Received = 0,
    /// Waiting in the admission FIFO.
    Queued = 1,
    /// Grant acquired, not yet running.
    Admitted = 2,
    /// The query kernel is running.
    Executing = 3,
    /// Result produced, serializing the response.
    Responding = 4,
    /// Response sent.
    Done = 5,
    /// Rejected, errored, or panicked.
    Failed = 6,
}

impl QueryState {
    /// Stable name (the `QUERY_STATES` entry this code indexes).
    pub fn name(self) -> &'static str {
        QUERY_STATES[self as usize]
    }
}

/// One query's full lifecycle record, cloned out of the registry when
/// the server builds a `query_trace` report section or a slow-query
/// dump. Offsets are nanoseconds since the request was received.
#[derive(Debug, Clone, Default)]
pub struct Lifecycle {
    /// Client-minted trace id (0 = untraced).
    pub trace_id: u64,
    /// 1 = join, 2 = agg, 3 = disk join.
    pub kind: u8,
    /// `(state, t_ns)` transitions in order.
    pub transitions: Vec<(QueryState, u64)>,
    /// Time queued behind earlier arrivals, ns.
    pub queue_wait_ns: u64,
    /// Time at the queue head waiting for budget, ns.
    pub grant_wait_ns: u64,
    /// Execution wall time, ns (running: elapsed so far).
    pub exec_ns: u64,
    /// Shed requests this query absorbed.
    pub shed_count: u32,
}

struct Entry {
    query_id: u64,
    trace_id: u64,
    kind: u8,
    state: QueryState,
    received: Instant,
    transitions: Vec<(QueryState, u64)>,
    grant: Weak<MemGrant>,
    queue_wait: Duration,
    grant_wait: Duration,
    exec_start: Option<Instant>,
    exec: Duration,
    sheds: u32,
}

impl Entry {
    fn exec_ns(&self, now: Instant) -> u64 {
        if self.exec != Duration::ZERO {
            return self.exec.as_nanos() as u64;
        }
        match self.exec_start {
            Some(start) => now.duration_since(start).as_nanos() as u64,
            None => 0,
        }
    }

    fn row(&self, now: Instant) -> StatusRow {
        StatusRow {
            query_id: self.query_id,
            trace_id: self.trace_id,
            kind: self.kind,
            state: self.state as u8,
            age_us: now.duration_since(self.received).as_micros() as u64,
            grant_bytes: self.grant.upgrade().map_or(0, |g| g.bytes()),
            shed_count: self.sheds,
            queue_wait_us: self.queue_wait.as_micros() as u64,
            grant_wait_us: self.grant_wait.as_micros() as u64,
            exec_us: self.exec_ns(now) / 1_000,
        }
    }
}

struct Inner {
    live: Vec<Entry>,
    recent: std::collections::VecDeque<Entry>,
}

/// The registry. One per server; clone the `Arc` freely.
pub struct QueryRegistry {
    inner: Mutex<Inner>,
}

impl Default for QueryRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryRegistry {
    /// An empty registry.
    pub fn new() -> QueryRegistry {
        QueryRegistry {
            inner: Mutex::new(Inner { live: Vec::new(), recent: std::collections::VecDeque::new() }),
        }
    }

    /// Register a freshly-decoded query in state `received`.
    pub fn register(&self, query_id: u64, trace_id: u64, kind: u8) {
        let mut inner = self.inner.lock().unwrap();
        inner.live.push(Entry {
            query_id,
            trace_id,
            kind,
            state: QueryState::Received,
            received: Instant::now(),
            transitions: vec![(QueryState::Received, 0)],
            grant: Weak::new(),
            queue_wait: Duration::ZERO,
            grant_wait: Duration::ZERO,
            exec_start: None,
            exec: Duration::ZERO,
            sheds: 0,
        });
    }

    /// Advance a live query's state, recording the transition offset.
    /// Entering `executing` starts the exec clock; leaving it (to
    /// `responding` or `failed`) stops it.
    pub fn set_state(&self, query_id: u64, state: QueryState) {
        let mut inner = self.inner.lock().unwrap();
        let Some(e) = inner.live.iter_mut().find(|e| e.query_id == query_id) else {
            return;
        };
        let now = Instant::now();
        if state == QueryState::Executing {
            e.exec_start = Some(now);
        } else if e.exec_start.is_some() && e.exec == Duration::ZERO {
            e.exec = now.duration_since(e.exec_start.unwrap());
        }
        e.state = state;
        let t_ns = now.duration_since(e.received).as_nanos() as u64;
        e.transitions.push((state, t_ns));
    }

    /// Attach the admitted grant: the registry reads its live size
    /// through a `Weak` and copies its queue/grant wait split.
    pub fn set_grant(&self, query_id: u64, grant: &Arc<MemGrant>) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.live.iter_mut().find(|e| e.query_id == query_id) {
            e.grant = Arc::downgrade(grant);
            e.queue_wait = grant.queue_wait();
            e.grant_wait = grant.grant_wait();
        }
    }

    /// Record that a query was asked to shed memory (the admission
    /// table's shed observer lands here).
    pub fn note_shed(&self, query_id: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(e) = inner.live.iter_mut().find(|e| e.query_id == query_id) {
            e.sheds += 1;
        }
    }

    /// Retire a live query into the recent ring in its final state.
    pub fn finish(&self, query_id: u64, state: QueryState) {
        debug_assert!(matches!(state, QueryState::Done | QueryState::Failed));
        self.set_state(query_id, state);
        let mut inner = self.inner.lock().unwrap();
        let Some(pos) = inner.live.iter().position(|e| e.query_id == query_id) else {
            return;
        };
        let entry = inner.live.remove(pos);
        inner.recent.push_back(entry);
        while inner.recent.len() > RECENT_CAP {
            inner.recent.pop_front();
        }
    }

    /// A live query's lifecycle record so far (`None` once retired —
    /// the caller builds report sections *before* finishing).
    pub fn lifecycle(&self, query_id: u64) -> Option<Lifecycle> {
        let inner = self.inner.lock().unwrap();
        let e = inner.live.iter().find(|e| e.query_id == query_id)?;
        Some(Lifecycle {
            trace_id: e.trace_id,
            kind: e.kind,
            transitions: e.transitions.clone(),
            queue_wait_ns: e.queue_wait.as_nanos() as u64,
            grant_wait_ns: e.grant_wait.as_nanos() as u64,
            exec_ns: e.exec_ns(Instant::now()),
            shed_count: e.sheds,
        })
    }

    /// Snapshot the table as wire rows: live queries first (oldest
    /// first), then recently-completed (newest first), capped at
    /// [`crate::proto::MAX_STATUS_ROWS`].
    pub fn snapshot(&self) -> Vec<StatusRow> {
        let now = Instant::now();
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<StatusRow> = inner.live.iter().map(|e| e.row(now)).collect();
        rows.extend(inner.recent.iter().rev().map(|e| e.row(now)));
        rows.truncate(crate::proto::MAX_STATUS_ROWS as usize);
        rows
    }

    /// Live queries right now.
    pub fn live_count(&self) -> usize {
        self.inner.lock().unwrap().live.len()
    }

    /// The table as a JSON document for the `/queries` HTTP endpoint:
    /// `{"queries": [{...}, ...]}` with states and kinds as names.
    pub fn to_json(&self) -> String {
        let rows = self.snapshot();
        let mut out = String::with_capacity(64 + 160 * rows.len());
        out.push_str("{\"queries\": [");
        for (i, r) in rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let kind = match r.kind {
                1 => "join",
                2 => "agg",
                _ => "disk_join",
            };
            out.push_str(&format!(
                "{{\"query_id\": {}, \"trace_id\": {}, \"kind\": \"{}\", \"state\": \"{}\", \
                 \"age_us\": {}, \"grant_bytes\": {}, \"shed_count\": {}, \
                 \"queue_wait_us\": {}, \"grant_wait_us\": {}, \"exec_us\": {}}}",
                r.query_id,
                r.trace_id,
                kind,
                QUERY_STATES[r.state as usize],
                r.age_us,
                r.grant_bytes,
                r.shed_count,
                r.queue_wait_us,
                r.grant_wait_us,
                r.exec_us,
            ));
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{Admission, AdmissionConfig};

    #[test]
    fn state_codes_match_the_canonical_name_table() {
        let states = [
            QueryState::Received,
            QueryState::Queued,
            QueryState::Admitted,
            QueryState::Executing,
            QueryState::Responding,
            QueryState::Done,
            QueryState::Failed,
        ];
        assert_eq!(states.len(), QUERY_STATES.len());
        for s in states {
            assert_eq!(s.name(), QUERY_STATES[s as usize]);
        }
    }

    #[test]
    fn lifecycle_walks_the_machine_and_retires_into_recent() {
        let reg = QueryRegistry::new();
        reg.register(1, 0x7AC3, 1);
        reg.set_state(1, QueryState::Admitted);
        reg.set_state(1, QueryState::Executing);
        std::thread::sleep(Duration::from_millis(2));
        reg.set_state(1, QueryState::Responding);
        let lc = reg.lifecycle(1).expect("still live");
        assert_eq!(lc.kind, 1);
        assert!(lc.exec_ns >= 1_000_000, "exec clock ran: {}", lc.exec_ns);
        let names: Vec<&str> = lc.transitions.iter().map(|(s, _)| s.name()).collect();
        assert_eq!(names, ["received", "admitted", "executing", "responding"]);
        assert!(lc.transitions.windows(2).all(|w| w[0].1 <= w[1].1));

        reg.finish(1, QueryState::Done);
        assert_eq!(reg.live_count(), 0);
        assert!(reg.lifecycle(1).is_none(), "retired queries are snapshot-only");
        let rows = reg.snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].state, QueryState::Done as u8);
        // The JSON view carries names, not codes.
        let json = reg.to_json();
        assert!(json.contains("\"state\": \"done\""));
        assert!(json.contains("\"kind\": \"join\""));
    }

    #[test]
    fn grant_size_reads_live_and_zeroes_after_release() {
        let adm = Admission::new(AdmissionConfig { budget: 100, min_grant: 1, max_queue: 4 });
        let reg = QueryRegistry::new();
        reg.register(9, 0, 3);
        let grant = Arc::new(adm.admit(9, 64).unwrap());
        reg.set_grant(9, &grant);
        reg.note_shed(9);
        let rows = reg.snapshot();
        assert_eq!(rows[0].grant_bytes, 64);
        assert_eq!(rows[0].shed_count, 1);
        drop(grant);
        assert_eq!(reg.snapshot()[0].grant_bytes, 0, "weak grant is gone after release");
    }

    #[test]
    fn recent_ring_is_bounded() {
        let reg = QueryRegistry::new();
        for qid in 0..(RECENT_CAP as u64 + 10) {
            reg.register(qid, 0, 2);
            reg.finish(qid, QueryState::Done);
        }
        let rows = reg.snapshot();
        assert_eq!(rows.len(), RECENT_CAP);
        // Newest completion first.
        assert_eq!(rows[0].query_id, RECENT_CAP as u64 + 9);
    }
}
