//! A minimal blocking client: one TCP connection, one request frame
//! out, one response frame back. `phj client` and the `serve_load`
//! bench both drive the daemon through this type, so the wire path the
//! benches measure is the wire path users get.

use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::proto::{
    read_frame, read_frame_rest, write_frame, FrameError, ProtoError, Request, Response,
};

/// Client-side wall-clock breakdown of one request
/// ([`Connection::request_timed`]): how long the send took, how long
/// the client waited for the *first* response byte, and how long the
/// rest of the response frame took to arrive. `wait` is the span the
/// server's own `query_trace` section accounts for (queue + grant +
/// exec + serialize, plus network) — `phj client --trace-out` lines
/// the two up in one Perfetto timeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClientTiming {
    /// Writing the request frame.
    pub send: Duration,
    /// Send completion → first response byte.
    pub wait: Duration,
    /// First response byte → full frame received.
    pub recv: Duration,
}

/// One connection to a `phj serve` daemon.
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connect, with a default 60 s read timeout (queries can queue
    /// behind a full admission table; a dead server should still fail).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Connection { stream })
    }

    /// Override the read timeout (None = block forever).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Send one request and block for its response. A server that
    /// closes without answering surfaces as
    /// [`ProtoError::Truncated`].
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.stream, &req.encode())?;
        match read_frame(&mut self.stream)? {
            Some(body) => Ok(Response::decode(&body)?),
            None => Err(ProtoError::Truncated.into()),
        }
    }

    /// [`request`](Self::request) with a client-side send/wait/recv
    /// breakdown. The first response byte is read by hand so the
    /// wait→recv boundary is the actual first byte on the wire, not a
    /// whole-frame read.
    pub fn request_timed(
        &mut self,
        req: &Request,
    ) -> Result<(Response, ClientTiming), FrameError> {
        let t0 = Instant::now();
        write_frame(&mut self.stream, &req.encode())?;
        let sent = Instant::now();
        let mut first = [0u8; 1];
        loop {
            match self.stream.read(&mut first) {
                // A server that closes without answering: same typed
                // error the untimed path reports.
                Ok(0) => return Err(ProtoError::Truncated.into()),
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let first_byte = Instant::now();
        let body = read_frame_rest(first[0], &mut self.stream)?;
        let resp = Response::decode(&body)?;
        let done = Instant::now();
        let timing = ClientTiming {
            send: sent.duration_since(t0),
            wait: first_byte.duration_since(sent),
            recv: done.duration_since(first_byte),
        };
        Ok((resp, timing))
    }
}
