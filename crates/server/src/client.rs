//! A minimal blocking client: one TCP connection, one request frame
//! out, one response frame back. `phj client` and the `serve_load`
//! bench both drive the daemon through this type, so the wire path the
//! benches measure is the wire path users get.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{read_frame, write_frame, FrameError, ProtoError, Request, Response};

/// One connection to a `phj serve` daemon.
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connect, with a default 60 s read timeout (queries can queue
    /// behind a full admission table; a dead server should still fail).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Connection { stream })
    }

    /// Override the read timeout (None = block forever).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(t)
    }

    /// Send one request and block for its response. A server that
    /// closes without answering surfaces as
    /// [`ProtoError::Truncated`].
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        write_frame(&mut self.stream, &req.encode())?;
        match read_frame(&mut self.stream)? {
            Some(body) => Ok(Response::decode(&body)?),
            None => Err(ProtoError::Truncated.into()),
        }
    }
}
