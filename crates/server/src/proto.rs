//! The wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! +---------+-------------+----------------------+
//! | version | body length | body                 |
//! | u8 = 1  | u32 LE      | `body length` bytes  |
//! +---------+-------------+----------------------+
//! ```
//!
//! The body's first byte is a tag (requests `0x01..`, responses
//! `0x81..`); the rest is fixed-width little-endian fields plus
//! length-prefixed strings. Everything decodes with bounds checks into
//! typed [`ProtoError`]s — arbitrary garbage bytes must produce an
//! error, never a panic (property-tested in `tests/proto_props.rs`).
//!
//! Frames are capped at [`MAX_FRAME`]: a hostile or corrupt length
//! prefix is rejected *before* any allocation, so a 4 GB length cannot
//! OOM the daemon.

use std::io::{Read, Write};

/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;

/// Upper bound on a frame body, checked before allocating.
pub const MAX_FRAME: u32 = 1 << 20;

/// Typed decode failures. Every way a frame can be malformed maps to
/// one of these — decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Header version byte was not [`VERSION`].
    BadVersion(u8),
    /// The buffer ended before a fixed-width field or prefixed blob.
    Truncated,
    /// Declared body length exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// Unknown request/response tag byte.
    BadTag(u8),
    /// A length-prefixed string was not UTF-8.
    BadUtf8,
    /// Bytes left over after a complete message was decoded.
    Trailing(usize),
    /// A field value outside its domain (e.g. pct > 100).
    BadValue(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadVersion(v) => write!(f, "bad protocol version {v} (want {VERSION})"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::Oversized(n) => write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME}"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::BadValue(what) => write!(f, "field out of range: {what}"),
        }
    }
}

/// Frame-level read failures: transport errors wrap `std::io::Error`,
/// malformed bytes wrap [`ProtoError`].
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket/file failed (includes timeouts).
    Io(std::io::Error),
    /// The bytes arrived but do not form a valid frame.
    Proto(ProtoError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Proto(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<ProtoError> for FrameError {
    fn from(e: ProtoError) -> Self {
        FrameError::Proto(e)
    }
}

/// Hash-join scheme selector on the wire (mirrors the CLI `--scheme`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireScheme {
    /// No prefetching.
    Baseline,
    /// Simple prefetching.
    Simple,
    /// Group prefetching with group size `g`.
    Group {
        /// Tuples per prefetch group.
        g: u32,
    },
    /// Software-pipelined prefetching with distance `d`.
    Swp {
        /// Pipeline prefetch distance.
        d: u32,
    },
}

impl WireScheme {
    fn code(self) -> u8 {
        match self {
            WireScheme::Baseline => 0,
            WireScheme::Simple => 1,
            WireScheme::Group { .. } => 2,
            WireScheme::Swp { .. } => 3,
        }
    }

    fn params(self) -> (u32, u32) {
        match self {
            WireScheme::Group { g } => (g, 0),
            WireScheme::Swp { d } => (0, d),
            _ => (0, 0),
        }
    }

    /// Inverse of `code()` + `params()`. Unused parameters must be
    /// zero, so every scheme has exactly one wire form — decode∘encode
    /// is the identity and encode∘decode is too (the round-trip
    /// property in `tests/proto_props.rs` relies on it).
    fn from_parts(code: u8, g: u32, d: u32) -> Result<WireScheme, ProtoError> {
        match (code, g, d) {
            (0, 0, 0) => Ok(WireScheme::Baseline),
            (1, 0, 0) => Ok(WireScheme::Simple),
            (2, g, 0) => Ok(WireScheme::Group { g }),
            (3, 0, d) => Ok(WireScheme::Swp { d }),
            (0..=3, ..) => Err(ProtoError::BadValue("non-canonical scheme params")),
            _ => Err(ProtoError::BadValue("scheme code")),
        }
    }

    /// Human label matching the CLI's `--scheme` values.
    pub fn label(&self) -> &'static str {
        match self {
            WireScheme::Baseline => "baseline",
            WireScheme::Simple => "simple",
            WireScheme::Group { .. } => "group",
            WireScheme::Swp { .. } => "swp",
        }
    }
}

/// A join query: the same knobs as `phj join`, one request per frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinRequest {
    /// Build-side cardinality.
    pub build_tuples: u64,
    /// Bytes per tuple (4-byte key + payload).
    pub tuple_size: u32,
    /// Probe tuples matching each build tuple.
    pub matches_per_build: u32,
    /// Percentage of build tuples with matches (0–100).
    pub pct_match: u8,
    /// Join-phase algorithm.
    pub scheme: WireScheme,
    /// Join-phase memory budget in bytes.
    pub mem_budget: u64,
    /// Workload generator seed (determines the checksum).
    pub seed: u64,
    /// Client-minted distributed trace id (0 = untraced). Travels as an
    /// optional frame tail: omitted entirely when zero, so untraced
    /// frames are byte-identical to the pre-tracing wire format.
    pub trace_id: u64,
}

/// An aggregation query: the same knobs as `phj agg`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggRequest {
    /// Input rows.
    pub rows: u64,
    /// Distinct group keys.
    pub keys: u64,
    /// Aggregation algorithm.
    pub scheme: WireScheme,
    /// Memory the query asks a grant for, in bytes (0 = estimate).
    pub mem_budget: u64,
    /// Client-minted distributed trace id (0 = untraced; optional tail,
    /// same convention as [`JoinRequest::trace_id`]).
    pub trace_id: u64,
}

/// An on-disk join query: runs the `phj-disk` engine (GRACE, hybrid,
/// or dynamic hybrid) against generated file relations in a per-query
/// scratch directory. The memory grant maps 1:1 to the join's live
/// budget, which is what makes these queries *revocable*: admission
/// can ask a running dynamic disk join to shed memory mid-flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskJoinRequest {
    /// Build-side cardinality.
    pub build_tuples: u64,
    /// Bytes per tuple (4-byte key + payload).
    pub tuple_size: u32,
    /// Probe tuples matching each build tuple.
    pub matches_per_build: u32,
    /// Percentage of build tuples with matches (0–100).
    pub pct_match: u8,
    /// Join memory budget in bytes — also the grant size.
    pub mem_budget: u64,
    /// Workload generator seed (determines the checksum).
    pub seed: u64,
    /// Execution strategy: 0 = grace, 1 = hybrid, 2 = dynamic.
    pub mode: u8,
    /// Client-minted distributed trace id (0 = untraced; optional tail,
    /// same convention as [`JoinRequest::trace_id`]).
    pub trace_id: u64,
}

/// A decoded request frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a hash join.
    Join(JoinRequest),
    /// Run an aggregation.
    Agg(AggRequest),
    /// Run an on-disk join.
    DiskJoin(DiskJoinRequest),
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping,
    /// Introspection: ask for the live query table; the server answers
    /// [`Response::Status`].
    Status,
}

const TAG_JOIN: u8 = 0x01;
const TAG_AGG: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_DISK: u8 = 0x04;
const TAG_STATUS: u8 = 0x05;
const TAG_RESULT: u8 = 0x81;
const TAG_ERROR: u8 = 0x82;
const TAG_PONG: u8 = 0x83;
const TAG_STATUS_RESP: u8 = 0x84;

/// Upper bound on rows in a [`Response::Status`] frame, checked before
/// any allocation — a hostile row count cannot OOM the decoder.
pub const MAX_STATUS_ROWS: u32 = 1024;

/// Typed error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame was malformed.
    BadRequest = 1,
    /// The query's memory request exceeds the server's whole budget.
    TooLarge = 2,
    /// The admission queue is full; retry later.
    QueueFull = 3,
    /// The query failed while executing.
    Internal = 4,
    /// The server is shutting down.
    ShuttingDown = 5,
    /// The server is at its connection cap; retry later.
    Busy = 6,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Result<ErrorCode, ProtoError> {
        match v {
            1 => Ok(ErrorCode::BadRequest),
            2 => Ok(ErrorCode::TooLarge),
            3 => Ok(ErrorCode::QueueFull),
            4 => Ok(ErrorCode::Internal),
            5 => Ok(ErrorCode::ShuttingDown),
            6 => Ok(ErrorCode::Busy),
            _ => Err(ProtoError::BadValue("error code")),
        }
    }
}

/// One query's result: identity, checksum, and the embedded RunReport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Server-assigned query id (also tagged into the RunReport and
    /// flight-recorder events).
    pub query_id: u64,
    /// 1 = join, 2 = agg, 3 = disk join.
    pub kind: u8,
    /// Join matches, or aggregation groups.
    pub matches: u64,
    /// Order-independent result checksum (join: pair digest XOR; agg:
    /// group-table digest). Equal inputs must produce equal checksums
    /// regardless of concurrency.
    pub checksum: u64,
    /// Partitions the join produced (0 for agg).
    pub partitions: u64,
    /// Server-side wall time for the query, microseconds.
    pub elapsed_us: u64,
    /// The per-query RunReport, rendered as JSON.
    pub report_json: String,
    /// The trace id the request carried, echoed back (0 = untraced;
    /// optional tail, same convention as [`JoinRequest::trace_id`]).
    pub trace_id: u64,
}

/// One row of the live query table carried by [`Response::Status`]:
/// a fixed-width snapshot of one in-flight or recently-completed query.
/// State codes index `phj_obs::QUERY_STATES`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusRow {
    /// Server-assigned query id.
    pub query_id: u64,
    /// Client-minted trace id (0 = untraced).
    pub trace_id: u64,
    /// 1 = join, 2 = agg, 3 = disk join.
    pub kind: u8,
    /// Lifecycle state code (0–6: received, queued, admitted,
    /// executing, responding, done, failed).
    pub state: u8,
    /// Microseconds since the request was received.
    pub age_us: u64,
    /// Current grant size in bytes (0 once released).
    pub grant_bytes: u64,
    /// Shed requests this query has absorbed.
    pub shed_count: u32,
    /// Time spent queued behind earlier arrivals, microseconds.
    pub queue_wait_us: u64,
    /// Time spent at the queue head waiting for budget, microseconds.
    pub grant_wait_us: u64,
    /// Execution wall time so far (or final), microseconds.
    pub exec_us: u64,
}

/// A decoded response frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The query ran; here is its result.
    Result(QueryResult),
    /// The query was rejected or failed.
    Error {
        /// What went wrong, as a stable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Status`]: the live query table.
    Status(Vec<StatusRow>),
}

// ---------------------------------------------------------------- codec

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    /// The optional 8-byte trace-id tail: present iff exactly 8 bytes
    /// remain after the message's fixed part. An *explicit* zero is
    /// rejected — zero means "untraced" and untraced frames omit the
    /// tail entirely, so every message keeps exactly one wire form
    /// (the decode∘encode identity in `tests/proto_props.rs`).
    fn trace_tail(&mut self) -> Result<u64, ProtoError> {
        if self.buf.len() - self.pos != 8 {
            return Ok(0);
        }
        let id = self.u64()?;
        if id == 0 {
            return Err(ProtoError::BadValue("explicit zero trace id"));
        }
        Ok(id)
    }

    fn finish(self) -> Result<(), ProtoError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(ProtoError::Trailing(left))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_trace_tail(out: &mut Vec<u8>, trace_id: u64) {
    if trace_id != 0 {
        out.extend_from_slice(&trace_id.to_le_bytes());
    }
}

impl Request {
    /// Encode this request as a frame body (no header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Join(j) => {
                let (g, d) = j.scheme.params();
                out.push(TAG_JOIN);
                out.extend_from_slice(&j.build_tuples.to_le_bytes());
                out.extend_from_slice(&j.tuple_size.to_le_bytes());
                out.extend_from_slice(&j.matches_per_build.to_le_bytes());
                out.push(j.pct_match);
                out.push(j.scheme.code());
                out.extend_from_slice(&g.to_le_bytes());
                out.extend_from_slice(&d.to_le_bytes());
                out.extend_from_slice(&j.mem_budget.to_le_bytes());
                out.extend_from_slice(&j.seed.to_le_bytes());
                put_trace_tail(&mut out, j.trace_id);
            }
            Request::Agg(a) => {
                let (g, d) = a.scheme.params();
                out.push(TAG_AGG);
                out.extend_from_slice(&a.rows.to_le_bytes());
                out.extend_from_slice(&a.keys.to_le_bytes());
                out.push(a.scheme.code());
                out.extend_from_slice(&g.to_le_bytes());
                out.extend_from_slice(&d.to_le_bytes());
                out.extend_from_slice(&a.mem_budget.to_le_bytes());
                put_trace_tail(&mut out, a.trace_id);
            }
            Request::DiskJoin(dj) => {
                out.push(TAG_DISK);
                out.extend_from_slice(&dj.build_tuples.to_le_bytes());
                out.extend_from_slice(&dj.tuple_size.to_le_bytes());
                out.extend_from_slice(&dj.matches_per_build.to_le_bytes());
                out.push(dj.pct_match);
                out.extend_from_slice(&dj.mem_budget.to_le_bytes());
                out.extend_from_slice(&dj.seed.to_le_bytes());
                out.push(dj.mode);
                put_trace_tail(&mut out, dj.trace_id);
            }
            Request::Ping => out.push(TAG_PING),
            Request::Status => out.push(TAG_STATUS),
        }
        out
    }

    /// Decode a frame body into a request. Total: every byte is
    /// consumed or the decode fails typed.
    pub fn decode(body: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            TAG_JOIN => {
                let build_tuples = c.u64()?;
                let tuple_size = c.u32()?;
                let matches_per_build = c.u32()?;
                let pct_match = c.u8()?;
                if pct_match > 100 {
                    return Err(ProtoError::BadValue("pct_match > 100"));
                }
                let code = c.u8()?;
                let g = c.u32()?;
                let d = c.u32()?;
                let scheme = WireScheme::from_parts(code, g, d)?;
                let mem_budget = c.u64()?;
                let seed = c.u64()?;
                let trace_id = c.trace_tail()?;
                if tuple_size < 8 {
                    return Err(ProtoError::BadValue("tuple_size < 8"));
                }
                Request::Join(JoinRequest {
                    build_tuples,
                    tuple_size,
                    matches_per_build,
                    pct_match,
                    scheme,
                    mem_budget,
                    seed,
                    trace_id,
                })
            }
            TAG_AGG => {
                let rows = c.u64()?;
                let keys = c.u64()?;
                let code = c.u8()?;
                let g = c.u32()?;
                let d = c.u32()?;
                let scheme = WireScheme::from_parts(code, g, d)?;
                let mem_budget = c.u64()?;
                let trace_id = c.trace_tail()?;
                if keys == 0 {
                    return Err(ProtoError::BadValue("keys == 0"));
                }
                Request::Agg(AggRequest { rows, keys, scheme, mem_budget, trace_id })
            }
            TAG_DISK => {
                let build_tuples = c.u64()?;
                let tuple_size = c.u32()?;
                let matches_per_build = c.u32()?;
                let pct_match = c.u8()?;
                if pct_match > 100 {
                    return Err(ProtoError::BadValue("pct_match > 100"));
                }
                let mem_budget = c.u64()?;
                let seed = c.u64()?;
                let mode = c.u8()?;
                let trace_id = c.trace_tail()?;
                if mode > 2 {
                    return Err(ProtoError::BadValue("disk join mode > 2"));
                }
                if tuple_size < 8 {
                    return Err(ProtoError::BadValue("tuple_size < 8"));
                }
                Request::DiskJoin(DiskJoinRequest {
                    build_tuples,
                    tuple_size,
                    matches_per_build,
                    pct_match,
                    mem_budget,
                    seed,
                    mode,
                    trace_id,
                })
            }
            TAG_PING => Request::Ping,
            TAG_STATUS => Request::Status,
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encode this response as a frame body (no header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Result(r) => {
                out.push(TAG_RESULT);
                out.extend_from_slice(&r.query_id.to_le_bytes());
                out.push(r.kind);
                out.extend_from_slice(&r.matches.to_le_bytes());
                out.extend_from_slice(&r.checksum.to_le_bytes());
                out.extend_from_slice(&r.partitions.to_le_bytes());
                out.extend_from_slice(&r.elapsed_us.to_le_bytes());
                put_string(&mut out, &r.report_json);
                put_trace_tail(&mut out, r.trace_id);
            }
            Response::Error { code, message } => {
                out.push(TAG_ERROR);
                out.extend_from_slice(&(*code as u16).to_le_bytes());
                put_string(&mut out, message);
            }
            Response::Pong => out.push(TAG_PONG),
            Response::Status(rows) => {
                out.push(TAG_STATUS_RESP);
                out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    out.extend_from_slice(&row.query_id.to_le_bytes());
                    out.extend_from_slice(&row.trace_id.to_le_bytes());
                    out.push(row.kind);
                    out.push(row.state);
                    out.extend_from_slice(&row.age_us.to_le_bytes());
                    out.extend_from_slice(&row.grant_bytes.to_le_bytes());
                    out.extend_from_slice(&row.shed_count.to_le_bytes());
                    out.extend_from_slice(&row.queue_wait_us.to_le_bytes());
                    out.extend_from_slice(&row.grant_wait_us.to_le_bytes());
                    out.extend_from_slice(&row.exec_us.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decode a frame body into a response.
    pub fn decode(body: &[u8]) -> Result<Response, ProtoError> {
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            TAG_RESULT => Response::Result(QueryResult {
                query_id: c.u64()?,
                kind: c.u8()?,
                matches: c.u64()?,
                checksum: c.u64()?,
                partitions: c.u64()?,
                elapsed_us: c.u64()?,
                report_json: c.string()?,
                trace_id: c.trace_tail()?,
            }),
            TAG_ERROR => Response::Error {
                code: ErrorCode::from_u16(c.u16()?)?,
                message: c.string()?,
            },
            TAG_PONG => Response::Pong,
            TAG_STATUS_RESP => {
                let count = c.u32()?;
                if count > MAX_STATUS_ROWS {
                    return Err(ProtoError::BadValue("status row count"));
                }
                let mut rows = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let query_id = c.u64()?;
                    let trace_id = c.u64()?;
                    let kind = c.u8()?;
                    let state = c.u8()?;
                    if kind == 0 || kind > 3 {
                        return Err(ProtoError::BadValue("status row kind"));
                    }
                    if state > 6 {
                        return Err(ProtoError::BadValue("query state code"));
                    }
                    rows.push(StatusRow {
                        query_id,
                        trace_id,
                        kind,
                        state,
                        age_us: c.u64()?,
                        grant_bytes: c.u64()?,
                        shed_count: c.u32()?,
                        queue_wait_us: c.u64()?,
                        grant_wait_us: c.u64()?,
                        exec_us: c.u64()?,
                    });
                }
                Response::Status(rows)
            }
            t => return Err(ProtoError::BadTag(t)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Write one frame: header ([`VERSION`], body length) then the body.
/// Fails with [`FrameError::Proto`] if the body exceeds [`MAX_FRAME`]
/// rather than sending a frame the peer is guaranteed to reject.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    if body.len() as u64 > MAX_FRAME as u64 {
        return Err(ProtoError::Oversized(body.len() as u32).into());
    }
    let mut head = [0u8; 5];
    head[0] = VERSION;
    head[1..5].copy_from_slice(&(body.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one frame body. `Ok(None)` means the peer closed cleanly
/// *between* frames; a close mid-frame is [`ProtoError::Truncated`].
/// The declared length is validated against [`MAX_FRAME`] before any
/// allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    // First byte by hand so clean EOF (zero bytes) is distinguishable
    // from a mid-header close.
    let mut first = [0u8; 1];
    match r.read(&mut first) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e.into()),
    }
    read_frame_rest(first[0], r).map(Some)
}

/// Read the remainder of a frame whose first header byte (`version`)
/// has already been consumed. The split exists for pollers that probe
/// for the first byte under a short read timeout and then finish the
/// frame under a longer one: a timeout before the first byte is an
/// idle poll, a timeout after it is a broken frame — `read_exact`
/// discards mid-frame progress, so callers must treat an [`FrameError::Io`]
/// from this function as fatal for the stream (the framing can no
/// longer be trusted).
pub fn read_frame_rest(version: u8, r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    if version != VERSION {
        return Err(ProtoError::BadVersion(version).into());
    }
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes).map_err(eof_as_truncated)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(len).into());
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(eof_as_truncated)?;
    Ok(body)
}

fn eof_as_truncated(e: std::io::Error) -> FrameError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ProtoError::Truncated.into()
    } else {
        e.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let req = Request::Join(JoinRequest {
            build_tuples: 10_000,
            tuple_size: 100,
            matches_per_build: 2,
            pct_match: 100,
            scheme: WireScheme::Group { g: 16 },
            mem_budget: 1 << 20,
            seed: 0x11D0,
            trace_id: 0,
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let body = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(Request::decode(&body).unwrap(), req);
        // And nothing follows: the next read sees clean EOF.
        let mut rest = &wire[wire.len()..];
        assert!(read_frame(&mut rest).unwrap().is_none());
    }

    #[test]
    fn disk_join_round_trips_and_mode_is_validated() {
        let req = Request::DiskJoin(DiskJoinRequest {
            build_tuples: 5_000,
            tuple_size: 48,
            matches_per_build: 2,
            pct_match: 80,
            mem_budget: 1 << 16,
            seed: 0xD15C,
            mode: 2,
            trace_id: 0,
        });
        let body = req.encode();
        assert_eq!(Request::decode(&body).unwrap(), req);

        // mode is the last byte of the body; 3 is out of range.
        let mut bad = body.clone();
        *bad.last_mut().unwrap() = 3;
        assert_eq!(
            Request::decode(&bad),
            Err(ProtoError::BadValue("disk join mode > 2"))
        );
    }

    #[test]
    fn bad_version_and_oversized_are_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        wire[0] = 9;
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Proto(ProtoError::BadVersion(9))) => {}
            other => panic!("want BadVersion, got {other:?}"),
        }

        let mut huge = vec![VERSION];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut huge.as_slice()) {
            Err(FrameError::Proto(ProtoError::Oversized(n))) => assert_eq!(n, u32::MAX),
            other => panic!("want Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        wire.pop(); // lose the last body byte
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Proto(ProtoError::Truncated)) => {}
            other => panic!("want Truncated, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Request::Ping.encode();
        body.push(0xFF);
        assert_eq!(Request::decode(&body), Err(ProtoError::Trailing(1)));
    }

    #[test]
    fn trace_id_tail_round_trips_and_zero_is_canonical() {
        let mut req = JoinRequest {
            build_tuples: 1_000,
            tuple_size: 64,
            matches_per_build: 1,
            pct_match: 100,
            scheme: WireScheme::Simple,
            mem_budget: 1 << 20,
            seed: 1,
            trace_id: 0,
        };
        let untraced = Request::Join(req.clone()).encode();
        req.trace_id = 0xFEED_BEEF_CAFE_0001;
        let traced = Request::Join(req.clone()).encode();
        // The tail is the only difference: untraced frames keep the
        // pre-tracing wire format byte for byte.
        assert_eq!(traced.len(), untraced.len() + 8);
        assert_eq!(&traced[..untraced.len()], &untraced[..]);
        assert_eq!(Request::decode(&traced).unwrap(), Request::Join(req));

        // An explicit zero tail is non-canonical (zero means "omit").
        let mut zeroed = untraced.clone();
        zeroed.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            Request::decode(&zeroed),
            Err(ProtoError::BadValue("explicit zero trace id"))
        );
        // A partial tail is just trailing garbage.
        let mut partial = untraced;
        partial.extend_from_slice(&[1, 2, 3]);
        assert_eq!(Request::decode(&partial), Err(ProtoError::Trailing(3)));
    }

    fn status_row(query_id: u64) -> StatusRow {
        StatusRow {
            query_id,
            trace_id: 0xABCD,
            kind: 3,
            state: 3,
            age_us: 12_000,
            grant_bytes: 1 << 20,
            shed_count: 1,
            queue_wait_us: 900,
            grant_wait_us: 2_100,
            exec_us: 9_000,
        }
    }

    #[test]
    fn status_frames_round_trip() {
        let body = Request::Status.encode();
        assert_eq!(Request::decode(&body).unwrap(), Request::Status);

        let resp = Response::Status(vec![status_row(1), status_row(2)]);
        let body = resp.encode();
        assert_eq!(Response::decode(&body).unwrap(), resp);
        let empty = Response::Status(Vec::new());
        assert_eq!(Response::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn hostile_status_frames_are_typed_not_panics() {
        // Unknown state code.
        let mut body = Response::Status(vec![status_row(1)]).encode();
        body[1 + 4 + 8 + 8 + 1] = 7;
        assert_eq!(Response::decode(&body), Err(ProtoError::BadValue("query state code")));
        // Unknown kind.
        let mut body = Response::Status(vec![status_row(1)]).encode();
        body[1 + 4 + 8 + 8] = 9;
        assert_eq!(Response::decode(&body), Err(ProtoError::BadValue("status row kind")));
        // An oversized row count is rejected before any allocation.
        let mut huge = vec![0x84];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Response::decode(&huge), Err(ProtoError::BadValue("status row count")));
        // A plausible count with a truncated payload: cut a valid
        // two-row frame mid-second-row.
        let full = Response::Status(vec![status_row(1), status_row(2)]).encode();
        let short = &full[..full.len() - 10];
        assert_eq!(Response::decode(short), Err(ProtoError::Truncated));
    }
}
