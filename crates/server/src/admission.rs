//! Admission control: per-query memory grants from one global budget.
//!
//! Every query must hold a [`MemGrant`] while it runs. Grants are
//! debited from the server's global budget; a query whose request
//! cannot be satisfied *right now* waits in a bounded FIFO queue, and a
//! query whose request can *never* be satisfied (it exceeds the whole
//! budget) is rejected up front with a typed error — which is also the
//! liveness argument: every queued request fits the budget, so once the
//! grants ahead of it drain, the front of the queue always proceeds.
//! Strict FIFO (only the front ticket may take budget) prevents small
//! queries from starving a large one indefinitely.
//!
//! The state machine (see DESIGN.md §15):
//!
//! ```text
//!            requested > budget ──────────────► Rejected {TooLarge}
//! submit ──┤ queue full ───────────────────────► Rejected {QueueFull}
//!            else ───► Queued ──(front ∧ fits)─► Granted ──► Released
//! ```
//!
//! Accounting invariant, property-tested in `tests/admission_props.rs`:
//! at every instant `outstanding = budget − available` equals the sum
//! of live grants and never exceeds `budget`; rejected queries change
//! nothing.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Global memory budget shared by all concurrent queries, bytes.
    pub budget: u64,
    /// Smallest grant ever issued: requests are rounded up to this, so
    /// a degenerate 0-byte request still serializes against the budget.
    pub min_grant: u64,
    /// Maximum queries waiting for budget; beyond this, reject.
    pub max_queue: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { budget: 256 << 20, min_grant: 1 << 20, max_queue: 32 }
    }
}

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The request exceeds the entire budget — it can never run.
    TooLarge {
        /// Bytes the query asked for (after min-grant rounding).
        requested: u64,
        /// The whole global budget.
        budget: u64,
    },
    /// The wait queue is at capacity.
    QueueFull {
        /// Queries already waiting.
        waiting: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::TooLarge { requested, budget } => {
                write!(f, "requested {requested} bytes exceeds global budget {budget}")
            }
            AdmitError::QueueFull { waiting } => {
                write!(f, "admission queue full ({waiting} waiting)")
            }
        }
    }
}

struct State {
    available: u64,
    /// High-water mark of `budget - available`, for the invariant test
    /// and the `phj_server_grant_peak_bytes` gauge.
    peak_outstanding: u64,
    /// Tickets waiting for budget, front first.
    queue: VecDeque<u64>,
    next_ticket: u64,
    admitted: u64,
    rejected: u64,
}

/// The grant table. Clone the `Arc` freely; all state is internal.
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl Admission {
    /// A fresh table with the full budget available.
    pub fn new(cfg: AdmissionConfig) -> Arc<Admission> {
        Arc::new(Admission {
            cfg,
            state: Mutex::new(State {
                available: cfg.budget,
                peak_outstanding: 0,
                queue: VecDeque::new(),
                next_ticket: 0,
                admitted: 0,
                rejected: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// The configuration this table enforces.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Acquire a grant of `requested` bytes (rounded up to
    /// `min_grant`), blocking FIFO behind earlier waiters if the budget
    /// is currently exhausted. `query_id` tags the flight-recorder
    /// events.
    pub fn admit(self: &Arc<Self>, query_id: u64, requested: u64) -> Result<MemGrant, AdmitError> {
        let want = requested.max(self.cfg.min_grant);
        if want > self.cfg.budget {
            let mut st = self.state.lock().unwrap();
            st.rejected += 1;
            drop(st);
            self.publish_gauges();
            return Err(AdmitError::TooLarge { requested: want, budget: self.cfg.budget });
        }
        {
            let mut st = self.state.lock().unwrap();
            // `max_queue` bounds *waiters*: a request the budget can
            // satisfy right now (and that no earlier waiter is ahead
            // of) is granted without touching the queue, so
            // `max_queue == 0` means "never wait" rather than "never
            // admit".
            let must_wait = !st.queue.is_empty() || st.available < want;
            if must_wait {
                if st.queue.len() >= self.cfg.max_queue {
                    st.rejected += 1;
                    let waiting = st.queue.len();
                    drop(st);
                    self.publish_gauges();
                    return Err(AdmitError::QueueFull { waiting });
                }
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                st.queue.push_back(ticket);
                self.gauge_queued(st.queue.len());
                // Strict FIFO: only the front ticket may debit the budget.
                while st.queue.front() != Some(&ticket) || st.available < want {
                    st = self.cv.wait(st).unwrap();
                }
                st.queue.pop_front();
            }
            st.available -= want;
            let outstanding = self.cfg.budget - st.available;
            st.peak_outstanding = st.peak_outstanding.max(outstanding);
            st.admitted += 1;
            self.gauge_queued(st.queue.len());
            // Another waiter may now be at the front with enough budget.
            self.cv.notify_all();
        }
        self.publish_gauges();
        // The full u64 query id rides in payload `a` — `code` is u16
        // and would alias queries once ids pass 65535.
        phj_flightrec::event(
            phj_flightrec::EventKind::Grant,
            phj_flightrec::grant_op::ACQUIRE,
            query_id,
            want,
        );
        Ok(MemGrant { table: Arc::clone(self), bytes: want, query_id })
    }

    /// Bytes currently granted out (`budget - available`).
    pub fn outstanding(&self) -> u64 {
        self.cfg.budget - self.state.lock().unwrap().available
    }

    /// High-water mark of [`Admission::outstanding`] over the table's
    /// lifetime.
    pub fn peak_outstanding(&self) -> u64 {
        self.state.lock().unwrap().peak_outstanding
    }

    /// Queries waiting for budget right now.
    pub fn waiting(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// (admitted, rejected) totals since construction.
    pub fn totals(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap();
        (st.admitted, st.rejected)
    }

    fn release(&self, bytes: u64, query_id: u64) {
        {
            let mut st = self.state.lock().unwrap();
            st.available += bytes;
            debug_assert!(st.available <= self.cfg.budget, "grant released twice");
            self.cv.notify_all();
        }
        self.publish_gauges();
        phj_flightrec::event(
            phj_flightrec::EventKind::Grant,
            phj_flightrec::grant_op::RELEASE,
            query_id,
            bytes,
        );
    }

    fn gauge_queued(&self, n: usize) {
        if let Some(reg) = phj_metrics::global() {
            reg.gauge(
                phj_metrics::names::SERVER_QUERIES_QUEUED,
                "Queries waiting for a memory grant",
            )
            .set(n as u64);
        }
    }

    fn publish_gauges(&self) {
        let Some(reg) = phj_metrics::global() else { return };
        let st = self.state.lock().unwrap();
        let outstanding = self.cfg.budget - st.available;
        let (peak, admitted, rejected) = (st.peak_outstanding, st.admitted, st.rejected);
        drop(st);
        reg.gauge(phj_metrics::names::SERVER_GRANT_BYTES, "Memory bytes currently granted")
            .set(outstanding);
        reg.gauge(
            phj_metrics::names::SERVER_GRANT_PEAK_BYTES,
            "High-water mark of granted bytes",
        )
        .set(peak);
        reg.gauge(
            phj_metrics::names::SERVER_QUERIES_ADMITTED,
            "Queries granted memory and run",
        )
        .set(admitted);
        reg.gauge(phj_metrics::names::SERVER_QUERIES_REJECTED, "Queries rejected by admission")
            .set(rejected);
    }
}

/// An RAII memory grant: dropping it credits the bytes back to the
/// budget and wakes the queue.
pub struct MemGrant {
    table: Arc<Admission>,
    bytes: u64,
    query_id: u64,
}

impl MemGrant {
    /// Bytes this grant holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemGrant {
    fn drop(&mut self) {
        self.table.release(self.bytes, self.query_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(budget: u64, min: u64, queue: usize) -> AdmissionConfig {
        AdmissionConfig { budget, min_grant: min, max_queue: queue }
    }

    #[test]
    fn grants_debit_and_release_credits() {
        let adm = Admission::new(cfg(100, 1, 8));
        let g1 = adm.admit(1, 40).unwrap();
        let g2 = adm.admit(2, 40).unwrap();
        assert_eq!(adm.outstanding(), 80);
        drop(g1);
        assert_eq!(adm.outstanding(), 40);
        drop(g2);
        assert_eq!(adm.outstanding(), 0);
        assert_eq!(adm.peak_outstanding(), 80);
        assert_eq!(adm.totals(), (2, 0));
    }

    #[test]
    fn too_large_rejected_without_touching_budget() {
        let adm = Admission::new(cfg(100, 1, 8));
        let before = adm.outstanding();
        assert!(matches!(adm.admit(1, 101), Err(AdmitError::TooLarge { .. })));
        assert_eq!(adm.outstanding(), before);
        assert_eq!(adm.totals(), (0, 1));
    }

    #[test]
    fn zero_request_rounds_up_to_min_grant() {
        let adm = Admission::new(cfg(100, 10, 8));
        let g = adm.admit(1, 0).unwrap();
        assert_eq!(g.bytes(), 10);
        assert_eq!(adm.outstanding(), 10);
    }

    #[test]
    fn exhausted_budget_queues_fifo_until_release() {
        let adm = Admission::new(cfg(100, 1, 8));
        let g = adm.admit(1, 100).unwrap();
        let t = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit(2, 50).map(|g| g.bytes()))
        };
        // The waiter must be queued, not rejected.
        while adm.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(g);
        assert_eq!(t.join().unwrap().unwrap(), 50);
    }

    #[test]
    fn full_queue_rejects() {
        let adm = Admission::new(cfg(100, 1, 1));
        let _g = adm.admit(1, 100).unwrap(); // exhaust the budget
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit(2, 10).map(|g| g.bytes()))
        };
        while adm.waiting() < 1 {
            std::thread::yield_now();
        }
        // Queue (capacity 1) now holds the waiter: the next query bounces.
        assert!(matches!(adm.admit(3, 10), Err(AdmitError::QueueFull { waiting: 1 })));
        drop(_g);
        assert_eq!(waiter.join().unwrap().unwrap(), 10);
    }
}
