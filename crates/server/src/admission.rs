//! Admission control: per-query memory grants from one global budget.
//!
//! Every query must hold a [`MemGrant`] while it runs. Grants are
//! debited from the server's global budget; a query whose request
//! cannot be satisfied *right now* waits in a bounded FIFO queue, and a
//! query whose request can *never* be satisfied (it exceeds the whole
//! budget) is rejected up front with a typed error — which is also the
//! liveness argument: every queued request fits the budget, so once the
//! grants ahead of it drain, the front of the queue always proceeds.
//! Strict FIFO (only the front ticket may take budget) prevents small
//! queries from starving a large one indefinitely.
//!
//! The state machine (see DESIGN.md §15):
//!
//! ```text
//!            requested > budget ──────────────► Rejected {TooLarge}
//! submit ──┤ queue full ───────────────────────► Rejected {QueueFull}
//!            else ───► Queued ──(front ∧ fits)─► Granted ──► Released
//! ```
//!
//! Accounting invariant, property-tested in `tests/admission_props.rs`:
//! at every instant `outstanding = budget − available` equals the sum
//! of live grants and never exceeds `budget`; rejected queries change
//! nothing.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use phj_disk::LiveBudget;

/// Admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Global memory budget shared by all concurrent queries, bytes.
    pub budget: u64,
    /// Smallest grant ever issued: requests are rounded up to this, so
    /// a degenerate 0-byte request still serializes against the budget.
    pub min_grant: u64,
    /// Maximum queries waiting for budget; beyond this, reject.
    pub max_queue: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { budget: 256 << 20, min_grant: 1 << 20, max_queue: 32 }
    }
}

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The request exceeds the entire budget — it can never run.
    TooLarge {
        /// Bytes the query asked for (after min-grant rounding).
        requested: u64,
        /// The whole global budget.
        budget: u64,
    },
    /// The wait queue is at capacity.
    QueueFull {
        /// Queries already waiting.
        waiting: usize,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::TooLarge { requested, budget } => {
                write!(f, "requested {requested} bytes exceeds global budget {budget}")
            }
            AdmitError::QueueFull { waiting } => {
                write!(f, "admission queue full ({waiting} waiting)")
            }
        }
    }
}

/// Why a live grant could not be resized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeError {
    /// The new size is below the table's `min_grant` floor — grants
    /// never shrink past it, so a degenerate resize cannot park a
    /// query on a zero-byte grant.
    BelowMin {
        /// Bytes the resize asked for.
        requested: u64,
        /// The floor it violated.
        min_grant: u64,
    },
    /// A grow was refused: the extra bytes are not available right now.
    NoBudget {
        /// Additional bytes the grow needed.
        needed: u64,
        /// Bytes currently free.
        available: u64,
    },
    /// A grow was refused because queries are queued — growing a
    /// running grant ahead of FIFO waiters would starve them.
    Queued {
        /// Queries currently waiting.
        waiting: usize,
    },
}

impl std::fmt::Display for ResizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResizeError::BelowMin { requested, min_grant } => {
                write!(f, "resize to {requested} bytes is below min_grant {min_grant}")
            }
            ResizeError::NoBudget { needed, available } => {
                write!(f, "grow needs {needed} more bytes but only {available} are free")
            }
            ResizeError::Queued { waiting } => {
                write!(f, "grow refused: {waiting} queries are queued ahead")
            }
        }
    }
}

struct State {
    available: u64,
    /// High-water mark of `budget - available`, for the invariant test
    /// and the `phj_server_grant_peak_bytes` gauge.
    peak_outstanding: u64,
    /// Tickets waiting for budget, front first.
    queue: VecDeque<u64>,
    /// High-water mark of `queue.len()` (contention evidence for the
    /// serve_load bench's low-budget scenario).
    peak_waiting: usize,
    next_ticket: u64,
    admitted: u64,
    rejected: u64,
}

/// A running query that can give memory back mid-flight: its grant
/// (for the current size) and the [`LiveBudget`] its join polls. Both
/// are weak — the registry must never keep a finished query alive, and
/// a strong ref here would cycle through the grant back to the table.
struct Revocable {
    grant: Weak<MemGrant>,
    budget: Weak<LiveBudget>,
}

/// The grant table. Clone the `Arc` freely; all state is internal.
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
    /// Queries that registered a revocable budget, by query id.
    revocable: Mutex<HashMap<u64, Revocable>>,
    /// Shed requests issued to running queries (mirrors the
    /// `phj_server_shed_requests_total` counter for direct assertion).
    sheds: AtomicU64,
    /// Called with the victim query id each time a shed request is
    /// issued — the server wires this to the live query registry so
    /// `/queries` can show which query absorbed the pressure.
    shed_observer: Mutex<Option<Box<dyn Fn(u64) + Send + Sync>>>,
}

impl Admission {
    /// A fresh table with the full budget available.
    pub fn new(cfg: AdmissionConfig) -> Arc<Admission> {
        Arc::new(Admission {
            cfg,
            state: Mutex::new(State {
                available: cfg.budget,
                peak_outstanding: 0,
                queue: VecDeque::new(),
                peak_waiting: 0,
                next_ticket: 0,
                admitted: 0,
                rejected: 0,
            }),
            cv: Condvar::new(),
            revocable: Mutex::new(HashMap::new()),
            sheds: AtomicU64::new(0),
            shed_observer: Mutex::new(None),
        })
    }

    /// Install (replace) the shed observer. Called outside every table
    /// lock, so the observer may take its own locks freely — but it
    /// must not call back into this table.
    pub fn set_shed_observer(&self, f: impl Fn(u64) + Send + Sync + 'static) {
        *self.shed_observer.lock().unwrap() = Some(Box::new(f));
    }

    /// The configuration this table enforces.
    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    /// Acquire a grant of `requested` bytes (rounded up to
    /// `min_grant`), blocking FIFO behind earlier waiters if the budget
    /// is currently exhausted. `query_id` tags the flight-recorder
    /// events.
    pub fn admit(self: &Arc<Self>, query_id: u64, requested: u64) -> Result<MemGrant, AdmitError> {
        let submit = Instant::now();
        let mut queue_wait = Duration::ZERO;
        let mut grant_wait = Duration::ZERO;
        let want = requested.max(self.cfg.min_grant);
        if want > self.cfg.budget {
            let mut st = self.state.lock().unwrap();
            st.rejected += 1;
            drop(st);
            self.publish_gauges();
            return Err(AdmitError::TooLarge { requested: want, budget: self.cfg.budget });
        }
        {
            let mut st = self.state.lock().unwrap();
            // `max_queue` bounds *waiters*: a request the budget can
            // satisfy right now (and that no earlier waiter is ahead
            // of) is granted without touching the queue, so
            // `max_queue == 0` means "never wait" rather than "never
            // admit".
            let must_wait = !st.queue.is_empty() || st.available < want;
            if must_wait {
                if st.queue.len() >= self.cfg.max_queue {
                    st.rejected += 1;
                    let waiting = st.queue.len();
                    drop(st);
                    self.publish_gauges();
                    return Err(AdmitError::QueueFull { waiting });
                }
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                st.queue.push_back(ticket);
                st.peak_waiting = st.peak_waiting.max(st.queue.len());
                self.gauge_queued(st.queue.len());
                // Instead of only waiting for a full release, ask the
                // largest running revocable query to shed our deficit.
                // Done outside the state lock: upgrading/dropping a
                // grant Arc here must never re-enter `release` while
                // the lock is held.
                let deficit = want.saturating_sub(st.available);
                drop(st);
                self.request_shed(deficit, query_id);
                st = self.state.lock().unwrap();
                // Strict FIFO: only the front ticket may debit the
                // budget. The wait splits in two for the lifecycle
                // breakdown: time spent *behind* earlier tickets is
                // queue wait, time spent *at the front* waiting for
                // budget is grant wait.
                let mut at_front_at: Option<Instant> = None;
                loop {
                    let at_front = st.queue.front() == Some(&ticket);
                    if at_front && at_front_at.is_none() {
                        at_front_at = Some(Instant::now());
                    }
                    if at_front && st.available >= want {
                        break;
                    }
                    st = self.cv.wait(st).unwrap();
                }
                st.queue.pop_front();
                let now = Instant::now();
                let front_at = at_front_at.unwrap_or(now);
                queue_wait = front_at.duration_since(submit);
                grant_wait = now.duration_since(front_at);
            }
            st.available -= want;
            let outstanding = self.cfg.budget - st.available;
            st.peak_outstanding = st.peak_outstanding.max(outstanding);
            st.admitted += 1;
            self.gauge_queued(st.queue.len());
            // Another waiter may now be at the front with enough budget.
            self.cv.notify_all();
        }
        self.publish_gauges();
        // The full u64 query id rides in payload `a` — `code` is u16
        // and would alias queries once ids pass 65535.
        phj_flightrec::event(
            phj_flightrec::EventKind::Grant,
            phj_flightrec::grant_op::ACQUIRE,
            query_id,
            want,
        );
        Ok(MemGrant {
            table: Arc::clone(self),
            bytes: AtomicU64::new(want),
            query_id,
            queue_wait,
            grant_wait,
        })
    }

    /// Register a running query as revocable: when a later arrival
    /// would otherwise wait, the table asks the largest registered
    /// query (through its [`LiveBudget`]) to shed memory. The returned
    /// guard unregisters on drop — hold it for the query's lifetime.
    pub fn register_revocable(
        self: &Arc<Self>,
        query_id: u64,
        grant: &Arc<MemGrant>,
        budget: &Arc<LiveBudget>,
    ) -> RevocableReg {
        self.revocable.lock().unwrap().insert(
            query_id,
            Revocable { grant: Arc::downgrade(grant), budget: Arc::downgrade(budget) },
        );
        RevocableReg { table: Arc::clone(self), query_id }
    }

    /// Ask the largest registered revocable query to shed `deficit`
    /// bytes (down to `min_grant` at most). Best-effort and async: the
    /// query observes the lowered limit at its next safe point, spills
    /// victims, and its ack hook credits the bytes back via
    /// [`MemGrant::try_shrink`] — which wakes the queue.
    fn request_shed(&self, deficit: u64, for_query: u64) {
        if deficit == 0 {
            return;
        }
        let best = {
            let reg = self.revocable.lock().unwrap();
            let mut best: Option<(u64, u64, Arc<LiveBudget>)> = None;
            for (qid, r) in reg.iter() {
                let (Some(g), Some(b)) = (r.grant.upgrade(), r.budget.upgrade()) else {
                    continue;
                };
                let bytes = g.bytes();
                if best.as_ref().is_none_or(|(bb, ..)| bytes > *bb) {
                    best = Some((bytes, *qid, b));
                }
            }
            best
        };
        let Some((bytes, victim, budget)) = best else { return };
        let target = bytes.saturating_sub(deficit).max(self.cfg.min_grant);
        if target >= bytes {
            return; // already at the floor: nothing left to reclaim
        }
        budget.request_shrink(target);
        self.sheds.fetch_add(1, Ordering::Relaxed);
        if let Some(observer) = self.shed_observer.lock().unwrap().as_ref() {
            observer(victim);
        }
        if let Some(reg) = phj_metrics::global() {
            reg.counter(
                phj_metrics::names::SERVER_SHED_REQUESTS,
                "Pressure callbacks asking a running query to shed memory",
            )
            .add(1);
        }
        // `a` = the query asked to shed, `b` = the byte target it was
        // asked to come down to. (`for_query` is the beneficiary; it
        // journals its own ACQUIRE once the shed frees enough.)
        let _ = for_query;
        phj_flightrec::event(
            phj_flightrec::EventKind::Grant,
            phj_flightrec::grant_op::SHED,
            victim,
            target,
        );
    }

    /// Shed requests this table has issued to running queries.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Bytes currently granted out (`budget - available`).
    pub fn outstanding(&self) -> u64 {
        self.cfg.budget - self.state.lock().unwrap().available
    }

    /// High-water mark of concurrently waiting queries.
    pub fn peak_waiting(&self) -> usize {
        self.state.lock().unwrap().peak_waiting
    }

    /// High-water mark of [`Admission::outstanding`] over the table's
    /// lifetime.
    pub fn peak_outstanding(&self) -> u64 {
        self.state.lock().unwrap().peak_outstanding
    }

    /// Queries waiting for budget right now.
    pub fn waiting(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// (admitted, rejected) totals since construction.
    pub fn totals(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap();
        (st.admitted, st.rejected)
    }

    fn release(&self, bytes: u64, query_id: u64) {
        {
            let mut st = self.state.lock().unwrap();
            st.available += bytes;
            debug_assert!(st.available <= self.cfg.budget, "grant released twice");
            self.cv.notify_all();
        }
        self.publish_gauges();
        phj_flightrec::event(
            phj_flightrec::EventKind::Grant,
            phj_flightrec::grant_op::RELEASE,
            query_id,
            bytes,
        );
    }

    fn gauge_queued(&self, n: usize) {
        if let Some(reg) = phj_metrics::global() {
            reg.gauge(
                phj_metrics::names::SERVER_QUERIES_QUEUED,
                "Queries waiting for a memory grant",
            )
            .set(n as u64);
        }
    }

    fn publish_gauges(&self) {
        let Some(reg) = phj_metrics::global() else { return };
        let st = self.state.lock().unwrap();
        let outstanding = self.cfg.budget - st.available;
        let (peak, admitted, rejected) = (st.peak_outstanding, st.admitted, st.rejected);
        drop(st);
        reg.gauge(phj_metrics::names::SERVER_GRANT_BYTES, "Memory bytes currently granted")
            .set(outstanding);
        reg.gauge(
            phj_metrics::names::SERVER_GRANT_PEAK_BYTES,
            "High-water mark of granted bytes",
        )
        .set(peak);
        reg.gauge(
            phj_metrics::names::SERVER_QUERIES_ADMITTED,
            "Queries granted memory and run",
        )
        .set(admitted);
        reg.gauge(phj_metrics::names::SERVER_QUERIES_REJECTED, "Queries rejected by admission")
            .set(rejected);
    }
}

/// Unregisters a revocable query from the table on drop (including
/// unwind, so a panicking query never leaves a stale registry entry).
pub struct RevocableReg {
    table: Arc<Admission>,
    query_id: u64,
}

impl Drop for RevocableReg {
    fn drop(&mut self) {
        self.table.revocable.lock().unwrap().remove(&self.query_id);
    }
}

/// An RAII memory grant: dropping it credits the bytes back to the
/// budget and wakes the queue. The size is live — a running query may
/// [`resize`](MemGrant::resize) it, and the table's pressure path
/// shrinks it through [`try_shrink`](MemGrant::try_shrink).
pub struct MemGrant {
    table: Arc<Admission>,
    bytes: AtomicU64,
    query_id: u64,
    queue_wait: Duration,
    grant_wait: Duration,
}

impl MemGrant {
    /// Bytes this grant currently holds.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Acquire)
    }

    /// How long the admitting query waited behind earlier FIFO tickets
    /// (zero when it was granted without queueing).
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }

    /// How long the admitting query waited at the queue head for
    /// budget to free up (zero when it was granted without queueing).
    pub fn grant_wait(&self) -> Duration {
        self.grant_wait
    }

    /// Resize the grant. Shrinks credit the difference back to the
    /// budget immediately and wake the queue; grows are granted only
    /// when no query is queued (FIFO fairness) and the bytes are free.
    /// Returns the new size.
    pub fn resize(&self, new_bytes: u64) -> Result<u64, ResizeError> {
        if new_bytes < self.table.cfg.min_grant {
            return Err(ResizeError::BelowMin {
                requested: new_bytes,
                min_grant: self.table.cfg.min_grant,
            });
        }
        {
            let mut st = self.table.state.lock().unwrap();
            let old = self.bytes.load(Ordering::Relaxed);
            if new_bytes == old {
                return Ok(old);
            }
            if new_bytes < old {
                st.available += old - new_bytes;
                self.table.cv.notify_all();
            } else {
                if !st.queue.is_empty() {
                    return Err(ResizeError::Queued { waiting: st.queue.len() });
                }
                let needed = new_bytes - old;
                if st.available < needed {
                    return Err(ResizeError::NoBudget { needed, available: st.available });
                }
                st.available -= needed;
                let outstanding = self.table.cfg.budget - st.available;
                st.peak_outstanding = st.peak_outstanding.max(outstanding);
            }
            self.bytes.store(new_bytes, Ordering::Release);
        }
        self.resized(new_bytes);
        Ok(new_bytes)
    }

    /// Shrink-only resize for the pressure path: clamps to `min_grant`,
    /// never grows, never fails. Returns `true` when bytes were
    /// credited back. This is the ack hook a dynamic disk join fires
    /// after spilling victims under a shed request.
    pub fn try_shrink(&self, new_bytes: u64) -> bool {
        let new = new_bytes.max(self.table.cfg.min_grant);
        {
            let mut st = self.table.state.lock().unwrap();
            let old = self.bytes.load(Ordering::Relaxed);
            if new >= old {
                return false;
            }
            st.available += old - new;
            self.bytes.store(new, Ordering::Release);
            self.table.cv.notify_all();
        }
        self.resized(new);
        true
    }

    fn resized(&self, new_bytes: u64) {
        self.table.publish_gauges();
        if let Some(reg) = phj_metrics::global() {
            reg.counter(
                phj_metrics::names::SERVER_GRANT_RESIZES,
                "Live-grant resize operations",
            )
            .add(1);
        }
        phj_flightrec::event(
            phj_flightrec::EventKind::Grant,
            phj_flightrec::grant_op::RESIZE,
            self.query_id,
            new_bytes,
        );
    }
}

impl Drop for MemGrant {
    fn drop(&mut self) {
        self.table.release(self.bytes.load(Ordering::Relaxed), self.query_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(budget: u64, min: u64, queue: usize) -> AdmissionConfig {
        AdmissionConfig { budget, min_grant: min, max_queue: queue }
    }

    #[test]
    fn grants_debit_and_release_credits() {
        let adm = Admission::new(cfg(100, 1, 8));
        let g1 = adm.admit(1, 40).unwrap();
        let g2 = adm.admit(2, 40).unwrap();
        assert_eq!(adm.outstanding(), 80);
        drop(g1);
        assert_eq!(adm.outstanding(), 40);
        drop(g2);
        assert_eq!(adm.outstanding(), 0);
        assert_eq!(adm.peak_outstanding(), 80);
        assert_eq!(adm.totals(), (2, 0));
    }

    #[test]
    fn too_large_rejected_without_touching_budget() {
        let adm = Admission::new(cfg(100, 1, 8));
        let before = adm.outstanding();
        assert!(matches!(adm.admit(1, 101), Err(AdmitError::TooLarge { .. })));
        assert_eq!(adm.outstanding(), before);
        assert_eq!(adm.totals(), (0, 1));
    }

    #[test]
    fn zero_request_rounds_up_to_min_grant() {
        let adm = Admission::new(cfg(100, 10, 8));
        let g = adm.admit(1, 0).unwrap();
        assert_eq!(g.bytes(), 10);
        assert_eq!(adm.outstanding(), 10);
    }

    #[test]
    fn exhausted_budget_queues_fifo_until_release() {
        let adm = Admission::new(cfg(100, 1, 8));
        let g = adm.admit(1, 100).unwrap();
        let t = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit(2, 50).map(|g| g.bytes()))
        };
        // The waiter must be queued, not rejected.
        while adm.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(g);
        assert_eq!(t.join().unwrap().unwrap(), 50);
    }

    #[test]
    fn resize_shrink_credits_immediately_and_grow_needs_free_budget() {
        let adm = Admission::new(cfg(100, 10, 8));
        let g = adm.admit(1, 80).unwrap();
        assert_eq!(g.resize(40), Ok(40));
        assert_eq!(g.bytes(), 40);
        assert_eq!(adm.outstanding(), 40);
        // Grow within the free budget succeeds…
        assert_eq!(g.resize(90), Ok(90));
        // …past it, typed refusal.
        assert!(matches!(g.resize(120), Err(ResizeError::NoBudget { .. })));
        assert_eq!(g.bytes(), 90);
        drop(g);
        assert_eq!(adm.outstanding(), 0);
    }

    #[test]
    fn grow_is_refused_while_queries_wait() {
        let adm = Admission::new(cfg(100, 1, 8));
        let g = std::sync::Arc::new(adm.admit(1, 60).unwrap());
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit(2, 60).map(|g| g.bytes()))
        };
        while adm.waiting() == 0 {
            std::thread::yield_now();
        }
        // 40 bytes are free, but a FIFO waiter is ahead of the grow.
        assert!(matches!(g.resize(80), Err(ResizeError::Queued { waiting: 1 })));
        drop(std::sync::Arc::try_unwrap(g).ok().unwrap());
        assert_eq!(waiter.join().unwrap().unwrap(), 60);
    }

    #[test]
    fn try_shrink_clamps_to_min_grant_and_never_grows() {
        let adm = Admission::new(cfg(100, 10, 8));
        let g = adm.admit(1, 50).unwrap();
        assert!(g.try_shrink(0)); // clamps to min_grant
        assert_eq!(g.bytes(), 10);
        assert_eq!(adm.outstanding(), 10);
        assert!(!g.try_shrink(80)); // never grows
        assert_eq!(g.bytes(), 10);
    }

    #[test]
    fn arrival_sheds_the_largest_revocable_query_instead_of_waiting_for_release() {
        let adm = Admission::new(cfg(100, 10, 8));
        let g = Arc::new(adm.admit(1, 100).unwrap());
        let live = Arc::new(LiveBudget::new(100));
        let _reg = adm.register_revocable(1, &g, &live);
        // The running query's compliance hook: ack → grant shrink.
        let hooked = Arc::clone(&g);
        live.set_on_ack(move |b| {
            hooked.try_shrink(b);
        });
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit(2, 40).map(|g| g.bytes()))
        };
        // The arrival's deficit (40) lands as a shed request: the
        // target is 100 - 40 = 60.
        while live.limit() == 100 {
            std::thread::yield_now();
        }
        assert_eq!(live.limit(), 60);
        assert_eq!(adm.sheds(), 1);
        // Simulate the join reaching its next safe point and complying.
        live.ack(60);
        assert_eq!(waiter.join().unwrap().unwrap(), 40);
        assert_eq!(g.bytes(), 60);
        // The waiter's grant was dropped when its thread returned, so
        // only the shrunken original grant remains outstanding.
        assert_eq!(adm.outstanding(), 60);
        assert_eq!(adm.peak_outstanding(), 100);
        assert_eq!(adm.peak_waiting(), 1);
    }

    #[test]
    fn wait_times_split_queue_position_from_budget_wait() {
        let adm = Admission::new(cfg(100, 1, 8));
        let g0 = adm.admit(1, 100).unwrap();
        // An uncontended grant records zero for both waits.
        assert_eq!(g0.queue_wait(), Duration::ZERO);
        assert_eq!(g0.grant_wait(), Duration::ZERO);
        let w1 = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || {
                let g = adm.admit(2, 100).unwrap();
                let waits = (g.queue_wait(), g.grant_wait());
                std::thread::sleep(Duration::from_millis(20));
                waits
            })
        };
        while adm.waiting() < 1 {
            std::thread::yield_now();
        }
        let w2 = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || {
                let g = adm.admit(3, 100).unwrap();
                (g.queue_wait(), g.grant_wait())
            })
        };
        while adm.waiting() < 2 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(5));
        drop(g0);
        let (q1, g1) = w1.join().unwrap();
        let (q2, g2) = w2.join().unwrap();
        // Ticket 2 reached the front within its first lock acquisition:
        // its queue wait is scheduler noise; its real wait was the ~5 ms
        // g0 held the whole budget. Ticket 3 queued behind ticket 2
        // until *it* was granted (the same ~5 ms), then waited at the
        // front for ticket 2's ~20 ms hold.
        assert!(q1 < Duration::from_millis(5), "front ticket barely queued: {q1:?}");
        assert!(g1 >= Duration::from_millis(4), "grant wait spans the budget hold: {g1:?}");
        assert!(q2 >= Duration::from_millis(2), "queued ticket waited behind the front: {q2:?}");
        assert!(g2 >= Duration::from_millis(15), "then waited at the front for the hold: {g2:?}");
    }

    #[test]
    fn shed_observer_sees_the_victim_query() {
        let adm = Admission::new(cfg(100, 10, 8));
        let observed = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&observed);
        adm.set_shed_observer(move |victim| sink.lock().unwrap().push(victim));
        let g = Arc::new(adm.admit(7, 100).unwrap());
        let live = Arc::new(LiveBudget::new(100));
        let _reg = adm.register_revocable(7, &g, &live);
        let hooked = Arc::clone(&g);
        live.set_on_ack(move |b| {
            hooked.try_shrink(b);
        });
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit(8, 40).map(|g| g.bytes()))
        };
        while live.limit() == 100 {
            std::thread::yield_now();
        }
        live.ack(60);
        assert_eq!(waiter.join().unwrap().unwrap(), 40);
        assert_eq!(*observed.lock().unwrap(), vec![7]);
    }

    #[test]
    fn full_queue_rejects() {
        let adm = Admission::new(cfg(100, 1, 1));
        let _g = adm.admit(1, 100).unwrap(); // exhaust the budget
        let waiter = {
            let adm = Arc::clone(&adm);
            std::thread::spawn(move || adm.admit(2, 10).map(|g| g.bytes()))
        };
        while adm.waiting() < 1 {
            std::thread::yield_now();
        }
        // Queue (capacity 1) now holds the waiter: the next query bounces.
        assert!(matches!(adm.admit(3, 10), Err(AdmitError::QueueFull { waiting: 1 })));
        drop(_g);
        assert_eq!(waiter.join().unwrap().unwrap(), 10);
    }
}
