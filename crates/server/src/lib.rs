#![warn(missing_docs)]

//! # phj-server — the concurrent query daemon
//!
//! Everything below this crate runs one query per process: the CLI
//! builds a workload, runs a kernel, prints, exits. This crate is the
//! ROADMAP's "production-scale" step: a long-running daemon (`phj
//! serve`) that accepts join/agg requests over TCP and runs *many of
//! them concurrently* against shared resources, with the three
//! production disciplines that single-shot runs never needed:
//!
//! * [`proto`] — a length-prefixed binary protocol (version byte + u32
//!   frame length + tagged body). Responses carry the result checksum,
//!   row counts, and the query's full RunReport JSON. Decoding is
//!   total: arbitrary garbage produces a typed
//!   [`ProtoError`](proto::ProtoError), never a panic, and hostile
//!   length prefixes are rejected before allocation.
//! * [`admission`] — per-query memory grants debited from one global
//!   budget. Queries that cannot get their grant *now* wait in a
//!   bounded FIFO; queries that could *never* fit are rejected typed.
//!   The invariant — outstanding grants never exceed the budget — is
//!   property-tested and scraped live (`phj_server_grant_bytes`).
//! * [`server`] — the daemon itself: the shared
//!   [`Listener`](phj_metrics::Listener) accept loop feeds a persistent
//!   [`Pool`](phj_exec::Pool) whose workers are reused across queries;
//!   each query is tagged end-to-end through phj-obs (per-query
//!   RunReport with a `query_id` fingerprint), phj-metrics
//!   (admitted/rejected/queued/inflight plus a latency histogram), and
//!   phj-flightrec (per-query `Grant` and `query` phase events).
//!
//! * [`registry`] — the live query table. Every query walks a typed
//!   lifecycle state machine (received → queued → admitted → executing
//!   → responding → done/failed) with wall-clock offsets per
//!   transition; the table is served four ways: the `Status` protocol
//!   request, the `/queries` HTTP endpoint, `phj top`, and the
//!   optional `query_trace` RunReport section. Clients can mint a
//!   trace id (an optional 8-byte frame tail — untraced frames are
//!   byte-identical to older builds) that follows the query through
//!   admission, the flight recorder, and back out in the result.
//!
//! [`client`] is the matching blocking client (`phj client`, and the
//! `serve_load` open-loop load generator in `phj-bench`).
//!
//! Queries run the *sequential* kernels, so a daemon answer is
//! bit-comparable to the single-query CLI path — the CI smoke test
//! asserts exactly that equality, which is what makes the concurrency
//! here trustworthy rather than merely fast.

pub mod admission;
pub mod client;
pub mod proto;
pub mod query;
pub mod registry;
pub mod server;

pub use admission::{Admission, AdmissionConfig, AdmitError, MemGrant, ResizeError, RevocableReg};
pub use client::{ClientTiming, Connection};
pub use proto::{
    ErrorCode, FrameError, ProtoError, Request, Response, StatusRow, MAX_STATUS_ROWS,
};
pub use registry::{Lifecycle, QueryRegistry, QueryState};
pub use server::{ServeConfig, Server, SlowQueryConfig};
