//! End-to-end daemon tests over real sockets: concurrent mixed queries
//! produce exactly the checksums the sequential kernel produces, every
//! embedded RunReport validates, admission holds its budget invariant,
//! and hostile input turns into typed error frames.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use phj_obs::RunReport;
use phj_server::proto::{
    AggRequest, DiskJoinRequest, ErrorCode, JoinRequest, Request, Response, WireScheme,
};
use phj_server::{query, Connection, ServeConfig, Server};

fn join_req(seed: u64) -> Request {
    Request::Join(JoinRequest {
        build_tuples: 2_000,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        scheme: WireScheme::Group { g: 16 },
        mem_budget: 1 << 20,
        seed,
        trace_id: 0,
    })
}

fn agg_req(rows: u64) -> Request {
    Request::Agg(AggRequest {
        rows,
        keys: 256,
        scheme: WireScheme::Swp { d: 4 },
        mem_budget: 0,
        trace_id: 0,
    })
}

fn small_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        mem_budget: 64 << 20,
        min_grant: 1 << 20,
        max_queue: 32,
        ..ServeConfig::default()
    })
    .unwrap()
}

#[test]
fn concurrent_mixed_queries_match_the_sequential_kernel() {
    let srv = small_server();
    let addr = srv.local_addr();

    // Reference checksums from the sequential kernel, same process.
    let requests: Vec<Request> =
        vec![join_req(0x11D0), join_req(0xBEEF), agg_req(20_000), agg_req(5_000)];
    let expected: Vec<_> = requests
        .iter()
        .map(|r| query::run(0, r).unwrap())
        .collect();

    // Two client threads per request, all concurrent.
    let handles: Vec<_> = requests
        .iter()
        .cloned()
        .cycle()
        .take(requests.len() * 2)
        .map(|req| {
            std::thread::spawn(move || {
                let mut conn = Connection::connect(addr).unwrap();
                conn.request(&req).unwrap()
            })
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut seen_ids = std::collections::HashSet::new();
    for (i, resp) in responses.into_iter().enumerate() {
        let want = &expected[i % requests.len()];
        match resp {
            Response::Result(r) => {
                assert_eq!(r.checksum, want.checksum, "query {i} checksum drifted");
                assert_eq!(r.matches, want.matches);
                assert_eq!(r.kind, want.kind);
                assert!(seen_ids.insert(r.query_id), "query ids must be unique");
                let report = RunReport::parse(&r.report_json).unwrap();
                report.validate().unwrap();
                assert!(
                    report
                        .config
                        .iter()
                        .any(|(k, v)| k == "query_id" && *v == r.query_id.to_string()),
                    "report must carry its query id"
                );
            }
            other => panic!("query {i}: want Result, got {other:?}"),
        }
    }

    let adm = Arc::clone(srv.admission());
    assert!(adm.peak_outstanding() <= 64 << 20, "grants exceeded the budget");
    assert!(adm.peak_outstanding() > 0, "queries ran without grants?");
    assert_eq!(adm.outstanding(), 0, "grants leaked");
    let (admitted, rejected) = adm.totals();
    assert_eq!(admitted, 8);
    assert_eq!(rejected, 0);
    srv.stop();
}

#[test]
fn ping_pong_and_typed_rejections() {
    let srv = small_server();
    let mut conn = Connection::connect(srv.local_addr()).unwrap();

    assert_eq!(conn.request(&Request::Ping).unwrap(), Response::Pong);

    // A query that can never fit the 64 MB budget: typed TooLarge, and
    // the connection stays usable.
    let huge = Request::Join(JoinRequest {
        build_tuples: 1 << 40,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        scheme: WireScheme::Baseline,
        mem_budget: 1 << 20,
        seed: 1,
        trace_id: 0,
    });
    match conn.request(&huge).unwrap() {
        Response::Error { code: ErrorCode::TooLarge, .. } => {}
        other => panic!("want TooLarge, got {other:?}"),
    }

    // Shape violation: typed BadRequest.
    let bad = Request::Join(JoinRequest {
        build_tuples: 10,
        tuple_size: 4000,
        matches_per_build: 1,
        pct_match: 100,
        scheme: WireScheme::Baseline,
        mem_budget: 1 << 20,
        seed: 1,
        trace_id: 0,
    });
    match conn.request(&bad).unwrap() {
        Response::Error { code: ErrorCode::BadRequest, .. } => {}
        other => panic!("want BadRequest, got {other:?}"),
    }

    // Still alive after both rejections.
    assert_eq!(conn.request(&Request::Ping).unwrap(), Response::Pong);
    assert_eq!(srv.admission().outstanding(), 0);
    srv.stop();
}

#[test]
fn garbage_bytes_get_a_typed_error_frame_not_a_crash() {
    let srv = small_server();
    let addr = srv.local_addr();

    // Raw garbage (bad version byte): server answers a BadRequest
    // error frame and closes.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[0xFF; 32]).unwrap();
    s.flush().unwrap();
    let mut raw = Vec::new();
    use std::io::Read;
    let _ = s.read_to_end(&mut raw);
    // Frame header: version 1 + length; decode the error body.
    assert!(raw.len() > 5, "server sent nothing back");
    assert_eq!(raw[0], 1);
    let body_len = u32::from_le_bytes(raw[1..5].try_into().unwrap()) as usize;
    let resp = Response::decode(&raw[5..5 + body_len]).unwrap();
    match resp {
        Response::Error { code: ErrorCode::BadRequest, .. } => {}
        other => panic!("want BadRequest, got {other:?}"),
    }

    // And the daemon still serves the next client.
    let mut conn = Connection::connect(addr).unwrap();
    assert_eq!(conn.request(&Request::Ping).unwrap(), Response::Pong);
    srv.stop();
}

#[test]
fn slow_fragmented_frames_are_served_not_desynced() {
    // A legitimate client that pauses >100 ms between fragments of one
    // frame: the server's idle poll only covers the first byte, so the
    // pauses must not discard consumed bytes and re-parse the stream
    // out of phase (the regression this guards: body bytes interpreted
    // as a fresh header → BadVersion → dropped connection).
    let srv = small_server();
    let mut s = TcpStream::connect(srv.local_addr()).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();

    let mut wire = Vec::new();
    phj_server::proto::write_frame(&mut wire, &Request::Ping.encode()).unwrap();
    assert!(wire.len() >= 6, "ping frame is header + tag");
    // Fragment boundaries land inside the header AND inside the body.
    let cuts = [1usize, 3, wire.len()];
    let mut sent = 0;
    for &cut in &cuts {
        s.write_all(&wire[sent..cut]).unwrap();
        s.flush().unwrap();
        sent = cut;
        std::thread::sleep(std::time::Duration::from_millis(250));
    }

    use phj_server::proto::read_frame;
    let body = read_frame(&mut s).unwrap().expect("server must answer");
    assert_eq!(Response::decode(&body).unwrap(), Response::Pong);

    // The connection stayed in sync: a second, unfragmented request
    // still round-trips.
    phj_server::proto::write_frame(&mut s, &Request::Ping.encode()).unwrap();
    let body = read_frame(&mut s).unwrap().expect("second answer");
    assert_eq!(Response::decode(&body).unwrap(), Response::Pong);
    srv.stop();
}

#[test]
fn over_cap_connections_get_a_typed_busy_frame() {
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        mem_budget: 64 << 20,
        max_conns: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = srv.local_addr();

    // First connection claims the only slot.
    let mut first = Connection::connect(addr).unwrap();
    assert_eq!(first.request(&Request::Ping).unwrap(), Response::Pong);

    // Second is bounced with a typed Busy frame, not silently queued.
    let mut second = Connection::connect(addr).unwrap();
    match second.request(&Request::Ping) {
        Ok(Response::Error { code: ErrorCode::Busy, .. }) => {}
        // The server may close before our request bytes land; the Busy
        // frame is still what comes back on the read side.
        other => panic!("want Busy, got {other:?}"),
    }

    // Dropping the first connection frees the slot for a newcomer.
    drop(first);
    let mut third = loop {
        let mut c = Connection::connect(addr).unwrap();
        match c.request(&Request::Ping) {
            Ok(Response::Pong) => break c,
            Ok(Response::Error { code: ErrorCode::Busy, .. }) => {
                // The first conn's worker has not observed the close yet.
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            other => panic!("want Pong or Busy, got {other:?}"),
        }
    };
    assert_eq!(third.request(&Request::Ping).unwrap(), Response::Pong);
    srv.stop();
}

#[test]
fn idle_connections_are_closed_at_the_deadline() {
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        mem_budget: 64 << 20,
        idle_timeout: std::time::Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut conn = Connection::connect(srv.local_addr()).unwrap();
    assert_eq!(conn.request(&Request::Ping).unwrap(), Response::Pong);

    // Past the idle deadline the server hangs up, freeing the worker;
    // the next request fails instead of blocking forever.
    std::thread::sleep(std::time::Duration::from_millis(1200));
    assert!(conn.request(&Request::Ping).is_err(), "idle connection must be closed");

    // The daemon itself keeps serving fresh connections.
    let mut fresh = Connection::connect(srv.local_addr()).unwrap();
    assert_eq!(fresh.request(&Request::Ping).unwrap(), Response::Pong);
    srv.stop();
}

/// The revocation acceptance path end-to-end: a dynamic disk join
/// holds most of the daemon's budget; an arrival that cannot fit makes
/// admission ask the running query to shed instead of waiting for it
/// to finish. The disk query must spill, shrink its grant mid-run
/// (Grant RESIZE in the flight recorder), still answer the exact
/// sequential checksum, and the arrival must get its grant.
#[test]
fn mid_run_grant_shrink_on_a_live_dynamic_disk_query() {
    phj_flightrec::install(phj_flightrec::Mode::Phase);
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        mem_budget: 24 << 20,
        min_grant: 1 << 20,
        max_queue: 8,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = srv.local_addr();

    // Big enough to run for a while; grant = 20 of the 24 MB budget.
    let disk = Request::DiskJoin(DiskJoinRequest {
        build_tuples: 24_000,
        tuple_size: 64,
        matches_per_build: 2,
        pct_match: 100,
        mem_budget: 20 << 20,
        seed: 0xD15C,
        mode: 2,
        trace_id: 0,
    });
    let want = query::run(0, &disk).unwrap();

    let disk_thread = {
        let disk = disk.clone();
        std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).unwrap();
            conn.request(&disk).unwrap()
        })
    };
    // Wait until the disk query actually holds its grant.
    let adm = Arc::clone(srv.admission());
    while adm.outstanding() < 20 << 20 {
        std::thread::yield_now();
    }

    // 8 MB wanted, 4 MB free: this arrival must force a shed request
    // (target 20 - 4 = 16 MB) rather than waiting for the release.
    let arrival = Request::Agg(AggRequest {
        rows: 20_000,
        keys: 256,
        scheme: WireScheme::Swp { d: 4 },
        mem_budget: 8 << 20,
        trace_id: 0,
    });
    let arrival_thread = std::thread::spawn(move || {
        let mut conn = Connection::connect(addr).unwrap();
        conn.request(&arrival).unwrap()
    });

    let disk_resp = disk_thread.join().unwrap();
    let arrival_resp = arrival_thread.join().unwrap();

    let disk_qid = match disk_resp {
        Response::Result(r) => {
            assert_eq!(r.kind, query::KIND_DISK);
            assert_eq!(r.checksum, want.checksum, "shrunken query drifted from the kernel");
            assert_eq!(r.matches, want.matches);
            let report = RunReport::parse(&r.report_json).unwrap();
            report.validate().unwrap();
            r.query_id
        }
        other => panic!("disk query: want Result, got {other:?}"),
    };
    assert!(matches!(arrival_resp, Response::Result(_)), "arrival must complete");

    assert!(adm.sheds() >= 1, "the arrival should have triggered a shed request");
    assert!(adm.peak_waiting() >= 1, "the arrival queued before the shed freed memory");
    assert_eq!(adm.outstanding(), 0, "grants leaked");

    // The grant shrink is journaled: Grant RESIZE events for the disk
    // query, with the new size strictly below the original 20 MB.
    let rec = phj_flightrec::global().expect("installed above");
    let resizes: Vec<_> = rec
        .timeline()
        .into_iter()
        .filter(|e| {
            e.kind == phj_flightrec::EventKind::Grant
                && e.code == phj_flightrec::grant_op::RESIZE
                && e.a == disk_qid
        })
        .collect();
    assert!(!resizes.is_empty(), "mid-run shrink must emit Grant RESIZE");
    assert!(
        resizes.iter().all(|e| e.b < 20 << 20),
        "resized grant must be below the original size"
    );
    srv.stop();
}

#[test]
fn stop_finishes_inflight_work_and_frees_the_port() {
    let srv = small_server();
    let addr = srv.local_addr();
    let worker = std::thread::spawn(move || {
        let mut conn = Connection::connect(addr).unwrap();
        conn.request(&join_req(7)).unwrap()
    });
    let resp = worker.join().unwrap();
    assert!(matches!(resp, Response::Result(_)));
    srv.stop();
    // The accept loop is gone: the port can be rebound.
    assert!(std::net::TcpListener::bind(addr).is_ok());
}

/// Every error path must leave the daemon balanced: no leaked grants,
/// no stuck inflight count, and a `failed` entry in the query table.
/// The injected failure is a scratch dir pointing at an existing
/// *file* — disk-join staging then fails deterministically *after* the
/// grant was acquired, which is the leak-prone half of the lifecycle.
#[test]
fn error_paths_release_grants_and_mark_the_query_failed() {
    let bogus = std::env::temp_dir().join(format!("phj-scratch-not-a-dir-{}", std::process::id()));
    std::fs::write(&bogus, b"occupied").unwrap();
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        mem_budget: 64 << 20,
        scratch_dir: Some(bogus.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut conn = Connection::connect(srv.local_addr()).unwrap();

    let disk = Request::DiskJoin(DiskJoinRequest {
        build_tuples: 2_000,
        tuple_size: 64,
        matches_per_build: 2,
        pct_match: 100,
        mem_budget: 4 << 20,
        seed: 3,
        mode: 0,
        trace_id: 0,
    });
    match conn.request(&disk).unwrap() {
        Response::Error { code: ErrorCode::Internal, message } => {
            assert!(message.contains("scratch dir"), "unexpected failure: {message}");
        }
        other => panic!("want Internal, got {other:?}"),
    }

    // The grant came back, nothing is inflight, and the table shows
    // the failure (grant weak-ref reads 0 after release).
    assert_eq!(srv.admission().outstanding(), 0, "failed query leaked its grant");
    assert_eq!(srv.inflight(), 0);
    let rows = srv.registry().snapshot();
    let failed = rows
        .iter()
        .find(|r| r.state == phj_server::QueryState::Failed as u8)
        .expect("failed query must appear in the table");
    assert_eq!(failed.kind, query::KIND_DISK);
    assert_eq!(failed.grant_bytes, 0);

    // The daemon keeps serving after the failure.
    assert!(matches!(conn.request(&join_req(11)).unwrap(), Response::Result(_)));
    let _ = std::fs::remove_file(&bogus);
    srv.stop();
}

/// The tentpole end-to-end: a client-minted trace id survives the trip
/// — request frame, flight recorder binding, `query_trace` report
/// section, result frame echo, and the `Status` live table.
#[test]
fn trace_id_flows_from_request_to_report_to_status() {
    phj_flightrec::install(phj_flightrec::Mode::Phase);
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        mem_budget: 64 << 20,
        trace: true,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut conn = Connection::connect(srv.local_addr()).unwrap();

    let trace_id = 0x7E57_7E57_0000_0001u64;
    let req = Request::Join(JoinRequest {
        build_tuples: 2_000,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        scheme: WireScheme::Group { g: 16 },
        mem_budget: 1 << 20,
        seed: 0x11D0,
        trace_id,
    });
    let (resp, timing) = conn.request_timed(&req).unwrap();
    let r = match resp {
        Response::Result(r) => r,
        other => panic!("want Result, got {other:?}"),
    };
    assert_eq!(r.trace_id, trace_id, "result frame must echo the trace id");

    // The report carries a validated query_trace section whose spans
    // are consistent with the client-observed wait.
    let report = RunReport::parse(&r.report_json).unwrap();
    report.validate().unwrap();
    let sec = report.query_trace.expect("traced run attaches query_trace");
    assert_eq!(sec.trace_id, trace_id);
    assert_eq!(sec.query_id, r.query_id);
    let names: Vec<&str> = sec.states.iter().map(|(s, _)| s.as_str()).collect();
    assert_eq!(names.first(), Some(&"received"));
    assert!(names.contains(&"executing") && names.contains(&"responding"));
    assert!(sec.exec_ns > 0 && sec.serialize_ns > 0);
    let breakdown_ns = sec.queue_wait_ns + sec.grant_wait_ns + sec.exec_ns + sec.serialize_ns;
    let wait_ns = timing.wait.as_nanos() as u64;
    assert!(
        breakdown_ns <= wait_ns,
        "server breakdown ({breakdown_ns} ns) cannot exceed the client wait ({wait_ns} ns)"
    );

    // The flight recorder bound the two ids together.
    let rec = phj_flightrec::global().unwrap();
    assert!(
        rec.timeline().iter().any(|e| {
            e.kind == phj_flightrec::EventKind::Grant
                && e.code == phj_flightrec::grant_op::TRACE
                && e.a == trace_id
                && e.b == r.query_id
        }),
        "TRACE event must bind trace id to query id"
    );

    // And the Status table still shows the completed query.
    match conn.request(&Request::Status).unwrap() {
        Response::Status(rows) => {
            let row = rows
                .iter()
                .find(|row| row.query_id == r.query_id)
                .expect("completed query stays visible in the recent ring");
            assert_eq!(row.trace_id, trace_id);
            assert_eq!(row.state, phj_server::QueryState::Done as u8);
            assert_eq!(row.exec_us, sec.exec_ns / 1_000);
        }
        other => panic!("want Status, got {other:?}"),
    }
    srv.stop();
}

/// Slow-query capture: with a zero latency threshold every query trips
/// the trigger; dumps are valid postmortems filtered to the query's
/// events, the hook fires, and the dump directory stays bounded.
#[test]
fn slow_queries_dump_valid_postmortems_into_a_bounded_ring() {
    phj_flightrec::install(phj_flightrec::Mode::Phase);
    let dir = std::env::temp_dir().join(format!("phj-slow-dumps-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        mem_budget: 64 << 20,
        trace: true,
        slow_query: Some(phj_server::SlowQueryConfig {
            latency: std::time::Duration::ZERO,
            max_sheds: 0,
            dir: dir.clone(),
            keep: 2,
        }),
        ..ServeConfig::default()
    })
    .unwrap();
    let captured = Arc::new(std::sync::Mutex::new(Vec::new()));
    {
        let sink = Arc::clone(&captured);
        srv.set_slow_query_hook(move |qid, tid, latency, path| {
            sink.lock().unwrap().push((qid, tid, latency, path.to_path_buf()));
        });
    }
    let mut conn = Connection::connect(srv.local_addr()).unwrap();
    for seed in 0..4u64 {
        let mut req = join_req(seed);
        if let Request::Join(j) = &mut req {
            j.trace_id = 0xABBA_0000 + seed;
        }
        assert!(matches!(conn.request(&req).unwrap(), Response::Result(_)));
    }

    let hooks = captured.lock().unwrap().clone();
    assert_eq!(hooks.len(), 4, "every query tripped the zero threshold");
    // Ring bound: only the newest `keep` dumps remain on disk.
    let mut on_disk: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    on_disk.sort();
    assert_eq!(on_disk.len(), 2, "dump ring must prune to keep=2");

    // The newest dump is a valid postmortem scoped to its query: every
    // event belongs to it, and the context block carries the breakdown.
    let (qid, tid, _latency, last_path) = hooks.last().unwrap().clone();
    assert_eq!(&last_path, on_disk.last().unwrap());
    let text = std::fs::read_to_string(&last_path).unwrap();
    let pm = phj_obs::Postmortem::parse(&text).unwrap();
    pm.validate().unwrap();
    assert!(pm.context.iter().any(|(k, v)| k == "query_id" && *v == qid.to_string()));
    assert!(
        pm.context.iter().any(|(k, v)| k == "trace_id" && *v == format!("\"{tid:#018x}\"")),
        "context must carry the quoted trace id: {:?}",
        pm.context
    );
    assert!(
        pm.timeline.iter().all(|ev| ev.a == qid || ev.b == qid),
        "dump events must belong to the captured query"
    );
    let _ = std::fs::remove_dir_all(&dir);
    srv.stop();
}
