//! End-to-end daemon tests over real sockets: concurrent mixed queries
//! produce exactly the checksums the sequential kernel produces, every
//! embedded RunReport validates, admission holds its budget invariant,
//! and hostile input turns into typed error frames.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use phj_obs::RunReport;
use phj_server::proto::{
    AggRequest, DiskJoinRequest, ErrorCode, JoinRequest, Request, Response, WireScheme,
};
use phj_server::{query, Connection, ServeConfig, Server};

fn join_req(seed: u64) -> Request {
    Request::Join(JoinRequest {
        build_tuples: 2_000,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        scheme: WireScheme::Group { g: 16 },
        mem_budget: 1 << 20,
        seed,
    })
}

fn agg_req(rows: u64) -> Request {
    Request::Agg(AggRequest {
        rows,
        keys: 256,
        scheme: WireScheme::Swp { d: 4 },
        mem_budget: 0,
    })
}

fn small_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        mem_budget: 64 << 20,
        min_grant: 1 << 20,
        max_queue: 32,
        ..ServeConfig::default()
    })
    .unwrap()
}

#[test]
fn concurrent_mixed_queries_match_the_sequential_kernel() {
    let srv = small_server();
    let addr = srv.local_addr();

    // Reference checksums from the sequential kernel, same process.
    let requests: Vec<Request> =
        vec![join_req(0x11D0), join_req(0xBEEF), agg_req(20_000), agg_req(5_000)];
    let expected: Vec<_> = requests
        .iter()
        .map(|r| query::run(0, r).unwrap())
        .collect();

    // Two client threads per request, all concurrent.
    let handles: Vec<_> = requests
        .iter()
        .cloned()
        .cycle()
        .take(requests.len() * 2)
        .map(|req| {
            std::thread::spawn(move || {
                let mut conn = Connection::connect(addr).unwrap();
                conn.request(&req).unwrap()
            })
        })
        .collect();
    let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut seen_ids = std::collections::HashSet::new();
    for (i, resp) in responses.into_iter().enumerate() {
        let want = &expected[i % requests.len()];
        match resp {
            Response::Result(r) => {
                assert_eq!(r.checksum, want.checksum, "query {i} checksum drifted");
                assert_eq!(r.matches, want.matches);
                assert_eq!(r.kind, want.kind);
                assert!(seen_ids.insert(r.query_id), "query ids must be unique");
                let report = RunReport::parse(&r.report_json).unwrap();
                report.validate().unwrap();
                assert!(
                    report
                        .config
                        .iter()
                        .any(|(k, v)| k == "query_id" && *v == r.query_id.to_string()),
                    "report must carry its query id"
                );
            }
            other => panic!("query {i}: want Result, got {other:?}"),
        }
    }

    let adm = Arc::clone(srv.admission());
    assert!(adm.peak_outstanding() <= 64 << 20, "grants exceeded the budget");
    assert!(adm.peak_outstanding() > 0, "queries ran without grants?");
    assert_eq!(adm.outstanding(), 0, "grants leaked");
    let (admitted, rejected) = adm.totals();
    assert_eq!(admitted, 8);
    assert_eq!(rejected, 0);
    srv.stop();
}

#[test]
fn ping_pong_and_typed_rejections() {
    let srv = small_server();
    let mut conn = Connection::connect(srv.local_addr()).unwrap();

    assert_eq!(conn.request(&Request::Ping).unwrap(), Response::Pong);

    // A query that can never fit the 64 MB budget: typed TooLarge, and
    // the connection stays usable.
    let huge = Request::Join(JoinRequest {
        build_tuples: 1 << 40,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        scheme: WireScheme::Baseline,
        mem_budget: 1 << 20,
        seed: 1,
    });
    match conn.request(&huge).unwrap() {
        Response::Error { code: ErrorCode::TooLarge, .. } => {}
        other => panic!("want TooLarge, got {other:?}"),
    }

    // Shape violation: typed BadRequest.
    let bad = Request::Join(JoinRequest {
        build_tuples: 10,
        tuple_size: 4000,
        matches_per_build: 1,
        pct_match: 100,
        scheme: WireScheme::Baseline,
        mem_budget: 1 << 20,
        seed: 1,
    });
    match conn.request(&bad).unwrap() {
        Response::Error { code: ErrorCode::BadRequest, .. } => {}
        other => panic!("want BadRequest, got {other:?}"),
    }

    // Still alive after both rejections.
    assert_eq!(conn.request(&Request::Ping).unwrap(), Response::Pong);
    assert_eq!(srv.admission().outstanding(), 0);
    srv.stop();
}

#[test]
fn garbage_bytes_get_a_typed_error_frame_not_a_crash() {
    let srv = small_server();
    let addr = srv.local_addr();

    // Raw garbage (bad version byte): server answers a BadRequest
    // error frame and closes.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&[0xFF; 32]).unwrap();
    s.flush().unwrap();
    let mut raw = Vec::new();
    use std::io::Read;
    let _ = s.read_to_end(&mut raw);
    // Frame header: version 1 + length; decode the error body.
    assert!(raw.len() > 5, "server sent nothing back");
    assert_eq!(raw[0], 1);
    let body_len = u32::from_le_bytes(raw[1..5].try_into().unwrap()) as usize;
    let resp = Response::decode(&raw[5..5 + body_len]).unwrap();
    match resp {
        Response::Error { code: ErrorCode::BadRequest, .. } => {}
        other => panic!("want BadRequest, got {other:?}"),
    }

    // And the daemon still serves the next client.
    let mut conn = Connection::connect(addr).unwrap();
    assert_eq!(conn.request(&Request::Ping).unwrap(), Response::Pong);
    srv.stop();
}

#[test]
fn slow_fragmented_frames_are_served_not_desynced() {
    // A legitimate client that pauses >100 ms between fragments of one
    // frame: the server's idle poll only covers the first byte, so the
    // pauses must not discard consumed bytes and re-parse the stream
    // out of phase (the regression this guards: body bytes interpreted
    // as a fresh header → BadVersion → dropped connection).
    let srv = small_server();
    let mut s = TcpStream::connect(srv.local_addr()).unwrap();
    s.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();

    let mut wire = Vec::new();
    phj_server::proto::write_frame(&mut wire, &Request::Ping.encode()).unwrap();
    assert!(wire.len() >= 6, "ping frame is header + tag");
    // Fragment boundaries land inside the header AND inside the body.
    let cuts = [1usize, 3, wire.len()];
    let mut sent = 0;
    for &cut in &cuts {
        s.write_all(&wire[sent..cut]).unwrap();
        s.flush().unwrap();
        sent = cut;
        std::thread::sleep(std::time::Duration::from_millis(250));
    }

    use phj_server::proto::read_frame;
    let body = read_frame(&mut s).unwrap().expect("server must answer");
    assert_eq!(Response::decode(&body).unwrap(), Response::Pong);

    // The connection stayed in sync: a second, unfragmented request
    // still round-trips.
    phj_server::proto::write_frame(&mut s, &Request::Ping.encode()).unwrap();
    let body = read_frame(&mut s).unwrap().expect("second answer");
    assert_eq!(Response::decode(&body).unwrap(), Response::Pong);
    srv.stop();
}

#[test]
fn over_cap_connections_get_a_typed_busy_frame() {
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        mem_budget: 64 << 20,
        max_conns: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = srv.local_addr();

    // First connection claims the only slot.
    let mut first = Connection::connect(addr).unwrap();
    assert_eq!(first.request(&Request::Ping).unwrap(), Response::Pong);

    // Second is bounced with a typed Busy frame, not silently queued.
    let mut second = Connection::connect(addr).unwrap();
    match second.request(&Request::Ping) {
        Ok(Response::Error { code: ErrorCode::Busy, .. }) => {}
        // The server may close before our request bytes land; the Busy
        // frame is still what comes back on the read side.
        other => panic!("want Busy, got {other:?}"),
    }

    // Dropping the first connection frees the slot for a newcomer.
    drop(first);
    let mut third = loop {
        let mut c = Connection::connect(addr).unwrap();
        match c.request(&Request::Ping) {
            Ok(Response::Pong) => break c,
            Ok(Response::Error { code: ErrorCode::Busy, .. }) => {
                // The first conn's worker has not observed the close yet.
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            other => panic!("want Pong or Busy, got {other:?}"),
        }
    };
    assert_eq!(third.request(&Request::Ping).unwrap(), Response::Pong);
    srv.stop();
}

#[test]
fn idle_connections_are_closed_at_the_deadline() {
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        mem_budget: 64 << 20,
        idle_timeout: std::time::Duration::from_millis(300),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut conn = Connection::connect(srv.local_addr()).unwrap();
    assert_eq!(conn.request(&Request::Ping).unwrap(), Response::Pong);

    // Past the idle deadline the server hangs up, freeing the worker;
    // the next request fails instead of blocking forever.
    std::thread::sleep(std::time::Duration::from_millis(1200));
    assert!(conn.request(&Request::Ping).is_err(), "idle connection must be closed");

    // The daemon itself keeps serving fresh connections.
    let mut fresh = Connection::connect(srv.local_addr()).unwrap();
    assert_eq!(fresh.request(&Request::Ping).unwrap(), Response::Pong);
    srv.stop();
}

/// The revocation acceptance path end-to-end: a dynamic disk join
/// holds most of the daemon's budget; an arrival that cannot fit makes
/// admission ask the running query to shed instead of waiting for it
/// to finish. The disk query must spill, shrink its grant mid-run
/// (Grant RESIZE in the flight recorder), still answer the exact
/// sequential checksum, and the arrival must get its grant.
#[test]
fn mid_run_grant_shrink_on_a_live_dynamic_disk_query() {
    phj_flightrec::install(phj_flightrec::Mode::Phase);
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        mem_budget: 24 << 20,
        min_grant: 1 << 20,
        max_queue: 8,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = srv.local_addr();

    // Big enough to run for a while; grant = 20 of the 24 MB budget.
    let disk = Request::DiskJoin(DiskJoinRequest {
        build_tuples: 24_000,
        tuple_size: 64,
        matches_per_build: 2,
        pct_match: 100,
        mem_budget: 20 << 20,
        seed: 0xD15C,
        mode: 2,
    });
    let want = query::run(0, &disk).unwrap();

    let disk_thread = {
        let disk = disk.clone();
        std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).unwrap();
            conn.request(&disk).unwrap()
        })
    };
    // Wait until the disk query actually holds its grant.
    let adm = Arc::clone(srv.admission());
    while adm.outstanding() < 20 << 20 {
        std::thread::yield_now();
    }

    // 8 MB wanted, 4 MB free: this arrival must force a shed request
    // (target 20 - 4 = 16 MB) rather than waiting for the release.
    let arrival = Request::Agg(AggRequest {
        rows: 20_000,
        keys: 256,
        scheme: WireScheme::Swp { d: 4 },
        mem_budget: 8 << 20,
    });
    let arrival_thread = std::thread::spawn(move || {
        let mut conn = Connection::connect(addr).unwrap();
        conn.request(&arrival).unwrap()
    });

    let disk_resp = disk_thread.join().unwrap();
    let arrival_resp = arrival_thread.join().unwrap();

    let disk_qid = match disk_resp {
        Response::Result(r) => {
            assert_eq!(r.kind, query::KIND_DISK);
            assert_eq!(r.checksum, want.checksum, "shrunken query drifted from the kernel");
            assert_eq!(r.matches, want.matches);
            let report = RunReport::parse(&r.report_json).unwrap();
            report.validate().unwrap();
            r.query_id
        }
        other => panic!("disk query: want Result, got {other:?}"),
    };
    assert!(matches!(arrival_resp, Response::Result(_)), "arrival must complete");

    assert!(adm.sheds() >= 1, "the arrival should have triggered a shed request");
    assert!(adm.peak_waiting() >= 1, "the arrival queued before the shed freed memory");
    assert_eq!(adm.outstanding(), 0, "grants leaked");

    // The grant shrink is journaled: Grant RESIZE events for the disk
    // query, with the new size strictly below the original 20 MB.
    let rec = phj_flightrec::global().expect("installed above");
    let resizes: Vec<_> = rec
        .timeline()
        .into_iter()
        .filter(|e| {
            e.kind == phj_flightrec::EventKind::Grant
                && e.code == phj_flightrec::grant_op::RESIZE
                && e.a == disk_qid
        })
        .collect();
    assert!(!resizes.is_empty(), "mid-run shrink must emit Grant RESIZE");
    assert!(
        resizes.iter().all(|e| e.b < 20 << 20),
        "resized grant must be below the original size"
    );
    srv.stop();
}

#[test]
fn stop_finishes_inflight_work_and_frees_the_port() {
    let srv = small_server();
    let addr = srv.local_addr();
    let worker = std::thread::spawn(move || {
        let mut conn = Connection::connect(addr).unwrap();
        conn.request(&join_req(7)).unwrap()
    });
    let resp = worker.join().unwrap();
    assert!(matches!(resp, Response::Result(_)));
    srv.stop();
    // The accept loop is gone: the port can be rebound.
    assert!(std::net::TcpListener::bind(addr).is_ok());
}
