//! Property tests for the wire protocol: encode/decode must round-trip
//! every representable message, and *arbitrary garbage bytes* must
//! decode to a typed error — never a panic, never an allocation
//! proportional to a hostile length prefix.

use proptest::collection;
use proptest::prelude::*;

use phj_server::proto::{
    read_frame, write_frame, AggRequest, ErrorCode, FrameError, JoinRequest, ProtoError,
    QueryResult, Request, Response, StatusRow, WireScheme, MAX_FRAME, MAX_STATUS_ROWS, VERSION,
};

fn scheme_from(code: u8, g: u32, d: u32) -> WireScheme {
    match code % 4 {
        0 => WireScheme::Baseline,
        1 => WireScheme::Simple,
        2 => WireScheme::Group { g },
        _ => WireScheme::Swp { d },
    }
}

fn printable(bytes: Vec<u8>) -> String {
    bytes.into_iter().map(|b| (b % 94 + 32) as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn join_request_round_trips(
        build_tuples in any::<u64>(),
        tuple_size in 8u32..4096,
        matches_per_build in any::<u32>(),
        pct_match in 0u8..=100,
        code in any::<u8>(),
        g in 1u32..1024,
        d in 1u32..64,
        mem_budget in any::<u64>(),
        seed in any::<u64>(),
        trace_id in any::<u64>(),
    ) {
        let req = Request::Join(JoinRequest {
            build_tuples,
            tuple_size,
            matches_per_build,
            pct_match,
            scheme: scheme_from(code, g, d),
            mem_budget,
            seed,
            trace_id,
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let body = read_frame(&mut wire.as_slice()).unwrap().unwrap();
        prop_assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn agg_request_round_trips(
        rows in any::<u64>(),
        keys in 1u64..u64::MAX,
        code in any::<u8>(),
        g in 1u32..1024,
        d in 1u32..64,
        mem_budget in any::<u64>(),
        trace_id in any::<u64>(),
    ) {
        let req = Request::Agg(AggRequest {
            rows,
            keys,
            scheme: scheme_from(code, g, d),
            mem_budget,
            trace_id,
        });
        let body = req.encode();
        prop_assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn responses_round_trip(
        query_id in any::<u64>(),
        kind in 1u8..3,
        matches in any::<u64>(),
        checksum in any::<u64>(),
        partitions in any::<u64>(),
        elapsed_us in any::<u64>(),
        json in collection::vec(any::<u8>(), 0..256),
        err_code in 1u16..7,
        msg in collection::vec(any::<u8>(), 0..64),
        trace_id in any::<u64>(),
    ) {
        let result = Response::Result(QueryResult {
            query_id,
            kind,
            matches,
            checksum,
            partitions,
            elapsed_us,
            report_json: printable(json),
            trace_id,
        });
        prop_assert_eq!(Response::decode(&result.encode()).unwrap(), result);

        let code = match err_code {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::TooLarge,
            3 => ErrorCode::QueueFull,
            4 => ErrorCode::Internal,
            5 => ErrorCode::ShuttingDown,
            _ => ErrorCode::Busy,
        };
        let err = Response::Error { code, message: printable(msg) };
        prop_assert_eq!(Response::decode(&err.encode()).unwrap(), err);

        prop_assert_eq!(Response::decode(&Response::Pong.encode()).unwrap(), Response::Pong);
    }

    #[test]
    fn garbage_bodies_decode_to_typed_errors_not_panics(
        body in collection::vec(any::<u8>(), 0..128),
    ) {
        // Decoding is total: Ok must round-trip canonically, Err must
        // be one of the typed variants (guaranteed by the type — the
        // point of the property is that this call returns at all).
        if let Ok(req) = Request::decode(&body) {
            prop_assert_eq!(req.encode(), body.clone());
        }
        if let Ok(resp) = Response::decode(&body) {
            prop_assert_eq!(resp.encode(), body);
        }
    }

    #[test]
    fn garbage_streams_never_panic_the_frame_reader(
        wire in collection::vec(any::<u8>(), 0..64),
    ) {
        match read_frame(&mut wire.as_slice()) {
            Ok(None) => prop_assert!(wire.is_empty()),
            Ok(Some(body)) => prop_assert!(body.len() <= MAX_FRAME as usize),
            Err(FrameError::Proto(_)) | Err(FrameError::Io(_)) => {}
        }
    }

    #[test]
    fn bad_version_is_rejected_with_the_offending_byte(raw in 0u8..=255) {
        // Fold the one valid version onto its neighbor: every drawn
        // byte exercises the rejection path.
        let v = if raw == VERSION { VERSION.wrapping_add(1) } else { raw };
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        wire[0] = v;
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Proto(ProtoError::BadVersion(got))) => prop_assert_eq!(got, v),
            other => prop_assert!(false, "want BadVersion({}), got {:?}", v, other),
        }
    }

    #[test]
    fn truncating_a_valid_frame_anywhere_is_typed(
        cut_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let req = Request::Join(JoinRequest {
            build_tuples: 1000,
            tuple_size: 100,
            matches_per_build: 2,
            pct_match: 100,
            scheme: WireScheme::Swp { d: 4 },
            mem_budget: 1 << 20,
            seed,
            trace_id: 0,
        });
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        // Cut anywhere strictly inside the frame: always Truncated.
        let cut = 1 + (cut_seed % (wire.len() as u64 - 1)) as usize;
        match read_frame(&mut &wire[..cut]) {
            Err(FrameError::Proto(ProtoError::Truncated)) => {}
            other => prop_assert!(false, "cut at {}: want Truncated, got {:?}", cut, other),
        }
    }

    #[test]
    fn status_frames_round_trip(
        raw in collection::vec(collection::vec(any::<u64>(), 8..9), 0..16),
    ) {
        prop_assert_eq!(Request::decode(&Request::Status.encode()).unwrap(), Request::Status);
        let rows: Vec<StatusRow> = raw
            .into_iter()
            .map(|w| StatusRow {
                query_id: w[0],
                trace_id: w[1],
                kind: (w[2] % 3) as u8 + 1,
                state: (w[3] % 7) as u8,
                age_us: w[4],
                grant_bytes: w[5],
                shed_count: w[6] as u32,
                queue_wait_us: w[7],
                grant_wait_us: w[0] ^ w[1],
                exec_us: w[2].rotate_left(17),
            })
            .collect();
        let resp = Response::Status(rows);
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn hostile_status_bodies_are_typed_never_panics(
        count in any::<u32>(),
        tail in collection::vec(any::<u8>(), 0..256),
    ) {
        // An attacker-controlled row count must be bounds-checked
        // before any allocation: a count over the cap is a typed
        // BadValue even with zero row bytes behind it.
        let mut body = vec![0x84u8];
        body.extend_from_slice(&count.to_le_bytes());
        body.extend_from_slice(&tail);
        match Response::decode(&body) {
            Ok(resp) => prop_assert_eq!(resp.encode(), body),
            Err(e) => {
                if count > MAX_STATUS_ROWS {
                    prop_assert_eq!(e, ProtoError::BadValue("status row count"));
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation(
        len in (MAX_FRAME + 1)..=u32::MAX,
    ) {
        let mut wire = vec![VERSION];
        wire.extend_from_slice(&len.to_le_bytes());
        // No body bytes at all: if the reader tried to allocate/read
        // `len` bytes it would error Truncated instead of Oversized.
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Proto(ProtoError::Oversized(got))) => prop_assert_eq!(got, len),
            other => prop_assert!(false, "want Oversized, got {:?}", other),
        }
    }
}
