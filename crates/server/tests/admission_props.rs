//! Property tests for admission control.
//!
//! The contract under test (ISSUE 8 satellite): the sum of outstanding
//! grants never exceeds the global budget, queued queries eventually
//! run (a seeded 50-query burst completes — no deadlock), and rejected
//! queries leave the budget untouched.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use proptest::collection;
use proptest::prelude::*;

use phj_server::admission::{Admission, AdmissionConfig, AdmitError, MemGrant, ResizeError};

fn table(budget: u64, min_grant: u64, max_queue: usize) -> Arc<Admission> {
    Admission::new(AdmissionConfig { budget, min_grant, max_queue })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Single-threaded model check: interleave admits (only when the
    // model says they fit, so nothing blocks) and randomized releases,
    // mirroring the grant set; the table's accounting must track the
    // model exactly and never exceed the budget.
    #[test]
    fn outstanding_tracks_the_live_grant_sum(
        ops in collection::vec((any::<u64>(), any::<u64>()), 1..80),
        budget in 1_000u64..1_000_000,
    ) {
        let adm = table(budget, 1, 1000);
        let mut live: Vec<MemGrant> = Vec::new();
        let mut model_sum = 0u64;
        for (i, (sz_seed, action)) in ops.into_iter().enumerate() {
            let want = 1 + sz_seed % budget;
            if action % 3 != 0 || live.is_empty() {
                if model_sum + want <= budget {
                    let g = adm.admit(i as u64, want).unwrap();
                    model_sum += g.bytes();
                    live.push(g);
                } else {
                    // Would block; the concurrent burst test covers
                    // queue-and-wake. Here just assert a full-budget
                    // request is what rejection protects against.
                    prop_assert!(want + model_sum > budget);
                }
            } else {
                let idx = (action as usize / 3) % live.len();
                let g = live.swap_remove(idx);
                model_sum -= g.bytes();
                drop(g);
            }
            prop_assert_eq!(adm.outstanding(), model_sum);
            prop_assert!(adm.outstanding() <= budget, "over budget");
            prop_assert!(adm.peak_outstanding() <= budget, "peak over budget");
        }
        drop(live);
        prop_assert_eq!(adm.outstanding(), 0);
    }

    // Rejections — both kinds — are side-effect free.
    #[test]
    fn rejections_leave_the_budget_unchanged(
        held in 1u64..100,
        over in any::<u64>(),
    ) {
        let budget = 100u64;
        let adm = table(budget, 1, 0); // zero queue: every wait rejects
        let g = adm.admit(1, held).unwrap();
        let before = adm.outstanding();

        // TooLarge: can never fit.
        let req = budget + 1 + over % budget;
        prop_assert!(matches!(adm.admit(2, req), Err(AdmitError::TooLarge { .. })));
        prop_assert_eq!(adm.outstanding(), before);

        // QueueFull: would have to wait, but the queue holds nobody.
        if held < budget {
            // Fits outright — admit and release, budget restored.
            let extra = adm.admit(3, budget - held).unwrap();
            drop(extra);
            prop_assert_eq!(adm.outstanding(), before);
        }
        prop_assert!(matches!(
            adm.admit(4, budget),
            Err(AdmitError::QueueFull { .. }) | Ok(_)
        ));
        drop(g);
        prop_assert_eq!(adm.outstanding(), 0);
    }

    // Boundary: max_queue = 0 with a completely free budget. Nothing
    // should ever be asked to wait, so the zero-length queue must be
    // invisible — any request that fits admits outright, any request
    // that cannot is typed (TooLarge past the budget), and nothing
    // blocks. Admitting at the exact budget boundary must also work.
    #[test]
    fn zero_queue_with_full_budget_never_waits(
        budget in 1_000u64..1_000_000,
        req_seed in any::<u64>(),
    ) {
        let adm = table(budget, 1, 0);
        let req = 1 + req_seed % budget;
        let g = adm.admit(1, req).unwrap();
        prop_assert_eq!(g.bytes(), req);
        drop(g);

        // The exact-budget request is the largest admissible one.
        let g = adm.admit(2, budget).unwrap();
        prop_assert_eq!(g.bytes(), budget);
        drop(g);

        // One past the budget can never fit: typed, not queued.
        prop_assert!(matches!(
            adm.admit(3, budget + 1),
            Err(AdmitError::TooLarge { .. })
        ));
        prop_assert_eq!(adm.outstanding(), 0);
    }

    // Boundary: min_grant rounding interacts with the exact-budget
    // request. A sub-min_grant ask rounds up to min_grant; an ask that
    // *rounds* past the budget — even though the raw ask fits — must be
    // TooLarge, because the table would otherwise grant more than the
    // budget holds.
    #[test]
    fn min_grant_rounding_respects_the_budget_boundary(
        min_grant in 2u64..1_000,
        slack in 0u64..3,
    ) {
        // Budget sits strictly between min_grant-1 asks and the round-up.
        let budget = min_grant - 1 + slack;
        let adm = table(budget, min_grant, 0);
        let ask = budget.min(min_grant - 1);
        if min_grant > budget {
            // Every ask rounds up past the whole budget: nothing fits.
            prop_assert!(matches!(
                adm.admit(1, ask),
                Err(AdmitError::TooLarge { .. })
            ));
        } else {
            // The rounded grant fits exactly (slack ≥ 1 ⇒ budget ≥ min_grant).
            let g = adm.admit(1, ask).unwrap();
            prop_assert_eq!(g.bytes(), min_grant);
            prop_assert!(adm.outstanding() <= budget);
            drop(g);
        }
        prop_assert_eq!(adm.outstanding(), 0);
    }

    // Boundary: a resize below min_grant is a typed rejection that
    // leaves the grant and the budget exactly as they were, while
    // try_shrink (the pressure path) clamps instead of failing.
    #[test]
    fn shrink_below_min_grant_rejects_and_try_shrink_clamps(
        min_grant in 2u64..1_000,
        below in any::<u64>(),
    ) {
        let budget = min_grant * 4;
        let adm = table(budget, min_grant, 0);
        let g = adm.admit(1, min_grant * 2).unwrap();
        let before = g.bytes();

        let ask = below % min_grant; // strictly below min_grant
        let res = g.resize(ask);
        prop_assert_eq!(
            res,
            Err(ResizeError::BelowMin { requested: ask, min_grant })
        );
        prop_assert_eq!(g.bytes(), before);
        prop_assert_eq!(adm.outstanding(), before);

        // The pressure path never dips below min_grant either — it
        // clamps and reports success.
        prop_assert!(g.try_shrink(ask));
        prop_assert_eq!(g.bytes(), min_grant);
        prop_assert_eq!(adm.outstanding(), min_grant);
        drop(g);
        prop_assert_eq!(adm.outstanding(), 0);
    }
}

/// The liveness + safety test from the issue: a seeded burst of 50
/// queries with randomized sizes, more demand than budget, all racing.
/// Every admissible query must eventually run (no deadlock), a monitor
/// thread must never observe outstanding > budget, and the exact
/// TooLarge requests — and only those — are rejected.
#[test]
fn seeded_50_query_burst_all_run_and_never_exceed_budget() {
    const BUDGET: u64 = 64 << 20;
    const QUERIES: u64 = 50;
    let adm = table(BUDGET, 1 << 20, QUERIES as usize);

    // xorshift64 off a fixed seed: deterministic sizes, some of them
    // deliberately over budget.
    let mut seed = 0x5EED_CAFE_u64;
    let mut sizes = Vec::new();
    for _ in 0..QUERIES {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        let size = if seed.is_multiple_of(10) {
            BUDGET + seed % BUDGET + 1 // TooLarge on purpose
        } else {
            1 + seed % (BUDGET / 3) // up to a third of the budget
        };
        sizes.push(size);
    }
    let expect_rejected = sizes.iter().filter(|&&s| s > BUDGET).count() as u64;

    let stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let adm = Arc::clone(&adm);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut worst = 0u64;
            while !stop.load(Ordering::Acquire) {
                worst = worst.max(adm.outstanding());
                std::thread::yield_now();
            }
            worst
        })
    };

    let ran = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = sizes
        .into_iter()
        .enumerate()
        .map(|(i, size)| {
            let adm = Arc::clone(&adm);
            let ran = Arc::clone(&ran);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || match adm.admit(i as u64, size) {
                Ok(g) => {
                    assert!(g.bytes() <= BUDGET);
                    // Hold the grant briefly so grants genuinely overlap.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    ran.fetch_add(1, Ordering::SeqCst);
                }
                Err(AdmitError::TooLarge { .. }) => {
                    rejected.fetch_add(1, Ordering::SeqCst);
                }
                Err(e @ AdmitError::QueueFull { .. }) => {
                    panic!("queue sized for the whole burst, yet: {e}")
                }
            })
        })
        .collect();

    for h in handles {
        // Join with the default test timeout as the deadlock alarm: a
        // stuck FIFO queue hangs here and the harness kills the test.
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    let observed_peak = monitor.join().unwrap();

    assert_eq!(ran.load(Ordering::SeqCst), QUERIES - expect_rejected, "every admissible query ran");
    assert_eq!(rejected.load(Ordering::SeqCst), expect_rejected);
    assert!(expect_rejected > 0, "seed must exercise the rejection path");
    assert_eq!(adm.outstanding(), 0, "all grants returned");
    assert!(adm.peak_outstanding() <= BUDGET, "lock-accurate peak stayed within budget");
    assert!(observed_peak <= BUDGET, "sampled outstanding stayed within budget");
    assert!(adm.peak_outstanding() > 0, "grants actually overlapped");
    let (admitted, rej) = adm.totals();
    assert_eq!(admitted, QUERIES - expect_rejected);
    assert_eq!(rej, expect_rejected);
}

/// FIFO fairness: with the budget pinned, waiters are granted in
/// arrival order. Each waiter wants 60 of 100 bytes, so grants are
/// mutually exclusive and the recording order *is* the grant order.
#[test]
fn fifo_order_is_respected_under_contention() {
    let adm = table(100, 1, 16);
    let pin = adm.admit(0, 100).unwrap();

    let order = Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for i in 1..=4u64 {
        // Arrival order established by waiting until the queue grows.
        let adm_t = Arc::clone(&adm);
        let order = Arc::clone(&order);
        handles.push(std::thread::spawn(move || {
            let g = adm_t.admit(i, 60).unwrap();
            order.lock().unwrap().push(i);
            drop(g);
        }));
        while adm.waiting() < i as usize {
            std::thread::yield_now();
        }
    }
    drop(pin);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*order.lock().unwrap(), vec![1, 2, 3, 4], "grants left FIFO");
}
