//! A capacity-bounded fully-associative LRU set with O(1) operations.
//!
//! Used for the D-TLB ([`crate::tlb`]) and for the shadow cache that
//! classifies conflict vs capacity misses ([`crate::cache`]). Implemented
//! as a hash map into an intrusive doubly-linked list stored in a slab,
//! so hits, inserts, and evictions are all constant-time.

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node {
    key: u64,
    prev: u32,
    next: u32,
}

/// Fixed-capacity LRU set of `u64` keys.
pub struct LruSet {
    map: HashMap<u64, u32>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    cap: usize,
}

impl LruSet {
    /// Create an LRU set holding at most `cap` keys.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "LruSet capacity must be non-zero");
        LruSet {
            map: HashMap::with_capacity(cap * 2),
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Touch `key`: returns `true` if it was resident (hit; promoted to
    /// MRU), `false` if it was inserted (miss; possibly evicting the LRU).
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return true;
        }
        if self.map.len() == self.cap {
            let lru = self.tail;
            let old = self.nodes[lru as usize].key;
            self.unlink(lru);
            self.map.remove(&old);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize].key = key;
                i
            }
            None => {
                self.nodes.push(Node { key, prev: NIL, next: NIL });
                (self.nodes.len() - 1) as u32
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        false
    }

    /// Whether `key` is resident, without promoting it.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_hit_miss() {
        let mut l = LruSet::new(2);
        assert!(!l.touch(1));
        assert!(!l.touch(2));
        assert!(l.touch(1));
        assert!(l.touch(2));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut l = LruSet::new(2);
        l.touch(1);
        l.touch(2);
        l.touch(1); // order: 1 (MRU), 2 (LRU)
        l.touch(3); // evicts 2
        assert!(l.contains(1));
        assert!(!l.contains(2));
        assert!(l.contains(3));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn capacity_one() {
        let mut l = LruSet::new(1);
        assert!(!l.touch(5));
        assert!(l.touch(5));
        assert!(!l.touch(6));
        assert!(!l.contains(5));
    }

    #[test]
    fn clear_resets() {
        let mut l = LruSet::new(4);
        for k in 0..4 {
            l.touch(k);
        }
        l.clear();
        assert!(l.is_empty());
        assert!(!l.touch(0));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn exact_lru_order_under_interleaving() {
        let mut l = LruSet::new(3);
        l.touch(10);
        l.touch(20);
        l.touch(30);
        l.touch(10); // order: 10, 30, 20
        l.touch(40); // evicts 20
        assert!(!l.contains(20));
        l.touch(50); // evicts 30
        assert!(!l.contains(30));
        assert!(l.contains(10) && l.contains(40) && l.contains(50));
    }

    #[test]
    fn matches_reference_model() {
        // Cross-check against a naive Vec-based LRU over a pseudo-random
        // workload with a small key universe to force heavy reuse.
        let mut l = LruSet::new(8);
        let mut reference: Vec<u64> = Vec::new();
        let mut state = 0x12345678u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state >> 33) % 24;
            let expect_hit = reference.contains(&key);
            let got_hit = l.touch(key);
            assert_eq!(got_hit, expect_hit);
            reference.retain(|&k| k != key);
            reference.insert(0, key);
            reference.truncate(8);
        }
    }
}
