//! Set-associative caches with in-flight fills.
//!
//! A [`SetAssocCache`] indexes cache-line addresses into LRU sets. Lines
//! carry a `ready_at` cycle: a line installed by a prefetch is *in flight*
//! until its fill completes, and a demand access that arrives early stalls
//! only for the remaining latency — this is what makes prefetching overlap
//! misses with computation in the timing model.
//!
//! Lines also record whether they were installed by a prefetch and whether
//! they have been demand-used, so the engine can count prefetched lines
//! that were **evicted before use** — the conflict-miss pathology the paper
//! observes when the group size `G` or prefetch distance `D` is too large
//! (Figs 13 and 17).

/// Result of probing a cache for a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line resident and fill complete.
    Hit,
    /// Line resident but still in flight; usable at the given cycle.
    InFlight(u64),
    /// Line absent.
    Miss,
}

/// What was displaced by an install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evicted {
    /// No line was displaced (an invalid way was filled).
    None,
    /// A line was displaced.
    Line {
        /// The victim's line address (for attributing pollution to the
        /// region the wasted prefetch targeted).
        tag: u64,
        /// True when the victim had been installed by a prefetch and was
        /// never demand-accessed (wasted prefetch — cache pollution).
        prefetched_unused: bool,
        /// True when the victim was dirty (a write-back is due).
        dirty: bool,
    },
}

#[derive(Clone, Copy)]
struct Line {
    tag: u64,
    ready_at: u64,
    /// Cycle the fill was requested (for prefetches: the issue time).
    /// `ready_at - fill_start` is the latency the fill spent in flight —
    /// the latency a successful prefetch *hides* from the demand access.
    fill_start: u64,
    valid: bool,
    prefetched: bool,
    used: bool,
    dirty: bool,
    /// Per-set LRU stamp (larger = more recent).
    stamp: u64,
}

const INVALID: Line = Line {
    tag: 0,
    ready_at: 0,
    fill_start: 0,
    valid: false,
    prefetched: false,
    used: false,
    dirty: false,
    stamp: 0,
};

/// A set-associative cache over line addresses (`addr >> line_shift`).
pub struct SetAssocCache {
    ways: usize,
    set_mask: u64,
    lines: Vec<Line>,
    clock: u64,
}

impl SetAssocCache {
    /// Create a cache with `sets` sets (power of two) of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two() && sets > 0);
        assert!(ways > 0);
        SetAssocCache {
            ways,
            set_mask: (sets - 1) as u64,
            lines: vec![INVALID; sets * ways],
            clock: 0,
        }
    }

    /// Probe for `line` without changing replacement state.
    pub fn probe(&self, line: u64, now: u64) -> Probe {
        let base = self.set_base(line);
        for w in &self.lines[base..base + self.ways] {
            if w.valid && w.tag == line {
                return if w.ready_at <= now {
                    Probe::Hit
                } else {
                    Probe::InFlight(w.ready_at)
                };
            }
        }
        Probe::Miss
    }

    /// Demand access: probe and, on residency, promote to MRU and mark
    /// used (and dirty, for writes). Returns the probe result (timing
    /// handled by the engine).
    pub fn access(&mut self, line: u64, now: u64) -> Probe {
        self.access_rw(line, now, false)
    }

    /// [`Self::access`] with an explicit read/write flag.
    pub fn access_rw(&mut self, line: u64, now: u64, write: bool) -> Probe {
        self.access_demand(line, now, write).0
    }

    /// Demand access that also reports prefetch coverage: on the *first*
    /// demand touch of a prefetch-installed line, the second component is
    /// `Some((fill_start, ready_at))` — the window whose latency the
    /// prefetch took off the critical path.
    pub fn access_demand(&mut self, line: u64, now: u64, write: bool) -> (Probe, Option<(u64, u64)>) {
        let base = self.set_base(line);
        self.clock += 1;
        let clock = self.clock;
        for w in &mut self.lines[base..base + self.ways] {
            if w.valid && w.tag == line {
                let pf_first_use =
                    (w.prefetched && !w.used).then_some((w.fill_start, w.ready_at));
                w.stamp = clock;
                w.used = true;
                w.dirty |= write;
                let probe = if w.ready_at <= now {
                    Probe::Hit
                } else {
                    Probe::InFlight(w.ready_at)
                };
                return (probe, pf_first_use);
            }
        }
        (Probe::Miss, None)
    }

    /// Install `line` with fill request time `fill_start` and completion
    /// `ready_at`, evicting the set's LRU way if needed. `by_prefetch`
    /// tags the line for the evicted-before-use statistic and the hidden
    /// latency credited on its first demand use. A demand install is born
    /// "used".
    pub fn install(&mut self, line: u64, fill_start: u64, ready_at: u64, by_prefetch: bool) -> Evicted {
        let base = self.set_base(line);
        self.clock += 1;
        let clock = self.clock;
        // Prefer an invalid way; otherwise evict the smallest stamp.
        let mut victim = base;
        let mut best = u64::MAX;
        for i in base..base + self.ways {
            let w = &self.lines[i];
            if !w.valid {
                victim = i;
                break;
            }
            debug_assert_ne!(w.tag, line, "install of resident line");
            if w.stamp < best {
                best = w.stamp;
                victim = i;
            }
        }
        let old = self.lines[victim];
        self.lines[victim] = Line {
            tag: line,
            ready_at,
            fill_start,
            valid: true,
            prefetched: by_prefetch,
            used: !by_prefetch,
            dirty: false,
            stamp: clock,
        };
        if old.valid {
            Evicted::Line {
                tag: old.tag,
                prefetched_unused: old.prefetched && !old.used,
                dirty: old.dirty,
            }
        } else {
            Evicted::None
        }
    }

    /// Invalidate everything (the Fig 18 periodic flush).
    pub fn flush(&mut self) -> u64 {
        let mut dropped = 0;
        for w in &mut self.lines {
            if w.valid {
                dropped += 1;
            }
            *w = INVALID;
        }
        dropped
    }

    /// Number of resident lines (diagnostics).
    pub fn resident(&self) -> usize {
        self.lines.iter().filter(|w| w.valid).count()
    }

    #[inline]
    fn set_base(&self, line: u64) -> usize {
        ((line & self.set_mask) as usize) * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssocCache::new(4, 2);
        assert_eq!(c.access(42, 0), Probe::Miss);
        c.install(42, 0, 0, false);
        assert_eq!(c.access(42, 1), Probe::Hit);
    }

    #[test]
    fn inflight_until_ready() {
        let mut c = SetAssocCache::new(4, 2);
        c.install(7, 0, 100, true);
        assert_eq!(c.access(7, 50), Probe::InFlight(100));
        assert_eq!(c.access(7, 100), Probe::Hit);
    }

    #[test]
    fn lru_within_set() {
        // 1 set, 2 ways: lines 0 and 4 map to the same set when mask = 0.
        let mut c = SetAssocCache::new(1, 2);
        c.install(0, 0, 0, false);
        c.install(1, 0, 0, false);
        c.access(0, 0); // 0 is MRU
        c.install(2, 0, 0, false); // evicts 1
        assert_eq!(c.probe(0, 0), Probe::Hit);
        assert_eq!(c.probe(1, 0), Probe::Miss);
        assert_eq!(c.probe(2, 0), Probe::Hit);
    }

    #[test]
    fn eviction_reports_unused_prefetch() {
        let mut c = SetAssocCache::new(1, 1);
        c.install(1, 0, 10, true); // prefetched, never used
        let e = c.install(2, 0, 20, false);
        assert_eq!(e, Evicted::Line { tag: 1, prefetched_unused: true, dirty: false });
        // Now use line 2 (demand install counts as used).
        let e = c.install(3, 0, 30, true);
        assert_eq!(e, Evicted::Line { tag: 2, prefetched_unused: false, dirty: false });
    }

    #[test]
    fn prefetched_line_used_then_evicted_is_not_wasted() {
        let mut c = SetAssocCache::new(1, 1);
        c.install(1, 0, 0, true);
        assert_eq!(c.access(1, 5), Probe::Hit); // marks used
        let e = c.install(2, 0, 0, false);
        assert_eq!(e, Evicted::Line { tag: 1, prefetched_unused: false, dirty: false });
    }

    #[test]
    fn access_demand_reports_first_prefetched_use_only() {
        let mut c = SetAssocCache::new(4, 2);
        c.install(7, 5, 100, true); // prefetched at 5, ready at 100
        let (p, pf) = c.access_demand(7, 150, false);
        assert_eq!(p, Probe::Hit);
        assert_eq!(pf, Some((5, 100)), "first demand use reports the fill window");
        let (p, pf) = c.access_demand(7, 151, false);
        assert_eq!(p, Probe::Hit);
        assert_eq!(pf, None, "later uses report nothing");
        // Demand installs are born used: no coverage report.
        c.install(8, 0, 0, false);
        assert_eq!(c.access_demand(8, 1, false).1, None);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(2, 1);
        c.install(0, 0, 0, false); // set 0
        c.install(1, 0, 0, false); // set 1
        assert_eq!(c.probe(0, 0), Probe::Hit);
        assert_eq!(c.probe(1, 0), Probe::Hit);
        c.install(2, 0, 0, false); // set 0 again, evicts 0
        assert_eq!(c.probe(0, 0), Probe::Miss);
        assert_eq!(c.probe(1, 0), Probe::Hit);
    }

    #[test]
    fn flush_invalidates_all() {
        let mut c = SetAssocCache::new(4, 2);
        for l in 0..8u64 {
            c.install(l, 0, 0, false);
        }
        assert_eq!(c.resident(), 8);
        assert_eq!(c.flush(), 8);
        assert_eq!(c.resident(), 0);
        assert_eq!(c.probe(3, 0), Probe::Miss);
    }

    #[test]
    fn dirty_lines_reported_on_eviction() {
        let mut c = SetAssocCache::new(1, 1);
        c.install(1, 0, 0, false);
        c.access_rw(1, 0, true); // dirty it
        let e = c.install(2, 0, 0, false);
        assert_eq!(e, Evicted::Line { tag: 1, prefetched_unused: false, dirty: true });
        // Clean line evicts clean.
        let e = c.install(3, 0, 0, false);
        assert_eq!(e, Evicted::Line { tag: 2, prefetched_unused: false, dirty: false });
    }

    #[test]
    fn capacity_matches_geometry() {
        let mut c = SetAssocCache::new(256, 4);
        for l in 0..1024u64 {
            c.install(l, 0, 0, false);
        }
        assert_eq!(c.resident(), 1024);
        // One more line must evict something.
        assert_ne!(c.install(5000, 0, 0, false), Evicted::None);
    }
}
