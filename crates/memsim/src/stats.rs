//! Execution-time breakdowns and cache statistics.

use std::fmt;
use std::ops::{Add, Sub};

/// User-time breakdown in cycles, matching the stacked bars of the paper's
/// Figures 1, 11, and 15: busy time, data-cache stalls, D-TLB stalls, and
/// other (pipeline) stalls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Breakdown {
    /// Cycles doing computation (including prefetch-instruction overhead).
    pub busy: u64,
    /// Cycles stalled on data-cache misses.
    pub dcache_stall: u64,
    /// Cycles stalled on demand D-TLB walks.
    pub dtlb_stall: u64,
    /// Cycles of other stalls (branch mispredictions and similar, charged
    /// explicitly by the algorithms at data-dependent branches).
    pub other_stall: u64,
}

impl Breakdown {
    /// Total execution time.
    pub fn total(&self) -> u64 {
        self.busy + self.dcache_stall + self.dtlb_stall + self.other_stall
    }

    /// Fraction of total time stalled on the data cache.
    pub fn dcache_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.dcache_stall as f64 / self.total() as f64
        }
    }
}

impl Sub for Breakdown {
    type Output = Breakdown;
    /// Delta between two snapshots. Saturating: an out-of-order pair of
    /// snapshots yields zeros instead of panicking (debug) or wrapping to
    /// absurd totals (release).
    fn sub(self, rhs: Breakdown) -> Breakdown {
        Breakdown {
            busy: self.busy.saturating_sub(rhs.busy),
            dcache_stall: self.dcache_stall.saturating_sub(rhs.dcache_stall),
            dtlb_stall: self.dtlb_stall.saturating_sub(rhs.dtlb_stall),
            other_stall: self.other_stall.saturating_sub(rhs.other_stall),
        }
    }
}

impl Add for Breakdown {
    type Output = Breakdown;
    /// Componentwise sum: merging per-worker breakdowns into run totals.
    fn add(self, rhs: Breakdown) -> Breakdown {
        Breakdown {
            busy: self.busy + rhs.busy,
            dcache_stall: self.dcache_stall + rhs.dcache_stall,
            dtlb_stall: self.dtlb_stall + rhs.dtlb_stall,
            other_stall: self.other_stall + rhs.other_stall,
        }
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} = busy {} + dcache {} + dtlb {} + other {}",
            self.total(),
            self.busy,
            self.dcache_stall,
            self.dtlb_stall,
            self.other_stall
        )
    }
}

/// Cache and prefetch event counters (the raw material for the cache-miss
/// breakdowns of Figs 13 and 17).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (each spanning ≥ 1 line).
    pub visits: u64,
    /// Demand line accesses.
    pub visit_lines: u64,
    /// Demand lines that hit a completed L1 line.
    pub l1_hits: u64,
    /// Demand lines that hit an **in-flight** L1 fill (prefetch issued but
    /// not complete — a *partially hidden* miss; its stall is the remaining
    /// latency only).
    pub l1_inflight_hits: u64,
    /// Demand lines missing L1 and hitting L2.
    pub l2_hits: u64,
    /// Demand lines missing both caches (full-latency memory fetches).
    pub mem_misses: u64,
    /// Demand L1 misses classified as conflict misses (resident in a
    /// same-capacity fully-associative shadow cache). Only counted when
    /// `classify_conflicts` is enabled.
    pub l1_conflict_misses: u64,
    /// Prefetch requests.
    pub prefetches: u64,
    /// Prefetched lines already resident or in flight (dropped).
    pub pf_dropped: u64,
    /// Prefetched lines filled from L2.
    pub pf_from_l2: u64,
    /// Prefetched lines filled from memory.
    pub pf_from_mem: u64,
    /// Prefetched lines evicted from L1 before any demand use — the cache
    /// pollution that appears when G or D grows too large.
    pub pf_evicted_unused: u64,
    /// Cycles of miss latency hidden by prefetching: on the first demand
    /// use of a prefetch-installed line, the fill latency that did *not*
    /// stall the processor (full latency for a completed fill, the
    /// already-elapsed part for an in-flight one). Together with the
    /// `dcache_stall` of [`Breakdown`] this yields the *prefetch
    /// coverage* — the fraction of miss latency prefetching hid.
    pub pf_hidden_cycles: u64,
    /// D-TLB walks on demand accesses (these stall the processor).
    pub tlb_demand_walks: u64,
    /// D-TLB walks triggered by prefetches (overlapped; they only delay
    /// the prefetched fill).
    pub tlb_prefetch_walks: u64,
    /// Lines fetched by the (optional) hardware stride prefetcher.
    pub hw_prefetches: u64,
    /// Dirty lines written back on eviction (counted always; charged to
    /// the bus only when `model_writebacks` is set).
    pub writebacks: u64,
    /// Periodic cache flushes performed (Fig 18 interference model).
    pub flushes: u64,
}

impl CacheStats {
    /// Demand line accesses that needed any fill (L1 misses).
    pub fn l1_misses(&self) -> u64 {
        self.l1_inflight_hits + self.l2_hits + self.mem_misses
    }

    /// L1 demand hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.visit_lines == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.visit_lines as f64
        }
    }
}

impl Sub for CacheStats {
    type Output = CacheStats;
    /// Delta between two snapshots. Saturating, like `Breakdown::sub`.
    fn sub(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            visits: self.visits.saturating_sub(rhs.visits),
            visit_lines: self.visit_lines.saturating_sub(rhs.visit_lines),
            l1_hits: self.l1_hits.saturating_sub(rhs.l1_hits),
            l1_inflight_hits: self.l1_inflight_hits.saturating_sub(rhs.l1_inflight_hits),
            l2_hits: self.l2_hits.saturating_sub(rhs.l2_hits),
            mem_misses: self.mem_misses.saturating_sub(rhs.mem_misses),
            l1_conflict_misses: self.l1_conflict_misses.saturating_sub(rhs.l1_conflict_misses),
            prefetches: self.prefetches.saturating_sub(rhs.prefetches),
            pf_dropped: self.pf_dropped.saturating_sub(rhs.pf_dropped),
            pf_from_l2: self.pf_from_l2.saturating_sub(rhs.pf_from_l2),
            pf_from_mem: self.pf_from_mem.saturating_sub(rhs.pf_from_mem),
            pf_evicted_unused: self.pf_evicted_unused.saturating_sub(rhs.pf_evicted_unused),
            pf_hidden_cycles: self.pf_hidden_cycles.saturating_sub(rhs.pf_hidden_cycles),
            tlb_demand_walks: self.tlb_demand_walks.saturating_sub(rhs.tlb_demand_walks),
            tlb_prefetch_walks: self.tlb_prefetch_walks.saturating_sub(rhs.tlb_prefetch_walks),
            hw_prefetches: self.hw_prefetches.saturating_sub(rhs.hw_prefetches),
            writebacks: self.writebacks.saturating_sub(rhs.writebacks),
            flushes: self.flushes.saturating_sub(rhs.flushes),
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;
    /// Componentwise sum: merging per-worker counters into run totals
    /// (cache events are conserved across workers, so totals stay exact).
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            visits: self.visits + rhs.visits,
            visit_lines: self.visit_lines + rhs.visit_lines,
            l1_hits: self.l1_hits + rhs.l1_hits,
            l1_inflight_hits: self.l1_inflight_hits + rhs.l1_inflight_hits,
            l2_hits: self.l2_hits + rhs.l2_hits,
            mem_misses: self.mem_misses + rhs.mem_misses,
            l1_conflict_misses: self.l1_conflict_misses + rhs.l1_conflict_misses,
            prefetches: self.prefetches + rhs.prefetches,
            pf_dropped: self.pf_dropped + rhs.pf_dropped,
            pf_from_l2: self.pf_from_l2 + rhs.pf_from_l2,
            pf_from_mem: self.pf_from_mem + rhs.pf_from_mem,
            pf_evicted_unused: self.pf_evicted_unused + rhs.pf_evicted_unused,
            pf_hidden_cycles: self.pf_hidden_cycles + rhs.pf_hidden_cycles,
            tlb_demand_walks: self.tlb_demand_walks + rhs.tlb_demand_walks,
            tlb_prefetch_walks: self.tlb_prefetch_walks + rhs.tlb_prefetch_walks,
            hw_prefetches: self.hw_prefetches + rhs.hw_prefetches,
            writebacks: self.writebacks + rhs.writebacks,
            flushes: self.flushes + rhs.flushes,
        }
    }
}

/// A paired snapshot of [`Breakdown`] and [`CacheStats`] — the unit the
/// observability layer records at span boundaries
/// ([`crate::MemoryModel::snapshot`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Execution-time breakdown at the snapshot instant.
    pub breakdown: Breakdown,
    /// Cache/prefetch counters at the snapshot instant.
    pub stats: CacheStats,
}

impl Sub for Snapshot {
    type Output = Snapshot;
    fn sub(self, rhs: Snapshot) -> Snapshot {
        Snapshot {
            breakdown: self.breakdown - rhs.breakdown,
            stats: self.stats - rhs.stats,
        }
    }
}

impl Add for Snapshot {
    type Output = Snapshot;
    fn add(self, rhs: Snapshot) -> Snapshot {
        Snapshot {
            breakdown: self.breakdown + rhs.breakdown,
            stats: self.stats + rhs.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_fraction() {
        let b = Breakdown { busy: 25, dcache_stall: 50, dtlb_stall: 15, other_stall: 10 };
        assert_eq!(b.total(), 100);
        assert!((b.dcache_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(Breakdown::default().dcache_fraction(), 0.0);
    }

    #[test]
    fn breakdown_sub() {
        let a = Breakdown { busy: 10, dcache_stall: 20, dtlb_stall: 5, other_stall: 1 };
        let b = Breakdown { busy: 4, dcache_stall: 8, dtlb_stall: 2, other_stall: 0 };
        let d = a - b;
        assert_eq!(d.busy, 6);
        assert_eq!(d.dcache_stall, 12);
        assert_eq!(d.total(), 22);
    }

    #[test]
    fn sub_saturates_on_out_of_order_snapshots() {
        // An "earlier" snapshot subtracted the wrong way round must not
        // panic (debug) or wrap (release): deltas clamp to zero.
        let small = Breakdown { busy: 1, dcache_stall: 2, dtlb_stall: 0, other_stall: 0 };
        let big = Breakdown { busy: 10, dcache_stall: 20, dtlb_stall: 3, other_stall: 4 };
        let d = small - big;
        assert_eq!(d, Breakdown::default());
        let s_small = CacheStats { visits: 1, prefetches: 2, ..Default::default() };
        let s_big = CacheStats { visits: 9, prefetches: 9, ..Default::default() };
        let sd = s_small - s_big;
        assert_eq!(sd, CacheStats::default());
    }

    #[test]
    fn sub_saturates_per_field_not_wholesale() {
        // Partial disorder: only the fields that actually underflow clamp;
        // well-ordered fields still produce their true deltas.
        let a = Breakdown { busy: 10, dcache_stall: 1, dtlb_stall: 7, other_stall: 0 };
        let b = Breakdown { busy: 3, dcache_stall: 5, dtlb_stall: 7, other_stall: 2 };
        let d = a - b;
        assert_eq!(d, Breakdown { busy: 7, dcache_stall: 0, dtlb_stall: 0, other_stall: 0 });
        let sa = CacheStats { visits: 100, l1_hits: 2, mem_misses: 50, ..Default::default() };
        let sb = CacheStats { visits: 40, l1_hits: 8, mem_misses: 49, ..Default::default() };
        let sd = sa - sb;
        assert_eq!(sd.visits, 60);
        assert_eq!(sd.l1_hits, 0, "underflowing field clamps alone");
        assert_eq!(sd.mem_misses, 1);
    }

    #[test]
    fn snapshot_sub_is_componentwise() {
        let a = Snapshot {
            breakdown: Breakdown { busy: 10, dcache_stall: 5, dtlb_stall: 1, other_stall: 0 },
            stats: CacheStats { prefetches: 4, pf_hidden_cycles: 300, ..Default::default() },
        };
        let b = Snapshot {
            breakdown: Breakdown { busy: 4, ..Default::default() },
            stats: CacheStats { prefetches: 1, pf_hidden_cycles: 100, ..Default::default() },
        };
        let d = a - b;
        assert_eq!(d.breakdown.busy, 6);
        assert_eq!(d.stats.prefetches, 3);
        assert_eq!(d.stats.pf_hidden_cycles, 200);
    }

    #[test]
    fn add_is_componentwise_and_inverts_sub() {
        let a = Snapshot {
            breakdown: Breakdown { busy: 10, dcache_stall: 5, dtlb_stall: 1, other_stall: 2 },
            stats: CacheStats { visits: 7, l2_hits: 3, pf_hidden_cycles: 40, ..Default::default() },
        };
        let b = Snapshot {
            breakdown: Breakdown { busy: 4, dcache_stall: 1, dtlb_stall: 0, other_stall: 1 },
            stats: CacheStats { visits: 2, l2_hits: 1, pf_hidden_cycles: 10, ..Default::default() },
        };
        let s = a + b;
        assert_eq!(s.breakdown.total(), a.breakdown.total() + b.breakdown.total());
        assert_eq!(s.stats.visits, 9);
        assert_eq!(s.stats.pf_hidden_cycles, 50);
        assert_eq!(s - b, a, "add then sub round-trips");
    }

    #[test]
    fn stats_derived_counters() {
        let s = CacheStats {
            visit_lines: 10,
            l1_hits: 5,
            l1_inflight_hits: 2,
            l2_hits: 2,
            mem_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.l1_misses(), 5);
        assert!((s.l1_hit_rate() - 0.5).abs() < 1e-12);
    }
}
