//! Memory-access attribution: tagging address ranges with logical region
//! kinds and charging every cache/TLB/prefetch event to its region.
//!
//! The paper's §6 evidence is a breakdown of *where* the join stalls —
//! hash-table buckets vs. tuples vs. partition output buffers. The
//! aggregate [`CacheStats`](crate::CacheStats) cannot answer that; this
//! module can. The engine/algorithms register the address ranges of their
//! data structures under a [`RegionKind`], and when profiling is enabled
//! ([`SimEngine::enable_region_profiling`](crate::SimEngine::enable_region_profiling))
//! every demand L1 hit, in-flight hit, L2 hit, memory miss, demand D-TLB
//! walk, and prefetch outcome (hidden / partial / late / polluting) is
//! charged to the region containing the touched line, alongside a
//! fixed-bucket log2 histogram of the exposed fill latency.
//!
//! Attribution is strictly observational: it never advances simulated
//! time, so cycle counts with profiling on are identical to profiling
//! off — and when profiling is disabled (the default) the only cost is
//! one `Option` test per line event.

use std::ops::Sub;

/// Logical data-structure kinds an address range can be tagged with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegionKind {
    /// The hash table's bucket-header array (Figure 2).
    HashBucketHeaders,
    /// The hash table's overflow cell arena.
    HashCells,
    /// Build-partition tuple pages (visited via cell pointers at probe).
    BuildTuples,
    /// Probe-relation tuple pages (streamed sequentially).
    ProbeTuples,
    /// Partition-phase output buffer pages.
    PartitionBuffers,
    /// Slotted input pages streamed by the partition phase.
    SlottedPages,
    /// Anything not covered by a registered range.
    Other,
}

/// Number of [`RegionKind`] variants (array dimension for per-kind data).
pub const NUM_REGION_KINDS: usize = 7;

impl RegionKind {
    /// Every kind, in report order.
    pub const ALL: [RegionKind; NUM_REGION_KINDS] = [
        RegionKind::HashBucketHeaders,
        RegionKind::HashCells,
        RegionKind::BuildTuples,
        RegionKind::ProbeTuples,
        RegionKind::PartitionBuffers,
        RegionKind::SlottedPages,
        RegionKind::Other,
    ];

    /// Stable snake_case name (report/JSON key).
    pub fn name(self) -> &'static str {
        match self {
            RegionKind::HashBucketHeaders => "hash_bucket_headers",
            RegionKind::HashCells => "hash_cells",
            RegionKind::BuildTuples => "build_tuples",
            RegionKind::ProbeTuples => "probe_tuples",
            RegionKind::PartitionBuffers => "partition_buffers",
            RegionKind::SlottedPages => "slotted_pages",
            RegionKind::Other => "other",
        }
    }

    /// Parse the stable name back (inverse of [`Self::name`]).
    pub fn from_name(s: &str) -> Option<RegionKind> {
        RegionKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Dense index in `0..NUM_REGION_KINDS` (position in [`Self::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegionKind::HashBucketHeaders => 0,
            RegionKind::HashCells => 1,
            RegionKind::BuildTuples => 2,
            RegionKind::ProbeTuples => 3,
            RegionKind::PartitionBuffers => 4,
            RegionKind::SlottedPages => 5,
            RegionKind::Other => 6,
        }
    }
}

/// Number of buckets in a [`LatencyHistogram`].
///
/// Bucket 0 holds exact zeros (cache hits); bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`, with the last bucket absorbing everything above.
/// 28 buckets cover exposed latencies up to ~2^27 cycles — far beyond any
/// single fill even under heavy bus serialization.
pub const LATENCY_BUCKETS: usize = 28;

/// A fixed-bucket log2 histogram of exposed access latencies (cycles).
///
/// `Copy` and cheap to snapshot: the observability layer records one per
/// span boundary and diffs them, exactly like
/// [`Snapshot`](crate::Snapshot). Merging histograms is bucket-wise
/// addition, which is associative and commutative; quantiles are resolved
/// to the upper bound of the bucket containing the nearest-rank sample, so
/// estimates are always within one log2 bucket of the exact value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample counts per log2 bucket.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; LATENCY_BUCKETS] }
    }
}

impl LatencyHistogram {
    /// Bucket index for a latency value.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (0 for bucket 0).
    pub fn bucket_bound(i: usize) -> u64 {
        assert!(i < LATENCY_BUCKETS);
        if i == 0 {
            0
        } else if i == LATENCY_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Bucket-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Nearest-rank quantile, resolved to the upper bound of the bucket
    /// containing the `ceil(q·n)`-th smallest sample. `q` is clamped to
    /// `[0, 1]`; returns `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1).min(n);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(Self::bucket_bound(i));
            }
        }
        unreachable!("cumulative count covers every rank");
    }

    /// The p50 / p95 / p99 quantile bounds (zeros when empty).
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50).unwrap_or(0),
            self.quantile(0.95).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
        )
    }
}

impl Sub for LatencyHistogram {
    type Output = LatencyHistogram;
    /// Bucket-wise saturating delta — monotone snapshots diff like the
    /// counters in [`CacheStats`](crate::CacheStats).
    fn sub(self, rhs: LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for i in 0..LATENCY_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(rhs.buckets[i]);
        }
        out
    }
}

/// Per-region event counters (the attribution mirror of
/// [`CacheStats`](crate::CacheStats)).
///
/// For every demand line access exactly one of `l1_hits`,
/// `l1_inflight_hits`, `l2_hits`, `mem_misses` is incremented, so the
/// per-region sums of those four counters reconcile exactly with the
/// engine's global totals — the invariant the report validator checks.
///
/// `stall_cycles` is the per-line *exposed* fill latency. Lines of one
/// reference fill concurrently, so summed per-region stall cycles can
/// exceed the wall-clock `dcache_stall` (which counts overlap once).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RegionStats {
    /// Demand lines that hit a completed L1 line.
    pub l1_hits: u64,
    /// Demand lines that hit an in-flight L1 fill.
    pub l1_inflight_hits: u64,
    /// Demand lines filled from L2.
    pub l2_hits: u64,
    /// Demand lines filled from memory.
    pub mem_misses: u64,
    /// Demand D-TLB walks on this region's lines.
    pub tlb_demand_walks: u64,
    /// Exposed fill latency on this region's lines (see type docs).
    pub stall_cycles: u64,
    /// Software-prefetched lines issued for this region (drops excluded).
    pub prefetches: u64,
    /// Prefetched lines already resident or in flight (dropped).
    pub pf_dropped: u64,
    /// D-TLB walks triggered by this region's prefetches (off the
    /// critical path).
    pub tlb_prefetch_walks: u64,
    /// Prefetch outcome: fill completed before the first demand use.
    pub pf_hidden: u64,
    /// Prefetch outcome: demand use found the fill in flight with some
    /// latency already elapsed.
    pub pf_partial: u64,
    /// Prefetch outcome: demand use arrived before any latency elapsed —
    /// the prefetch was issued too late to help.
    pub pf_late: u64,
    /// Prefetch outcome: line evicted before any demand use (pollution).
    pub pf_polluting: u64,
    /// Miss-latency cycles prefetching hid on this region's lines.
    pub pf_hidden_cycles: u64,
}

impl RegionStats {
    /// Demand line accesses charged to this region.
    pub fn demand_lines(&self) -> u64 {
        self.l1_hits + self.l1_inflight_hits + self.l2_hits + self.mem_misses
    }

    /// Demand lines that missed L1 (needed any fill).
    pub fn l1_misses(&self) -> u64 {
        self.l1_inflight_hits + self.l2_hits + self.mem_misses
    }

    /// Fold another region's counters into this one (merging per-worker
    /// profiles; every counter is a conserved event count, so the merge is
    /// exact).
    pub fn merge(&mut self, other: &RegionStats) {
        self.l1_hits += other.l1_hits;
        self.l1_inflight_hits += other.l1_inflight_hits;
        self.l2_hits += other.l2_hits;
        self.mem_misses += other.mem_misses;
        self.tlb_demand_walks += other.tlb_demand_walks;
        self.stall_cycles += other.stall_cycles;
        self.prefetches += other.prefetches;
        self.pf_dropped += other.pf_dropped;
        self.tlb_prefetch_walks += other.tlb_prefetch_walks;
        self.pf_hidden += other.pf_hidden;
        self.pf_partial += other.pf_partial;
        self.pf_late += other.pf_late;
        self.pf_polluting += other.pf_polluting;
        self.pf_hidden_cycles += other.pf_hidden_cycles;
    }
}

#[derive(Debug, Clone, Copy)]
struct Range {
    start: u64,
    end: u64,
    kind: RegionKind,
}

/// Maps address ranges to [`RegionKind`]s.
///
/// Ranges are expected to be disjoint (distinct allocations); lookup
/// resolves an address via the range with the greatest start not above
/// it, falling back to [`RegionKind::Other`]. Registration appends and
/// defers sorting to the first lookup; clearing a kind between phases
/// (the table dies, the buffers flush) keeps the set small and disjoint.
#[derive(Debug, Default, Clone)]
pub struct RegionRegistry {
    ranges: Vec<Range>,
    sorted: bool,
    /// One-entry lookup cache: consecutive accesses overwhelmingly land
    /// in the same page/range.
    last: Option<Range>,
}

impl RegionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tag `len` bytes at `addr` as `kind`. Zero-length ranges are
    /// ignored.
    pub fn register(&mut self, kind: RegionKind, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        self.ranges.push(Range { start: addr as u64, end: addr as u64 + len as u64, kind });
        self.sorted = false;
        self.last = None;
    }

    /// Drop every range tagged `kind` (a phase boundary: the structure is
    /// dead or its addresses are being re-registered).
    pub fn clear(&mut self, kind: RegionKind) {
        self.ranges.retain(|r| r.kind != kind);
        if self.last.is_some_and(|r| r.kind == kind) {
            self.last = None;
        }
    }

    /// Number of registered ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no ranges are registered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The kind of the range containing `addr`, or
    /// [`RegionKind::Other`].
    pub fn lookup(&mut self, addr: usize) -> RegionKind {
        let a = addr as u64;
        if let Some(r) = self.last {
            if r.start <= a && a < r.end {
                return r.kind;
            }
        }
        if !self.sorted {
            self.ranges.sort_by_key(|r| r.start);
            self.sorted = true;
        }
        let i = self.ranges.partition_point(|r| r.start <= a);
        if i > 0 {
            let r = self.ranges[i - 1];
            if a < r.end {
                self.last = Some(r);
                return r.kind;
            }
        }
        RegionKind::Other
    }
}

/// The profiler the engine charges into when region profiling is on:
/// a registry plus per-kind counters and latency histograms, and a
/// run-wide histogram the observability layer snapshots at span
/// boundaries.
#[derive(Debug, Default, Clone)]
pub struct RegionProfiler {
    pub(crate) registry: RegionRegistry,
    pub(crate) stats: [RegionStats; NUM_REGION_KINDS],
    pub(crate) hists: [LatencyHistogram; NUM_REGION_KINDS],
    pub(crate) total_hist: LatencyHistogram,
}

impl RegionProfiler {
    /// A fresh profiler with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters charged to `kind` so far.
    pub fn stats(&self, kind: RegionKind) -> RegionStats {
        self.stats[kind.index()]
    }

    /// Latency histogram of `kind`'s demand line accesses.
    pub fn hist(&self, kind: RegionKind) -> &LatencyHistogram {
        &self.hists[kind.index()]
    }

    /// Run-wide latency histogram over every demand line access.
    pub fn total_hist(&self) -> &LatencyHistogram {
        &self.total_hist
    }

    /// The registry (range inspection / direct registration in tests).
    pub fn registry(&self) -> &RegionRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip_and_index_matches_all() {
        for (i, k) in RegionKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(RegionKind::from_name(k.name()), Some(k));
        }
        assert_eq!(RegionKind::from_name("bogus"), None);
    }

    #[test]
    fn registry_lookup_resolves_disjoint_ranges() {
        let mut r = RegionRegistry::new();
        r.register(RegionKind::BuildTuples, 0x1000, 0x100);
        r.register(RegionKind::HashCells, 0x2000, 0x80);
        assert_eq!(r.lookup(0x1000), RegionKind::BuildTuples);
        assert_eq!(r.lookup(0x10ff), RegionKind::BuildTuples);
        assert_eq!(r.lookup(0x1100), RegionKind::Other);
        assert_eq!(r.lookup(0x2040), RegionKind::HashCells);
        assert_eq!(r.lookup(0x0), RegionKind::Other);
        assert_eq!(r.lookup(0x9999), RegionKind::Other);
    }

    #[test]
    fn registry_clear_by_kind_and_reregister() {
        let mut r = RegionRegistry::new();
        r.register(RegionKind::PartitionBuffers, 0x4000, 64);
        r.register(RegionKind::SlottedPages, 0x5000, 64);
        assert_eq!(r.lookup(0x4000), RegionKind::PartitionBuffers);
        r.clear(RegionKind::PartitionBuffers);
        assert_eq!(r.lookup(0x4000), RegionKind::Other);
        assert_eq!(r.lookup(0x5000), RegionKind::SlottedPages);
        assert_eq!(r.len(), 1);
        // The same addresses can be re-registered under a new kind.
        r.register(RegionKind::ProbeTuples, 0x4000, 64);
        assert_eq!(r.lookup(0x4000), RegionKind::ProbeTuples);
    }

    #[test]
    fn registry_lookup_cache_survives_interleaving() {
        let mut r = RegionRegistry::new();
        r.register(RegionKind::BuildTuples, 0x1000, 0x1000);
        r.register(RegionKind::ProbeTuples, 0x8000, 0x1000);
        for _ in 0..3 {
            assert_eq!(r.lookup(0x1004), RegionKind::BuildTuples);
            assert_eq!(r.lookup(0x8abc), RegionKind::ProbeTuples);
            assert_eq!(r.lookup(0x7000), RegionKind::Other);
        }
    }

    #[test]
    fn zero_length_register_is_ignored() {
        let mut r = RegionRegistry::new();
        r.register(RegionKind::Other, 0x1000, 0);
        assert!(r.is_empty());
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(150), 8);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
        // Bounds bracket their bucket.
        for v in [1u64, 2, 3, 150, 1 << 20] {
            let i = LatencyHistogram::bucket_index(v);
            assert!(v <= LatencyHistogram::bucket_bound(i));
            if i > 1 {
                assert!(v > LatencyHistogram::bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_record_count_and_quantiles() {
        let mut h = LatencyHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..90 {
            h.record(0); // hits
        }
        for _ in 0..10 {
            h.record(150); // full-latency misses → bucket 8, bound 255
        }
        assert_eq!(h.count(), 100);
        let (p50, p95, p99) = h.percentiles();
        assert_eq!(p50, 0);
        assert_eq!(p95, 255);
        assert_eq!(p99, 255);
    }

    #[test]
    fn histogram_merge_and_sub() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(5);
        b.record(5);
        b.record(1000);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        let d = merged - a;
        assert_eq!(d, b);
        // Saturating the other way round.
        assert_eq!(a - merged, LatencyHistogram::default());
    }

    #[test]
    fn region_stats_derived_counters() {
        let s = RegionStats {
            l1_hits: 5,
            l1_inflight_hits: 1,
            l2_hits: 2,
            mem_misses: 3,
            ..Default::default()
        };
        assert_eq!(s.demand_lines(), 11);
        assert_eq!(s.l1_misses(), 6);
    }
}
