//! The `MemoryModel` abstraction: one algorithm source, two executions.
//!
//! The join and partition algorithms in `phj` are written once, generic
//! over [`MemoryModel`]. Instantiated with [`NativeModel`], every hook
//! compiles to nothing except `prefetch`, which becomes a real
//! `prefetcht0` instruction — so `phj` runs at full speed on real hardware
//! and its criterion benchmarks measure genuine cache behaviour.
//! Instantiated with [`SimModel`] (the [`SimEngine`]), the same source
//! drives the cycle-level timing model that regenerates the paper's
//! figures, including configurations impossible on real hardware (memory
//! latency T = 1000, periodic cache flushing).

use crate::engine::SimEngine;
use crate::region::{LatencyHistogram, RegionKind};
use crate::stats::Snapshot;

/// Instrumentation hooks threaded through the join/partition algorithms.
///
/// Addresses are real virtual addresses of the engine's buffers; `len` is
/// the extent of the object touched (the model expands it to cache lines).
pub trait MemoryModel {
    /// True for models that simulate time (lets tests assert which
    /// instantiation ran; algorithms must not branch on it for logic).
    const SIMULATED: bool;

    /// A demand read of `len` bytes at `addr` is about to happen.
    fn visit(&mut self, addr: usize, len: usize);

    /// A demand write of `len` bytes at `addr` is about to happen.
    /// (Write-allocate: timing identical to a read in this model.)
    #[inline(always)]
    fn write(&mut self, addr: usize, len: usize) {
        self.visit(addr, len);
    }

    /// Hint that `len` bytes at `addr` will be referenced soon.
    fn prefetch(&mut self, addr: usize, len: usize);

    /// `cycles` of computation executed (a `C_i` stage-cost charge).
    fn busy(&mut self, cycles: u64);

    /// `cycles` of non-memory stall (data-dependent branch misprediction).
    fn other(&mut self, cycles: u64);

    /// Breakdown + cache-stats snapshot at this instant, for span-delta
    /// accounting in the observability layer. Models that do not simulate
    /// time return all zeros (the recorder then falls back to wall-clock
    /// timing); the span deltas of a zero snapshot are zero, never
    /// negative, thanks to the saturating `Sub` impls.
    #[inline(always)]
    fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }

    /// Tag `len` bytes at `addr` as region `kind` for miss attribution.
    /// Default no-op: native runs and unprofiled simulations pay nothing;
    /// the algorithms call this unconditionally at phase boundaries.
    #[inline(always)]
    fn region_register(&mut self, kind: RegionKind, addr: usize, len: usize) {
        let _ = (kind, addr, len);
    }

    /// Drop every range tagged `kind` (a structure died or its addresses
    /// are being re-registered). Default no-op, like
    /// [`Self::region_register`].
    #[inline(always)]
    fn region_clear(&mut self, kind: RegionKind) {
        let _ = kind;
    }

    /// Running histogram of exposed demand-line latencies, for per-span
    /// latency percentiles. `None` (the default) when the model does not
    /// profile — span records then omit their histogram entirely, keeping
    /// unprofiled reports byte-identical.
    #[inline(always)]
    fn latency_hist(&self) -> Option<LatencyHistogram> {
        None
    }
}

/// The real-hardware instantiation: zero-cost hooks + hardware prefetch
/// instructions.
#[derive(Debug, Default, Clone, Copy)]
pub struct NativeModel;

impl NativeModel {
    /// Issue a `prefetcht0` (or the platform equivalent) for the line
    /// containing `addr`. No-op on platforms without a stable intrinsic.
    #[inline(always)]
    pub fn prefetch_line(addr: usize) {
        #[cfg(target_arch = "x86_64")]
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                addr as *const i8,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = addr;
        }
    }
}

impl MemoryModel for NativeModel {
    const SIMULATED: bool = false;

    #[inline(always)]
    fn visit(&mut self, _addr: usize, _len: usize) {}

    #[inline(always)]
    fn prefetch(&mut self, addr: usize, len: usize) {
        // One instruction per 64 B line spanned (len is almost always ≤ 64
        // in the algorithms, so this loop runs once and unrolls away).
        let mut a = addr & !63;
        let end = addr + len.max(1);
        while a < end {
            Self::prefetch_line(a);
            a += 64;
        }
    }

    #[inline(always)]
    fn busy(&mut self, _cycles: u64) {}

    #[inline(always)]
    fn other(&mut self, _cycles: u64) {}
}

/// The simulated instantiation: the timing engine itself.
pub type SimModel = SimEngine;

impl MemoryModel for SimEngine {
    const SIMULATED: bool = true;

    #[inline]
    fn visit(&mut self, addr: usize, len: usize) {
        SimEngine::visit(self, addr, len);
    }

    #[inline]
    fn write(&mut self, addr: usize, len: usize) {
        SimEngine::write(self, addr, len);
    }

    #[inline]
    fn prefetch(&mut self, addr: usize, len: usize) {
        SimEngine::prefetch(self, addr, len);
    }

    #[inline]
    fn busy(&mut self, cycles: u64) {
        SimEngine::busy(self, cycles);
    }

    #[inline]
    fn other(&mut self, cycles: u64) {
        SimEngine::other(self, cycles);
    }

    #[inline]
    fn snapshot(&self) -> Snapshot {
        SimEngine::snapshot(self)
    }

    #[inline]
    fn region_register(&mut self, kind: RegionKind, addr: usize, len: usize) {
        SimEngine::region_register(self, kind, addr, len);
    }

    #[inline]
    fn region_clear(&mut self, kind: RegionKind) {
        SimEngine::region_clear(self, kind);
    }

    #[inline]
    fn latency_hist(&self) -> Option<LatencyHistogram> {
        SimEngine::latency_hist(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<M: MemoryModel>(m: &mut M) {
        let data = vec![0u8; 4096];
        let base = data.as_ptr() as usize;
        m.prefetch(base, 1); // one line regardless of alignment
        m.busy(10);
        m.visit(base, 64);
        m.write(base + 128, 8);
        m.other(2);
    }

    #[test]
    fn native_model_is_exercisable() {
        let mut m = NativeModel;
        exercise(&mut m); // must not crash; hooks are no-ops
        // Compile-time flag agrees with the instantiation.
        const _: () = assert!(!NativeModel::SIMULATED);
    }

    #[test]
    fn sim_model_accounts_time() {
        let mut m = SimEngine::paper();
        exercise(&mut m);
        const _: () = assert!(SimEngine::SIMULATED);
        let b = m.breakdown();
        assert_eq!(b.busy, 10 + 1); // busy charge + 1 prefetch issue
        assert!(b.dcache_stall > 0); // the write missed
        assert_eq!(b.other_stall, 2);
    }

    #[test]
    fn generic_write_defaults_to_visit_timing() {
        let mut a = SimEngine::paper();
        let mut b = SimEngine::paper();
        let buf = [0u8; 128];
        let addr = buf.as_ptr() as usize;
        MemoryModel::visit(&mut a, addr, 8);
        MemoryModel::write(&mut b, addr, 8);
        assert_eq!(a.breakdown(), b.breakdown());
    }
}
