//! Fully-associative D-TLB with hardware page-table walks.
//!
//! The paper notes that "the vast majority of modern processors (including
//! those from Intel) handle TLB misses in hardware, \[so\] we model
//! hardware-based TLB miss handling" and that the simulator "supports TLB
//! prefetching by treating TLB misses caused by prefetches as normal TLB
//! misses", which lets the prefetching schemes overlap TLB-walk latency
//! with computation (§2). [`Tlb`] implements exactly that: a demand access
//! stalls for the walk; a prefetch-induced miss fills the entry and only
//! delays the prefetch's own completion.

use crate::lru::LruSet;

/// Outcome of a TLB access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbAccess {
    /// Translation resident.
    Hit,
    /// Translation missed; a hardware walk was performed (entry now
    /// resident).
    Walked,
}

/// A fully-associative, LRU D-TLB over page numbers.
pub struct Tlb {
    set: LruSet,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// A TLB with `entries` slots.
    pub fn new(entries: usize) -> Self {
        Tlb { set: LruSet::new(entries), hits: 0, misses: 0 }
    }

    /// Translate `page` (a page number, i.e. `addr >> page_shift`).
    pub fn access(&mut self, page: u64) -> TlbAccess {
        if self.set.touch(page) {
            self.hits += 1;
            TlbAccess::Hit
        } else {
            self.misses += 1;
            TlbAccess::Walked
        }
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Walks so far (demand and prefetch-induced alike).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidate all translations (Fig 18 periodic flush).
    pub fn flush(&mut self) {
        self.set.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_fills_entry() {
        let mut t = Tlb::new(4);
        assert_eq!(t.access(10), TlbAccess::Walked);
        assert_eq!(t.access(10), TlbAccess::Hit);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(1); // 1 MRU
        assert_eq!(t.access(3), TlbAccess::Walked); // evicts 2
        assert_eq!(t.access(1), TlbAccess::Hit);
        assert_eq!(t.access(2), TlbAccess::Walked);
    }

    #[test]
    fn flush_drops_translations() {
        let mut t = Tlb::new(4);
        t.access(7);
        t.flush();
        assert_eq!(t.access(7), TlbAccess::Walked);
    }

    #[test]
    fn paper_tlb_covers_512kb() {
        // 64 entries × 8 KB pages = 512 KB reach: sequential scan of more
        // pages than entries must keep missing.
        let mut t = Tlb::new(64);
        for p in 0..128u64 {
            assert_eq!(t.access(p), TlbAccess::Walked);
        }
        // Re-scan: the first half was evicted.
        for p in 0..64u64 {
            assert_eq!(t.access(p), TlbAccess::Walked);
        }
    }
}
