#![warn(missing_docs)]

//! Memory-hierarchy timing model and the `MemoryModel` abstraction.
//!
//! The paper evaluates its prefetching schemes on a cycle-level simulator
//! whose memory system is based on the Compaq ES40 (Table 2). This crate
//! reimplements the parts of that simulator the evaluation depends on:
//!
//! * set-associative L1D and unified L2 caches with LRU replacement and
//!   **in-flight fills** (a line installed by a prefetch becomes usable at
//!   its fill-completion time; touching it earlier stalls only for the
//!   remaining latency) — [`cache`];
//! * a fully-associative, hardware-walked D-TLB with **TLB prefetching**:
//!   TLB misses triggered by prefetches are handled off the critical path,
//!   overlapping the walk with computation (§2 of the paper) — [`tlb`];
//! * a limited pool of **miss handlers** (32 for data, Table 2) and a
//!   memory bus on which an additional pipelined miss costs `T_next` on top
//!   of the first miss's full latency `T` (§4.2) — [`engine`];
//! * **periodic cache flushing** to model worst-case cache interference
//!   from other activity (Fig 18) — [`engine::SimEngine`] configuration;
//! * execution-time breakdowns (busy / data-cache stall / D-TLB stall /
//!   other stall, as in Figs 1, 11, 15) and cache-miss breakdowns
//!   (Figs 13, 17) — [`stats`].
//!
//! The timing model is the paper's own analytical model (§4.2, §5.1) made
//! operational: computation advances time via explicit [`MemoryModel::busy`]
//! charges, demand references stall until their line is resident, and
//! prefetches overlap fills with everything else. Running it against the
//! *actual virtual addresses* the join touches gives real conflict,
//! capacity, and TLB behaviour on top of the analytical skeleton.
//!
//! Algorithms in `phj` are generic over [`MemoryModel`]; the
//! [`NativeModel`] instantiation compiles every hook to nothing (or a
//! single `prefetcht0` instruction), so the same source runs at full speed
//! on real hardware and under the simulator.

pub mod cache;
pub mod config;
pub mod engine;
pub mod lru;
pub mod model;
pub mod region;
pub mod stats;
mod telemetry;
pub mod tlb;

pub use config::MemConfig;
pub use engine::SimEngine;
pub use model::{MemoryModel, NativeModel, SimModel};
pub use region::{
    LatencyHistogram, RegionKind, RegionProfiler, RegionRegistry, RegionStats, LATENCY_BUCKETS,
    NUM_REGION_KINDS,
};
pub use stats::{Breakdown, CacheStats, Snapshot};
