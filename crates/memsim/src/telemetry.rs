//! Live-telemetry handles for the memory simulator.
//!
//! The simulator's `visit` path is the hottest loop in the workspace, so
//! it never touches the registry per access: [`SimEngine`]
//! (crate::SimEngine) accumulates into its ordinary [`CacheStats`]
//! (crate::CacheStats) and publishes *deltas* in batches (every few
//! thousand references, and once more on drop). With telemetry off the
//! cost is a local counter increment; simulated cycle counts are
//! identical either way — publishing is host-side bookkeeping only.

use std::sync::{Arc, OnceLock};

use phj_metrics::{names, Counter};

/// Registered handles for the memsim metric family.
pub(crate) struct MemsimMetrics {
    /// `phj_memsim_accesses_total` — demand visits (reads + writes).
    pub accesses: Arc<Counter>,
    /// `phj_memsim_l1_misses_total` — demand lines not served by L1.
    pub l1_misses: Arc<Counter>,
    /// `phj_memsim_l2_misses_total` — demand lines that went to memory.
    pub l2_misses: Arc<Counter>,
    /// `phj_memsim_tlb_misses_total` — demand page walks.
    pub tlb_misses: Arc<Counter>,
    /// `phj_memsim_prefetches_total` — software prefetches issued.
    pub prefetches: Arc<Counter>,
    /// `phj_memsim_pf_hidden_cycles_total` — miss cycles hidden by
    /// prefetching.
    pub pf_hidden_cycles: Arc<Counter>,
}

/// The memsim handles, or `None` when telemetry is off.
pub(crate) fn memsim_metrics() -> Option<&'static MemsimMetrics> {
    static CACHE: OnceLock<MemsimMetrics> = OnceLock::new();
    let reg = phj_metrics::global()?;
    Some(CACHE.get_or_init(|| MemsimMetrics {
        accesses: reg.counter(names::MEMSIM_ACCESSES, "Simulated demand accesses"),
        l1_misses: reg.counter(names::MEMSIM_L1_MISSES, "Demand lines missing L1"),
        l2_misses: reg.counter(names::MEMSIM_L2_MISSES, "Demand lines missing L2 (memory fills)"),
        tlb_misses: reg.counter(names::MEMSIM_TLB_MISSES, "Demand TLB page walks"),
        prefetches: reg.counter(names::MEMSIM_PREFETCHES, "Software prefetches issued"),
        pf_hidden_cycles: reg
            .counter(names::MEMSIM_PF_HIDDEN_CYCLES, "Miss cycles hidden by prefetching"),
    }))
}
