//! The simulation engine: cycle accounting over caches, TLB, miss
//! handlers, and memory bandwidth.
//!
//! [`SimEngine`] is an in-order timing model with non-blocking fills — an
//! operational form of the paper's analytical model (§4.2/§5.1):
//!
//! * [`SimEngine::busy`] advances time by computation (`C_i` charges);
//! * [`SimEngine::visit`] performs a demand reference: it stalls the
//!   processor until the referenced lines are resident, attributing the
//!   stall to the data cache (or, for demand walks, to the D-TLB);
//! * [`SimEngine::prefetch`] starts fills without stalling: a subsequent
//!   `visit` of the same line stalls only for the *remaining* latency;
//! * each fill occupies one of the finite miss handlers; a fill from
//!   memory additionally serializes on the memory bus, finishing no
//!   earlier than `T_next` after the previous memory fill (the paper's
//!   bandwidth edges).
//!
//! The engine never drops prefetches when all miss handlers are busy —
//! the request waits for a free handler instead, matching §7.1 ("the
//! simulator does not drop prefetches when miss handlers are all busy").

use crate::cache::{Evicted, Probe, SetAssocCache};
use crate::config::MemConfig;
use crate::lru::LruSet;
use crate::region::{LatencyHistogram, RegionKind, RegionProfiler};
use crate::stats::{Breakdown, CacheStats};
use crate::tlb::{Tlb, TlbAccess};

/// Where a fill was satisfied from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillSource {
    L2,
    Memory,
}

/// References between telemetry publications. The visit path only pays a
/// local decrement per call; registry traffic happens once per batch.
const TELE_BATCH: u32 = 8192;

/// The memory-hierarchy timing simulator.
///
/// ```
/// use phj_memsim::SimEngine;
/// let mut sim = SimEngine::paper(); // Table-2 configuration
/// let data = vec![0u8; 4096];
/// let addr = data.as_ptr() as usize;
/// sim.prefetch(addr, 1);
/// sim.busy(500);                    // plenty of time to overlap the fill
/// sim.visit(addr, 1);               // ...so this demand access is free
/// let b = sim.breakdown();
/// assert_eq!(b.dcache_stall, 0);
/// assert_eq!(b.busy, 501); // 500 + 1 prefetch-issue cycle
/// ```
pub struct SimEngine {
    cfg: MemConfig,
    line_shift: u32,
    page_shift: u32,
    now: u64,
    busy: u64,
    dcache: u64,
    dtlb: u64,
    other: u64,
    l1: SetAssocCache,
    l2: SetAssocCache,
    tlb: Tlb,
    /// Shadow fully-associative L1 for conflict classification (optional).
    shadow: Option<LruSet>,
    /// Completion times of outstanding fills (bounded by `miss_handlers`).
    handlers: Vec<u64>,
    /// Completion time of the most recent memory fill (bus serialization).
    last_mem: u64,
    next_flush: u64,
    /// Hardware stride-prefetcher stream table: last miss line per
    /// stream (empty when disabled).
    hw_streams: Vec<u64>,
    hw_rr: usize,
    stats: CacheStats,
    /// Region-attribution profiler; `None` (the default) keeps the hot
    /// paths at a single branch per line event. Never affects timing.
    profiler: Option<Box<RegionProfiler>>,
    /// References remaining until the next telemetry publication.
    tele_countdown: u32,
    /// Stats as of the last publication (deltas go to the registry).
    tele_last: CacheStats,
}

impl SimEngine {
    /// Build an engine from a validated configuration.
    ///
    /// # Panics
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: MemConfig) -> Self {
        cfg.validate().expect("invalid MemConfig");
        let shadow = cfg
            .classify_conflicts
            .then(|| LruSet::new(cfg.l1_size / cfg.line_size));
        let next_flush = cfg.flush_period.unwrap_or(u64::MAX);
        SimEngine {
            line_shift: cfg.line_shift(),
            page_shift: cfg.page_shift(),
            l1: SetAssocCache::new(cfg.l1_sets(), cfg.l1_assoc),
            l2: SetAssocCache::new(cfg.l2_sets(), cfg.l2_assoc),
            tlb: Tlb::new(cfg.tlb_entries),
            shadow,
            handlers: Vec::with_capacity(cfg.miss_handlers),
            hw_streams: vec![u64::MAX; cfg.hw_prefetch_streams],
            hw_rr: 0,
            last_mem: 0,
            now: 0,
            busy: 0,
            dcache: 0,
            dtlb: 0,
            other: 0,
            next_flush,
            stats: CacheStats::default(),
            profiler: None,
            tele_countdown: TELE_BATCH,
            tele_last: CacheStats::default(),
            cfg,
        }
    }

    /// The engine with the paper's Table 2 configuration.
    pub fn paper() -> Self {
        Self::new(MemConfig::paper())
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Execution-time breakdown since construction.
    pub fn breakdown(&self) -> Breakdown {
        Breakdown {
            busy: self.busy,
            dcache_stall: self.dcache,
            dtlb_stall: self.dtlb,
            other_stall: self.other,
        }
    }

    /// Cache/prefetch statistics since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Paired breakdown + stats snapshot (span-boundary hook for the
    /// observability layer).
    pub fn snapshot(&self) -> crate::stats::Snapshot {
        crate::stats::Snapshot { breakdown: self.breakdown(), stats: self.stats }
    }

    /// Turn on memory-access attribution. Subsequent
    /// [`Self::region_register`] calls tag address ranges, and every
    /// demand/prefetch line event is charged to its region. Attribution
    /// never changes simulated time: cycle counts are identical with
    /// profiling on or off.
    pub fn enable_region_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::default());
        }
    }

    /// Whether region profiling is enabled.
    pub fn region_profiling_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// The region profile accumulated so far (`None` when profiling is
    /// off).
    pub fn region_profile(&self) -> Option<&RegionProfiler> {
        self.profiler.as_deref()
    }

    /// Tag `len` bytes at `addr` as `kind`. No-op when profiling is off.
    ///
    /// Attribution is line-granular — lookups use the line's start
    /// address — so the range is widened to line boundaries here. A line
    /// straddling two registrations goes to the higher-addressed one
    /// (the registry resolves by greatest range start).
    pub fn region_register(&mut self, kind: RegionKind, addr: usize, len: usize) {
        if let Some(p) = self.profiler.as_deref_mut() {
            if len == 0 {
                return;
            }
            let line = 1usize << self.line_shift;
            let start = addr & !(line - 1);
            let end = (addr + len + line - 1) & !(line - 1);
            p.registry.register(kind, start, end - start);
        }
    }

    /// Drop every range tagged `kind`. No-op when profiling is off.
    pub fn region_clear(&mut self, kind: RegionKind) {
        if let Some(p) = self.profiler.as_deref_mut() {
            p.registry.clear(kind);
        }
    }

    /// Running histogram of exposed demand-line latencies (`None` when
    /// profiling is off). Monotone: span boundaries snapshot and diff it.
    pub fn latency_hist(&self) -> Option<LatencyHistogram> {
        self.profiler.as_deref().map(|p| p.total_hist)
    }

    /// Charge `cycles` of computation.
    #[inline]
    pub fn busy(&mut self, cycles: u64) {
        self.maybe_flush();
        self.now += cycles;
        self.busy += cycles;
    }

    /// Charge `cycles` of non-memory stall (e.g. a branch misprediction at
    /// a data-dependent branch; the algorithms charge these explicitly).
    #[inline]
    pub fn other(&mut self, cycles: u64) {
        self.maybe_flush();
        self.now += cycles;
        self.other += cycles;
    }

    /// Demand-reference `len` bytes at `addr`, stalling until resident.
    ///
    /// The lines spanned by one reference are fetched **concurrently**
    /// (an out-of-order core overlaps the loads of one object): all fills
    /// start at the entry time, and the processor stalls once until the
    /// slowest completes. Distinct `visit` calls remain serialized —
    /// that is the exposed-miss behaviour prefetching attacks.
    pub fn visit(&mut self, addr: usize, len: usize) {
        self.reference(addr, len, false);
    }

    /// Demand-write `len` bytes at `addr` (write-allocate: fetch timing
    /// identical to a read; the touched lines become dirty).
    pub fn write(&mut self, addr: usize, len: usize) {
        self.reference(addr, len, true);
    }

    fn reference(&mut self, addr: usize, len: usize, is_write: bool) {
        self.maybe_flush();
        self.stats.visits += 1;
        let first = (addr >> self.line_shift) as u64;
        let last = ((addr + len.max(1) - 1) >> self.line_shift) as u64;
        let mut wait_until = self.now;
        for line in first..=last {
            if let Some(ready) = self.visit_line(line, is_write) {
                wait_until = wait_until.max(ready);
            }
        }
        if wait_until > self.now {
            self.dcache += wait_until - self.now;
            self.now = wait_until;
        }
        self.tele_tick();
    }

    /// Issue a prefetch covering `len` bytes at `addr` (non-blocking).
    pub fn prefetch(&mut self, addr: usize, len: usize) {
        self.maybe_flush();
        self.stats.prefetches += 1;
        // Prefetch instructions occupy issue slots: count their overhead
        // as busy time (one charge per line-granular instruction).
        let first = (addr >> self.line_shift) as u64;
        let last = ((addr + len.max(1) - 1) >> self.line_shift) as u64;
        for line in first..=last {
            self.busy += self.cfg.prefetch_issue;
            self.now += self.cfg.prefetch_issue;
            self.prefetch_line(line);
        }
        self.tele_tick();
    }

    /// Access one line; returns the cycle its data is ready (None = ready
    /// now). Does not advance time for the fill — `visit` aggregates.
    fn visit_line(&mut self, line: u64, is_write: bool) -> Option<u64> {
        self.stats.visit_lines += 1;
        // Demand TLB access: a walk stalls the processor (serially — the
        // translation gates the load).
        let page = line >> (self.page_shift - self.line_shift);
        let walked = self.tlb.access(page) == TlbAccess::Walked;
        if walked {
            self.stats.tlb_demand_walks += 1;
            self.now += self.cfg.tlb_walk;
            self.dtlb += self.cfg.tlb_walk;
        }
        let shadow_hit = self.shadow.as_mut().map(|s| s.touch(line));
        let (probe, pf_first_use) = self.l1.access_demand(line, self.now, is_write);
        let mut fill_src = None;
        let result = match probe {
            Probe::Hit => {
                self.stats.l1_hits += 1;
                if let Some((start, ready)) = pf_first_use {
                    // The whole fill overlapped with computation: every
                    // cycle it spent in flight is miss latency hidden.
                    self.stats.pf_hidden_cycles += ready.saturating_sub(start);
                }
                self.now += self.cfg.l1_hit;
                self.busy += self.cfg.l1_hit;
                None
            }
            Probe::InFlight(ready) => {
                self.stats.l1_inflight_hits += 1;
                if let Some((start, _)) = pf_first_use {
                    // Partially hidden: the fill has been in flight since
                    // `start`; only the remainder past `now` is exposed.
                    self.stats.pf_hidden_cycles += self.now.saturating_sub(start);
                }
                Some(ready)
            }
            Probe::Miss => {
                if shadow_hit == Some(true) {
                    self.stats.l1_conflict_misses += 1;
                }
                let (completion, src) = self.fill_line(line, self.now, false);
                fill_src = Some(src);
                match src {
                    FillSource::L2 => self.stats.l2_hits += 1,
                    FillSource::Memory => self.stats.mem_misses += 1,
                }
                if is_write {
                    // Write-allocate: the freshly filled line is dirty.
                    self.l1.access_rw(line, completion, true);
                }
                Some(completion)
            }
        };
        if self.profiler.is_some() {
            self.charge_demand_line(line, walked, probe, pf_first_use, fill_src, result);
        }
        if !self.hw_streams.is_empty() {
            self.hw_advance(line, result.is_some());
        }
        result
    }

    /// Mirror one demand line event into the region profiler. Pure
    /// bookkeeping — reads `now` but never advances it. Only called with
    /// the profiler present.
    fn charge_demand_line(
        &mut self,
        line: u64,
        walked: bool,
        probe: Probe,
        pf_first_use: Option<(u64, u64)>,
        fill_src: Option<FillSource>,
        ready: Option<u64>,
    ) {
        let line_shift = self.line_shift;
        let now = self.now;
        let p = self.profiler.as_deref_mut().expect("profiler present");
        let kind = p.registry.lookup((line << line_shift) as usize);
        let s = &mut p.stats[kind.index()];
        if walked {
            s.tlb_demand_walks += 1;
        }
        match probe {
            Probe::Hit => {
                s.l1_hits += 1;
                if let Some((start, fill_ready)) = pf_first_use {
                    s.pf_hidden += 1;
                    s.pf_hidden_cycles += fill_ready.saturating_sub(start);
                }
            }
            Probe::InFlight(_) => {
                s.l1_inflight_hits += 1;
                if let Some((start, _)) = pf_first_use {
                    let hidden = now.saturating_sub(start);
                    if hidden > 0 {
                        s.pf_partial += 1;
                        s.pf_hidden_cycles += hidden;
                    } else {
                        s.pf_late += 1;
                    }
                }
            }
            Probe::Miss => match fill_src {
                Some(FillSource::L2) => s.l2_hits += 1,
                Some(FillSource::Memory) => s.mem_misses += 1,
                None => unreachable!("miss without a fill"),
            },
        }
        // Exposed latency of this line: zero for hits, the remaining
        // in-flight/fill time otherwise. Lines of one reference fill
        // concurrently, so per-region sums may exceed the wall-clock
        // dcache stall (which counts the overlap once).
        let exposed = ready.map_or(0, |r| r.saturating_sub(now));
        s.stall_cycles += exposed;
        p.hists[kind.index()].record(exposed);
        p.total_hist.record(exposed);
    }

    /// Hardware next-line stride prefetcher (§1.2 discussion): a demand
    /// access extending a tracked sequential stream triggers fills of the
    /// next `hw_prefetch_depth` lines, off the critical path (no issue
    /// cost — it is hardware). A *miss* matching no stream allocates one
    /// round-robin. Disabled (0 streams) in the paper configuration.
    fn hw_advance(&mut self, line: u64, was_fill: bool) {
        if let Some(i) = self.hw_streams.iter().position(|&l| line == l.wrapping_add(1)) {
            self.hw_streams[i] = line;
            for next in line + 1..=line + self.cfg.hw_prefetch_depth as u64 {
                if matches!(self.l1.probe(next, self.now), Probe::Miss) {
                    self.stats.hw_prefetches += 1;
                    self.fill_line(next, self.now, true);
                }
            }
        } else if was_fill && !self.hw_streams.contains(&line) {
            self.hw_rr = (self.hw_rr + 1) % self.hw_streams.len();
            let slot = self.hw_rr;
            self.hw_streams[slot] = line;
        }
    }

    fn prefetch_line(&mut self, line: u64) {
        match self.l1.probe(line, self.now) {
            Probe::Hit | Probe::InFlight(_) => {
                self.stats.pf_dropped += 1;
                if let Some(p) = self.profiler.as_deref_mut() {
                    let kind = p.registry.lookup((line << self.line_shift) as usize);
                    p.stats[kind.index()].pf_dropped += 1;
                }
                return;
            }
            Probe::Miss => {}
        }
        // TLB prefetching: a prefetch-induced walk delays only the fill.
        let page = line >> (self.page_shift - self.line_shift);
        let mut start = self.now;
        let walked = self.tlb.access(page) == TlbAccess::Walked;
        if walked {
            self.stats.tlb_prefetch_walks += 1;
            start += self.cfg.tlb_walk;
        }
        let (_, src) = self.fill_line(line, start, true);
        match src {
            FillSource::L2 => self.stats.pf_from_l2 += 1,
            FillSource::Memory => self.stats.pf_from_mem += 1,
        }
        if let Some(p) = self.profiler.as_deref_mut() {
            let kind = p.registry.lookup((line << self.line_shift) as usize);
            let s = &mut p.stats[kind.index()];
            s.prefetches += 1;
            if walked {
                s.tlb_prefetch_walks += 1;
            }
        }
    }

    /// Fill `line` into L1 (and L2 if it came from memory). Returns the
    /// completion time and the fill source. `req` is when the request is
    /// made; the fill may start later if all miss handlers are busy.
    fn fill_line(&mut self, line: u64, req: u64, by_prefetch: bool) -> (u64, FillSource) {
        let start = self.acquire_handler(req);
        let (completion, src) = match self.l2.access(line, start) {
            Probe::Hit => (start + self.cfg.l2_hit, FillSource::L2),
            Probe::InFlight(ready) => {
                // The line is on its way into L2 (an earlier fill);
                // forward it to L1 once it arrives.
                (ready.max(start), FillSource::L2)
            }
            Probe::Miss => {
                let completion = (start + self.cfg.t_full).max(self.last_mem + self.cfg.t_next);
                self.last_mem = completion;
                let evicted = self.l2.install(line, req, completion, by_prefetch);
                self.count_eviction(evicted);
                (completion, FillSource::Memory)
            }
        };
        self.handlers.push(completion);
        let evicted = self.l1.install(line, req, completion, by_prefetch);
        self.count_eviction(evicted);
        (completion, src)
    }

    fn count_eviction(&mut self, e: Evicted) {
        if let Evicted::Line { tag, prefetched_unused, dirty } = e {
            if prefetched_unused {
                self.stats.pf_evicted_unused += 1;
                if let Some(p) = self.profiler.as_deref_mut() {
                    // Pollution: charge the wasted prefetch to the region
                    // it was fetching for.
                    let kind = p.registry.lookup((tag << self.line_shift) as usize);
                    p.stats[kind.index()].pf_polluting += 1;
                }
            }
            if dirty {
                self.stats.writebacks += 1;
                if self.cfg.model_writebacks {
                    // The write-back occupies the bus like a pipelined
                    // transfer; it never stalls the processor directly.
                    self.last_mem += self.cfg.t_next;
                }
            }
        }
    }

    /// Wait for a free miss handler: returns the earliest cycle ≥ `req` at
    /// which a handler is available.
    fn acquire_handler(&mut self, req: u64) -> u64 {
        self.handlers.retain(|&c| c > req);
        if self.handlers.len() < self.cfg.miss_handlers {
            return req;
        }
        // All busy: the request waits for the earliest completion.
        let (mi, &mc) = self
            .handlers
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .expect("non-empty");
        self.handlers.swap_remove(mi);
        mc
    }

    #[inline]
    fn tele_tick(&mut self) {
        self.tele_countdown -= 1;
        if self.tele_countdown == 0 {
            self.tele_publish();
        }
    }

    /// Push the counter deltas since the last publication to the live
    /// registry. Host-side only — simulated time is untouched, and with
    /// telemetry off this resolves to a single atomic load.
    #[cold]
    fn tele_publish(&mut self) {
        self.tele_countdown = TELE_BATCH;
        if let Some(m) = crate::telemetry::memsim_metrics() {
            let d = self.stats - self.tele_last;
            m.accesses.add(d.visits);
            m.l1_misses.add(d.l1_misses());
            m.l2_misses.add(d.mem_misses);
            m.tlb_misses.add(d.tlb_demand_walks);
            m.prefetches.add(d.prefetches);
            m.pf_hidden_cycles.add(d.pf_hidden_cycles);
            self.tele_last = self.stats;
        }
    }

    #[inline]
    fn maybe_flush(&mut self) {
        while self.now >= self.next_flush {
            self.l1.flush();
            self.l2.flush();
            self.tlb.flush();
            if let Some(s) = self.shadow.as_mut() {
                s.clear();
            }
            self.stats.flushes += 1;
            // Journal the epoch boundary (host-side; a no-op without a
            // flight recorder, and never a simulated-cycle cost).
            phj_flightrec::event(
                phj_flightrec::EventKind::MemEpoch,
                0,
                self.stats.flushes,
                self.now,
            );
            self.next_flush += self.cfg.flush_period.expect("flush period set");
        }
    }
}

impl Drop for SimEngine {
    /// Flush the tail of the telemetry batch so short-lived engines (and
    /// the final partial batch of long runs) still reach the registry.
    fn drop(&mut self) {
        self.tele_publish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SimEngine {
        SimEngine::paper()
    }

    /// Two distinct addresses on different pages and lines.
    const A: usize = 0x10_0000;
    const B: usize = 0x20_0000;

    #[test]
    fn cold_miss_costs_full_latency_plus_walk() {
        let mut e = engine();
        e.visit(A, 4);
        let b = e.breakdown();
        assert_eq!(b.dcache_stall, 150);
        assert_eq!(b.dtlb_stall, 12);
        assert_eq!(b.busy, 0);
        assert_eq!(e.stats().mem_misses, 1);
    }

    #[test]
    fn second_access_hits() {
        let mut e = engine();
        e.visit(A, 4);
        let before = e.breakdown();
        e.visit(A, 4);
        let after = e.breakdown();
        assert_eq!((after - before).total(), 0);
        assert_eq!(e.stats().l1_hits, 1);
    }

    #[test]
    fn prefetch_hides_latency_fully() {
        let mut e = engine();
        e.prefetch(A, 4);
        e.busy(1000); // plenty of work to overlap the fill
        let before = e.breakdown();
        e.visit(A, 4);
        let after = e.breakdown();
        assert_eq!((after - before).dcache_stall, 0);
        assert_eq!((after - before).dtlb_stall, 0, "TLB prefetched too");
        assert_eq!(e.stats().l1_hits, 1);
        assert_eq!(e.stats().tlb_prefetch_walks, 1);
    }

    #[test]
    fn prefetch_hides_latency_partially() {
        let mut e = engine();
        e.prefetch(A, 4);
        e.busy(50);
        let before = e.breakdown();
        e.visit(A, 4);
        let after = e.breakdown();
        let stall = (after - before).dcache_stall;
        // Fill started after the TLB walk (12) at issue cost 1, completes
        // at 1+12+150 = 163; visited at cycle 51 → 112 remaining.
        assert_eq!(stall, 112);
        assert_eq!(e.stats().l1_inflight_hits, 1);
    }

    #[test]
    fn bandwidth_serializes_memory_fills() {
        let mut e = engine();
        // Issue many prefetches back-to-back; fills pile up on the bus.
        let n = 8usize;
        for i in 0..n {
            e.prefetch(A + i * 64, 4);
        }
        // Visit the last line immediately: its fill completes no earlier
        // than first_completion + (n-1)*t_next.
        let before = e.breakdown();
        e.visit(A + (n - 1) * 64, 4);
        let after = e.breakdown();
        let stall = (after - before).dcache_stall;
        assert!(stall >= (n as u64 - 1) * 10 - 10, "bus serialization visible");
    }

    #[test]
    fn l2_hit_is_cheaper_than_memory() {
        let mut e = engine();
        e.visit(A, 4);
        // Evict A from L1 by filling its set (same L1 set: stride by
        // l1_sets * line = 256*64 = 16 KB; 4 ways → 4 extra lines).
        for i in 1..=4 {
            e.visit(A + i * 16 * 1024, 4);
        }
        let before = e.breakdown();
        e.visit(A, 4);
        let after = e.breakdown();
        // A is still in L2 (2048 sets), so this is an L2 hit.
        assert_eq!((after - before).dcache_stall, 8);
        assert_eq!(e.stats().l2_hits, 1);
    }

    #[test]
    fn miss_handler_limit_delays_fills() {
        let mut cfg = MemConfig::paper();
        cfg.miss_handlers = 2;
        let mut e = SimEngine::new(cfg);
        // Three prefetches: the third must wait for a handler.
        e.prefetch(A, 4);
        e.prefetch(A + 64, 4);
        e.prefetch(A + 128, 4);
        e.busy(1);
        let before = e.breakdown();
        e.visit(A + 128, 4);
        let after = e.breakdown();
        // With unlimited handlers the third fill would complete ≈ cycle
        // 3 + walk + T; with 2 handlers it starts only when the first
        // completes.
        assert!((after - before).dcache_stall > 0);
    }

    #[test]
    fn visit_spanning_lines_touches_each() {
        let mut e = engine();
        e.visit(A, 256); // 4 lines
        assert_eq!(e.stats().visit_lines, 4);
        assert_eq!(e.stats().mem_misses, 4);
        assert_eq!(e.stats().visits, 1);
    }

    #[test]
    fn redundant_prefetch_dropped() {
        let mut e = engine();
        e.prefetch(A, 4);
        e.prefetch(A, 4);
        assert_eq!(e.stats().pf_dropped, 1);
        e.busy(1000);
        e.visit(A, 4);
        e.prefetch(A, 4);
        assert_eq!(e.stats().pf_dropped, 2);
    }

    #[test]
    fn periodic_flush_forces_remisses() {
        let mut cfg = MemConfig::paper();
        cfg.flush_period = Some(500);
        let mut e = SimEngine::new(cfg);
        e.visit(A, 4); // cold: 180 cycles
        e.visit(A, 4); // hit
        assert_eq!(e.stats().l1_hits, 1);
        e.busy(1000); // crosses the flush boundary
        let before = e.breakdown();
        e.visit(A, 4);
        let after = e.breakdown();
        assert!(e.stats().flushes >= 1);
        assert_eq!((after - before).dcache_stall, 150, "line was flushed");
    }

    #[test]
    fn conflict_classification() {
        let mut cfg = MemConfig::paper();
        cfg.classify_conflicts = true;
        let mut e = SimEngine::new(cfg);
        // 5 lines mapping to one L1 set (stride 16 KB) thrash a 4-way set
        // while total footprint (5 lines) is far below capacity → the
        // re-miss is a conflict miss.
        for round in 0..2 {
            for i in 0..5 {
                e.visit(A + i * 16 * 1024, 4);
            }
            if round == 0 {
                assert_eq!(e.stats().l1_conflict_misses, 0, "cold misses");
            }
        }
        assert!(e.stats().l1_conflict_misses > 0);
    }

    #[test]
    fn pf_evicted_unused_counted() {
        let mut cfg = MemConfig::paper();
        cfg.l1_size = 64 * 4; // tiny: 1 set, 4 ways
        cfg.l1_assoc = 4;
        let mut e = SimEngine::new(cfg);
        for i in 0..5 {
            e.prefetch(B + i * 64, 4); // 5 prefetches into a 4-way set
        }
        assert_eq!(e.stats().pf_evicted_unused, 1);
    }

    #[test]
    fn busy_and_other_attribution() {
        let mut e = engine();
        e.busy(100);
        e.other(7);
        let b = e.breakdown();
        assert_eq!(b.busy, 100);
        assert_eq!(b.other_stall, 7);
        assert_eq!(b.total(), 107);
        assert_eq!(e.now(), 107);
    }

    #[test]
    fn writebacks_counted_and_charged() {
        let mut cfg = MemConfig::paper();
        cfg.l1_size = 64 * 4; // 1 set, 4 ways
        cfg.l1_assoc = 4;
        cfg.l2_size = 64 * 8; // tiny L2 so evictions leave it too
        cfg.l2_assoc = 8;
        let mut e = SimEngine::new(cfg.clone());
        // Dirty 4 lines of one set, then stream reads through it.
        for i in 0..4 {
            e.write(B + i * 64, 8);
        }
        for i in 4..12 {
            e.visit(B + i * 64, 8);
        }
        assert!(e.stats().writebacks >= 4, "dirty victims counted: {:?}", e.stats());
        // With bus charging on, the same trace takes at least as long.
        let mut charged = SimEngine::new(MemConfig { model_writebacks: true, ..cfg });
        for i in 0..4 {
            charged.write(B + i * 64, 8);
        }
        for i in 4..12 {
            charged.visit(B + i * 64, 8);
        }
        assert!(charged.now() >= e.now());
    }

    #[test]
    fn hidden_cycles_cover_fully_hidden_miss() {
        let mut e = engine();
        e.prefetch(A, 4);
        e.busy(1000);
        e.visit(A, 4);
        // The prefetch issues at cycle 1; its TLB walk (12 cycles, off the
        // critical path) delays the fill *request* to cycle 13, and the
        // fill is in flight for T = 150 cycles after that — all of it
        // overlapped with the busy computation.
        assert_eq!(e.stats().pf_hidden_cycles, 150);
        assert_eq!(e.breakdown().dcache_stall, 0);
        // Second visit adds nothing: coverage counted once per line.
        e.visit(A, 4);
        assert_eq!(e.stats().pf_hidden_cycles, 150);
    }

    #[test]
    fn hidden_plus_exposed_equals_full_latency_when_partial() {
        let mut e = engine();
        e.prefetch(A, 4);
        e.busy(50);
        let before = e.breakdown();
        e.visit(A, 4);
        let exposed = (e.breakdown() - before).dcache_stall;
        // Partially hidden: hidden + exposed = the fill's in-flight
        // latency, T = 150 (the prefetch's TLB walk precedes the fill
        // request and is part of neither side).
        assert_eq!(e.stats().pf_hidden_cycles + exposed, 150);
        assert!(e.stats().pf_hidden_cycles > 0);
    }

    #[test]
    fn unprefetched_misses_hide_nothing() {
        let mut e = engine();
        e.visit(A, 4);
        e.visit(B, 4);
        assert_eq!(e.stats().pf_hidden_cycles, 0);
    }

    #[test]
    fn snapshot_pairs_breakdown_and_stats() {
        let mut e = engine();
        e.visit(A, 4);
        let s = e.snapshot();
        assert_eq!(s.breakdown, e.breakdown());
        assert_eq!(s.stats, e.stats());
    }

    #[test]
    fn visits_same_page_walk_once() {
        let mut e = engine();
        e.visit(A, 4);
        e.visit(A + 64, 4); // same 8 KB page, different line
        assert_eq!(e.stats().tlb_demand_walks, 1);
    }
}

#[cfg(test)]
mod region_tests {
    use super::*;
    use crate::region::{RegionStats, NUM_REGION_KINDS};

    const A: usize = 0x10_0000;
    const B: usize = 0x20_0000;

    /// A small mixed workload: demand misses, hits, prefetches (hidden,
    /// partial, late, dropped), multi-line visits, writes.
    fn workload(e: &mut SimEngine) {
        e.visit(A, 4);
        e.visit(A, 4);
        e.prefetch(B, 4);
        e.busy(1000);
        e.visit(B, 4); // fully hidden
        e.prefetch(B + 64, 4);
        e.busy(50);
        e.visit(B + 64, 4); // partially hidden
        e.prefetch(B + 128, 4);
        e.visit(B + 128, 4); // late
        e.prefetch(B + 128, 4); // dropped (resident)
        e.write(A + 256, 8);
        e.visit(A + 1024, 256); // 4 lines in one reference
        e.other(3);
    }

    #[test]
    fn profiling_never_changes_timing() {
        let mut off = SimEngine::paper();
        workload(&mut off);
        let mut on = SimEngine::paper();
        on.enable_region_profiling();
        on.region_register(RegionKind::HashBucketHeaders, A, 4096);
        on.region_register(RegionKind::ProbeTuples, B, 4096);
        workload(&mut on);
        assert_eq!(on.now(), off.now());
        assert_eq!(on.breakdown(), off.breakdown());
        assert_eq!(on.stats(), off.stats());
    }

    #[test]
    fn region_counters_sum_to_global_stats() {
        let mut e = SimEngine::paper();
        e.enable_region_profiling();
        e.region_register(RegionKind::HashBucketHeaders, A, 4096);
        e.region_register(RegionKind::ProbeTuples, B, 4096);
        workload(&mut e);
        let p = e.region_profile().expect("profiling on");
        let g = e.stats();
        let mut sums = RegionStats::default();
        let mut hist_lines = 0;
        for kind in RegionKind::ALL {
            let s = p.stats(kind);
            sums.l1_hits += s.l1_hits;
            sums.l1_inflight_hits += s.l1_inflight_hits;
            sums.l2_hits += s.l2_hits;
            sums.mem_misses += s.mem_misses;
            sums.tlb_demand_walks += s.tlb_demand_walks;
            sums.tlb_prefetch_walks += s.tlb_prefetch_walks;
            sums.prefetches += s.prefetches;
            sums.pf_dropped += s.pf_dropped;
            sums.pf_hidden_cycles += s.pf_hidden_cycles;
            hist_lines += p.hist(kind).count();
        }
        // Every demand line is charged to exactly one region.
        assert_eq!(sums.l1_hits, g.l1_hits);
        assert_eq!(sums.l1_inflight_hits, g.l1_inflight_hits);
        assert_eq!(sums.l2_hits, g.l2_hits);
        assert_eq!(sums.mem_misses, g.mem_misses);
        assert_eq!(sums.demand_lines(), g.visit_lines);
        assert_eq!(sums.tlb_demand_walks, g.tlb_demand_walks);
        assert_eq!(sums.tlb_prefetch_walks, g.tlb_prefetch_walks);
        assert_eq!(sums.pf_dropped, g.pf_dropped);
        assert_eq!(sums.pf_hidden_cycles, g.pf_hidden_cycles);
        // Prefetched-line fills: one per non-dropped prefetch line.
        assert_eq!(sums.prefetches, g.pf_from_l2 + g.pf_from_mem);
        // One histogram sample per demand line, globally and per region.
        assert_eq!(hist_lines, g.visit_lines);
        assert_eq!(p.total_hist().count(), g.visit_lines);
    }

    #[test]
    fn demand_lines_charged_to_their_region() {
        let mut e = SimEngine::paper();
        e.enable_region_profiling();
        e.region_register(RegionKind::HashCells, A, 64);
        e.visit(A, 4); // registered: mem miss + walk
        e.visit(B, 4); // unregistered: falls to Other
        let p = e.region_profile().unwrap();
        let cells = p.stats(RegionKind::HashCells);
        assert_eq!(cells.mem_misses, 1);
        assert_eq!(cells.tlb_demand_walks, 1);
        assert_eq!(cells.demand_lines(), 1);
        assert!(cells.stall_cycles >= 150, "full latency exposed");
        let other = p.stats(RegionKind::Other);
        assert_eq!(other.mem_misses, 1);
        assert_eq!(other.demand_lines(), 1);
        assert_eq!(p.stats(RegionKind::BuildTuples).demand_lines(), 0);
    }

    #[test]
    fn unaligned_registrations_cover_their_first_line() {
        // Real allocations are rarely line-aligned (malloc hands out
        // 16-byte alignment). Attribution looks regions up by *line
        // start*, so registration must widen the range to line
        // boundaries or the first/last lines leak to Other.
        let mut e = SimEngine::paper();
        e.enable_region_profiling();
        e.region_register(RegionKind::BuildTuples, A + 16, 96); // spans lines A and A+64
        e.visit(A + 16, 4); // line start A: before the raw range
        e.visit(A + 104, 4); // line start A+64: past the raw range's end line start
        let s = e.region_profile().unwrap().stats(RegionKind::BuildTuples);
        assert_eq!(s.demand_lines(), 2, "both straddled lines charged to the region");
        assert_eq!(e.region_profile().unwrap().stats(RegionKind::Other).demand_lines(), 0);
    }

    #[test]
    fn prefetch_outcomes_classified_per_region() {
        let mut e = SimEngine::paper();
        e.enable_region_profiling();
        e.region_register(RegionKind::ProbeTuples, B, 4096);
        e.prefetch(B, 4);
        e.busy(1000);
        e.visit(B, 4); // hidden
        e.prefetch(B + 64, 4);
        e.busy(50);
        e.visit(B + 64, 4); // partial
        e.prefetch(B + 128, 4);
        e.visit(B + 128, 4); // late (no cycles overlapped)
        e.prefetch(B + 128, 4); // dropped
        let s = e.region_profile().unwrap().stats(RegionKind::ProbeTuples);
        assert_eq!(s.pf_hidden, 1);
        assert_eq!(s.pf_partial, 1);
        assert_eq!(s.pf_late, 1);
        assert_eq!(s.pf_dropped, 1);
        assert_eq!(s.prefetches, 3);
        assert_eq!(s.pf_hidden_cycles, e.stats().pf_hidden_cycles);
    }

    #[test]
    fn pollution_charged_to_victim_region() {
        let mut cfg = MemConfig::paper();
        cfg.l1_size = 64 * 4; // 1 set, 4 ways
        cfg.l1_assoc = 4;
        let mut e = SimEngine::new(cfg);
        e.enable_region_profiling();
        e.region_register(RegionKind::HashCells, B, 64 * 8);
        for i in 0..5 {
            e.prefetch(B + i * 64, 4); // 5 prefetches into a 4-way set
        }
        assert_eq!(e.stats().pf_evicted_unused, 1);
        let s = e.region_profile().unwrap().stats(RegionKind::HashCells);
        assert_eq!(s.pf_polluting, 1, "wasted prefetch charged to its region");
    }

    #[test]
    fn latency_hist_none_when_off_and_monotone_when_on() {
        let mut e = SimEngine::paper();
        assert!(e.latency_hist().is_none());
        // Registration before enabling is a silent no-op.
        e.region_register(RegionKind::HashCells, A, 64);
        e.visit(A, 4);
        assert!(e.region_profile().is_none());
        e.enable_region_profiling();
        let h0 = e.latency_hist().unwrap();
        assert_eq!(h0.count(), 0);
        e.visit(B, 4); // miss: nonzero exposed latency
        e.visit(B, 4); // hit: zero-latency sample
        let h1 = e.latency_hist().unwrap();
        assert_eq!(h1.count(), 2);
        let delta = h1 - h0;
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.buckets[0], 1, "the hit lands in the zero bucket");
        assert_eq!(delta.percentiles().2, h1.percentiles().2);
    }

    #[test]
    fn clear_reroutes_to_other() {
        let mut e = SimEngine::paper();
        e.enable_region_profiling();
        e.region_register(RegionKind::PartitionBuffers, A, 4096);
        e.visit(A, 4);
        e.region_clear(RegionKind::PartitionBuffers);
        e.visit(A + 64, 4);
        let p = e.region_profile().unwrap();
        assert_eq!(p.stats(RegionKind::PartitionBuffers).demand_lines(), 1);
        assert_eq!(p.stats(RegionKind::Other).demand_lines(), 1);
        let _ = NUM_REGION_KINDS; // re-exported constant stays in sync
        assert_eq!(RegionKind::ALL.len(), NUM_REGION_KINDS);
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;

    /// With the global registry installed, engine counters reach the
    /// scrape in batches and the drop-flush delivers the partial tail.
    /// Other tests in this binary may publish too (the registry is
    /// process-wide), so assertions are monotone lower bounds.
    #[test]
    fn batched_deltas_reach_the_registry() {
        let reg = phj_metrics::install();
        let scraped = |name: &str| {
            reg.scrape()
                .into_iter()
                .find(|f| f.name == name)
                .map_or(0, |f| f.value)
        };
        let before = scraped("phj_memsim_accesses_total");
        let mut e = SimEngine::paper();
        // One full batch triggers an in-flight publication...
        for i in 0..TELE_BATCH as usize {
            e.visit(0x40_0000 + (i % 256) * 64, 4);
        }
        assert!(
            scraped("phj_memsim_accesses_total") >= before + TELE_BATCH as u64,
            "full batch published without dropping the engine"
        );
        // ...and the partial tail arrives on drop.
        e.prefetch(0x80_0000, 4);
        for i in 0..10usize {
            e.visit(0x80_0000 + i * 64, 4);
        }
        let pf_before = scraped("phj_memsim_prefetches_total");
        drop(e);
        assert!(scraped("phj_memsim_accesses_total") >= before + TELE_BATCH as u64 + 10);
        assert!(scraped("phj_memsim_prefetches_total") >= pf_before.max(1));
        assert!(scraped("phj_memsim_l2_misses_total") >= 1, "cold misses counted");
        assert!(scraped("phj_memsim_tlb_misses_total") >= 1, "demand walks counted");
    }
}

#[cfg(test)]
mod hw_prefetch_tests {
    use super::*;

    fn hw_engine() -> SimEngine {
        let cfg = MemConfig {
            hw_prefetch_streams: 8,
            hw_prefetch_depth: 2,
            ..MemConfig::paper()
        };
        SimEngine::new(cfg)
    }

    #[test]
    fn sequential_stream_gets_prefetched() {
        let mut e = hw_engine();
        // Sequential scan: after the detector locks on (2nd consecutive
        // miss), subsequent lines arrive early.
        for i in 0..32usize {
            e.visit(0x100000 + i * 64, 8);
            e.busy(200);
        }
        assert!(e.stats().hw_prefetches > 10, "stream detected");
        // Far fewer than 32 full misses thanks to the prefetcher.
        assert!(
            e.stats().l1_hits + e.stats().l1_inflight_hits > 16,
            "later lines were covered: {:?}",
            e.stats()
        );
    }

    #[test]
    fn random_accesses_trigger_nothing() {
        let mut e = hw_engine();
        let mut line = 1u64;
        for _ in 0..64 {
            line = line.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = ((line >> 20) & 0xFF_FFFF) as usize * 64;
            e.visit(addr, 8);
            e.busy(100);
        }
        assert_eq!(e.stats().hw_prefetches, 0, "no strides in random stream");
    }

    #[test]
    fn disabled_by_default() {
        let mut e = SimEngine::paper();
        for i in 0..16usize {
            e.visit(0x200000 + i * 64, 8);
        }
        assert_eq!(e.stats().hw_prefetches, 0);
    }
}
