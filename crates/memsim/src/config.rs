//! Simulator configuration (the paper's Table 2).

/// Memory-hierarchy parameters.
///
/// Defaults reproduce Table 2 of the paper (1 GHz processor; memory system
/// based on the Compaq ES40): 64 B lines, 64 KB 4-way L1D, 1 MB unified L2,
/// 32 data miss handlers, 64-entry fully-associative D-TLB over 8 KB pages,
/// hardware TLB walk, main-memory latency `T = 150` cycles and pipelined
/// additional-miss latency `T_next = 10` cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Cache line size in bytes (power of two).
    pub line_size: usize,
    /// L1 data cache capacity in bytes.
    pub l1_size: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 hit latency charged on a demand access (cycles). The paper folds
    /// L1 hits into busy time; we default to 0 and let the per-stage costs
    /// `C_i` cover them.
    pub l1_hit: u64,
    /// Unified L2 capacity in bytes.
    pub l2_size: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// *Exposed* latency of an L1 miss that hits in L2 (cycles). The
    /// hardware's speculative lookahead hides most of an L2-hit latency
    /// (§1.2 of the paper: the reorder buffer "is useful for hiding the
    /// latency of primary data cache misses that hit in the secondary
    /// cache"), so the demand charge is the un-hidable remainder, not the
    /// full pin-to-pin latency.
    pub l2_hit: u64,
    /// Full latency `T` of a cache miss to main memory (cycles).
    pub t_full: u64,
    /// Latency `T_next` of an additional pipelined miss — the inverse of
    /// memory bandwidth (cycles per line).
    pub t_next: u64,
    /// Number of outstanding data-cache miss handlers (MSHRs).
    pub miss_handlers: usize,
    /// D-TLB entries (fully associative).
    pub tlb_entries: usize,
    /// Virtual-memory page size in bytes (power of two).
    pub page_size: usize,
    /// *Exposed* hardware page-table walk cost on a demand TLB miss
    /// (cycles). Like `l2_hit`, this is the un-hidable remainder after
    /// the out-of-order core overlaps the walk (hardware walkers run
    /// concurrently with execution); prefetch-induced walks use it as
    /// the fill-start delay.
    pub tlb_walk: u64,
    /// Issue overhead charged (as busy time) for executing one prefetch
    /// instruction. Models the extra instructions the prefetching schemes
    /// execute (their larger busy fraction in Figs 11 and 15).
    pub prefetch_issue: u64,
    /// Flush caches and TLB every this many cycles, if set — the paper's
    /// worst-case interference experiment (Fig 18): "the cache is
    /// periodically flushed".
    pub flush_period: Option<u64>,
    /// Track conflict-vs-capacity miss classification with a shadow
    /// fully-associative cache (needed for Figs 13/17; costs sim speed).
    pub classify_conflicts: bool,
    /// Charge memory-bus time (`t_next` per line) for dirty-line
    /// write-backs on eviction. The paper's model folds write-back
    /// traffic into `T_next`; enabling this models it explicitly (the
    /// ablation harness uses it to bound the simplification's effect).
    pub model_writebacks: bool,
    /// Hardware next-line stride prefetcher: number of tracked streams
    /// (0 = disabled, the paper's configuration). §1.2 argues such
    /// prefetchers "rely upon recognizing regular and predictable (e.g.,
    /// strided) patterns in the data address stream, but the inter-tuple
    /// hash table probes do not exhibit such behavior" — the ablation
    /// harness enables this to verify the claim.
    pub hw_prefetch_streams: usize,
    /// Lines fetched ahead per detected stream.
    pub hw_prefetch_depth: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            line_size: 64,
            l1_size: 64 * 1024,
            l1_assoc: 4,
            l1_hit: 0,
            l2_size: 1024 * 1024,
            l2_assoc: 8,
            l2_hit: 8,
            t_full: 150,
            t_next: 10,
            miss_handlers: 32,
            tlb_entries: 64,
            page_size: 8 * 1024,
            tlb_walk: 12,
            prefetch_issue: 1,
            flush_period: None,
            classify_conflicts: false,
            model_writebacks: false,
            hw_prefetch_streams: 0,
            hw_prefetch_depth: 2,
        }
    }
}

impl MemConfig {
    /// Table 2 configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// The paper's future-gap experiment: memory latency raised to 1000
    /// cycles (Fig 12 top curves, "T is set to 1000 cycles"). Only the
    /// latency grows — the experiment models the processor/memory *speed
    /// gap* widening, with bandwidth unchanged; that is what lets
    /// software-pipelined prefetching "still keep up" (§7.3).
    pub fn paper_t1000() -> Self {
        MemConfig { t_full: 1000, ..Self::default() }
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> usize {
        self.l1_size / (self.line_size * self.l1_assoc)
    }

    /// Number of L2 sets.
    pub fn l2_sets(&self) -> usize {
        self.l2_size / (self.line_size * self.l2_assoc)
    }

    /// log2(line size), for address → line translation.
    pub fn line_shift(&self) -> u32 {
        self.line_size.trailing_zeros()
    }

    /// log2(page size), for address → page translation.
    pub fn page_shift(&self) -> u32 {
        self.page_size.trailing_zeros()
    }

    /// Validate invariants (powers of two, non-zero ways, etc.).
    pub fn validate(&self) -> Result<(), String> {
        let pow2 = |v: usize, name: &str| {
            if v == 0 || !v.is_power_of_two() {
                Err(format!("{name} must be a non-zero power of two, got {v}"))
            } else {
                Ok(())
            }
        };
        pow2(self.line_size, "line_size")?;
        pow2(self.page_size, "page_size")?;
        if self.l1_assoc == 0 || self.l2_assoc == 0 {
            return Err("associativity must be non-zero".into());
        }
        if !self.l1_size.is_multiple_of(self.line_size * self.l1_assoc) {
            return Err("l1_size must be a multiple of line_size * l1_assoc".into());
        }
        if !self.l2_size.is_multiple_of(self.line_size * self.l2_assoc) {
            return Err("l2_size must be a multiple of line_size * l2_assoc".into());
        }
        pow2(self.l1_sets(), "l1 set count")?;
        pow2(self.l2_sets(), "l2 set count")?;
        if self.miss_handlers == 0 {
            return Err("miss_handlers must be non-zero".into());
        }
        if self.tlb_entries == 0 {
            return Err("tlb_entries must be non-zero".into());
        }
        if self.t_next == 0 || self.t_next > self.t_full {
            return Err("need 0 < t_next <= t_full".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_table2() {
        let c = MemConfig::paper();
        assert_eq!(c.line_size, 64);
        assert_eq!(c.l1_size, 64 * 1024);
        assert_eq!(c.l1_assoc, 4);
        assert_eq!(c.l2_size, 1024 * 1024);
        assert_eq!(c.miss_handlers, 32);
        assert_eq!(c.tlb_entries, 64);
        assert_eq!(c.page_size, 8192);
        assert_eq!(c.t_full, 150);
        assert_eq!(c.l1_sets(), 256);
        assert_eq!(c.l2_sets(), 2048);
        assert_eq!(c.line_shift(), 6);
        assert_eq!(c.page_shift(), 13);
        c.validate().unwrap();
    }

    #[test]
    fn t1000_scales_latency_only() {
        let c = MemConfig::paper_t1000();
        assert_eq!(c.t_full, 1000);
        assert_eq!(c.t_next, MemConfig::paper().t_next);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = MemConfig::paper();
        c.line_size = 48;
        assert!(c.validate().is_err());
        let mut c = MemConfig::paper();
        c.t_next = 0;
        assert!(c.validate().is_err());
        let mut c = MemConfig::paper();
        c.l1_size = 60 * 1024;
        assert!(c.validate().is_err());
        let mut c = MemConfig::paper();
        c.miss_handlers = 0;
        assert!(c.validate().is_err());
    }
}
