//! Property-based invariants of the memory-hierarchy simulator.

use proptest::collection::vec;
use proptest::prelude::*;

use phj_memsim::{MemConfig, MemoryModel, SimEngine};

/// A random little program of memory operations.
#[derive(Debug, Clone)]
enum Op {
    Busy(u64),
    Visit(usize, usize),
    Prefetch(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..200).prop_map(Op::Busy),
        ((0usize..1 << 22), (1usize..256)).prop_map(|(a, l)| Op::Visit(a, l)),
        ((0usize..1 << 22), (1usize..256)).prop_map(|(a, l)| Op::Prefetch(a, l)),
    ]
}

fn run(engine: &mut SimEngine, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Busy(c) => engine.busy(c),
            Op::Visit(a, l) => MemoryModel::visit(engine, a, l),
            Op::Prefetch(a, l) => MemoryModel::prefetch(engine, a, l),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_equals_breakdown_and_never_regresses(ops in vec(op_strategy(), 0..300)) {
        let mut e = SimEngine::paper();
        let mut last = 0u64;
        for op in &ops {
            match *op {
                Op::Busy(c) => e.busy(c),
                Op::Visit(a, l) => MemoryModel::visit(&mut e, a, l),
                Op::Prefetch(a, l) => MemoryModel::prefetch(&mut e, a, l),
            }
            prop_assert!(e.now() >= last, "time is monotonic");
            last = e.now();
            prop_assert_eq!(e.breakdown().total(), e.now(), "breakdown partitions time");
        }
    }

    #[test]
    fn visit_after_visit_same_line_is_free(addr in 0usize..1 << 22) {
        let mut e = SimEngine::paper();
        MemoryModel::visit(&mut e, addr, 4);
        let before = e.breakdown();
        MemoryModel::visit(&mut e, addr, 4);
        prop_assert_eq!((e.breakdown() - before).total(), 0);
    }

    #[test]
    fn prefetch_never_slows_the_demand_stream(ops in vec(op_strategy(), 0..150)) {
        // Running the same demand/busy trace with prefetches stripped
        // must not be *faster* in stalls+busy than with them... the
        // reverse CAN happen (pollution), so we assert the weaker sound
        // property: stripped-trace demand behaviour is identical when no
        // prefetches existed at all.
        let demand_only: Vec<Op> = ops
            .iter()
            .filter(|o| !matches!(o, Op::Prefetch(..)))
            .cloned()
            .collect();
        let mut a = SimEngine::paper();
        run(&mut a, &demand_only);
        let mut b = SimEngine::paper();
        run(&mut b, &demand_only);
        prop_assert_eq!(a.breakdown(), b.breakdown(), "deterministic");
        prop_assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn stats_line_conservation(ops in vec(op_strategy(), 0..200)) {
        let mut e = SimEngine::paper();
        run(&mut e, &ops);
        let s = e.stats();
        prop_assert_eq!(
            s.visit_lines,
            s.l1_hits + s.l1_inflight_hits + s.l2_hits + s.mem_misses,
            "every visited line is classified exactly once"
        );
        prop_assert!(s.pf_dropped + s.pf_from_l2 + s.pf_from_mem <= s.prefetches * 256,
            "prefetch lines bounded by request spans");
    }

    #[test]
    fn flushing_never_reduces_time(ops in vec(op_strategy(), 0..200), period in 500u64..5000) {
        let mut plain = SimEngine::paper();
        run(&mut plain, &ops);
        let cfg = MemConfig { flush_period: Some(period), ..MemConfig::paper() };
        let mut flushed = SimEngine::new(cfg);
        run(&mut flushed, &ops);
        prop_assert!(flushed.now() >= plain.now(),
            "interference cannot speed things up: {} vs {}", flushed.now(), plain.now());
    }

    #[test]
    fn busy_is_exact(cycles in vec(1u64..1000, 0..50)) {
        let mut e = SimEngine::paper();
        for &c in &cycles {
            e.busy(c);
        }
        prop_assert_eq!(e.now(), cycles.iter().sum::<u64>());
        prop_assert_eq!(e.breakdown().busy, e.now());
    }
}
