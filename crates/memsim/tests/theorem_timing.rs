//! Numerical validation of the engine against the paper's analytical
//! model: run the *general* group-prefetching algorithm of Figure 3(d)
//! — `N` independent elements, each with `k` dependent memory references
//! separated by code stages of cost `C_i` — and check Theorem 1's
//! sufficient condition on the engine's clock:
//!
//! * at `G ≥ G*` (Theorem 1), all cache-miss latencies are hidden: the
//!   measured time approaches the pure busy time;
//! * well below `G*`, exposed stalls dominate;
//! * with no prefetching at all, every reference pays its miss.
//!
//! The elements' addresses are spread so that every reference is a cold
//! memory miss (the theorem's assumption).

use phj_memsim::{MemConfig, SimEngine};

const K: usize = 3;
const N: usize = 4096;
/// Element addresses: `k` disjoint regions; within a region, elements
/// stride by 3 cache lines so every reference is a cold miss, the set
/// index walks the whole cache (stride coprime to the set count — no
/// conflict aliasing), and TLB walks amortize over ~42 elements per page
/// (the theorem assumes conflict-free cold misses).
fn addr(region: usize, elem: usize) -> usize {
    0x1000_0000 + region * 0x4000_0000 + elem * 192
}

/// Figure 3(c): one element per iteration, fully exposed.
fn run_baseline(costs: &[u64; K + 1]) -> u64 {
    let mut e = SimEngine::paper();
    for i in 0..N {
        e.busy(costs[0]);
        for r in 0..K {
            e.visit(addr(r, i), 8);
            e.busy(costs[r + 1]);
        }
    }
    e.now()
}

/// Figure 3(d): the general group-prefetching algorithm.
fn run_group(costs: &[u64; K + 1], g: usize) -> u64 {
    let mut e = SimEngine::paper();
    let mut j = 0;
    while j < N {
        let n = g.min(N - j);
        // code 0 + prefetch m^1
        for i in j..j + n {
            e.busy(costs[0]);
            e.prefetch(addr(0, i), 8);
        }
        // stages 1..k: visit m^r, code r, prefetch m^{r+1}
        for r in 0..K {
            for i in j..j + n {
                e.visit(addr(r, i), 8);
                e.busy(costs[r + 1]);
                if r + 1 < K {
                    e.prefetch(addr(r + 1, i), 8);
                }
            }
        }
        j += n;
    }
    e.now()
}

#[test]
fn theorem1_condition_hides_all_latencies() {
    // Stage costs chosen so max{C_i, T_next} = 25 for i >= 1 and C_0 = 30:
    // Theorem 1: G* = 1 + ceil(150 / 25) = 7.
    let costs = [30u64, 25, 25, 25];
    let cfg = MemConfig::paper();
    let g_star = phj::model::min_group_size(cfg.t_full, cfg.t_next, &costs).g as usize;
    assert_eq!(g_star, 7);

    let busy_floor: u64 = (N as u64) * costs.iter().sum::<u64>();
    let baseline = run_baseline(&costs);
    let at_gstar = run_group(&costs, g_star);
    let tiny = run_group(&costs, 2);

    // Baseline pays ~K exposed misses (+TLB walk) per element.
    let exposed = (N as u64) * (K as u64) * cfg.t_full;
    assert!(
        baseline > busy_floor + exposed * 9 / 10,
        "baseline fully exposed: {baseline} vs busy {busy_floor} + {exposed}"
    );
    // At G*, stalls are (almost) gone: within 20% of pure busy time
    // (G* is the exact equality point of the theorem; prefetch-issue
    // overhead and fill-edge effects account for the remainder).
    assert!(
        at_gstar < busy_floor * 120 / 100,
        "G* hides everything: {at_gstar} vs busy {busy_floor}"
    );
    // Well below G*, a large share of latency is exposed.
    assert!(
        tiny > at_gstar * 3 / 2,
        "G=2 leaves stalls exposed: {tiny} vs {at_gstar}"
    );
    // And G* is enough: doubling G gains (almost) nothing more.
    let at_2gstar = run_group(&costs, 2 * g_star);
    assert!(at_2gstar >= at_gstar * 90 / 100 && at_2gstar <= at_gstar * 110 / 100);
}

#[test]
fn bandwidth_bound_regime() {
    // When every C_i << T_next the loop is bandwidth-bound: no G can beat
    // N * k * T_next total bus time (Theorem 1's T_next terms).
    let costs = [2u64, 2, 2, 2];
    let cfg = MemConfig::paper();
    let g_star = phj::model::min_group_size(cfg.t_full, cfg.t_next, &costs).g as usize;
    let t = run_group(&costs, g_star);
    let bus_floor = (N as u64) * (K as u64) * cfg.t_next;
    assert!(t >= bus_floor, "cannot beat the bus: {t} vs {bus_floor}");
    // ...but G* still gets within 40% of that floor.
    assert!(t < bus_floor * 7 / 5, "close to bus-bound: {t} vs {bus_floor}");
}

/// Figure 7(b): the general software-pipelined prefetching algorithm —
/// iteration `it` runs code 0 + prefetch for element `it`, stage `r` for
/// element `it - r·D`.
#[allow(clippy::needless_range_loop)] // r is the stage number, not just an index
fn run_swp(costs: &[u64; K + 1], d: usize) -> u64 {
    let mut e = SimEngine::paper();
    let mut it = 0usize;
    loop {
        if it < N {
            e.busy(costs[0]);
            e.prefetch(addr(0, it), 8);
        }
        for r in 1..=K {
            if it >= r * d && it - r * d < N {
                let elem = it - r * d;
                e.visit(addr(r - 1, elem), 8);
                e.busy(costs[r]);
                if r < K {
                    e.prefetch(addr(r, elem), 8);
                }
            }
        }
        if it >= N - 1 + K * d {
            break;
        }
        it += 1;
    }
    e.now()
}

#[test]
fn theorem2_condition_hides_all_latencies() {
    // D·(max{C_0+C_k, T_next} + Σ max{C_i, T_next}) ≥ T:
    // costs (30, 25, 25, 25): per-iteration hiding = 55 + 25 + 25 = 105
    // → D* = ceil(150/105) = 2.
    let costs = [30u64, 25, 25, 25];
    let cfg = MemConfig::paper();
    let d_star = phj::model::min_prefetch_distance(cfg.t_full, cfg.t_next, &costs) as usize;
    assert_eq!(d_star, 2);

    let busy_floor: u64 = (N as u64) * costs.iter().sum::<u64>();
    let at_dstar = run_swp(&costs, d_star);
    assert!(
        at_dstar < busy_floor * 115 / 100,
        "D* hides everything: {at_dstar} vs busy {busy_floor}"
    );
    // D = 1 violates the condition (105 < 150): visible exposed stalls.
    let d1 = run_swp(&costs, 1);
    assert!(d1 > at_dstar * 115 / 100, "D=1 leaves stalls: {d1} vs {at_dstar}");
    // Larger D gains nothing (steady state already clean).
    let d4 = run_swp(&costs, 2 * d_star);
    assert!(d4 <= at_dstar * 105 / 100 && d4 >= at_dstar * 95 / 100);
    // And software pipelining has no group-boundary gaps: it is at least
    // as good as group prefetching at its own optimum here.
    let g_star = phj::model::min_group_size(cfg.t_full, cfg.t_next, &costs).g as usize;
    let grp = run_group(&costs, g_star);
    assert!(at_dstar <= grp * 102 / 100, "swp >= group: {at_dstar} vs {grp}");
}
