//! Micro-benchmarks of the Figure-2 hash table itself: build throughput
//! and probe throughput, with and without real prefetch instructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use phj::hash::hash_key;
use phj::table::{HashCell, HashTable};
use phj_memsim::{MemoryModel, NativeModel};
use phj_workload::key_of_index;

fn bench_insert(c: &mut Criterion) {
    let n = 1_000_000usize;
    let keys: Vec<u32> = (0..n as u32).map(key_of_index).collect();
    let hashes: Vec<u32> = keys.iter().map(|k| hash_key(&k.to_le_bytes())).collect();
    let mut g = c.benchmark_group("hash_table_insert");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.bench_function("straight", |b| {
        b.iter(|| {
            let mut t = HashTable::new(n, n);
            for (i, &h) in hashes.iter().enumerate() {
                t.insert(HashCell::new(h, 0x10000 + i * 64, 16));
            }
            t.len()
        })
    });
    g.bench_function("prefetched", |b| {
        // Manually staged insert with a prefetch one step ahead — shows
        // the primitive the group/swp builds are made of.
        b.iter(|| {
            let mut t = HashTable::new(n, n);
            let mut mem = NativeModel;
            for (i, &h) in hashes.iter().enumerate() {
                if let Some(&nh) = hashes.get(i + 1) {
                    let nb = t.bucket_of(nh);
                    mem.prefetch(t.header_addr(nb), HashTable::header_len());
                }
                t.insert(HashCell::new(h, 0x10000 + i * 64, 16));
            }
            t.len()
        })
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut t = HashTable::new(n, n);
    let hashes: Vec<u32> = (0..n as u32)
        .map(|i| hash_key(&key_of_index(i).to_le_bytes()))
        .collect();
    for (i, &h) in hashes.iter().enumerate() {
        t.insert(HashCell::new(h, 0x10000 + i * 64, 16));
    }
    let mut g = c.benchmark_group("hash_table_lookup");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for stride in [1usize, 7] {
        g.bench_with_input(BenchmarkId::new("stride", stride), &stride, |b, &stride| {
            b.iter(|| {
                let mut found = 0usize;
                for i in (0..n).map(|i| (i * stride) % n) {
                    found += t.lookup(hashes[i]).count();
                }
                found
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert, bench_lookup);
criterion_main!(benches);
