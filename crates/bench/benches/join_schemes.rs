//! Criterion wall-clock benchmarks of the four join schemes on real
//! hardware (native model: the prefetch hooks become real `prefetcht0`
//! instructions, everything else compiles away). The native counterpart
//! of Fig 10's pivot column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::sink::{CountSink, JoinSink};
use phj_memsim::NativeModel;
use phj_workload::JoinSpec;

fn bench_join_schemes(c: &mut Criterion) {
    // ~8 MB build, 16 MB probe: beyond L2 so prefetching matters.
    let spec = JoinSpec {
        build_tuples: 80_000,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        seed: 11,
    };
    let gen = spec.generate();
    let mut g = c.benchmark_group("join_schemes");
    g.throughput(Throughput::Elements(gen.probe.num_tuples() as u64));
    g.sample_size(10);
    for (name, scheme) in [
        ("baseline", JoinScheme::Baseline),
        ("simple", JoinScheme::Simple),
        ("group_g16", JoinScheme::Group { g: 16 }),
        ("swp_d4", JoinScheme::Swp { d: 4 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &scheme| {
            b.iter(|| {
                let mut mem = NativeModel;
                let mut sink = CountSink::new();
                join_pair(
                    &mut mem,
                    &JoinParams { scheme, use_stored_hash: true },
                    &gen.build,
                    &gen.probe,
                    1,
                    &mut sink,
                );
                assert_eq!(sink.matches(), gen.expected_matches);
                sink.checksum()
            })
        });
    }
    g.finish();
}

fn bench_tuple_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_group_by_tuple_size");
    g.sample_size(10);
    for size in [20usize, 100, 140] {
        let spec = JoinSpec {
            build_tuples: 65_536,
            tuple_size: size,
            matches_per_build: 2,
            pct_match: 100,
            seed: 5,
        };
        let gen = spec.generate();
        g.bench_with_input(BenchmarkId::from_parameter(size), &gen, |b, gen| {
            b.iter(|| {
                let mut mem = NativeModel;
                let mut sink = CountSink::new();
                join_pair(
                    &mut mem,
                    &JoinParams { scheme: JoinScheme::Group { g: 16 }, use_stored_hash: true },
                    &gen.build,
                    &gen.probe,
                    1,
                    &mut sink,
                );
                sink.checksum()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_join_schemes, bench_tuple_sizes);
criterion_main!(benches);
