//! Native-hardware counterpart of Fig 12: wall-clock join time vs the
//! group size G and prefetch distance D. On a modern machine the knee
//! moves (different latency/bandwidth ratio than the paper's simulated
//! 2003 system), but the concave shape survives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::sink::CountSink;
use phj_memsim::NativeModel;
use phj_workload::JoinSpec;

fn run(gen: &phj_workload::GeneratedJoin, scheme: JoinScheme) -> u64 {
    let mut mem = NativeModel;
    let mut sink = CountSink::new();
    join_pair(
        &mut mem,
        &JoinParams { scheme, use_stored_hash: true },
        &gen.build,
        &gen.probe,
        1,
        &mut sink,
    );
    sink.checksum()
}

fn bench_g_sweep(c: &mut Criterion) {
    let spec = JoinSpec {
        build_tuples: 60_000,
        tuple_size: 20,
        matches_per_build: 2,
        pct_match: 100,
        seed: 3,
    };
    let gen = spec.generate();
    let mut grp = c.benchmark_group("tuning_group_size");
    grp.sample_size(10);
    for g in [2usize, 8, 16, 32, 128] {
        grp.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, &g| {
            b.iter(|| run(&gen, JoinScheme::Group { g }))
        });
    }
    grp.finish();

    let mut grp = c.benchmark_group("tuning_prefetch_distance");
    grp.sample_size(10);
    for d in [1usize, 2, 4, 8, 32] {
        grp.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| run(&gen, JoinScheme::Swp { d }))
        });
    }
    grp.finish();
}

criterion_group!(benches, bench_g_sweep);
criterion_main!(benches);
