//! Criterion wall-clock benchmarks of the partition-phase schemes
//! (native counterpart of Fig 14(a)'s two regions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use phj::partition::{partition_relation, PartitionScheme};
use phj_memsim::NativeModel;
use phj_workload::single_relation;

fn bench_partition(c: &mut Criterion) {
    let input = single_relation(400_000, 100); // ~43 MB
    for nparts in [32usize, 512] {
        let mut g = c.benchmark_group(format!("partition_{nparts}"));
        g.throughput(Throughput::Elements(input.num_tuples() as u64));
        g.sample_size(10);
        for (name, scheme) in [
            ("baseline", PartitionScheme::Baseline),
            ("simple", PartitionScheme::Simple),
            ("group_g12", PartitionScheme::Group { g: 12 }),
            ("swp_d4", PartitionScheme::Swp { d: 4 }),
            ("combined", PartitionScheme::combined_default()),
        ] {
            g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &scheme| {
                b.iter(|| {
                    let mut mem = NativeModel;
                    let parts = partition_relation(&mut mem, scheme, &input, nparts, false);
                    parts.iter().map(|r| r.num_tuples()).sum::<usize>()
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
