//! Criterion wall-clock benchmark of hash aggregation (the §8 extension)
//! across the four schemes on real hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use phj::aggregate::{aggregate, AggScheme};
use phj::plan;
use phj_memsim::NativeModel;
use phj_workload::{key_of_index, single_relation};

fn bench_aggregation(c: &mut Criterion) {
    // 1M rows into 500k groups: the table far exceeds L2.
    let rows = 1_000_000usize;
    let keys = 500_000usize;
    let input = {
        use phj_storage::{RelationBuilder, Schema};
        let schema = Schema::key_payload(32);
        let mut b = RelationBuilder::new(schema);
        let mut t = [0u8; 32];
        for i in 0..rows {
            let key = key_of_index((i % keys) as u32);
            t[..4].copy_from_slice(&key.to_le_bytes());
            b.push(&t);
        }
        b.finish()
    };
    let buckets = plan::hash_table_buckets(keys, 1);
    let mut g = c.benchmark_group("aggregation");
    g.throughput(Throughput::Elements(rows as u64));
    g.sample_size(10);
    for (name, scheme) in [
        ("baseline", AggScheme::Baseline),
        ("simple", AggScheme::Simple),
        ("group_g16", AggScheme::Group { g: 16 }),
        ("swp_d4", AggScheme::Swp { d: 4 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, &scheme| {
            b.iter(|| {
                let mut mem = NativeModel;
                let t = aggregate(&mut mem, scheme, &input, buckets, |t| t[4] as i64);
                assert_eq!(t.num_groups(), keys);
                t.num_groups()
            })
        });
    }
    g.finish();
    let _ = single_relation(1, 16);
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
