//! End-to-end exit-code contract of `report_diff --history`: the flat
//! fixture archive exits 0, the monotone-slowdown archive exits 3 (the
//! trend code, distinct from 1 = pairwise regression and 2 = bad input),
//! and `--history-append` grows an archive the trend mode then reads.
//! CI leans on these codes — see the history-trend job.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn report_diff(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_report_diff"))
        .args(args)
        .output()
        .expect("spawn report_diff")
}

#[test]
fn flat_history_exits_zero() {
    let out = report_diff(&["--history", "3", fixture("history_flat.jsonl").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ok"), "{text}");
}

#[test]
fn monotone_regression_exits_three() {
    let out =
        report_diff(&["--history", "3", fixture("history_regressing.jsonl").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("TREND REGRESSION"), "{text}");
    assert!(text.contains("cycles"), "{text}");
}

#[test]
fn short_or_mixed_windows_stay_healthy() {
    // A window larger than the archive has no verdict: exit 0, not 3.
    let out = report_diff(&["--history", "5", fixture("history_regressing.jsonl").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("not enough comparable records"));
}

#[test]
fn bad_inputs_exit_two() {
    assert_eq!(report_diff(&["--history", "1", "whatever.jsonl"]).status.code(), Some(2));
    assert_eq!(report_diff(&["--history", "abc", "whatever.jsonl"]).status.code(), Some(2));
    assert_eq!(
        report_diff(&["--history", "3", "/nonexistent/archive.jsonl"]).status.code(),
        Some(2)
    );
    assert_eq!(report_diff(&["--history-append", "x.jsonl"]).status.code(), Some(2));
}

#[test]
fn append_then_trend_round_trips() {
    // Build a valid run report via the obs model, append it three times
    // (identical runs: flat trajectory), and confirm the trend mode reads
    // what the append mode wrote.
    let dir = std::env::temp_dir().join(format!("phj-history-trend-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("run.json");
    let archive = dir.join("ci.jsonl");

    let mut rec = phj_obs::Recorder::new();
    let mut snap = phj_memsim::Snapshot::default();
    let root = rec.begin("run", snap);
    snap.breakdown.busy = 1_000;
    rec.end(root, snap);
    let mut report = phj_obs::RunReport::from_recorder("join", rec, snap, 50_000);
    report.simulated = true;
    report.config_kv("scheme", "group(G=16)");
    std::fs::write(&report_path, report.render()).unwrap();

    for _ in 0..3 {
        let out = report_diff(&[
            "--history-append",
            archive.to_str().unwrap(),
            report_path.to_str().unwrap(),
            "ci_smoke",
        ]);
        assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    }
    let out = report_diff(&["--history", "3", archive.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("slug=ci_smoke"));
    std::fs::remove_dir_all(&dir).ok();
}
