//! End-to-end exit-code contract of the `report_diff` binary.
//!
//! Regressions exit 1; every kind of broken input exits 2 with a
//! one-line typed error on stderr. Each error category has an on-disk
//! fixture under `tests/fixtures/` so the classification is pinned to
//! real bytes, not just in-process constructions.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_report_diff"))
        .args(args)
        .output()
        .expect("spawn report_diff")
}

/// stderr must be exactly one line, starting with `error: <kind>:`.
fn assert_one_line_error(out: &Output, kind: &str) {
    assert_eq!(out.status.code(), Some(2), "expected exit 2, got {:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines.len(), 1, "expected one stderr line, got: {stderr:?}");
    let prefix = format!("error: {kind}: ");
    assert!(lines[0].starts_with(&prefix), "expected `{prefix}...`, got: {}", lines[0]);
}

/// A real report on disk, produced by the same serializer the engine
/// uses, so the happy path is exercised against genuine bytes too.
fn valid_report_file(dir: &std::path::Path, name: &str, busy: u64) -> PathBuf {
    let mut rec = phj_obs::Recorder::new();
    let mut cursor = phj_memsim::Snapshot::default();
    let id = rec.begin("run", cursor);
    cursor.breakdown.busy = busy;
    rec.end(id, cursor);
    let mut r = phj_obs::RunReport::from_recorder("join", rec, cursor, 0);
    r.simulated = true;
    let path = dir.join(name);
    std::fs::write(&path, r.render()).expect("write report");
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("report_diff_errors_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn missing_file_is_a_typed_unreadable_error() {
    let out = run(&["--check", "/nonexistent/definitely_missing.json"]);
    assert_one_line_error(&out, "unreadable file");
}

#[test]
fn truncated_json_fixture_is_typed_and_exits_2() {
    let path = fixture("truncated.json");
    let out = run(&["--check", path.to_str().unwrap()]);
    assert_one_line_error(&out, "truncated JSON");
}

#[test]
fn malformed_json_fixture_is_typed_and_exits_2() {
    let path = fixture("malformed.json");
    let out = run(&["--check", path.to_str().unwrap()]);
    assert_one_line_error(&out, "malformed JSON");
}

#[test]
fn invalid_report_fixture_is_typed_and_exits_2() {
    let path = fixture("invalid.json");
    let out = run(&["--check", path.to_str().unwrap()]);
    assert_one_line_error(&out, "invalid report");
}

#[test]
fn compare_mode_reports_broken_input_the_same_way() {
    let dir = temp_dir("cmp");
    let good = valid_report_file(&dir, "good.json", 1_000);
    // Broken new-side input: typed exit 2, not a bogus regression.
    let out = run(&[good.to_str().unwrap(), fixture("truncated.json").to_str().unwrap()]);
    assert_one_line_error(&out, "truncated JSON");
    let out = run(&[fixture("malformed.json").to_str().unwrap(), good.to_str().unwrap()]);
    assert_one_line_error(&out, "malformed JSON");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exit_codes_separate_regression_from_broken_input() {
    let dir = temp_dir("codes");
    let old = valid_report_file(&dir, "old.json", 1_000);
    let slow = valid_report_file(&dir, "slow.json", 2_000);
    // Healthy comparison of identical runs: exit 0.
    let out = run(&[old.to_str().unwrap(), old.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "identical runs should pass");
    // Genuine regression: exit 1, and stderr stays silent.
    let out = run(&[old.to_str().unwrap(), slow.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "100% slowdown should trip the tripwire");
    assert!(out.stderr.is_empty(), "regressions report on stdout only");
    // Usage errors share the broken-input exit code.
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
