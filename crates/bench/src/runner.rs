//! Shared simulation drivers for the figure-regeneration binaries.
//!
//! Each driver runs one phase (or an end-to-end join) under a fresh
//! [`SimEngine`] and returns per-phase execution-time breakdowns and
//! cache statistics, exactly the quantities the paper plots.

use phj::cachepart::{
    direct_cache_join, direct_cache_partition, two_step_join, two_step_partition,
    CachePartConfig,
};
use phj::join::{dispatch_build, dispatch_probe, JoinParams, JoinScheme};
use phj::partition::{partition_relation, PartitionScheme};
use phj::plan;
use phj::sink::{CountSink, JoinSink, OutputWriter};
use phj::table::HashTable;
use phj_memsim::{Breakdown, CacheStats, MemConfig, SimEngine};
use phj_storage::Relation;
use phj_workload::GeneratedJoin;

/// Result of a simulated join phase (one partition pair).
pub struct JoinRun {
    /// Build-side breakdown.
    pub build: Breakdown,
    /// Probe-side breakdown.
    pub probe: Breakdown,
    /// Whole-phase cache statistics.
    pub stats: CacheStats,
    /// Matches produced.
    pub matches: u64,
}

impl JoinRun {
    /// Build + probe total cycles.
    pub fn total(&self) -> u64 {
        self.build.total() + self.probe.total()
    }

    /// Combined breakdown.
    pub fn breakdown(&self) -> Breakdown {
        Breakdown {
            busy: self.build.busy + self.probe.busy,
            dcache_stall: self.build.dcache_stall + self.probe.dcache_stall,
            dtlb_stall: self.build.dtlb_stall + self.probe.dtlb_stall,
            other_stall: self.build.other_stall + self.probe.other_stall,
        }
    }
}

/// Whether a scheme is one of the staged prefetchers (which also enable
/// output-buffer prefetch-ahead).
fn staged(scheme: JoinScheme) -> bool {
    matches!(scheme, JoinScheme::Group { .. } | JoinScheme::Swp { .. })
}

/// Simulate the join phase over one generated partition pair.
///
/// `materialize` selects the paper's setting (output tuples are built and
/// written to output pages); `false` uses a counting sink for parameter
/// sweeps where output writes would drown the effect under study.
pub fn sim_join(
    gen: &GeneratedJoin,
    scheme: JoinScheme,
    cfg: MemConfig,
    materialize: bool,
) -> JoinRun {
    let mut mem = SimEngine::new(cfg);
    let params = JoinParams { scheme, use_stored_hash: true };
    let buckets = plan::hash_table_buckets(gen.build.num_tuples(), 1);
    let mut table = HashTable::new(buckets, gen.build.num_tuples());
    dispatch_build(&mut mem, &params, &mut table, &gen.build);
    let build_bd = mem.breakdown();
    let matches;
    if materialize {
        let mut sink = OutputWriter::new(
            gen.build.schema().clone(),
            gen.probe.schema().clone(),
        );
        if staged(scheme) {
            sink = sink.with_output_prefetch();
        }
        dispatch_probe(&mut mem, &params, &table, &gen.build, &gen.probe, &mut sink);
        matches = sink.matches();
    } else {
        let mut sink = CountSink::new();
        dispatch_probe(&mut mem, &params, &table, &gen.build, &gen.probe, &mut sink);
        matches = sink.matches();
    }
    table.assert_quiescent();
    assert_eq!(matches, gen.expected_matches, "join produced wrong matches");
    let total = mem.breakdown();
    JoinRun {
        build: build_bd,
        probe: total - build_bd,
        stats: mem.stats(),
        matches,
    }
}

/// Result of a simulated partition phase.
pub struct PartitionRun {
    /// Phase breakdown.
    pub breakdown: Breakdown,
    /// Cache statistics.
    pub stats: CacheStats,
    /// The partitions (for chaining into a join).
    pub parts: Vec<Relation>,
}

/// Simulate the partition phase of `input` into `nparts` partitions.
pub fn sim_partition(
    input: &Relation,
    scheme: PartitionScheme,
    nparts: usize,
    cfg: MemConfig,
) -> PartitionRun {
    let mut mem = SimEngine::new(cfg);
    let parts = partition_relation(&mut mem, scheme, input, nparts, false);
    let moved: usize = parts.iter().map(|r| r.num_tuples()).sum();
    assert_eq!(moved, input.num_tuples(), "partition lost tuples");
    PartitionRun { breakdown: mem.breakdown(), stats: mem.stats(), parts }
}

/// End-to-end result with per-phase breakdowns (Fig 19 rows).
pub struct E2eRun {
    /// I/O partition phase (both relations).
    pub partition: Breakdown,
    /// Join phase (for two-step cache this includes the in-memory
    /// re-partition pass, as the paper counts it).
    pub join: Breakdown,
    /// Matches produced.
    pub matches: u64,
}

impl E2eRun {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.partition.total() + self.join.total()
    }
}

/// Simulate GRACE end-to-end (partition both relations, join all pairs).
pub fn sim_grace(
    gen: &GeneratedJoin,
    pscheme: PartitionScheme,
    jscheme: JoinScheme,
    mem_budget: usize,
    cfg: MemConfig,
) -> E2eRun {
    let mut mem = SimEngine::new(cfg);
    let p = plan::num_partitions(gen.build.size_bytes(), mem_budget);
    let bp = partition_relation(&mut mem, pscheme, &gen.build, p, false);
    let pp = partition_relation(&mut mem, pscheme, &gen.probe, p, false);
    let part_bd = mem.breakdown();
    let params = JoinParams { scheme: jscheme, use_stored_hash: true };
    let mut sink = OutputWriter::new(gen.build.schema().clone(), gen.probe.schema().clone());
    if staged(jscheme) {
        sink = sink.with_output_prefetch();
    }
    for (b, pr) in bp.iter().zip(&pp) {
        let buckets = plan::hash_table_buckets(b.num_tuples(), p);
        let mut table = HashTable::new(buckets, b.num_tuples());
        dispatch_build(&mut mem, &params, &mut table, b);
        dispatch_probe(&mut mem, &params, &table, b, pr, &mut sink);
    }
    let matches = sink.matches();
    assert_eq!(matches, gen.expected_matches, "grace produced wrong matches");
    E2eRun { partition: part_bd, join: mem.breakdown() - part_bd, matches }
}

/// Simulate the "direct cache" cache-partitioning scheme end-to-end.
/// Returns `None` when the relation needs more active partitions than the
/// storage manager allows (the paper's applicability limit).
pub fn sim_direct_cache(
    gen: &GeneratedJoin,
    cp: &CachePartConfig,
    cfg: MemConfig,
) -> Option<E2eRun> {
    let mut mem = SimEngine::new(cfg);
    let (bp, pp, p) = direct_cache_partition(&mut mem, cp, &gen.build, &gen.probe).ok()?;
    let part_bd = mem.breakdown();
    let mut sink = OutputWriter::new(gen.build.schema().clone(), gen.probe.schema().clone());
    direct_cache_join(&mut mem, cp, &bp, &pp, p, &mut sink);
    let matches = sink.matches();
    assert_eq!(matches, gen.expected_matches, "direct cache wrong matches");
    Some(E2eRun { partition: part_bd, join: mem.breakdown() - part_bd, matches })
}

/// Simulate the "two-step cache" cache-partitioning scheme end-to-end.
pub fn sim_two_step(gen: &GeneratedJoin, cp: &CachePartConfig, cfg: MemConfig) -> E2eRun {
    let mut mem = SimEngine::new(cfg);
    let (bp, pp, p) = two_step_partition(&mut mem, cp, &gen.build, &gen.probe);
    let part_bd = mem.breakdown();
    let mut sink = OutputWriter::new(gen.build.schema().clone(), gen.probe.schema().clone());
    two_step_join(&mut mem, cp, &bp, &pp, p, &mut sink);
    let matches = sink.matches();
    assert_eq!(matches, gen.expected_matches, "two-step cache wrong matches");
    E2eRun { partition: part_bd, join: mem.breakdown() - part_bd, matches }
}

/// The four join schemes of Figs 10/11 with theorem-chosen parameters.
pub fn paper_join_schemes(g: usize, d: usize) -> [(&'static str, JoinScheme); 4] {
    [
        ("baseline", JoinScheme::Baseline),
        ("simple", JoinScheme::Simple),
        ("group", JoinScheme::Group { g }),
        ("swp", JoinScheme::Swp { d }),
    ]
}

/// The partition schemes of Figs 14/15.
pub fn paper_partition_schemes(g: usize, d: usize) -> [(&'static str, PartitionScheme); 4] {
    [
        ("baseline", PartitionScheme::Baseline),
        ("simple", PartitionScheme::Simple),
        ("group", PartitionScheme::Group { g }),
        ("swp", PartitionScheme::Swp { d }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_memsim::MemConfig;
    use phj_workload::JoinSpec;

    fn tiny() -> GeneratedJoin {
        JoinSpec {
            build_tuples: 400,
            tuple_size: 24,
            matches_per_build: 2,
            pct_match: 50,
            seed: 2,
        }
        .generate()
    }

    #[test]
    fn sim_join_checks_matches_and_phases() {
        let gen = tiny();
        let r = sim_join(&gen, JoinScheme::Group { g: 8 }, MemConfig::paper(), true);
        assert_eq!(r.matches, gen.expected_matches);
        assert_eq!(r.total(), r.build.total() + r.probe.total());
        assert_eq!(r.breakdown().total(), r.total());
        assert!(r.build.total() > 0 && r.probe.total() > 0);
    }

    #[test]
    fn sim_partition_preserves_tuples() {
        let gen = tiny();
        let r = sim_partition(&gen.build, phj::partition::PartitionScheme::Simple, 5, MemConfig::paper());
        assert_eq!(r.parts.len(), 5);
        assert_eq!(r.parts.iter().map(|p| p.num_tuples()).sum::<usize>(), 400);
        assert!(r.breakdown.total() > 0);
    }

    #[test]
    fn e2e_runners_agree_on_matches() {
        let gen = tiny();
        let grace = sim_grace(
            &gen,
            phj::partition::PartitionScheme::Simple,
            JoinScheme::Group { g: 8 },
            4096,
            MemConfig::paper(),
        );
        assert_eq!(grace.matches, gen.expected_matches);
        assert_eq!(grace.total(), grace.partition.total() + grace.join.total());
        let cp = phj::cachepart::CachePartConfig {
            cache_budget: 4096,
            mem_budget: 16384,
            ..Default::default()
        };
        let direct = sim_direct_cache(&gen, &cp, MemConfig::paper()).expect("applies");
        assert_eq!(direct.matches, gen.expected_matches);
        let two = sim_two_step(&gen, &cp, MemConfig::paper());
        assert_eq!(two.matches, gen.expected_matches);
    }

    #[test]
    fn scheme_lists_have_expected_shape() {
        let j = paper_join_schemes(19, 2);
        assert_eq!(j[2].1, JoinScheme::Group { g: 19 });
        assert_eq!(j[3].1, JoinScheme::Swp { d: 2 });
        let p = paper_partition_schemes(12, 1);
        assert_eq!(p[0].0, "baseline");
    }
}
