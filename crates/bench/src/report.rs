//! Reporting helpers shared by the figure-regeneration binaries: aligned
//! console tables (the "same rows/series the paper reports") plus CSV and
//! JSON output under `bench_out/` for plotting and machine diffing.

use phj_obs::Json;
use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple column-aligned table that mirrors one paper figure/table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifies every cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Print to stdout and write `bench_out/<slug>.csv` plus a
    /// machine-readable `bench_out/<slug>.json` sibling.
    pub fn emit(&self, slug: &str) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (w, c) in widths.iter().zip(cells) {
                s.push_str(&format!("{:>width$}  ", c, width = w));
            }
            s
        };
        println!("{}", line(&self.header));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for r in &self.rows {
            println!("{}", line(r));
        }
        if let Err(e) = self.write_csv(slug) {
            eprintln!("warning: could not write CSV for {slug}: {e}");
        }
        if let Err(e) = self.write_json(slug) {
            eprintln!("warning: could not write JSON for {slug}: {e}");
        }
    }

    fn write_csv(&self, slug: &str) -> std::io::Result<()> {
        let dir = out_dir();
        fs::create_dir_all(&dir)?;
        let mut f = fs::File::create(dir.join(format!("{slug}.csv")))?;
        writeln!(f, "{}", csv_line(&self.header))?;
        for r in &self.rows {
            writeln!(f, "{}", csv_line(r))?;
        }
        Ok(())
    }

    fn write_json(&self, slug: &str) -> std::io::Result<()> {
        let dir = out_dir();
        fs::create_dir_all(&dir)?;
        let mut f = fs::File::create(dir.join(format!("{slug}.json")))?;
        write!(f, "{}", self.to_json().render_pretty())?;
        Ok(())
    }

    /// The table as JSON: `{title, header, rows}`, rows as arrays of
    /// strings in column order.
    pub fn to_json(&self) -> Json {
        let cells = |r: &[String]| Json::Arr(r.iter().map(|c| Json::Str(c.clone())).collect());
        Json::obj(vec![
            ("title", Json::Str(self.title.clone())),
            ("header", cells(&self.header)),
            ("rows", Json::Arr(self.rows.iter().map(|r| cells(r)).collect())),
        ])
    }
}

/// Join cells into one CSV record, quoting per RFC 4180: a cell containing
/// a comma, double quote, CR, or LF is wrapped in quotes with inner quotes
/// doubled; anything else is written bare.
fn csv_line(cells: &[String]) -> String {
    let quoted: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains(['"', ',', '\n', '\r']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    quoted.join(",")
}

/// Output directory for CSVs (override with `PHJ_BENCH_OUT`).
pub fn out_dir() -> PathBuf {
    std::env::var_os("PHJ_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench_out"))
}

/// Experiment scale factor: 1.0 reproduces the paper's sizes; smaller
/// values shrink the workloads proportionally for quick runs. Set
/// `PHJ_SCALE=0.1` for a fast pass.
pub fn scale() -> f64 {
    std::env::var("PHJ_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0 && s <= 1.0)
        .unwrap_or(1.0)
}

/// Scale a byte count by [`scale`].
pub fn scaled(bytes: usize) -> usize {
    ((bytes as f64) * scale()) as usize
}

/// Append one run to the perf-trajectory archive
/// `<out_dir>/history/<slug>.jsonl` (same layout the CLI's `--explain`
/// writes, so `report_diff --history` reads both). Archive failures warn
/// rather than fail: history is a diagnostic, not a result.
#[allow(clippy::too_many_arguments)]
pub fn history_append(
    slug: &str,
    config: &[(String, String)],
    cycles: u64,
    wall_ns: u64,
    tuples: u64,
    coverage: f64,
    pollution: f64,
) {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let rec = phj_analyze::HistoryRecord::from_metrics(
        slug, config, unix_s, cycles, wall_ns, tuples, coverage, pollution,
    );
    let path = out_dir().join("history").join(format!("{slug}.jsonl"));
    if let Err(e) = phj_analyze::history::append(&path, &rec) {
        eprintln!("warning: could not append history {}: {e}", path.display());
    }
}

/// Format a cycle count in millions, for readable series.
pub fn mcycles(c: u64) -> String {
    format!("{:.1}", c as f64 / 1e6)
}

/// Format a ratio as "N.NNx".
pub fn speedup(base: u64, other: u64) -> String {
    if other == 0 {
        "inf".into()
    } else {
        format!("{:.2}x", base as f64 / other as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_emits_and_writes_csv() {
        let dir = std::env::temp_dir().join(format!("phj-report-{}", std::process::id()));
        std::env::set_var("PHJ_BENCH_OUT", &dir);
        let mut t = Table::new("unit test table", &["a", "b"]);
        t.row(&[&1, &"x"]);
        t.row(&[&22, &"yy"]);
        t.emit("unit_test_table");
        let csv = std::fs::read_to_string(dir.join("unit_test_table.csv")).unwrap();
        assert_eq!(csv, "a,b\n1,x\n22,yy\n");
        let json = std::fs::read_to_string(dir.join("unit_test_table.json")).unwrap();
        let parsed = phj_obs::json::parse(&json).expect("sibling JSON parses");
        assert_eq!(parsed.get("title").and_then(Json::as_str), Some("unit test table"));
        assert_eq!(parsed.get("rows").and_then(Json::as_arr).map(|r| r.len()), Some(2));
        std::env::remove_var("PHJ_BENCH_OUT");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_quotes_per_rfc_4180() {
        // Plain cells stay bare; commas, quotes, and newlines trigger
        // quoting with inner quotes doubled.
        let line = csv_line(&[
            "plain".to_string(),
            "has,comma".to_string(),
            "has \"quote\"".to_string(),
            "two\nlines".to_string(),
        ]);
        assert_eq!(line, "plain,\"has,comma\",\"has \"\"quote\"\"\",\"two\nlines\"");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(&[&1]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mcycles(1_500_000), "1.5");
        assert_eq!(speedup(300, 100), "3.00x");
        assert_eq!(speedup(300, 0), "inf");
        assert!(scale() > 0.0 && scale() <= 1.0);
        let s = scaled(1000);
        assert!(s <= 1000);
    }
}
