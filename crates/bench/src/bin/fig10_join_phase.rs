//! Figure 10: join phase performance, four schemes, three knobs.
//!
//! "(a) varying the tuple size, (b) the number of probe tuples matching a
//! build tuple, (c) the percentage of tuples that have matches. [...] In
//! all experiments, the build partition fits tightly in the 50MB memory.
//! The three sets of experiments share a pivot point: tuples are 100B
//! long and every build tuple matches two probe tuples. Group prefetching
//! and software-pipelined prefetching achieve 2.4-2.9X and 2.1-2.7X
//! speedups over the baseline [...] simple prefetching only obtains
//! marginal benefit, a 1.1-1.2X speedup."
//!
//! `G` and `D` come from the Theorem-1/2 predictions for each workload.

use phj::cost;
use phj::model::{min_group_size, min_prefetch_distance};
use phj_bench::report::{mcycles, scaled, speedup, Table};
use phj_bench::runner::{paper_join_schemes, sim_join};
use phj_memsim::MemConfig;
use phj_workload::{tuples_for, JoinSpec};

const MEM: usize = 50 << 20;

fn run_row(t: &mut Table, label: &str, spec: &JoinSpec) {
    let costs = cost::probe_stage_costs(true, 2 * spec.tuple_size);
    let cfg = MemConfig::paper();
    let g = min_group_size(cfg.t_full, cfg.t_next, &costs).g as usize;
    let d = min_prefetch_distance(cfg.t_full, cfg.t_next, &costs) as usize;
    let gen = spec.generate();
    let mut cells: Vec<String> = vec![label.to_string(), format!("G={g},D={d}")];
    let mut base = 0u64;
    for (_, scheme) in paper_join_schemes(g, d) {
        let r = sim_join(&gen, scheme, MemConfig::paper(), true);
        if base == 0 {
            base = r.total();
        }
        cells.push(format!("{} ({})", mcycles(r.total()), speedup(base, r.total())));
    }
    let refs: Vec<&dyn std::fmt::Display> =
        cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
    t.row(&refs);
}

fn main() {
    let mem = scaled(MEM);
    let pivot = JoinSpec::pivot(mem);

    // (a) tuple size 20–140 B (50 MB build partition throughout).
    let mut ta = Table::new(
        "Fig 10(a) — join phase vs tuple size (Mcycles, speedup over baseline)",
        &["tuple size", "params", "baseline", "simple", "group", "swp"],
    );
    for size in [20usize, 60, 100, 140] {
        let spec = JoinSpec {
            build_tuples: tuples_for(mem, size),
            tuple_size: size,
            ..pivot
        };
        run_row(&mut ta, &format!("{size}B"), &spec);
    }
    ta.emit("fig10a_tuple_size");

    // (b) matches per build tuple 1–4.
    let mut tb = Table::new(
        "Fig 10(b) — join phase vs matches per build tuple",
        &["matches", "params", "baseline", "simple", "group", "swp"],
    );
    for m in [1usize, 2, 3, 4] {
        let spec = JoinSpec { matches_per_build: m, ..pivot };
        run_row(&mut tb, &m.to_string(), &spec);
    }
    tb.emit("fig10b_matches");

    // (c) percentage of tuples with matches 25–100%.
    let mut tc = Table::new(
        "Fig 10(c) — join phase vs percentage of matched tuples",
        &["% matched", "params", "baseline", "simple", "group", "swp"],
    );
    for pct in [25u8, 50, 75, 100] {
        let spec = JoinSpec { pct_match: pct, ..pivot };
        run_row(&mut tc, &format!("{pct}%"), &spec);
    }
    tc.emit("fig10c_pct_match");
}
