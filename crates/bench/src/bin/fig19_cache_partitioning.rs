//! Figure 19: prefetching vs cache partitioning when "direct cache"
//! applies.
//!
//! "Figure 19(a)-(c) show experiments joining a 200MB build relation with
//! a 400MB probe relation. Every build tuple matches two probe tuples. We
//! increase the tuple size [...] 'Direct cache' achieves the best
//! performance in the join phase by avoiding most cache misses. However,
//! it suffers from larger overheads in the partition phase for generating
//! much more partitions. 'Two-step cache' suffers from the overhead of
//! the additional partition step and is 50-150% worse than the
//! prefetching schemes. Overall, our prefetching schemes are the best
//! (slightly better than 'direct cache'). In Figure 19(d), we keep the
//! tuple size to be 100B and vary the percentage of tuples that have
//! matches."
//!
//! Rows report partition-phase, join-phase, and total cycles per scheme;
//! all schemes' I/O partition phases use the combined prefetching scheme
//! (§7.5).

use phj::cachepart::CachePartConfig;
use phj::join::JoinScheme;
use phj::partition::PartitionScheme;
use phj_bench::report::{mcycles, scaled, Table};
use phj_bench::runner::{sim_direct_cache, sim_grace, sim_two_step, E2eRun};
use phj_memsim::MemConfig;
use phj_workload::{tuples_for, JoinSpec};

fn emit_point(t: &mut Table, label: &str, spec: &JoinSpec, mem_budget: usize) {
    let gen = spec.generate();
    let cp = CachePartConfig { mem_budget, ..Default::default() };
    let pscheme = PartitionScheme::combined_default();
    let runs: Vec<(&str, Option<E2eRun>)> = vec![
        (
            "baseline",
            Some(sim_grace(&gen, pscheme, JoinScheme::Baseline, mem_budget, MemConfig::paper())),
        ),
        (
            "group",
            Some(sim_grace(&gen, pscheme, JoinScheme::Group { g: 16 }, mem_budget, MemConfig::paper())),
        ),
        (
            "swp",
            Some(sim_grace(&gen, pscheme, JoinScheme::Swp { d: 1 }, mem_budget, MemConfig::paper())),
        ),
        ("direct cache", sim_direct_cache(&gen, &cp, MemConfig::paper())),
        ("2-step cache", Some(sim_two_step(&gen, &cp, MemConfig::paper()))),
    ];
    for (name, run) in runs {
        match run {
            Some(r) => t.row(&[
                &label,
                &name,
                &mcycles(r.partition.total()),
                &mcycles(r.join.total()),
                &mcycles(r.total()),
            ]),
            None => t.row(&[&label, &name, &"n/a", &"n/a", &"n/a (too many partitions)"]),
        }
    }
}

fn main() {
    let build_bytes = scaled(200 << 20);
    let mem_budget = scaled(50 << 20);

    // (a)-(c): tuple size sweep at 200 MB ⋈ 400 MB, 2 matches per build.
    let mut ta = Table::new(
        "Fig 19(a-c) — vs cache partitioning, tuple size sweep (Mcycles)",
        &["tuple size", "scheme", "partition", "join", "total"],
    );
    for size in [20usize, 60, 100, 140] {
        let spec = JoinSpec {
            build_tuples: tuples_for(build_bytes, size),
            tuple_size: size,
            matches_per_build: 2,
            pct_match: 100,
            seed: 0xFEED,
        };
        emit_point(&mut ta, &format!("{size}B"), &spec, mem_budget);
    }
    ta.emit("fig19abc_tuple_size");

    // (d): percentage of matched tuples at 100 B.
    let mut td = Table::new(
        "Fig 19(d) — vs cache partitioning, % matched sweep at 100B (Mcycles)",
        &["% matched", "scheme", "partition", "join", "total"],
    );
    for pct in [25u8, 50, 75, 100] {
        let spec = JoinSpec {
            build_tuples: tuples_for(build_bytes, 100),
            tuple_size: 100,
            matches_per_build: 2,
            pct_match: pct,
            seed: 0xFEED,
        };
        emit_point(&mut td, &format!("{pct}%"), &spec, mem_budget);
    }
    td.emit("fig19d_pct_match");
}
