//! Figure 1: execution-time breakdown of the GRACE baseline.
//!
//! "The 'partition' experiment divides a 1GB relation into 800
//! partitions, while the 'join' experiment joins a 50MB build partition
//! with a 100MB probe partition. [...] both the partition and join phases
//! spend a significant fraction of their time — 82% and 73%,
//! respectively — stalled on data cache misses."

use phj::join::JoinScheme;
use phj::partition::PartitionScheme;
use phj_bench::report::{mcycles, scaled, Table};
use phj_bench::runner::{sim_join, sim_partition};
use phj_memsim::{Breakdown, MemConfig};
use phj_workload::{relation_of_bytes, JoinSpec};

fn pct(part: u64, total: u64) -> String {
    format!("{:.0}%", 100.0 * part as f64 / total.max(1) as f64)
}

fn row(t: &mut Table, name: &str, b: Breakdown) {
    t.row(&[
        &name,
        &mcycles(b.total()),
        &pct(b.busy, b.total()),
        &pct(b.dcache_stall, b.total()),
        &pct(b.dtlb_stall, b.total()),
        &pct(b.other_stall, b.total()),
    ]);
}

fn main() {
    let mut t = Table::new(
        "Fig 1 — GRACE user-time breakdown (paper: partition 82% / join 73% dcache stalls)",
        &["experiment", "Mcycles", "busy", "dcache", "dtlb", "other"],
    );

    // Partition: 1 GB relation into 800 partitions.
    let input = relation_of_bytes(scaled(1 << 30), 100);
    let p = sim_partition(&input, PartitionScheme::Baseline, 800, MemConfig::paper());
    row(&mut t, "partition 1GB->800", p.breakdown);
    drop(p);
    drop(input);

    // Join: 50 MB build partition with 100 MB probe partition.
    let gen = JoinSpec::pivot(scaled(50 << 20)).generate();
    let j = sim_join(&gen, JoinScheme::Baseline, MemConfig::paper(), true);
    row(&mut t, "join 50MB x 100MB", j.breakdown());

    t.emit("fig01_breakdown");
}
