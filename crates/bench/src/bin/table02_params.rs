//! Table 2: simulation parameters.
//!
//! Prints the memory-hierarchy configuration the simulator uses, next to
//! the paper's published values, so any divergence is explicit.

use phj_bench::report::Table;
use phj_memsim::MemConfig;

fn main() {
    let c = MemConfig::paper();
    let mut t = Table::new(
        "Table 2 — simulation parameters (paper value = ours unless noted)",
        &["parameter", "value"],
    );
    let rows: Vec<(&str, String)> = vec![
        ("clock rate", "1 GHz".into()),
        ("cache line size", format!("{} B", c.line_size)),
        ("L1 data cache", format!("{} KB, {}-way", c.l1_size / 1024, c.l1_assoc)),
        ("L2 unified cache", format!("{} KB, {}-way", c.l2_size / 1024, c.l2_assoc)),
        ("data miss handlers", format!("{}", c.miss_handlers)),
        ("D-TLB", format!("{} entries, fully assoc.", c.tlb_entries)),
        ("page size", format!("{} KB", c.page_size / 1024)),
        ("TLB walk (hardware)", format!("{} cycles", c.tlb_walk)),
        ("memory latency T", format!("{} cycles", c.t_full)),
        ("pipelined miss T_next", format!("{} cycles", c.t_next)),
        ("L2 hit latency", format!("{} cycles", c.l2_hit)),
        ("prefetch issue cost", format!("{} cycle(s)", c.prefetch_issue)),
    ];
    for (k, v) in &rows {
        t.row(&[k, v]);
    }
    t.emit("table02_params");
}
