//! Figure 17: partition-phase cache-miss breakdown vs G and D — the
//! "reasons for the poor performance when parameters are too small or too
//! large" (§7.4), mirroring Fig 13 for the partition loop.

use phj::partition::PartitionScheme;
use phj_bench::report::{scale, Table};
use phj_bench::runner::sim_partition;
use phj_memsim::MemConfig;
use phj_workload::single_relation;

fn main() {
    let n = (10_000_000f64 * scale() * 0.4) as usize;
    let input = single_relation(n, 100);
    let cfg = || {
        let mut c = MemConfig::paper();
        c.classify_conflicts = true;
        c
    };
    let k = |v: u64| format!("{:.0}k", v as f64 / 1e3);

    let mut tg = Table::new(
        "Fig 17 (left) — partition miss breakdown vs G (line counts)",
        &["G", "l1 hits", "partial", "l2 fills", "mem fills", "conflict", "pf evicted"],
    );
    for g in [2usize, 4, 12, 32, 128, 512] {
        let r = sim_partition(&input, PartitionScheme::Group { g }, 800, cfg());
        let s = r.stats;
        tg.row(&[&g, &k(s.l1_hits), &k(s.l1_inflight_hits), &k(s.l2_hits), &k(s.mem_misses), &k(s.l1_conflict_misses), &k(s.pf_evicted_unused)]);
    }
    tg.emit("fig17_group_misses");

    let mut td = Table::new(
        "Fig 17 (right) — partition miss breakdown vs D (line counts)",
        &["D", "l1 hits", "partial", "l2 fills", "mem fills", "conflict", "pf evicted"],
    );
    for d in [1usize, 2, 4, 16, 64, 256] {
        let r = sim_partition(&input, PartitionScheme::Swp { d }, 800, cfg());
        let s = r.stats;
        td.row(&[&d, &k(s.l1_hits), &k(s.l1_inflight_hits), &k(s.l2_hits), &k(s.mem_misses), &k(s.l1_conflict_misses), &k(s.pf_evicted_unused)]);
    }
    td.emit("fig17_swp_misses");
}
