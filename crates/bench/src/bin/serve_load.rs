//! Open-loop load generator for the `phj serve` query daemon.
//!
//! Starts an in-process [`Server`] on an ephemeral port, precomputes the
//! expected checksum of every request class with the same sequential
//! kernel the daemon runs (`phj_server::query::run`), then fires a
//! seeded Poisson-ish arrival process at it: exponential inter-arrival
//! gaps from a fixed-seed RNG, one client thread per query, nobody
//! waiting for anybody's response before sending the next (open loop —
//! the arrival clock, not the service rate, decides when queries land).
//! The first [`BURST`] arrivals land at t=0 so the run provably reaches
//! ≥ BURST queries in flight regardless of how fast the host drains.
//!
//! Every response is checked against its class's expected checksum —
//! the daemon under concurrency must be bit-identical to the sequential
//! CLI path — and the run fails loudly on any mismatch, admission
//! over-budget, or missed concurrency floor. Emits a `serve_load`
//! latency table (p50/p95/p99 per class and overall, plus throughput)
//! as console/CSV/JSON under `bench_out/` and appends the overall row
//! to the perf-trajectory history, like `thread_scaling` does.
//!
//! A second, deliberately starved phase then restarts the daemon on a
//! small budget, parks a dynamic disk join on most of it, and fires
//! arrivals that do not fit: admission must revoke memory from the
//! running query (grant shrink → victim spill → ack) instead of
//! rejecting or deadlocking, every queued arrival must eventually run,
//! and every answer — including the shrunk disk join's — must still be
//! bit-identical to the sequential kernel.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phj_bench::report::{history_append, scaled, Table};
use phj_server::proto::{AggRequest, DiskJoinRequest, JoinRequest, Request, Response, WireScheme};
use phj_server::{query, Connection, ServeConfig, Server};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Total queries fired at the daemon.
const QUERIES: usize = 48;
/// Arrivals pinned to t=0: the guaranteed concurrency floor.
const BURST: usize = 8;
/// Mean inter-arrival gap for the open-loop tail, milliseconds.
const MEAN_GAP_MS: f64 = 4.0;
/// Arrival-process seed (also printed, so a run is reproducible).
const SEED: u64 = 0x5E41_E10AD;

/// One request class in the mix. `weight` slots of the deterministic
/// round-robin deal; the label names the table row.
struct Class {
    label: &'static str,
    req: Request,
}

fn classes() -> Vec<Class> {
    // Each class carries a distinct nonzero trace id so the daemon's
    // query_trace sections (the wait-time source below) are easy to
    // attribute when a run is inspected by hand.
    let join = |label, scheme, seed: u64| Class {
        label,
        req: Request::Join(JoinRequest {
            build_tuples: scaled(4_000) as u64,
            tuple_size: 100,
            matches_per_build: 2,
            pct_match: 100,
            scheme,
            mem_budget: 1 << 20,
            seed,
            trace_id: 0x7E57_0000_0000_0000 | seed,
        }),
    };
    let agg = |label, scheme, rows: usize| Class {
        label,
        req: Request::Agg(AggRequest {
            rows: scaled(rows) as u64,
            keys: 2_000,
            scheme,
            mem_budget: 0,
            trace_id: 0x7E57_A000_0000_0000 | rows as u64,
        }),
    };
    vec![
        join("join/group", WireScheme::Group { g: 16 }, 0x11D0),
        join("join/swp", WireScheme::Swp { d: 4 }, 0xBEEF),
        join("join/baseline", WireScheme::Baseline, 0xCAFE),
        agg("agg/group", WireScheme::Group { g: 16 }, 60_000),
        agg("agg/swp", WireScheme::Swp { d: 4 }, 40_000),
    ]
}

/// Latency percentile (nearest-rank) over a sorted slice.
fn pctl(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

struct Outcome {
    class: usize,
    latency: Duration,
    checksum: u64,
    /// Admission FIFO wait, from the response's `query_trace` section.
    queue_wait: Duration,
    /// Queue-head budget wait, from the same section.
    grant_wait: Duration,
}

/// Pull the admission-wait breakdown out of a result's report. The
/// daemon runs with `trace: true`, so a missing section is a bug worth
/// failing a bench run over.
fn wait_breakdown(report_json: &str) -> (Duration, Duration) {
    let sec = phj_obs::RunReport::parse(report_json)
        .expect("daemon reports parse")
        .query_trace
        .expect("daemon runs traced; query_trace section missing");
    (
        Duration::from_nanos(sec.queue_wait_ns),
        Duration::from_nanos(sec.grant_wait_ns),
    )
}

/// Append one JSON line of queue-wait/grant-wait percentiles for a
/// phase to `bench_out/history/<slug>_waits.jsonl`. Deliberately a
/// separate archive from [`history_append`]'s records: these are
/// *measurements*, and folding them into the config fields there would
/// give every run a unique fingerprint and blind the trend detector.
fn append_wait_history(slug: &str, mut queue: Vec<Duration>, mut grant: Vec<Duration>) {
    queue.sort();
    grant.sort();
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut line = format!("{{\"v\":1,\"slug\":\"{slug}\",\"unix_s\":{unix_s}");
    for (name, sample) in [("queue_wait", &queue), ("grant_wait", &grant)] {
        for (p, tag) in [(50.0, "p50"), (95.0, "p95"), (99.0, "p99")] {
            line.push_str(&format!(",\"{name}_{tag}_ms\":{}", ms(pctl(sample, p))));
        }
    }
    line.push_str("}\n");
    let dir = phj_bench::report::out_dir().join("history");
    let path = dir.join(format!("{slug}_waits.jsonl"));
    let write = std::fs::create_dir_all(&dir).and_then(|()| {
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()))
    });
    if let Err(e) = write {
        eprintln!("warning: could not append wait history {}: {e}", path.display());
    } else {
        println!("wait percentiles: {}", path.display());
    }
}

/// The starved phase: a 24 MB daemon, a dynamic disk join granted
/// 20 MB of it, and arrivals that only fit if admission claws memory
/// back from the running query.
fn contended_phase() {
    const BUDGET: u64 = 24 << 20;
    const DISK_GRANT: u64 = 20 << 20;
    const ARRIVALS: usize = 3;

    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        mem_budget: BUDGET,
        min_grant: 1 << 20,
        max_queue: 8,
        max_conns: 16,
        trace: true,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = srv.local_addr();
    println!(
        "\nserve_load contended: budget {} MB, disk join holds {} MB, \
         {ARRIVALS} arrivals of 8 MB each",
        BUDGET >> 20,
        DISK_GRANT >> 20
    );

    let disk = Request::DiskJoin(DiskJoinRequest {
        build_tuples: 24_000,
        tuple_size: 64,
        matches_per_build: 2,
        pct_match: 100,
        mem_budget: DISK_GRANT,
        seed: 0xD15C,
        mode: 2,
        trace_id: 0x7E57_D000_0000_0001,
    });
    let arrival = Request::Agg(AggRequest {
        rows: 200_000,
        keys: 2_000,
        scheme: WireScheme::Group { g: 16 },
        mem_budget: 8 << 20,
        trace_id: 0x7E57_A000_0000_0002,
    });
    let disk_want = query::run(0, &disk).expect("disk reference").checksum;
    let arrival_want = query::run(0, &arrival).expect("agg reference").checksum;

    // Park the disk join on most of the budget, then hold the arrivals
    // until its grant is live so every one of them finds the budget
    // exhausted on admission.
    let t0 = Instant::now();
    let disk_thread = {
        let disk = disk.clone();
        std::thread::spawn(move || {
            let mut conn = Connection::connect(addr).expect("connect");
            conn.request(&disk).expect("disk request")
        })
    };
    let adm = Arc::clone(srv.admission());
    while adm.outstanding() < DISK_GRANT {
        assert!(t0.elapsed() < Duration::from_secs(30), "disk grant never appeared");
        std::thread::yield_now();
    }
    let arrivals: Vec<_> = (0..ARRIVALS)
        .map(|_| {
            let arrival = arrival.clone();
            std::thread::spawn(move || {
                let sent = Instant::now();
                let mut conn = Connection::connect(addr).expect("connect");
                let resp = conn.request(&arrival).expect("arrival request");
                (resp, sent.elapsed())
            })
        })
        .collect();

    let disk_resp = disk_thread.join().unwrap();
    let Response::Result(disk_r) = disk_resp else {
        panic!("disk join failed under revocation: {disk_resp:?}");
    };
    assert_eq!(disk_r.kind, query::KIND_DISK);
    assert_eq!(
        disk_r.checksum, disk_want,
        "disk join answer drifted after its grant was revoked"
    );
    let mut worst = Duration::ZERO;
    let mut queue_waits = Vec::new();
    let mut grant_waits = Vec::new();
    for h in arrivals {
        let (resp, lat) = h.join().unwrap();
        let Response::Result(r) = resp else {
            panic!("arrival rejected under contention: {resp:?}");
        };
        assert_eq!(r.checksum, arrival_want, "arrival answer drifted under contention");
        let (qw, gw) = wait_breakdown(&r.report_json);
        queue_waits.push(qw);
        grant_waits.push(gw);
        worst = worst.max(lat);
    }
    let wall = t0.elapsed();
    // On a starved budget every arrival must have actually waited for a
    // grant — zero measured wait would mean the breakdown is fiction.
    assert!(
        grant_waits.iter().chain(&queue_waits).any(|w| *w > Duration::ZERO),
        "starved arrivals report zero admission wait"
    );

    let sheds = adm.sheds();
    let peak_waiting = adm.peak_waiting();
    assert!(sheds >= 1, "starved arrivals never triggered a grant shed");
    assert!(peak_waiting >= 1, "arrivals never queued on the starved budget");
    assert_eq!(adm.outstanding(), 0, "grants leaked");
    let (admitted, rejected) = adm.totals();
    assert_eq!(admitted, 1 + ARRIVALS as u64);
    assert_eq!(rejected, 0, "queueing plus shedding must absorb this mix");
    println!(
        "contended: {sheds} grant shed(s), peak queue {peak_waiting}, \
         worst arrival latency {worst:?}, all checksums exact"
    );
    append_wait_history("serve_contended", queue_waits, grant_waits);
    history_append(
        "serve_contended",
        &[
            ("budget".into(), BUDGET.to_string()),
            ("disk_grant".into(), DISK_GRANT.to_string()),
            ("arrivals".into(), ARRIVALS.to_string()),
            ("sheds".into(), sheds.to_string()),
            ("peak_waiting".into(), peak_waiting.to_string()),
            ("worst_arrival_ms".into(), format!("{:.2}", worst.as_secs_f64() * 1e3)),
        ],
        0,
        wall.as_nanos() as u64,
        (1 + ARRIVALS) as u64,
        0.0,
        0.0,
    );
    srv.stop();
}

fn main() {
    let budget: u64 = (scaled(96 << 20) as u64).max(16 << 20);
    let srv = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 8,
        mem_budget: budget,
        min_grant: 1 << 20,
        max_queue: QUERIES,
        // Every query is its own connection; the load level, not the
        // conn cap, is the variable under test here.
        max_conns: QUERIES.max(64),
        // Traced: every response's query_trace section feeds the
        // queue-wait/grant-wait percentiles recorded below.
        trace: true,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = srv.local_addr();
    println!(
        "serve_load: {QUERIES} queries (first {BURST} at t=0, then mean gap {MEAN_GAP_MS} ms), \
         seed {SEED:#x}, budget {} MB, daemon {addr}",
        budget >> 20
    );

    // Expected checksums from the sequential kernel, before any load.
    let mix = classes();
    let expected: Vec<_> = mix
        .iter()
        .map(|c| query::run(0, &c.req).expect("reference run").checksum)
        .collect();

    // Deterministic schedule: class round-robins through the mix,
    // arrival offsets are a running sum of exponential gaps (zero for
    // the opening burst).
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut at = Duration::ZERO;
    let schedule: Vec<(usize, Duration)> = (0..QUERIES)
        .map(|i| {
            if i >= BURST {
                let u: f64 = rng.gen();
                at += Duration::from_secs_f64(MEAN_GAP_MS / 1e3 * -(1.0 - u).ln());
            }
            (i % mix.len(), at)
        })
        .collect();

    // Fire: one thread per query, all clocks relative to one t0. The
    // in-flight counter brackets the request round trip; its high-water
    // mark is the measured concurrency.
    let inflight = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let handles: Vec<_> = schedule
        .into_iter()
        .map(|(class, when)| {
            let req = mix[class].req.clone();
            let inflight = Arc::clone(&inflight);
            let peak = Arc::clone(&peak);
            std::thread::spawn(move || -> Outcome {
                if let Some(wait) = when.checked_sub(t0.elapsed()) {
                    std::thread::sleep(wait);
                }
                let now = inflight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                let sent = Instant::now();
                let mut conn = Connection::connect(addr).expect("connect");
                let resp = conn.request(&req).expect("request");
                let latency = sent.elapsed();
                inflight.fetch_sub(1, Ordering::SeqCst);
                match resp {
                    Response::Result(r) => {
                        let (queue_wait, grant_wait) = wait_breakdown(&r.report_json);
                        Outcome { class, latency, checksum: r.checksum, queue_wait, grant_wait }
                    }
                    other => panic!("class {class}: daemon answered {other:?}"),
                }
            })
        })
        .collect();
    let outcomes: Vec<Outcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = t0.elapsed();

    // Correctness before numbers: concurrency under load must not have
    // perturbed a single checksum.
    let mut mismatches = 0;
    for o in &outcomes {
        if o.checksum != expected[o.class] {
            eprintln!(
                "CHECKSUM MISMATCH class {}: got {:#018x}, sequential kernel says {:#018x}",
                mix[o.class].label, o.checksum, expected[o.class]
            );
            mismatches += 1;
        }
    }
    assert_eq!(mismatches, 0, "daemon results drifted from the sequential kernel");

    let adm = srv.admission();
    let grant_peak = adm.peak_outstanding();
    let (admitted, rejected) = adm.totals();
    assert!(grant_peak <= budget, "grants exceeded the budget");
    assert!(grant_peak > 0, "queries ran without grants");
    assert_eq!(adm.outstanding(), 0, "grants leaked");
    assert_eq!(admitted, QUERIES as u64);
    assert_eq!(rejected, 0, "mix is sized to fit; a rejection is a bug");
    let peak_inflight = peak.load(Ordering::SeqCst);
    assert!(
        peak_inflight >= BURST as u64 / 2,
        "concurrency floor missed: peak in-flight {peak_inflight}"
    );

    let mut table = Table::new(
        format!("serve_load: {QUERIES} mixed queries against one daemon, seed {SEED:#x}"),
        &["class", "queries", "p50 ms", "p95 ms", "p99 ms", "max ms", "qwait p95", "gwait p95"],
    );
    let mut rows = |label: &str, mut lat: Vec<Duration>, mut qw: Vec<Duration>, mut gw: Vec<Duration>| {
        lat.sort();
        qw.sort();
        gw.sort();
        table.row(&[
            &label,
            &lat.len(),
            &ms(pctl(&lat, 50.0)),
            &ms(pctl(&lat, 95.0)),
            &ms(pctl(&lat, 99.0)),
            &ms(*lat.last().unwrap_or(&Duration::ZERO)),
            &ms(pctl(&qw, 95.0)),
            &ms(pctl(&gw, 95.0)),
        ]);
    };
    for (i, c) in mix.iter().enumerate() {
        let of = |f: fn(&Outcome) -> Duration| {
            outcomes.iter().filter(|o| o.class == i).map(f).collect::<Vec<_>>()
        };
        rows(c.label, of(|o| o.latency), of(|o| o.queue_wait), of(|o| o.grant_wait));
    }
    rows(
        "overall",
        outcomes.iter().map(|o| o.latency).collect(),
        outcomes.iter().map(|o| o.queue_wait).collect(),
        outcomes.iter().map(|o| o.grant_wait).collect(),
    );
    table.emit("serve_load");

    let qps = QUERIES as f64 / wall.as_secs_f64();
    println!(
        "\nthroughput: {qps:.1} queries/s over {wall:?}; peak in-flight {peak_inflight}, \
         peak grant {} MB of {} MB budget",
        grant_peak >> 20,
        budget >> 20
    );
    // Admission-wait percentiles land in their own archive, so a
    // queueing regression shows up in history diffs even when raw
    // latency hides it behind execution-time noise.
    append_wait_history(
        "serve_load",
        outcomes.iter().map(|o| o.queue_wait).collect(),
        outcomes.iter().map(|o| o.grant_wait).collect(),
    );
    history_append(
        "serve_load",
        &[
            ("queries".into(), QUERIES.to_string()),
            ("seed".into(), format!("{SEED:#x}")),
            ("threads".into(), "8".into()),
            ("budget".into(), budget.to_string()),
            ("peak_inflight".into(), peak_inflight.to_string()),
            ("qps".into(), format!("{qps:.1}")),
        ],
        0,
        wall.as_nanos() as u64,
        QUERIES as u64,
        0.0,
        0.0,
    );
    srv.stop();

    contended_phase();
}
