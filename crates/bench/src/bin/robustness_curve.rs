//! Robustness curves: elapsed time vs memory budget, static GRACE vs
//! hybrid vs dynamic hybrid, under uniform and skewed build keys.
//!
//! The point of the dynamic hybrid join is the *shape* of this curve:
//! a static GRACE join pays the full spill-everything cost at every
//! budget, while the hybrid keeps as many partitions memory-resident
//! as the budget allows — so its curve must sit at or below GRACE
//! everywhere and fall as the budget grows, with no cliff. A fourth
//! series revokes half the dynamic join's budget *mid-run* (the
//! daemon's grant-shrink path), which must degrade the time smoothly
//! and never the answer.
//!
//! Every cell is checksum-checked against the in-memory sequential
//! kernel on the same relations, and the bin fails loudly if the
//! dynamic curve rises above static GRACE (beyond a noise tolerance)
//! or is not monotone non-increasing in the budget. Emits
//! `robustness_curve` console/CSV under `bench_out/` and appends to
//! the perf-trajectory history. `PHJ_SCALE` shrinks the workload and
//! `PHJ_CURVE_POINTS` trims the budget sweep for quick CI passes.

use std::sync::Arc;
use std::time::Instant;

use phj::grace::{grace_join_with_sink, GraceConfig};
use phj::sink::{CountSink, JoinSink};
use phj_bench::report::{history_append, scaled, Table};
use phj_disk::{
    grace_join_files, DiskGraceConfig, DiskJoinMode, FileRelation, LiveBudget,
};
use phj_storage::{Relation, PAGE_SIZE};
use phj_workload::{zipf_relation, Zipf};

/// Noise tolerance for the curve-shape assertions. Cell times land
/// around a few hundred ms, where page-cache state and CI neighbors
/// move individual runs by tens of percent; a real robustness cliff
/// (the failure mode this bench exists to catch) is 2-5x.
const TOL: f64 = 1.5;

/// Timed repetitions per cell; the median is the reported time (a
/// median is robust to one lucky or unlucky outlier rep, which a
/// minimum is not — and the curve assertions compare cells).
const REPS: usize = 3;

fn build_relations(theta: f64, build_bytes: usize, seed: u64) -> (Relation, Relation) {
    // Build keys Zipf(θ)-distributed over a key space the size of the
    // build relation: under skew the hot keys hash into the same
    // partitions, so partition sizes are uneven and the hybrid's
    // largest-first victim choice actually matters. Probes are
    // near-uniform over the same key space so the match count stays
    // linear in the probe size (heavy skew on both sides would square
    // the hot key's matches).
    let tuple_size = 64;
    let n = build_bytes / tuple_size;
    let build = zipf_relation(n, tuple_size, n, theta, seed);
    let probe = zipf_relation(2 * n, tuple_size, n, 0.0, seed ^ 0x9E37_79B9);
    (build, probe)
}

/// In-memory reference answer for one relation pair.
fn reference(build: &Relation, probe: &Relation) -> (u64, u64) {
    let mut sink = CountSink::new();
    grace_join_with_sink(
        &mut phj_memsim::NativeModel,
        &GraceConfig { mem_budget: 1 << 30, ..Default::default() },
        build,
        probe,
        &mut sink,
    );
    (sink.matches(), sink.checksum())
}

struct Cell {
    elapsed_s: f64,
    resident: usize,
    final_budget: u64,
}

/// A mid-run grant revocation: shrink the live budget to `to` bytes,
/// `after_s` seconds into the run.
#[derive(Clone, Copy)]
struct Revoke {
    to: u64,
    after_s: f64,
}

/// One timed disk join; panics on any checksum drift from the kernel.
fn run_cell(
    dir: &std::path::Path,
    fb: &FileRelation,
    fp: &FileRelation,
    mode: DiskJoinMode,
    budget: usize,
    revoke: Option<Revoke>,
    want: (u64, u64),
) -> Cell {
    let mut times = Vec::with_capacity(REPS);
    let mut resident = 0;
    let mut final_budget = 0;
    for _ in 0..REPS {
        let live = Arc::new(LiveBudget::new(budget as u64));
        let revoker = revoke.map(|r| {
            // The shrink lands mid-run (delay calibrated from the
            // GRACE cell), exactly as a daemon grant revocation would:
            // the join spills victims at its next safe point.
            let live = Arc::clone(&live);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_secs_f64(r.after_s));
                live.request_shrink(r.to);
            })
        });
        let cfg = DiskGraceConfig {
            mem_budget: budget,
            mode,
            live_budget: (mode == DiskJoinMode::Dynamic).then(|| Arc::clone(&live)),
            num_stripes: 4,
            stripe_pages: 16,
            ..DiskGraceConfig::new(dir)
        };
        let t0 = Instant::now();
        let report = grace_join_files(&cfg, fb, fp).expect("disk join");
        let elapsed = t0.elapsed().as_secs_f64();
        if std::env::var_os("PHJ_CURVE_DEBUG").is_some() {
            eprintln!(
                "  [{:7}] budget {:5} KB: total {:.3}s = part {:.3}s + join {:.3}s \
                 (stall {:.3}s), p={}, resident={}, degraded={}, transitions={}",
                mode.label(),
                budget >> 10,
                elapsed,
                report.partition_s,
                report.join_s,
                report.input_stall_s,
                report.num_partitions,
                report.resident_partitions,
                report.degradation.len(),
                report.transitions.len()
            );
        }
        assert_eq!(
            (report.matches, report.checksum),
            want,
            "{} at {} KB drifted from the sequential kernel",
            mode.label(),
            budget >> 10
        );
        if let Some(t) = revoker {
            t.join().unwrap();
        }
        if let Some(r) = revoke {
            // The run either honored the shrink (usual case) or finished
            // before it landed; anything else is a protocol bug.
            assert!(
                report.final_budget == r.to || report.final_budget == budget as u64,
                "revoked run ended on budget {} (granted {}, revoked to {})",
                report.final_budget,
                budget,
                r.to
            );
        }
        times.push(elapsed);
        resident = report.resident_partitions;
        final_budget = report.final_budget;
    }
    times.sort_by(f64::total_cmp);
    Cell { elapsed_s: times[times.len() / 2], resident, final_budget }
}

fn main() {
    // Warm the Zipf table cache out of the timed region.
    let _ = Zipf::new(16, 0.9);
    let build_bytes = scaled(8 << 20).max(64 * PAGE_SIZE);
    // `PHJ_CURVE_POINTS` trims the sweep from the tight end (CI smoke
    // runs 3 points; the full curve is 4).
    let points: usize = std::env::var("PHJ_CURVE_POINTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&p| (1..=4).contains(&p))
        .unwrap_or(4);
    let budgets: Vec<usize> = [8usize, 4, 2, 1][4 - points..]
        .iter()
        .map(|div| (build_bytes / div).max(2 * PAGE_SIZE))
        .collect();
    let dir = std::env::temp_dir().join(format!("phj-robustness-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut table = Table::new(
        "Robustness curve: elapsed s vs budget (GRACE | hybrid | dynamic | dynamic revoked to half)",
        &["theta", "budget KB", "grace s", "hybrid s", "dynamic s", "resident", "revoked s", "final KB"],
    );
    let mut history: Vec<(String, String)> = Vec::new();
    let t_all = Instant::now();

    for theta in [0.0f64, 0.9] {
        let (build, probe) = build_relations(theta, build_bytes, 0x0b57_ac1e);
        let want = reference(&build, &probe);
        println!(
            "theta {theta:.1}: {} build x {} probe tuples, {} matches expected",
            build.num_tuples(),
            probe.num_tuples(),
            want.0
        );
        let fb = FileRelation::create(&dir, "build", &build, 4, 16).unwrap();
        let fp = FileRelation::create(&dir, "probe", &probe, 4, 16).unwrap();

        let mut dynamic_curve: Vec<(usize, f64)> = Vec::new();
        for &budget in &budgets {
            let mut grace = run_cell(&dir, &fb, &fp, DiskJoinMode::Grace, budget, None, want);
            let hybrid = run_cell(&dir, &fb, &fp, DiskJoinMode::Hybrid, budget, None, want);
            let mut dynamic = run_cell(&dir, &fb, &fp, DiskJoinMode::Dynamic, budget, None, want);
            if dynamic.elapsed_s > grace.elapsed_s * TOL {
                // Medians of ~100 ms cells still jitter under noisy
                // neighbors; re-measure both once before calling a
                // cliff, and keep each mode's better estimate.
                eprintln!(
                    "re-measuring theta {theta:.1} budget {} KB \
                     (dynamic {:.3}s vs grace {:.3}s)",
                    budget >> 10,
                    dynamic.elapsed_s,
                    grace.elapsed_s
                );
                let g2 = run_cell(&dir, &fb, &fp, DiskJoinMode::Grace, budget, None, want);
                let d2 = run_cell(&dir, &fb, &fp, DiskJoinMode::Dynamic, budget, None, want);
                grace.elapsed_s = grace.elapsed_s.min(g2.elapsed_s);
                dynamic.elapsed_s = dynamic.elapsed_s.min(d2.elapsed_s);
            }
            let revoked = run_cell(
                &dir,
                &fb,
                &fp,
                DiskJoinMode::Dynamic,
                budget,
                Some(Revoke {
                    to: (budget as u64 / 2).max(PAGE_SIZE as u64),
                    after_s: (grace.elapsed_s * 0.3).max(0.005),
                }),
                want,
            );
            assert!(
                dynamic.elapsed_s <= grace.elapsed_s * TOL,
                "dynamic hybrid slower than static GRACE at theta {theta:.1}, \
                 budget {} KB: {:.3}s vs {:.3}s",
                budget >> 10,
                dynamic.elapsed_s,
                grace.elapsed_s
            );
            dynamic_curve.push((budget, dynamic.elapsed_s));
            table.row(&[
                &format!("{theta:.1}"),
                &(budget >> 10),
                &format!("{:.3}", grace.elapsed_s),
                &format!("{:.3}", hybrid.elapsed_s),
                &format!("{:.3}", dynamic.elapsed_s),
                &dynamic.resident,
                &format!("{:.3}", revoked.elapsed_s),
                &(revoked.final_budget >> 10),
            ]);
            history.push((
                format!("t{theta:.1}_b{}k_dynamic_ms", budget >> 10),
                format!("{:.1}", dynamic.elapsed_s * 1e3),
            ));
        }
        // The budgets ran tightest-first: along the dynamic curve, more
        // memory must never cost time (beyond noise).
        for w in 0..dynamic_curve.len().saturating_sub(1) {
            let (b_small, t_small) = dynamic_curve[w];
            let (b_big, mut t_big) = dynamic_curve[w + 1];
            if t_big > t_small * TOL {
                eprintln!(
                    "re-measuring theta {theta:.1} budget {} KB for monotonicity \
                     ({:.3}s vs {:.3}s at {} KB)",
                    b_big >> 10,
                    t_big,
                    t_small,
                    b_small >> 10
                );
                let again = run_cell(&dir, &fb, &fp, DiskJoinMode::Dynamic, b_big, None, want);
                t_big = t_big.min(again.elapsed_s);
                dynamic_curve[w + 1].1 = t_big;
            }
            assert!(
                t_big <= t_small * TOL,
                "dynamic curve not monotone at theta {theta:.1}: \
                 {:.3}s at {} KB vs {:.3}s at {} KB",
                t_big,
                b_big >> 10,
                t_small,
                b_small >> 10
            );
        }
    }
    table.emit("robustness_curve");

    let wall = t_all.elapsed();
    history.push(("build_bytes".into(), build_bytes.to_string()));
    history_append(
        "robustness_curve",
        &history,
        0,
        wall.as_nanos() as u64,
        (build_bytes / 64) as u64 * 3,
        0.0,
        0.0,
    );
    std::fs::remove_dir_all(&dir).ok();
}
