//! Thread-scaling sweep for the morsel-driven parallel executor.
//!
//! For threads ∈ {1, 2, 4, 8} the same GRACE join runs through
//! `phj-exec` twice:
//!
//! * **simulated** — deterministic virtual lanes; "elapsed" is the
//!   critical-path cycle count, so the table shows the *algorithmic*
//!   scalability (LPT balance, morsel granularity) independent of how
//!   many cores this machine has;
//! * **native** — real threads with work stealing, wall-clock elapsed
//!   (meaningful only on a multi-core host).
//!
//! The simulated sweep additionally runs a third time with the live
//! telemetry sampler scraping every 10 ms, and the sim table carries a
//! sampler-overhead column (`cycles on / cycles off - 1`) — the
//! measured price of leaving `--sample-interval 10` on in production.
//! The sampler-off pass runs *before* `phj_metrics::install()`: the
//! registry is process-global and irreversible, so ordering is what
//! keeps the off-measurement honest.
//!
//! The native sweep then reruns with the flight recorder at `phase` and
//! `full` granularity (`scaling_join_flightrec`): the recorder, like the
//! metrics registry, installs irreversibly, so the recorder-off
//! wall-clock baseline is measured first and the overhead columns are
//! the measured price of `--flightrec phase` (the default) and
//! `--flightrec full`. Each flightrec row is archived to the bench_out
//! perf-trajectory history.
//!
//! Emits `scaling_join_sim` / `scaling_join_native` tables plus a
//! per-worker `scaling_join_workers` table recording each lane/worker's
//! busy and idle share — the raw data behind the efficiency column.

use std::time::Duration;

use phj::grace::GraceConfig;
use phj::sink::JoinSink;
use phj_bench::report::{history_append, mcycles, scaled, Table};
use phj_workload::JoinSpec;

const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Scrape interval for the sampler-overhead column.
const SAMPLER_INTERVAL_MS: u64 = 10;

fn ratio(base: f64, now: f64) -> f64 {
    if now > 0.0 {
        base / now
    } else {
        f64::INFINITY
    }
}

/// Signed percent delta of `on` relative to `off`.
fn overhead_pct(off: u64, on: u64) -> String {
    if off == 0 {
        return "n/a".into();
    }
    format!("{:+.2}%", (on as f64 - off as f64) / off as f64 * 100.0)
}

fn main() {
    let gen = JoinSpec::pivot(scaled(8 << 20)).generate();
    let cfg = GraceConfig {
        mem_budget: scaled(2 << 20).max(64 << 10),
        ..Default::default()
    };

    // Pass 1: sampler OFF. Must complete before install() below — the
    // metrics registry is process-global and cannot be uninstalled, so
    // the clean baseline has to be measured first.
    let off: Vec<_> = THREADS
        .iter()
        .map(|&n| {
            let out = phj_exec::parallel_join_sim(&cfg, &gen.build, &gen.probe, n, false, false);
            assert_eq!(out.sink.matches(), gen.expected_matches);
            out
        })
        .collect();

    // Pass 2: identical joins with the telemetry sampler scraping the
    // now-installed registry every SAMPLER_INTERVAL_MS.
    let registry = phj_metrics::install().clone();
    let sampler = phj_metrics::Sampler::start(
        registry,
        Duration::from_millis(SAMPLER_INTERVAL_MS),
        4096,
        None,
    );
    let on: Vec<u64> = THREADS
        .iter()
        .map(|&n| {
            let out = phj_exec::parallel_join_sim(&cfg, &gen.build, &gen.probe, n, false, false);
            assert_eq!(out.sink.matches(), gen.expected_matches);
            out.totals.breakdown.total()
        })
        .collect();
    let ring = sampler.stop();
    assert!(!ring.series().is_empty(), "sampler saw no metrics during the on-pass");

    let sampled_col = format!("Mcycles_sampler_{SAMPLER_INTERVAL_MS}ms");
    let mut sim = Table::new(
        "Thread scaling — simulated critical path (deterministic lanes)",
        &[
            "threads",
            "Mcycles",
            "speedup",
            "efficiency",
            sampled_col.as_str(),
            "sampler_overhead",
        ],
    );
    let mut native = Table::new(
        "Thread scaling — native wall clock (work-stealing pool)",
        &["threads", "ms", "speedup", "efficiency"],
    );
    let mut workers = Table::new(
        "Thread scaling — per-worker busy/idle",
        &["mode", "threads", "worker", "tasks", "busy", "idle"],
    );

    let sim_base = off[0].totals.breakdown.total() as f64;
    for ((&n, out), &on_cycles) in THREADS.iter().zip(&off).zip(&on) {
        let cp_cycles = out.totals.breakdown.total();
        let s = ratio(sim_base, cp_cycles as f64);
        sim.row(&[
            &n,
            &mcycles(cp_cycles),
            &format!("{s:.2}x"),
            &format!("{:.0}%", 100.0 * s / n as f64),
            &mcycles(on_cycles),
            &overhead_pct(cp_cycles, on_cycles),
        ]);
        // A lane's idle share is the gap between it and the critical path.
        for lane in &out.lanes {
            workers.row(&[
                &"sim",
                &n,
                &lane.lane,
                &lane.tasks,
                &format!("{} Mcyc", mcycles(lane.cycles)),
                &format!("{} Mcyc", mcycles(cp_cycles.saturating_sub(lane.cycles))),
            ]);
        }
    }

    let mut native_base = 0.0;
    let mut native_ms = Vec::with_capacity(THREADS.len());
    for (i, &n) in THREADS.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let out = phj_exec::parallel_join_native(&cfg, &gen.build, &gen.probe, n, false);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        native_ms.push(ms);
        assert_eq!(out.sink.matches(), gen.expected_matches);
        if i == 0 {
            native_base = ms;
        }
        let s = ratio(native_base, ms);
        native.row(&[
            &n,
            &format!("{ms:.1}"),
            &format!("{s:.2}x"),
            &format!("{:.0}%", 100.0 * s / n as f64),
        ]);
        for (phase, stats) in [("partition", &out.partition_stats), ("join", &out.join_stats)] {
            for w in stats.iter() {
                workers.row(&[
                    &format!("native/{phase}"),
                    &n,
                    &w.worker,
                    &w.tasks,
                    &format!("{:.2} ms", w.busy_ns as f64 / 1e6),
                    &format!("{:.2} ms", w.idle_ns as f64 / 1e6),
                ]);
            }
        }
    }

    // Passes 4 and 5: flight recorder at phase, then full, granularity.
    // install() is irreversible (process-global, like the metrics
    // registry), so the recorder-off native baseline above had to run
    // first; set_mode() flips phase -> full in the same process.
    phj_flightrec::install(phj_flightrec::Mode::Phase);
    let native_pass = |n: usize| {
        let t0 = std::time::Instant::now();
        let out = phj_exec::parallel_join_native(&cfg, &gen.build, &gen.probe, n, false);
        assert_eq!(out.sink.matches(), gen.expected_matches);
        t0.elapsed().as_secs_f64() * 1e3
    };
    let phase_ms: Vec<f64> = THREADS.iter().map(|&n| native_pass(n)).collect();
    let rec = phj_flightrec::global().expect("recorder installed above");
    rec.set_mode(phj_flightrec::Mode::Full);
    let full_ms: Vec<f64> = THREADS.iter().map(|&n| native_pass(n)).collect();
    assert!(rec.total_written() > 0, "flightrec passes recorded no events");

    let mut flight = Table::new(
        "Thread scaling — flight-recorder overhead (native wall clock)",
        &["threads", "ms_off", "ms_phase", "phase_overhead", "ms_full", "full_overhead"],
    );
    for (i, &n) in THREADS.iter().enumerate() {
        let pct = |on: f64| {
            if native_ms[i] > 0.0 {
                format!("{:+.2}%", (on - native_ms[i]) / native_ms[i] * 100.0)
            } else {
                "n/a".into()
            }
        };
        flight.row(&[
            &n,
            &format!("{:.1}", native_ms[i]),
            &format!("{:.1}", phase_ms[i]),
            &pct(phase_ms[i]),
            &format!("{:.1}", full_ms[i]),
            &pct(full_ms[i]),
        ]);
        for (mode, ms) in [("off", native_ms[i]), ("phase", phase_ms[i]), ("full", full_ms[i])] {
            history_append(
                "thread_scaling_flightrec",
                &[
                    ("threads".to_string(), n.to_string()),
                    ("flightrec".to_string(), mode.to_string()),
                ],
                0,
                (ms * 1e6) as u64,
                (gen.build.num_tuples() + gen.probe.num_tuples()) as u64,
                0.0,
                0.0,
            );
        }
    }

    sim.emit("scaling_join_sim");
    native.emit("scaling_join_native");
    workers.emit("scaling_join_workers");
    flight.emit("scaling_join_flightrec");
}
