//! Thread-scaling sweep for the morsel-driven parallel executor.
//!
//! For threads ∈ {1, 2, 4, 8} the same GRACE join runs through
//! `phj-exec` twice:
//!
//! * **simulated** — deterministic virtual lanes; "elapsed" is the
//!   critical-path cycle count, so the table shows the *algorithmic*
//!   scalability (LPT balance, morsel granularity) independent of how
//!   many cores this machine has;
//! * **native** — real threads with work stealing, wall-clock elapsed
//!   (meaningful only on a multi-core host).
//!
//! Emits `scaling_join_sim` / `scaling_join_native` tables plus a
//! per-worker `scaling_join_workers` table recording each lane/worker's
//! busy and idle share — the raw data behind the efficiency column.

use phj::grace::GraceConfig;
use phj::sink::JoinSink;
use phj_bench::report::{mcycles, scaled, Table};
use phj_workload::JoinSpec;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn ratio(base: f64, now: f64) -> f64 {
    if now > 0.0 {
        base / now
    } else {
        f64::INFINITY
    }
}

fn main() {
    let gen = JoinSpec::pivot(scaled(8 << 20)).generate();
    let cfg = GraceConfig {
        mem_budget: scaled(2 << 20).max(64 << 10),
        ..Default::default()
    };

    let mut sim = Table::new(
        "Thread scaling — simulated critical path (deterministic lanes)",
        &["threads", "Mcycles", "speedup", "efficiency"],
    );
    let mut native = Table::new(
        "Thread scaling — native wall clock (work-stealing pool)",
        &["threads", "ms", "speedup", "efficiency"],
    );
    let mut workers = Table::new(
        "Thread scaling — per-worker busy/idle",
        &["mode", "threads", "worker", "tasks", "busy", "idle"],
    );

    let mut sim_base = 0.0;
    let mut native_base = 0.0;
    for (i, &n) in THREADS.iter().enumerate() {
        let out = phj_exec::parallel_join_sim(&cfg, &gen.build, &gen.probe, n, false, false);
        assert_eq!(out.sink.matches(), gen.expected_matches);
        let cp = out.totals.breakdown.total() as f64;
        if i == 0 {
            sim_base = cp;
        }
        let s = ratio(sim_base, cp);
        sim.row(&[
            &n,
            &mcycles(out.totals.breakdown.total()),
            &format!("{s:.2}x"),
            &format!("{:.0}%", 100.0 * s / n as f64),
        ]);
        // A lane's idle share is the gap between it and the critical path.
        let cp_cycles = out.totals.breakdown.total();
        for lane in &out.lanes {
            workers.row(&[
                &"sim",
                &n,
                &lane.lane,
                &lane.tasks,
                &format!("{} Mcyc", mcycles(lane.cycles)),
                &format!("{} Mcyc", mcycles(cp_cycles.saturating_sub(lane.cycles))),
            ]);
        }

        let t0 = std::time::Instant::now();
        let out = phj_exec::parallel_join_native(&cfg, &gen.build, &gen.probe, n, false);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.sink.matches(), gen.expected_matches);
        if i == 0 {
            native_base = ms;
        }
        let s = ratio(native_base, ms);
        native.row(&[
            &n,
            &format!("{ms:.1}"),
            &format!("{s:.2}x"),
            &format!("{:.0}%", 100.0 * s / n as f64),
        ]);
        for (phase, stats) in [("partition", &out.partition_stats), ("join", &out.join_stats)] {
            for w in stats.iter() {
                workers.row(&[
                    &format!("native/{phase}"),
                    &n,
                    &w.worker,
                    &w.tasks,
                    &format!("{:.2} ms", w.busy_ns as f64 / 1e6),
                    &format!("{:.2} ms", w.idle_ns as f64 / 1e6),
                ]);
            }
        }
    }

    sim.emit("scaling_join_sim");
    native.emit("scaling_join_native");
    workers.emit("scaling_join_workers");
}
