//! Extension experiment: prefetching under key skew.
//!
//! §4.4 sizes the group-prefetching conflict machinery "to tolerate skews
//! in the key distribution". This experiment joins a uniform build
//! relation against Zipf(θ)-distributed probes, and aggregates a Zipf
//! relation — sweeping θ from uniform to heavy skew — to show that the
//! staged schemes keep their advantage as conflicts and hot buckets grow.

use phj::aggregate::{aggregate, AggScheme};
use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::plan;
use phj::sink::{CountSink, JoinSink};
use phj_bench::report::{mcycles, scaled, speedup, Table};
use phj_memsim::SimEngine;
use phj_workload::{single_relation, tuples_for, zipf_relation};

fn main() {
    let n = tuples_for(scaled(25 << 20), 100);
    let build = single_relation(n, 100);

    let mut t = Table::new(
        "Extension — join under probe-side Zipf skew (Mcycles, speedup over baseline)",
        &["theta", "baseline", "group", "swp"],
    );
    for theta in [0.0f64, 0.5, 0.9, 1.1] {
        // Probes draw keys Zipf-distributed over the build key space: the
        // hot build tuples are probed over and over.
        let probe = zipf_relation(2 * n, 100, n, theta, 42);
        let mut cells = vec![format!("{theta:.1}")];
        let mut base = 0u64;
        let mut matches = None;
        for scheme in [JoinScheme::Baseline, JoinScheme::Group { g: 16 }, JoinScheme::Swp { d: 1 }] {
            let mut mem = SimEngine::paper();
            let mut sink = CountSink::new();
            join_pair(
                &mut mem,
                &JoinParams { scheme, use_stored_hash: true },
                &build,
                &probe,
                1,
                &mut sink,
            );
            match matches {
                None => matches = Some(sink.matches()),
                Some(m) => assert_eq!(m, sink.matches(), "schemes agree under skew"),
            }
            let c = mem.breakdown().total();
            if base == 0 {
                base = c;
            }
            cells.push(format!("{} ({})", mcycles(c), speedup(base, c)));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        t.row(&refs);
    }
    t.emit("ext_skew_join");

    // Aggregation over a skewed relation: hot groups are updated
    // constantly — the worst case for the upsert conflict protocol.
    let mut ta = Table::new(
        "Extension — aggregation under Zipf skew (Mcycles, speedup over baseline)",
        &["theta", "groups", "baseline", "group", "swp"],
    );
    for theta in [0.0f64, 0.9, 1.2] {
        let input = zipf_relation(2 * n, 100, n / 4, theta, 17);
        let buckets = plan::hash_table_buckets(n / 4, 1);
        let mut cells = vec![format!("{theta:.1}")];
        let mut base = 0u64;
        let mut groups = 0usize;
        let mut rows: Vec<String> = Vec::new();
        for scheme in [AggScheme::Baseline, AggScheme::Group { g: 16 }, AggScheme::Swp { d: 2 }] {
            let mut mem = SimEngine::paper();
            let table = aggregate(&mut mem, scheme, &input, buckets, |t| t[4] as i64);
            if groups == 0 {
                groups = table.num_groups();
            } else {
                assert_eq!(groups, table.num_groups());
            }
            let c = mem.breakdown().total();
            if base == 0 {
                base = c;
            }
            rows.push(format!("{} ({})", mcycles(c), speedup(base, c)));
        }
        cells.push(groups.to_string());
        cells.extend(rows);
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        ta.row(&refs);
    }
    ta.emit("ext_skew_agg");
}
