//! Figure 13: breakdown of cache misses as G / D grow.
//!
//! The paper uses this to explain the concave tuning curves: with small
//! parameters, prefetches are issued too late and demand accesses catch
//! in-flight fills (partially hidden misses); with large parameters, the
//! many concurrent prefetched lines conflict in the cache and get
//! **evicted before use**, turning into fresh misses. We report, per
//! parameter value: fully hidden lines (L1 hits on prefetched data),
//! partially hidden (in-flight) lines, full misses, L1 conflict misses
//! (shadow-cache classified), and prefetched-but-evicted-unused lines.

use phj::join::JoinScheme;
use phj_bench::report::{scaled, Table};
use phj_bench::runner::sim_join;
use phj_memsim::MemConfig;
use phj_workload::{tuples_for, JoinSpec};

fn main() {
    let mem = scaled(50 << 20);
    let spec = JoinSpec {
        build_tuples: tuples_for(mem, 20),
        tuple_size: 20,
        matches_per_build: 2,
        pct_match: 100,
        seed: 0xC0FFEE,
    };
    let gen = spec.generate();
    let cfg = || {
        let mut c = MemConfig::paper();
        c.classify_conflicts = true;
        c
    };
    let k = |v: u64| format!("{:.0}k", v as f64 / 1e3);

    let mut tg = Table::new(
        "Fig 13 (left) — cache-miss breakdown vs G (line counts)",
        &["G", "l1 hits", "partial", "l2 fills", "mem fills", "conflict", "pf evicted"],
    );
    for g in [4usize, 8, 16, 32, 64, 128, 256] {
        let r = sim_join(&gen, JoinScheme::Group { g }, cfg(), true);
        let s = r.stats;
        tg.row(&[
            &g,
            &k(s.l1_hits),
            &k(s.l1_inflight_hits),
            &k(s.l2_hits),
            &k(s.mem_misses),
            &k(s.l1_conflict_misses),
            &k(s.pf_evicted_unused),
        ]);
    }
    tg.emit("fig13_group_misses");

    let mut td = Table::new(
        "Fig 13 (right) — cache-miss breakdown vs D (line counts)",
        &["D", "l1 hits", "partial", "l2 fills", "mem fills", "conflict", "pf evicted"],
    );
    for d in [1usize, 2, 4, 8, 16, 32, 64] {
        let r = sim_join(&gen, JoinScheme::Swp { d }, cfg(), true);
        let s = r.stats;
        td.row(&[
            &d,
            &k(s.l1_hits),
            &k(s.l1_inflight_hits),
            &k(s.l2_hits),
            &k(s.mem_misses),
            &k(s.l1_conflict_misses),
            &k(s.pf_evicted_unused),
        ]);
    }
    td.emit("fig13_swp_misses");
}
