//! Figure 11: execution-time breakdowns for the join phase at 100 B
//! tuples (the Fig 10(a) pivot).
//!
//! "Group prefetching and software pipelined prefetching indeed
//! successfully hide most of the data cache miss latencies. [...] The
//! (transformation, book keeping, and prefetching) overheads of the
//! techniques lead to larger portions of busy times. Software-pipelined
//! prefetching is more costly than group prefetching. Interestingly,
//! other stalls also increase."

use phj_bench::report::{mcycles, scaled, Table};
use phj_bench::runner::{paper_join_schemes, sim_join};
use phj_memsim::MemConfig;
use phj_workload::JoinSpec;

fn main() {
    let spec = JoinSpec::pivot(scaled(50 << 20));
    let gen = spec.generate();
    let mut t = Table::new(
        "Fig 11 — join-phase breakdown at 100B tuples (Mcycles)",
        &["scheme", "total", "busy", "dcache", "dtlb", "other"],
    );
    for (name, scheme) in paper_join_schemes(16, 1) {
        let r = sim_join(&gen, scheme, MemConfig::paper(), true);
        let b = r.breakdown();
        t.row(&[
            &name,
            &mcycles(b.total()),
            &mcycles(b.busy),
            &mcycles(b.dcache_stall),
            &mcycles(b.dtlb_stall),
            &mcycles(b.other_stall),
        ]);
    }
    t.emit("fig11_join_breakdown");
}
