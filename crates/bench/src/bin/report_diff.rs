//! Compare two structured run reports (`phj ... --json`), validate one,
//! or watch a perf-trajectory archive for a creeping slowdown.
//!
//! ```text
//! report_diff --check RUN.json
//! report_diff OLD.json NEW.json [--tolerance P]
//! report_diff --history N ARCHIVE.jsonl
//! report_diff --history-append ARCHIVE.jsonl RUN.json
//! ```
//!
//! Compare mode prints the total-cycle (or wall-clock, for native runs)
//! delta plus the derived-rate changes, and exits non-zero when the new
//! run regresses beyond the tolerance (default 5%) — a CI tripwire for
//! "did this change make the join slower?". `--threshold-pct` is accepted
//! as a deprecated spelling of `--tolerance`.
//!
//! A per-phase breakdown diffs spans by name. The two runs' span sets
//! may differ — a `--threads N` run has worker-lane spans a sequential
//! run lacks — so only the shared names are diffed, and the unmatched
//! ones are listed in a warning rather than treated as an error.
//!
//! `--history N` runs trend detection over the last `N` same-fingerprint
//! records of an archive written by `phj ... --explain` or the bench
//! harness: a metric that worsened monotonically across the whole window
//! (past a noise floor) is a trajectory, not a blip. `--history-append`
//! folds a run report into an archive, so CI can accumulate one without
//! re-running the workload.
//!
//! Exit codes: 0 = ok, 1 = regression beyond tolerance, 2 = usage /
//! unreadable / invalid report, 3 = history-trend regression. Exit 2
//! failures print one line on stderr, `error: <kind>: <detail>`, where
//! `<kind>` is a stable category (`unreadable file`, `truncated JSON`,
//! `malformed JSON`, `invalid report`) CI scripts can match on — a
//! truncated artifact upload and a genuine regression must never look
//! alike. The trend verdict gets its own code so CI can treat "this PR
//! is slow" (1) and "the last N runs kept getting slower" (3) as
//! different alarms.

use phj_obs::RunReport;
use std::fmt;
use std::process::ExitCode;

const DEFAULT_TOLERANCE_PCT: f64 = 5.0;

/// Why a report failed to load. Every variant exits 2; the category
/// keeps "your input is broken" distinct from "your join got slower"
/// (exit 1) in CI logs.
#[derive(Debug, PartialEq, Eq)]
enum LoadError {
    /// The file could not be read at all (missing, permissions, ...).
    Unreadable(String),
    /// JSON syntax failed at end of input: the document was cut short.
    TruncatedJson(String),
    /// JSON syntax failed mid-document.
    MalformedJson(String),
    /// Syntactically valid JSON that is not a well-formed run report.
    InvalidReport(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Unreadable(d) => write!(f, "unreadable file: {d}"),
            LoadError::TruncatedJson(d) => write!(f, "truncated JSON: {d}"),
            LoadError::MalformedJson(d) => write!(f, "malformed JSON: {d}"),
            LoadError::InvalidReport(d) => write!(f, "invalid report: {d}"),
        }
    }
}

/// Classify a JSON syntax error: failure at (or past) the last
/// non-whitespace byte means the document simply stopped early.
fn classify_syntax(path: &str, text: &str, e: &phj_obs::json::ParseError) -> LoadError {
    let detail = format!("{path}: {e}");
    if e.offset >= text.trim_end().len() {
        LoadError::TruncatedJson(detail)
    } else {
        LoadError::MalformedJson(detail)
    }
}

fn load(path: &str) -> Result<RunReport, LoadError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LoadError::Unreadable(format!("{path}: {e}")))?;
    if let Err(e) = phj_obs::json::parse(&text) {
        return Err(classify_syntax(path, &text, &e));
    }
    let report =
        RunReport::parse(&text).map_err(|e| LoadError::InvalidReport(format!("{path}: {e}")))?;
    report
        .validate()
        .map_err(|e| LoadError::InvalidReport(format!("{path}: {e}")))?;
    Ok(report)
}

fn describe(label: &str, r: &RunReport) {
    let cycles = r.totals.breakdown.total();
    println!(
        "{label}: command={} simulated={} spans={} cycles={} wall_ns={}",
        r.command,
        r.simulated,
        r.spans.len(),
        cycles,
        r.wall_ns
    );
    if r.simulated {
        println!(
            "  coverage={:.3} pollution={:.3} busy={} dcache_stall={} dtlb_stall={}",
            r.prefetch_coverage(),
            r.pollution_rate(),
            r.totals.breakdown.busy,
            r.totals.breakdown.dcache_stall,
            r.totals.breakdown.dtlb_stall,
        );
    }
    if let Some(f) = &r.faults {
        println!(
            "  faults: injected={} read_retries={} write_retries={} slow_stall_us={} degradation_events={}",
            f.faults_injected,
            f.read_retries,
            f.write_retries,
            f.slow_stall_us,
            f.degradation.len()
        );
    }
}

/// How the two reports' fault sections relate, as a printable note.
/// Retry/stall counters are resilience diagnostics, not costs — they are
/// surfaced but never turn the verdict. `None` when neither run carries
/// a section.
fn fault_note(old: &RunReport, new: &RunReport) -> Option<String> {
    match (&old.faults, &new.faults) {
        (None, None) => None,
        (Some(o), Some(n)) => Some(format!(
            "  faults: injected {} -> {}, retries {} -> {}, degradation events {} -> {}",
            o.faults_injected,
            n.faults_injected,
            o.read_retries + o.write_retries,
            n.read_retries + n.write_retries,
            o.degradation.len(),
            n.degradation.len()
        )),
        (None, Some(n)) => Some(format!(
            "note: only the new run carries a fault section (injected={}, retries={}, degradation events={}); informational, not a regression",
            n.faults_injected,
            n.read_retries + n.write_retries,
            n.degradation.len()
        )),
        (Some(o), None) => Some(format!(
            "note: only the old run carries a fault section (injected={}); the new run injected no faults",
            o.faults_injected
        )),
    }
}

/// How the two reports' `query_trace` sections relate, as a printable
/// note. Admission waits are scheduling diagnostics of the daemon the
/// report came from, not kernel costs — like faults, they are surfaced
/// but never turn the verdict. `None` when neither run was traced.
fn query_trace_note(old: &RunReport, new: &RunReport) -> Option<String> {
    let us = |ns: u64| ns / 1_000;
    match (&old.query_trace, &new.query_trace) {
        (None, None) => None,
        (Some(o), Some(n)) => Some(format!(
            "  query_trace: queue {} -> {} us, grant {} -> {} us, exec {} -> {} us, sheds {} -> {}",
            us(o.queue_wait_ns),
            us(n.queue_wait_ns),
            us(o.grant_wait_ns),
            us(n.grant_wait_ns),
            us(o.exec_ns),
            us(n.exec_ns),
            o.shed_count,
            n.shed_count,
        )),
        (None, Some(n)) => Some(format!(
            "note: only the new run carries a query_trace section (queue {} us, grant {} us, \
             sheds {}); informational, not a regression",
            us(n.queue_wait_ns),
            us(n.grant_wait_ns),
            n.shed_count
        )),
        (Some(o), None) => Some(format!(
            "note: only the old run carries a query_trace section (trace {:#018x}); \
             the new run was not traced",
            o.trace_id
        )),
    }
}

/// The headline cost of a run: simulated cycles when available, wall-clock
/// nanoseconds for native runs (cycles are all zero there).
fn cost_of(r: &RunReport) -> (u64, &'static str) {
    let cycles = r.totals.breakdown.total();
    if cycles > 0 {
        (cycles, "cycles")
    } else {
        (r.wall_ns, "wall_ns")
    }
}

/// Outcome of comparing two reports at a given tolerance.
#[derive(Debug, PartialEq)]
enum Verdict {
    /// Within tolerance; the signed delta in percent.
    Ok { delta_pct: f64 },
    /// New run is more than `tolerance` percent more expensive.
    Regression { delta_pct: f64 },
}

/// Pure comparison: the new run regresses when its cost exceeds the old
/// by strictly more than `tolerance_pct` percent (a delta exactly at the
/// tolerance passes). Refuses mixed units — a simulated run's cycles say
/// nothing about a native run's nanoseconds — and a zero-cost baseline.
fn verdict(old: &RunReport, new: &RunReport, tolerance_pct: f64) -> Result<Verdict, String> {
    let (oc, ounit) = cost_of(old);
    let (nc, nunit) = cost_of(new);
    if ounit != nunit {
        return Err("cannot compare a simulated run against a native run".to_string());
    }
    if oc == 0 {
        return Err("old report has zero cost; nothing to compare against".to_string());
    }
    let delta_pct = (nc as f64 - oc as f64) / oc as f64 * 100.0;
    if delta_pct > tolerance_pct {
        Ok(Verdict::Regression { delta_pct })
    } else {
        Ok(Verdict::Ok { delta_pct })
    }
}

/// Per-span-name cost totals: summed cycles (or wall ns for native
/// spans) and occurrence count.
type SpanTotals = std::collections::BTreeMap<String, (u64, usize)>;

fn span_totals(r: &RunReport) -> SpanTotals {
    let mut m = SpanTotals::new();
    for s in &r.spans {
        let cost = if r.simulated { s.delta.breakdown.total() } else { s.wall_ns };
        let e = m.entry(s.name.clone()).or_insert((0, 0));
        e.0 += cost;
        e.1 += 1;
    }
    m
}

/// A span name both reports have: its (cost, span count) on each side.
type SharedSpan = (String, (u64, usize), (u64, usize));

/// The name-keyed comparison of two span sets: per-name costs for the
/// names both reports have, plus the names unique to each side.
struct SpanDiff {
    shared: Vec<SharedSpan>,
    only_old: Vec<String>,
    only_new: Vec<String>,
}

fn span_diff(old: &RunReport, new: &RunReport) -> SpanDiff {
    let o = span_totals(old);
    let n = span_totals(new);
    let shared = o
        .iter()
        .filter_map(|(name, &oc)| n.get(name).map(|&nc| (name.clone(), oc, nc)))
        .collect();
    let only_old = o.keys().filter(|k| !n.contains_key(*k)).cloned().collect();
    let only_new = n.keys().filter(|k| !o.contains_key(*k)).cloned().collect();
    SpanDiff { shared, only_old, only_new }
}

fn print_span_diff(d: &SpanDiff) {
    for (name, (oc, on), (nc, nn)) in &d.shared {
        let delta_pct = if *oc > 0 { (*nc as f64 - *oc as f64) / *oc as f64 * 100.0 } else { 0.0 };
        println!("  span {name}: {oc} -> {nc} ({delta_pct:+.2}%) [{on} -> {nn} spans]");
    }
    if !d.only_old.is_empty() || !d.only_new.is_empty() {
        println!("warning: span sets differ; diffed the shared names only");
        if !d.only_old.is_empty() {
            println!("  only in old: {}", d.only_old.join(", "));
        }
        if !d.only_new.is_empty() {
            println!("  only in new: {}", d.only_new.join(", "));
        }
    }
}

fn compare(old: &RunReport, new: &RunReport, tolerance_pct: f64) -> ExitCode {
    describe("old", old);
    describe("new", new);
    let v = match verdict(old, new, tolerance_pct) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (_, unit) = cost_of(old);
    let delta_pct = match v {
        Verdict::Ok { delta_pct } | Verdict::Regression { delta_pct } => delta_pct,
    };
    println!("delta: {delta_pct:+.2}% total {unit} (tolerance {tolerance_pct:.2}%)");
    print_span_diff(&span_diff(old, new));
    if let Some(note) = fault_note(old, new) {
        println!("{note}");
    }
    if let Some(note) = query_trace_note(old, new) {
        println!("{note}");
    }
    if old.simulated && new.simulated {
        println!(
            "  coverage {:.3} -> {:.3}, pollution {:.3} -> {:.3}",
            old.prefetch_coverage(),
            new.prefetch_coverage(),
            old.pollution_rate(),
            new.pollution_rate(),
        );
    }
    match v {
        Verdict::Regression { delta_pct } => {
            println!("REGRESSION: new run is {delta_pct:.2}% more expensive");
            ExitCode::from(1)
        }
        Verdict::Ok { .. } => {
            println!("ok");
            ExitCode::SUCCESS
        }
    }
}

/// The `--history N ARCHIVE` mode: load the archive, run monotone-trend
/// detection over the newest fingerprint's last `n` records, and turn
/// the verdict into exit 0 (healthy) or 3 (trajectory regression).
fn run_history(path: &str, n: usize) -> ExitCode {
    let records = match phj_analyze::history::load(std::path::Path::new(path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: unreadable file: {e}");
            return ExitCode::from(2);
        }
    };
    let t = phj_analyze::trend(&records, n);
    println!(
        "history {path}: {} records, {} comparable (fingerprint {}), window {n}",
        records.len(),
        t.considered,
        if t.fingerprint.is_empty() { "-" } else { &t.fingerprint }
    );
    if let Some(last) = records.last() {
        println!(
            "  latest: slug={} cycles={} wall_ns={} coverage={:.3} pollution={:.3}",
            last.slug, last.cycles, last.wall_ns, last.coverage, last.pollution
        );
    }
    if t.considered < n {
        println!("ok (not enough comparable records for a trend verdict)");
        return ExitCode::SUCCESS;
    }
    if t.regressing.is_empty() {
        println!("ok (no metric worsened monotonically across the window)");
        ExitCode::SUCCESS
    } else {
        println!(
            "TREND REGRESSION: {} worsened monotonically across the last {n} runs",
            t.regressing.join(", ")
        );
        ExitCode::from(3)
    }
}

/// The `--history-append ARCHIVE RUN.json [SLUG]` mode: fold a validated
/// run report into an archive (creating it if needed).
fn run_history_append(archive: &str, run: &str, slug: Option<&str>) -> ExitCode {
    let report = match load(run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let slug = slug.unwrap_or(&report.command);
    let rec = phj_analyze::HistoryRecord::from_report(slug, &report, unix_s);
    let path = std::path::Path::new(archive);
    match phj_analyze::history::append(path, &rec) {
        Ok(()) => {
            println!("appended {slug} (fingerprint {}) to {archive}", rec.fingerprint);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: unreadable file: {archive}: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: report_diff --check RUN.json");
    eprintln!("       report_diff OLD.json NEW.json [--tolerance P]");
    eprintln!("       report_diff --history N ARCHIVE.jsonl");
    eprintln!("       report_diff --history-append ARCHIVE.jsonl RUN.json [SLUG]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--history") => {
            let (n, path) = match args.as_slice() {
                [_, n, path] => match n.parse::<usize>() {
                    Ok(n) if n >= 2 => (n, path),
                    _ => {
                        eprintln!("error: --history window must be an integer >= 2, got {n:?}");
                        return ExitCode::from(2);
                    }
                },
                _ => return usage(),
            };
            run_history(path, n)
        }
        Some("--history-append") => match args.as_slice() {
            [_, archive, run] => run_history_append(archive, run, None),
            [_, archive, run, slug] => run_history_append(archive, run, Some(slug)),
            _ => usage(),
        },
        Some("--check") => {
            let [_, path] = args.as_slice() else { return usage() };
            match load(path) {
                Ok(r) => {
                    describe("report", &r);
                    println!("ok");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some(_) => {
            let mut tolerance = DEFAULT_TOLERANCE_PCT;
            let paths = match args.as_slice() {
                [old, new] => [old, new],
                [old, new, flag, p] if flag == "--tolerance" || flag == "--threshold-pct" => {
                    match p.parse::<f64>() {
                        Ok(v) if v >= 0.0 => tolerance = v,
                        _ => {
                            eprintln!("error: bad tolerance {p:?}");
                            return ExitCode::from(2);
                        }
                    }
                    [old, new]
                }
                _ => return usage(),
            };
            match (load(paths[0]), load(paths[1])) {
                (Ok(old), Ok(new)) => compare(&old, &new, tolerance),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        None => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_obs::Recorder;

    /// A minimal report whose headline cost is `cycles` (simulated) or
    /// `wall_ns` (native, when `cycles` is zero).
    fn report(cycles: u64, wall_ns: u64) -> RunReport {
        let rec = Recorder::new();
        let mut snap = phj_memsim::Snapshot::default();
        snap.breakdown.busy = cycles;
        let mut r = RunReport::from_recorder("join", rec, snap, 0);
        r.simulated = cycles > 0;
        r.wall_ns = wall_ns;
        r
    }

    #[test]
    fn syntax_errors_classify_truncated_vs_malformed() {
        // Failure at end of input: the document was cut short.
        let text = "{\"schema_version\": 1, \"command\": ";
        let e = phj_obs::json::parse(text).unwrap_err();
        let c = classify_syntax("r.json", text, &e);
        assert!(matches!(c, LoadError::TruncatedJson(_)), "got {c:?}");
        // Trailing whitespace after the cut must not mask truncation.
        let text = "{\"schema_version\": 1,\n";
        let e = phj_obs::json::parse(text).unwrap_err();
        assert!(matches!(classify_syntax("r.json", text, &e), LoadError::TruncatedJson(_)));
        // Failure mid-document: the bytes are wrong, not missing.
        let text = "{\"schema_version\": 1,, \"command\": \"join\"}";
        let e = phj_obs::json::parse(text).unwrap_err();
        let c = classify_syntax("r.json", text, &e);
        assert!(matches!(c, LoadError::MalformedJson(_)), "got {c:?}");
    }

    #[test]
    fn load_errors_render_as_single_lines() {
        for e in [
            LoadError::Unreadable("a.json: no such file".into()),
            LoadError::TruncatedJson("a.json: JSON parse error at byte 9: eof".into()),
            LoadError::MalformedJson("a.json: JSON parse error at byte 3: bad".into()),
            LoadError::InvalidReport("a.json: missing spans array".into()),
        ] {
            let line = format!("error: {e}");
            assert_eq!(line.lines().count(), 1, "multi-line: {line:?}");
        }
        assert_eq!(
            LoadError::TruncatedJson("x".into()).to_string(),
            "truncated JSON: x"
        );
    }

    #[test]
    fn tolerance_boundary_is_inclusive() {
        let old = report(1_000, 0);
        // Exactly +5% on a 5% tolerance: passes (regression is strict).
        let new = report(1_050, 0);
        assert_eq!(verdict(&old, &new, 5.0).unwrap(), Verdict::Ok { delta_pct: 5.0 });
        // One cycle past the boundary: regression.
        let worse = report(1_051, 0);
        match verdict(&old, &worse, 5.0).unwrap() {
            Verdict::Regression { delta_pct } => assert!(delta_pct > 5.0),
            v => panic!("expected regression, got {v:?}"),
        }
        // Improvements always pass, whatever the tolerance.
        let better = report(900, 0);
        assert!(matches!(verdict(&old, &better, 0.0).unwrap(), Verdict::Ok { .. }));
    }

    #[test]
    fn zero_tolerance_flags_any_slowdown() {
        let old = report(1_000, 0);
        let new = report(1_001, 0);
        assert!(matches!(verdict(&old, &new, 0.0).unwrap(), Verdict::Regression { .. }));
        assert!(matches!(verdict(&old, &old, 0.0).unwrap(), Verdict::Ok { delta_pct } if delta_pct == 0.0));
    }

    #[test]
    fn refuses_mixed_units() {
        let sim = report(1_000, 0);
        let native = report(0, 5_000);
        let err = verdict(&sim, &native, 5.0).unwrap_err();
        assert!(err.contains("simulated"), "unexpected message: {err}");
        assert!(verdict(&native, &sim, 5.0).is_err());
    }

    #[test]
    fn refuses_zero_cost_baseline() {
        let empty = report(0, 0);
        let new = report(0, 10);
        let err = verdict(&empty, &new, 5.0).unwrap_err();
        assert!(err.contains("zero cost"), "unexpected message: {err}");
    }

    /// A simulated report with one span per (name, cycles) entry.
    fn report_with_spans(spans: &[(&str, u64)]) -> RunReport {
        let mut rec = Recorder::new();
        let mut cursor = phj_memsim::Snapshot::default();
        for (name, cycles) in spans {
            let id = rec.begin(name, cursor);
            cursor.breakdown.busy += cycles;
            rec.end(id, cursor);
        }
        let mut r = RunReport::from_recorder("join", rec, cursor, 0);
        r.simulated = true;
        r
    }

    #[test]
    fn span_diff_covers_shared_names_and_reports_unmatched() {
        let old = report_with_spans(&[("partition_pass", 100), ("pair", 50), ("pair", 30)]);
        let new = report_with_spans(&[("partition_pass", 90), ("pair", 70), ("build", 10)]);
        let d = span_diff(&old, &new);
        // Shared names diff on summed cost and span count...
        assert_eq!(
            d.shared,
            vec![
                ("pair".to_string(), (80, 2), (70, 1)),
                ("partition_pass".to_string(), (100, 1), (90, 1)),
            ]
        );
        // ...and differing span sets warn instead of erroring.
        assert!(d.only_old.is_empty());
        assert_eq!(d.only_new, vec!["build".to_string()]);
        let identical = span_diff(&old, &old);
        assert!(identical.only_old.is_empty() && identical.only_new.is_empty());
        assert_eq!(identical.shared.len(), 2);
    }

    #[test]
    fn native_runs_compare_on_wall_clock() {
        let old = report(0, 10_000);
        let new = report(0, 12_000);
        assert!(matches!(verdict(&old, &new, 5.0).unwrap(), Verdict::Regression { delta_pct } if (delta_pct - 20.0).abs() < 1e-9));
    }

    #[test]
    fn fault_sections_are_noted_but_never_turn_the_verdict() {
        use phj_obs::FaultsSection;
        let plain = report(1_000, 0);
        let mut faulty = report(1_000, 0);
        faulty.faults = Some(FaultsSection {
            faults_injected: 12,
            read_retries: 8,
            write_retries: 1,
            slow_stall_us: 300,
            degradation: Vec::new(),
        });
        // No sections: nothing to say.
        assert_eq!(fault_note(&plain, &plain), None);
        // Asymmetric sections get an informational note, either way round.
        let note = fault_note(&plain, &faulty).expect("new-only note");
        assert!(note.contains("only the new run"), "{note}");
        assert!(note.contains("injected=12"), "{note}");
        let note = fault_note(&faulty, &plain).expect("old-only note");
        assert!(note.contains("only the old run"), "{note}");
        // Symmetric sections diff the counters.
        let note = fault_note(&faulty, &faulty).expect("both note");
        assert!(note.contains("12 -> 12"), "{note}");
        assert!(note.contains("retries 9 -> 9"), "{note}");
        // And none of this sways the cost verdict.
        assert!(matches!(verdict(&plain, &faulty, 0.0).unwrap(), Verdict::Ok { .. }));
    }

    /// A valid `query_trace` section for the note/fixture tests.
    fn trace_section(queue_us: u64, grant_us: u64) -> phj_obs::QueryTraceSection {
        phj_obs::QueryTraceSection {
            trace_id: 0xABCD,
            query_id: 7,
            queue_wait_ns: queue_us * 1_000,
            grant_wait_ns: grant_us * 1_000,
            exec_ns: 5_000_000,
            serialize_ns: 10_000,
            shed_count: 1,
            states: vec![("received".into(), 0), ("done".into(), 5_000_000)],
        }
    }

    #[test]
    fn query_trace_sections_are_noted_but_never_turn_the_verdict() {
        let plain = report(1_000, 0);
        let mut traced = report(1_000, 0);
        traced.query_trace = Some(trace_section(120, 340));
        // No sections: nothing to say.
        assert_eq!(query_trace_note(&plain, &plain), None);
        // Asymmetric sections get an informational note, either way round.
        let note = query_trace_note(&plain, &traced).expect("new-only note");
        assert!(note.contains("only the new run"), "{note}");
        assert!(note.contains("not a regression"), "{note}");
        let note = query_trace_note(&traced, &plain).expect("old-only note");
        assert!(note.contains("only the old run"), "{note}");
        // Symmetric sections diff the wait breakdown.
        let mut slower = report(1_000, 0);
        slower.query_trace = Some(trace_section(900, 2_000));
        let note = query_trace_note(&traced, &slower).expect("both note");
        assert!(note.contains("queue 120 -> 900 us"), "{note}");
        assert!(note.contains("grant 340 -> 2000 us"), "{note}");
        // A massive admission-wait increase still never sways the cost
        // verdict: the section is informational, not a gate.
        assert!(matches!(verdict(&traced, &slower, 0.0).unwrap(), Verdict::Ok { .. }));
    }

    #[test]
    fn traced_reports_round_trip_and_malformed_sections_are_rejected() {
        let mut r = report_with_spans(&[("run", 1_000)]);
        r.query_trace = Some(trace_section(10, 20));
        // The --check path holds for a traced report...
        let text = r.render();
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.query_trace, r.query_trace);
        back.validate().expect("report with query_trace validates");
        // ...and a malformed section (unknown state name) is an invalid
        // report, the same exit-2 category as any other bad input.
        let mut bad = report_with_spans(&[("run", 1_000)]);
        let mut sec = trace_section(10, 20);
        sec.states = vec![("received".into(), 0), ("warp-speed".into(), 5)];
        bad.query_trace = Some(sec);
        let text = bad.render();
        let parsed = RunReport::parse(&text).expect("syntactically fine");
        let err = parsed.validate().expect_err("unknown state must not validate");
        assert!(err.contains("warp-speed"), "unhelpful error: {err}");
    }

    #[test]
    fn faulty_reports_load_like_any_other() {
        use phj_obs::{DegradationRow, FaultsSection};
        let mut r = report_with_spans(&[("run", 1_000)]);
        r.faults = Some(FaultsSection {
            faults_injected: 2,
            read_retries: 1,
            write_retries: 0,
            slow_stall_us: 0,
            degradation: vec![DegradationRow {
                partition: "0".into(),
                depth: 0,
                bytes: 65_536,
                budget: 32_768,
                action: "repartition".into(),
                detail: 2,
            }],
        });
        // Guard the --check path: render → parse → validate still holds
        // for a report carrying the fault section.
        let text = r.render();
        let back = RunReport::parse(&text).expect("parse");
        assert_eq!(back.faults, r.faults);
        back.validate().expect("report with faults validates");
    }
}
