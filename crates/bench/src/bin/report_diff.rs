//! Compare two structured run reports (`phj ... --json`), or validate one.
//!
//! ```text
//! report_diff --check RUN.json
//! report_diff OLD.json NEW.json [--threshold-pct P]
//! ```
//!
//! Compare mode prints the total-cycle (or wall-clock, for native runs)
//! delta plus the derived-rate changes, and exits non-zero when the new
//! run regresses beyond the threshold (default 5%) — a CI tripwire for
//! "did this change make the join slower?".
//!
//! Exit codes: 0 = ok, 1 = regression beyond threshold, 2 = usage /
//! unreadable / invalid report.

use phj_obs::RunReport;
use std::process::ExitCode;

const DEFAULT_THRESHOLD_PCT: f64 = 5.0;

fn load(path: &str) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let report = RunReport::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    report.validate().map_err(|e| format!("{path}: invalid report: {e}"))?;
    Ok(report)
}

fn describe(label: &str, r: &RunReport) {
    let cycles = r.totals.breakdown.total();
    println!(
        "{label}: command={} simulated={} spans={} cycles={} wall_ns={}",
        r.command,
        r.simulated,
        r.spans.len(),
        cycles,
        r.wall_ns
    );
    if r.simulated {
        println!(
            "  coverage={:.3} pollution={:.3} busy={} dcache_stall={} dtlb_stall={}",
            r.prefetch_coverage(),
            r.pollution_rate(),
            r.totals.breakdown.busy,
            r.totals.breakdown.dcache_stall,
            r.totals.breakdown.dtlb_stall,
        );
    }
}

/// The headline cost of a run: simulated cycles when available, wall-clock
/// nanoseconds for native runs (cycles are all zero there).
fn cost_of(r: &RunReport) -> (u64, &'static str) {
    let cycles = r.totals.breakdown.total();
    if cycles > 0 {
        (cycles, "cycles")
    } else {
        (r.wall_ns, "wall_ns")
    }
}

fn compare(old: &RunReport, new: &RunReport, threshold_pct: f64) -> ExitCode {
    describe("old", old);
    describe("new", new);
    let (oc, ounit) = cost_of(old);
    let (nc, nunit) = cost_of(new);
    if ounit != nunit {
        eprintln!("error: cannot compare a simulated run against a native run");
        return ExitCode::from(2);
    }
    if oc == 0 {
        eprintln!("error: old report has zero cost; nothing to compare against");
        return ExitCode::from(2);
    }
    let delta_pct = (nc as f64 - oc as f64) / oc as f64 * 100.0;
    println!("delta: {delta_pct:+.2}% total {ounit} (threshold {threshold_pct:.2}%)");
    if old.simulated && new.simulated {
        println!(
            "  coverage {:.3} -> {:.3}, pollution {:.3} -> {:.3}",
            old.prefetch_coverage(),
            new.prefetch_coverage(),
            old.pollution_rate(),
            new.pollution_rate(),
        );
    }
    if delta_pct > threshold_pct {
        println!("REGRESSION: new run is {delta_pct:.2}% more expensive");
        ExitCode::from(1)
    } else {
        println!("ok");
        ExitCode::SUCCESS
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: report_diff --check RUN.json");
    eprintln!("       report_diff OLD.json NEW.json [--threshold-pct P]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--check") => {
            let [_, path] = args.as_slice() else { return usage() };
            match load(path) {
                Ok(r) => {
                    describe("report", &r);
                    println!("ok");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some(_) => {
            let (paths, mut threshold) = (&args[..], DEFAULT_THRESHOLD_PCT);
            let (paths, threshold) = match paths {
                [old, new] => ([old, new], threshold),
                [old, new, flag, p] if flag == "--threshold-pct" => {
                    match p.parse::<f64>() {
                        Ok(v) if v >= 0.0 => threshold = v,
                        _ => {
                            eprintln!("error: bad threshold {p:?}");
                            return ExitCode::from(2);
                        }
                    }
                    ([old, new], threshold)
                }
                _ => return usage(),
            };
            match (load(paths[0]), load(paths[1])) {
                (Ok(old), Ok(new)) => compare(&old, &new, threshold),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        None => usage(),
    }
}
