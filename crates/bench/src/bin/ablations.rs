//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Stashed hash codes** (§7.1): reusing the hash code stored in the
//!    partition pages' slot area vs recomputing it in the join phase.
//! 2. **Cell arrays vs chained buckets** (§3, footnote 3): the Figure-2
//!    structure vs classic chained hashing, under group prefetching —
//!    the pointer-chasing problem made measurable.
//! 3. **Hardware stride prefetching** (§1.2): a next-line stream
//!    prefetcher helps the sequential partition input but cannot touch
//!    the join's hash visits.
//! 4. **Conflict pressure**: group-prefetched build under increasing key
//!    skew — the busy-flag/delayed-tuple protocol's cost as conflicts go
//!    from none to constant.
//! 5. **Hybrid vs GRACE** (§2): keeping partition 0 in memory.
//! 6. **Write-back modeling**: the paper folds dirty-eviction traffic
//!    into `T_next`; charging it explicitly bounds the simplification.

use phj::chained::{build_chained, probe_chained_group};
use phj::hybrid::{grace_equivalent, hybrid_join, HybridConfig};
use phj::hybrid_swp::hybrid_join_swp;
use phj::join::{self, JoinParams, JoinScheme};
use phj::plan;
use phj::sink::{CountSink, JoinSink};
use phj::table::HashTable;
use phj_bench::report::{mcycles, scaled, speedup, Table};
use phj_bench::runner::{sim_join, sim_partition};
use phj_memsim::{MemConfig, SimEngine};
use phj_storage::{RelationBuilder, Schema};
use phj_workload::{single_relation, tuples_for, JoinSpec};

fn pivot() -> JoinSpec {
    JoinSpec {
        build_tuples: tuples_for(scaled(50 << 20), 100),
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        seed: 0xAB1A,
    }
}

fn ablation_stored_hash() {
    let gen = pivot().generate();
    let mut t = Table::new(
        "Ablation 1 — stashed hash codes in partition slots (join phase, Mcycles)",
        &["scheme", "stored", "recomputed", "saving"],
    );
    for (name, scheme) in
        [("baseline", JoinScheme::Baseline), ("group", JoinScheme::Group { g: 16 })]
    {
        let run = |stored: bool| {
            let mut mem = SimEngine::paper();
            let params = JoinParams { scheme, use_stored_hash: stored };
            let buckets = plan::hash_table_buckets(gen.build.num_tuples(), 1);
            let mut table = HashTable::new(buckets, gen.build.num_tuples());
            let mut sink = CountSink::new();
            match scheme {
                JoinScheme::Baseline => {
                    join::baseline::build(&mut mem, &params, &mut table, &gen.build);
                    join::baseline::probe(&mut mem, &params, &table, &gen.build, &gen.probe, &mut sink);
                }
                JoinScheme::Group { g } => {
                    join::group::build(&mut mem, &params, &mut table, &gen.build, g);
                    join::group::probe(&mut mem, &params, &table, &gen.build, &gen.probe, g, &mut sink);
                }
                _ => unreachable!(),
            }
            assert_eq!(sink.matches(), gen.expected_matches);
            mem.breakdown().total()
        };
        let with = run(true);
        let without = run(false);
        t.row(&[&name, &mcycles(with), &mcycles(without), &speedup(without, with)]);
    }
    t.emit("ablation_stored_hash");
}

fn ablation_chained() {
    // Load factor 4 so chains have real length.
    let spec = JoinSpec { build_tuples: tuples_for(scaled(25 << 20), 100), ..pivot() };
    let gen = spec.generate();
    let buckets = plan::hash_table_buckets(gen.build.num_tuples() / 4, 1);
    let params = JoinParams { scheme: JoinScheme::Baseline, use_stored_hash: true };
    let mut t = Table::new(
        "Ablation 2 — Figure-2 cell arrays vs chained buckets (probe, group prefetching, Mcycles)",
        &["structure", "probe cycles", "vs chained"],
    );
    let chained = {
        let mut mem = SimEngine::paper();
        let table = build_chained(&mut mem, &params, &gen.build, buckets);
        let start = mem.breakdown();
        let mut sink = CountSink::new();
        probe_chained_group(&mut mem, &params, &table, &gen.build, &gen.probe, 16, &mut sink);
        assert_eq!(sink.matches(), gen.expected_matches);
        (mem.breakdown() - start).total()
    };
    let array = {
        let mut mem = SimEngine::paper();
        let jp = JoinParams { scheme: JoinScheme::Group { g: 16 }, use_stored_hash: true };
        let mut table = HashTable::new(buckets, gen.build.num_tuples());
        join::group::build(&mut mem, &jp, &mut table, &gen.build, 16);
        let start = mem.breakdown();
        let mut sink = CountSink::new();
        join::group::probe(&mut mem, &jp, &table, &gen.build, &gen.probe, 16, &mut sink);
        assert_eq!(sink.matches(), gen.expected_matches);
        (mem.breakdown() - start).total()
    };
    t.row(&[&"chained buckets", &mcycles(chained), &"1.00x"]);
    t.row(&[&"cell arrays (Fig 2)", &mcycles(array), &speedup(chained, array)]);
    t.emit("ablation_chained");
}

fn ablation_hw_prefetch() {
    let hw = MemConfig {
        hw_prefetch_streams: 8,
        hw_prefetch_depth: 2,
        ..MemConfig::paper()
    };
    let mut t = Table::new(
        "Ablation 3 — hardware next-line prefetcher (baseline algorithms, Mcycles)",
        &["workload", "no hw pf", "with hw pf", "hw gain", "group pf gain"],
    );
    // Partition phase: sequential input, the hardware prefetcher's bread
    // and butter.
    let input = single_relation(tuples_for(scaled(100 << 20), 100), 100);
    let p_base = sim_partition(&input, phj::partition::PartitionScheme::Baseline, 400, MemConfig::paper());
    let p_hw = sim_partition(&input, phj::partition::PartitionScheme::Baseline, 400, hw.clone());
    let p_grp = sim_partition(&input, phj::partition::PartitionScheme::Group { g: 12 }, 400, MemConfig::paper());
    t.row(&[
        &"partition 400p",
        &mcycles(p_base.breakdown.total()),
        &mcycles(p_hw.breakdown.total()),
        &speedup(p_base.breakdown.total(), p_hw.breakdown.total()),
        &speedup(p_base.breakdown.total(), p_grp.breakdown.total()),
    ]);
    drop((p_base, p_hw, p_grp, input));
    // Join phase: random hash visits — no strides to find.
    let gen = pivot().generate();
    let j_base = sim_join(&gen, JoinScheme::Baseline, MemConfig::paper(), true);
    let j_hw = sim_join(&gen, JoinScheme::Baseline, hw, true);
    let j_grp = sim_join(&gen, JoinScheme::Group { g: 16 }, MemConfig::paper(), true);
    t.row(&[
        &"join 50MBx100MB",
        &mcycles(j_base.total()),
        &mcycles(j_hw.total()),
        &speedup(j_base.total(), j_hw.total()),
        &speedup(j_base.total(), j_grp.total()),
    ]);
    t.emit("ablation_hw_prefetch");
    println!(
        "(hw prefetcher issued {} fills in the join run — almost all wasted)",
        j_hw.stats.hw_prefetches
    );
}

fn ablation_conflicts() {
    // Build-side conflict pressure: fraction of duplicate keys from 0%
    // (no conflicts) to 100% (every group-mate collides).
    let n = tuples_for(scaled(25 << 20), 100);
    let mut t = Table::new(
        "Ablation 4 — build-side conflict pressure under group prefetching (Mcycles)",
        &["% duplicate keys", "group build", "baseline build"],
    );
    for pct_dup in [0usize, 25, 50, 100] {
        let schema = Schema::key_payload(100);
        let mut b = RelationBuilder::new(schema);
        let mut tup = [0u8; 100];
        for i in 0..n {
            let key = if i * 100 < n * pct_dup { 7u32 } else { i as u32 };
            tup[..4].copy_from_slice(&key.to_le_bytes());
            b.push_hashed(&tup, phj::hash::hash_key(&key.to_le_bytes()));
        }
        let build_rel = b.finish();
        let buckets = plan::hash_table_buckets(n, 1);
        let run = |scheme| {
            let mut mem = SimEngine::paper();
            let params = JoinParams { scheme, use_stored_hash: true };
            let mut table = HashTable::new(buckets, n);
            match scheme {
                JoinScheme::Baseline => {
                    join::baseline::build(&mut mem, &params, &mut table, &build_rel)
                }
                JoinScheme::Group { g } => {
                    join::group::build(&mut mem, &params, &mut table, &build_rel, g)
                }
                _ => unreachable!(),
            }
            assert_eq!(table.len(), n);
            mem.breakdown().total()
        };
        t.row(&[
            &format!("{pct_dup}%"),
            &mcycles(run(JoinScheme::Group { g: 16 })),
            &mcycles(run(JoinScheme::Baseline)),
        ]);
    }
    t.emit("ablation_conflicts");
}

fn ablation_hybrid() {
    let gen = pivot().generate();
    let cfg = HybridConfig { mem_budget: scaled(50 << 20) / 4, g: 16, ..Default::default() };
    let mut t = Table::new(
        "Ablation 5 — hybrid hash join vs GRACE (group prefetching, end-to-end Mcycles)",
        &["algorithm", "cycles", "speedup"],
    );
    let grace = {
        let mut mem = SimEngine::paper();
        let mut sink = CountSink::new();
        grace_equivalent(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
        assert_eq!(sink.matches(), gen.expected_matches);
        mem.breakdown().total()
    };
    let hybrid = {
        let mut mem = SimEngine::paper();
        let mut sink = CountSink::new();
        hybrid_join(&mut mem, &cfg, &gen.build, &gen.probe, &mut sink);
        assert_eq!(sink.matches(), gen.expected_matches);
        mem.breakdown().total()
    };
    let hybrid_swp = {
        let mut mem = SimEngine::paper();
        let mut sink = CountSink::new();
        hybrid_join_swp(&mut mem, &cfg, 2, &gen.build, &gen.probe, &mut sink);
        assert_eq!(sink.matches(), gen.expected_matches);
        mem.breakdown().total()
    };
    t.row(&[&"GRACE + group pf", &mcycles(grace), &"1.00x"]);
    t.row(&[&"hybrid + group pf", &mcycles(hybrid), &speedup(grace, hybrid)]);
    t.row(&[&"hybrid + swp pf", &mcycles(hybrid_swp), &speedup(grace, hybrid_swp)]);
    t.emit("ablation_hybrid");
}

fn ablation_aggregation() {
    use phj::aggregate::{aggregate, AggScheme};
    let n = tuples_for(scaled(50 << 20), 100);
    let input = single_relation(n, 100);
    let buckets = plan::hash_table_buckets(n, 1);
    let extract = |t: &[u8]| t.get(4).copied().unwrap_or(0) as i64;
    let mut t = Table::new(
        "Extension (§8) — hash group-by/aggregation (Mcycles, speedup over baseline)",
        &["scheme", "cycles", "speedup"],
    );
    let mut base = 0u64;
    for (name, scheme) in [
        ("baseline", AggScheme::Baseline),
        ("simple", AggScheme::Simple),
        ("group", AggScheme::Group { g: 16 }),
        ("swp", AggScheme::Swp { d: 2 }),
    ] {
        let mut mem = SimEngine::paper();
        let table = aggregate(&mut mem, scheme, &input, buckets, extract);
        assert_eq!(table.num_groups(), n, "all keys distinct");
        let cyc = mem.breakdown().total();
        if base == 0 {
            base = cyc;
        }
        t.row(&[&name, &mcycles(cyc), &speedup(base, cyc)]);
    }
    t.emit("ablation_aggregation");
}

fn ablation_writebacks() {
    let gen = pivot().generate();
    let mut t = Table::new(
        "Ablation 6 — explicit dirty write-back bus traffic (join phase, Mcycles)",
        &["scheme", "folded into T_next", "modeled explicitly", "writebacks"],
    );
    for (name, scheme) in
        [("baseline", JoinScheme::Baseline), ("group", JoinScheme::Group { g: 16 })]
    {
        let folded = sim_join(&gen, scheme, MemConfig::paper(), true);
        let explicit_cfg = MemConfig { model_writebacks: true, ..MemConfig::paper() };
        let explicit = sim_join(&gen, scheme, explicit_cfg, true);
        t.row(&[
            &name,
            &mcycles(folded.total()),
            &mcycles(explicit.total()),
            &explicit.stats.writebacks,
        ]);
    }
    t.emit("ablation_writebacks");
}

fn main() {
    ablation_stored_hash();
    ablation_chained();
    ablation_hw_prefetch();
    ablation_conflicts();
    ablation_hybrid();
    ablation_aggregation();
    ablation_writebacks();
}
