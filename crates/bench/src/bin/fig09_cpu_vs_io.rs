//! Figure 9: is hash join I/O-bound or CPU-bound?
//!
//! The paper joins a 1.5 GB build relation with a 3 GB probe relation (31
//! partitions, 100 B tuples) on a quad-Pentium III with 1–6 striped SCSI
//! disks, and shows both phases become CPU-bound at ≥ 4 disks. We replay
//! the experiment on the discrete-event I/O model (`phj-iosim`), with the
//! CPU work calibrated from the cycle simulator: a small simulated run of
//! each phase yields cycles-per-tuple, scaled to the full relation sizes
//! and the paper's 550 MHz clock.

use phj::join::JoinScheme;
use phj::partition::PartitionScheme;
use phj_bench::report::Table;
use phj_bench::runner::{sim_join, sim_partition};
use phj_iosim::{disk_sweep, IoConfig, PhaseSpec};
use phj_memsim::MemConfig;
use phj_workload::{single_relation, JoinSpec};

const GB: u64 = 1 << 30;

fn main() {
    // Calibrate CPU cycles/tuple from small simulated runs.
    let cal_n = 40_000usize;
    let input = single_relation(cal_n, 100);
    let p = sim_partition(&input, PartitionScheme::Baseline, 31, MemConfig::paper());
    let part_cyc_per_tuple = p.breakdown.total() / cal_n as u64;
    let spec = JoinSpec {
        build_tuples: cal_n,
        tuple_size: 100,
        matches_per_build: 2,
        pct_match: 100,
        seed: 9,
    };
    let gen = spec.generate();
    let j = sim_join(&gen, JoinScheme::Baseline, MemConfig::paper(), true);
    // Per build tuple processed (the join touches 1 build + 2 probes).
    let join_cyc_per_build = j.total() / cal_n as u64;
    println!(
        "calibration: partition {part_cyc_per_tuple} cyc/tuple, join {join_cyc_per_build} cyc/build-tuple"
    );

    let build_tuples = (3 * GB / 2) / 108; // 100 B + 8 B slot
    let base = IoConfig::default();

    // (a) Partition phase of the build relation: read 1.5 GB, write 1.5 GB.
    let part_spec = PhaseSpec {
        read_bytes: 3 * GB / 2,
        write_bytes: 3 * GB / 2,
        cpu_cycles: build_tuples * part_cyc_per_tuple,
    };
    let mut ta = Table::new(
        "Fig 9(a) — partition phase, 1.5 GB build relation (seconds)",
        &["disks", "elapsed", "worker io", "main stall", "cpu"],
    );
    for (d, r) in disk_sweep(&base, &part_spec, 6) {
        ta.row(&[
            &d,
            &format!("{:.1}", r.elapsed_s),
            &format!("{:.1}", r.worker_io_s),
            &format!("{:.1}", r.main_stall_s),
            &format!("{:.1}", r.cpu_s),
        ]);
    }
    ta.emit("fig09a_partition");

    // (b) Join phase: read build + probe partitions (4.5 GB), write the
    // join output (2 matches per build tuple, ~208 B output tuples).
    let out_bytes = build_tuples * 2 * 216; // output tuple + slot overhead
    let join_spec = PhaseSpec {
        read_bytes: 9 * GB / 2,
        write_bytes: out_bytes,
        cpu_cycles: build_tuples * join_cyc_per_build,
    };
    let mut tb = Table::new(
        "Fig 9(b) — join phase, 1.5 GB x 3 GB (seconds)",
        &["disks", "elapsed", "worker io", "main stall", "cpu"],
    );
    for (d, r) in disk_sweep(&base, &join_spec, 6) {
        tb.row(&[
            &d,
            &format!("{:.1}", r.elapsed_s),
            &format!("{:.1}", r.worker_io_s),
            &format!("{:.1}", r.main_stall_s),
            &format!("{:.1}", r.cpu_s),
        ]);
    }
    tb.emit("fig09b_join");

    // The paper's conclusion line.
    let sweep = disk_sweep(&base, &join_spec, 6);
    let e4 = sweep[3].1.elapsed_s;
    let e6 = sweep[5].1.elapsed_s;
    println!(
        "\nCPU-bound at >= 4 disks: elapsed(4)={:.1}s vs elapsed(6)={:.1}s ({:.0}% flat); \
         room for CPU improvement at 6 disks: {:.1}x",
        e4,
        e6,
        100.0 * e6 / e4,
        sweep[5].1.elapsed_s / sweep[5].1.worker_io_s
    );
}
