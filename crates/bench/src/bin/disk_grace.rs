//! Real-machine analog of the Fig 9 measurement: run the GRACE hash join
//! over actual striped files with background I/O worker threads
//! (`phj-disk`), and report elapsed time per phase plus the main thread's
//! I/O stall — the same quantities the paper measured with
//! gettimeofday/PAPI on its quad-P3 + 6-disk testbed (§7.2). On a laptop
//! the stripes share one device, so the disk-scaling curve is not
//! reproducible here (that is `fig09_cpu_vs_io`'s job on the I/O model);
//! this binary demonstrates the *mechanics* end to end and sanity-checks
//! the result against the in-memory engine.

use phj::sink::{CountSink, JoinSink};
use phj_bench::report::{scaled, Table};
use phj_disk::{grace_join_files, DiskGraceConfig, FileRelation};
use phj_workload::JoinSpec;

fn main() {
    let dir = std::env::temp_dir().join(format!("phj-disk-grace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = JoinSpec::pivot(scaled(64 << 20));
    let gen = spec.generate();
    println!(
        "writing {} + {} tuples to striped files under {}",
        gen.build.num_tuples(),
        gen.probe.num_tuples(),
        dir.display()
    );
    let t0 = std::time::Instant::now();
    let fb = FileRelation::create(&dir, "build", &gen.build, 6, 32).unwrap();
    let fp = FileRelation::create(&dir, "probe", &gen.probe, 6, 32).unwrap();
    let load_s = t0.elapsed().as_secs_f64();

    let cfg = DiskGraceConfig {
        mem_budget: scaled(16 << 20),
        ..DiskGraceConfig::new(&dir)
    };
    let report = grace_join_files(&cfg, &fb, &fp).unwrap();
    assert_eq!(report.matches, gen.expected_matches, "disk join correct");

    // Cross-check against the in-memory engine.
    let mut sink = CountSink::new();
    phj::grace::grace_join_with_sink(
        &mut phj_memsim::NativeModel,
        &phj::grace::GraceConfig { mem_budget: cfg.mem_budget, ..Default::default() },
        &gen.build,
        &gen.probe,
        &mut sink,
    );
    assert_eq!(sink.matches(), report.matches);

    let mut t = Table::new(
        "On-disk GRACE (real files, background I/O threads)",
        &["metric", "value"],
    );
    t.row(&[&"stripe files per relation", &6]);
    t.row(&[&"partitions", &report.num_partitions]);
    t.row(&[&"matches", &report.matches]);
    t.row(&[&"load input to disk", &format!("{load_s:.2}s")]);
    t.row(&[&"partition phase", &format!("{:.2}s", report.partition_s)]);
    t.row(&[&"join phase", &format!("{:.2}s", report.join_s)]);
    t.row(&[&"main-thread input stall", &format!("{:.3}s", report.input_stall_s)]);
    t.row(&[
        &"output pages",
        &report.output.num_pages(),
    ]);
    t.emit("disk_grace");
    std::fs::remove_dir_all(&dir).ok();
}
