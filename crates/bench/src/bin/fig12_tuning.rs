//! Figure 12: cache performance vs the group size `G` and the prefetch
//! distance `D`, at memory latency T = 150 and T = 1000.
//!
//! The paper's observations this run must reproduce:
//! * the curves are **concave** — performance is poor when the parameter
//!   is too small (latency not hidden) and degrades when too large
//!   (conflict misses / cache pollution);
//! * at T = 1000 the **optimal points shift right**;
//! * software-pipelined prefetching achieves similar performance at
//!   T = 150 and T = 1000 (robustness to the speed gap);
//! * the Theorem-1/2 predictions land near the simulated knees.
//!
//! As in the paper, the workload is Fig 10(a) at 20 B tuples and the
//! tuning is shown for the probing loop.

use phj::cost;
use phj::join::{self, JoinParams, JoinScheme};
use phj::model::{min_group_size, min_prefetch_distance};
use phj::plan;
use phj::table::HashTable;
use phj_bench::report::{mcycles, scaled, Table};
use phj_bench::runner::sim_join;
use phj_memsim::{MemConfig, SimEngine};
use phj_workload::{tuples_for, JoinSpec};

fn main() {
    let mem = scaled(50 << 20);
    let spec = JoinSpec {
        build_tuples: tuples_for(mem, 20),
        tuple_size: 20,
        matches_per_build: 2,
        pct_match: 100,
        seed: 0xC0FFEE,
    };
    let gen = spec.generate();
    let configs = [("T=150", MemConfig::paper()), ("T=1000", MemConfig::paper_t1000())];

    let costs = cost::probe_stage_costs(true, 40);
    for (name, cfg) in &configs {
        let gp = min_group_size(cfg.t_full, cfg.t_next, &costs);
        let dp = min_prefetch_distance(cfg.t_full, cfg.t_next, &costs);
        println!("{name}: Theorem 1 predicts G >= {}, Theorem 2 predicts D >= {dp}", gp.g);
    }

    let mut tg = Table::new(
        "Fig 12 (top/bottom left) — group prefetching vs G (Mcycles)",
        &["G", "T=150", "T=1000"],
    );
    for g in [2usize, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128] {
        let mut cells = vec![g.to_string()];
        for (_, cfg) in &configs {
            let r = sim_join(&gen, JoinScheme::Group { g }, cfg.clone(), true);
            cells.push(mcycles(r.total()));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        tg.row(&refs);
    }
    tg.emit("fig12_group_tuning");

    let mut td = Table::new(
        "Fig 12 (top/bottom right) — software-pipelined prefetching vs D (Mcycles)",
        &["D", "T=150", "T=1000"],
    );
    for d in [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32] {
        let mut cells = vec![d.to_string()];
        for (_, cfg) in &configs {
            let r = sim_join(&gen, JoinScheme::Swp { d }, cfg.clone(), true);
            cells.push(mcycles(r.total()));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        td.row(&refs);
    }
    td.emit("fig12_swp_tuning");

    // The paper shows probe-loop tuning and notes "the curves for the
    // building loop have similar shapes" — verify with a build-only sweep.
    let build_costs = cost::build_stage_costs(true);
    let cfg150 = MemConfig::paper();
    println!(
        "build loop: Theorem 1 predicts G >= {}, Theorem 2 predicts D >= {}",
        min_group_size(cfg150.t_full, cfg150.t_next, &build_costs).g,
        min_prefetch_distance(cfg150.t_full, cfg150.t_next, &build_costs)
    );
    let buckets = plan::hash_table_buckets(gen.build.num_tuples(), 1);
    let build_time = |scheme: JoinScheme| {
        let mut mem = SimEngine::paper();
        let params = JoinParams { scheme, use_stored_hash: true };
        let mut table = HashTable::new(buckets, gen.build.num_tuples());
        match scheme {
            JoinScheme::Group { g } => {
                join::group::build(&mut mem, &params, &mut table, &gen.build, g)
            }
            JoinScheme::Swp { d } => {
                join::swp::build(&mut mem, &params, &mut table, &gen.build, d)
            }
            _ => unreachable!(),
        }
        assert_eq!(table.len(), gen.build.num_tuples());
        mem.breakdown().total()
    };
    let mut tb = Table::new(
        "Fig 12 (building loop) — similar shapes, per §7.3",
        &["param", "group vs G", "swp vs D"],
    );
    for p in [2usize, 4, 8, 16, 32, 64, 128] {
        tb.row(&[
            &p,
            &mcycles(build_time(JoinScheme::Group { g: p })),
            &mcycles(build_time(JoinScheme::Swp { d: p })),
        ]);
    }
    tb.emit("fig12_build_tuning");
}
