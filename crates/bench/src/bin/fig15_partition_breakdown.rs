//! Figure 15: partition-phase execution-time breakdown at 800 partitions
//! (the right region of Fig 14(a), where output-buffer visits thrash the
//! cache). "Group prefetching and software pipelined prefetching
//! successfully hide most of the data cache miss latencies."

use phj::partition::PartitionScheme;
use phj_bench::report::{mcycles, scale, Table};
use phj_bench::runner::{paper_partition_schemes, sim_partition};
use phj_memsim::MemConfig;
use phj_workload::single_relation;

fn main() {
    let n = (10_000_000f64 * scale()) as usize;
    let input = single_relation(n, 100);
    let mut t = Table::new(
        "Fig 15 — partition-phase breakdown at 800 partitions (Mcycles)",
        &["scheme", "total", "busy", "dcache", "dtlb", "other"],
    );
    let mut schemes: Vec<(&str, PartitionScheme)> = paper_partition_schemes(12, 1).to_vec();
    schemes.push(("combined", PartitionScheme::combined_default()));
    for (name, scheme) in schemes {
        let r = sim_partition(&input, scheme, 800, MemConfig::paper());
        let b = r.breakdown;
        t.row(&[
            &name,
            &mcycles(b.total()),
            &mcycles(b.busy),
            &mcycles(b.dcache_stall),
            &mcycles(b.dtlb_stall),
            &mcycles(b.other_stall),
        ]);
    }
    t.emit("fig15_partition_breakdown");
}
