//! Figure 18: impact of periodic cache flushing (worst-case interference
//! from other activity) on the join phase.
//!
//! "We vary the period to flush cache from 10ms to 2ms in our simulator.
//! '100' corresponds to the join phase execution time when there is no
//! cache flush. Direct cache and 2-step cache suffer from 15-67% and
//! 8-38% performance degradation [...] In contrast, our prefetching
//! schemes do not assume hash tables and build partitions in cache. As
//! shown in the figure, they are very robust against even cache flushes."
//!
//! The cache-partitioning schemes' I/O partition pass runs on the native
//! model (it is not part of the measured join phase); the join phase —
//! including two-step's in-memory re-partition — runs under the flushing
//! simulator.

use phj::cachepart::{direct_cache_join, direct_cache_partition, two_step_join, CachePartConfig};
use phj::join::JoinScheme;
use phj::sink::CountSink;
use phj_bench::report::{scaled, Table};
use phj_bench::runner::sim_join;
use phj_memsim::{MemConfig, NativeModel, SimEngine};
use phj_storage::Relation;
use phj_workload::{GeneratedJoin, JoinSpec};

fn cfg_with_flush(period: Option<u64>) -> MemConfig {
    MemConfig { flush_period: period, ..MemConfig::paper() }
}

/// Join-phase cycles for the prefetching schemes.
fn prefetch_join(gen: &GeneratedJoin, scheme: JoinScheme, period: Option<u64>) -> u64 {
    sim_join(gen, scheme, cfg_with_flush(period), true).total()
}

/// Join-phase cycles for direct cache partitioning over pre-made
/// cache-sized partitions.
fn direct_join(
    cp: &CachePartConfig,
    bp: &[Relation],
    pp: &[Relation],
    p: usize,
    expected: u64,
    period: Option<u64>,
) -> u64 {
    let mut mem = SimEngine::new(cfg_with_flush(period));
    let mut sink = CountSink::new();
    direct_cache_join(&mut mem, cp, bp, pp, p, &mut sink);
    assert_eq!(phj::sink::JoinSink::matches(&sink), expected);
    mem.breakdown().total()
}

/// Join-phase cycles for two-step cache partitioning (in-memory
/// re-partition + cache-resident joins, all under the flushing cache).
fn two_step(gen: &GeneratedJoin, cp: &CachePartConfig, period: Option<u64>) -> u64 {
    let mut mem = SimEngine::new(cfg_with_flush(period));
    let bp = [gen.build.clone()];
    let pp = [gen.probe.clone()];
    let mut sink = CountSink::new();
    two_step_join(&mut mem, cp, &bp, &pp, 1, &mut sink);
    assert_eq!(phj::sink::JoinSink::matches(&sink), gen.expected_matches);
    mem.breakdown().total()
}

fn main() {
    let gen = JoinSpec::pivot(scaled(50 << 20)).generate();
    let cp = CachePartConfig::default();

    // Pre-partition for direct cache on the native model (setup).
    let mut native = NativeModel;
    let (bp, pp, p) =
        direct_cache_partition(&mut native, &cp, &gen.build, &gen.probe).expect("small enough");

    // Periods: none, 10ms, 5ms, 2ms at 1 GHz.
    let periods: [(&str, Option<u64>); 4] = [
        ("none", None),
        ("10ms", Some(10_000_000)),
        ("5ms", Some(5_000_000)),
        ("2ms", Some(2_000_000)),
    ];

    let mut t = Table::new(
        "Fig 18 — join phase under periodic cache flushing (normalized, no-flush = 100)",
        &["scheme", "none", "10ms", "5ms", "2ms"],
    );
    type Run<'a> = Box<dyn Fn(Option<u64>) -> u64 + 'a>;
    let runs: Vec<(&str, Run)> = vec![
        ("group", Box::new(|per| prefetch_join(&gen, JoinScheme::Group { g: 16 }, per))),
        ("swp", Box::new(|per| prefetch_join(&gen, JoinScheme::Swp { d: 1 }, per))),
        ("direct cache", Box::new(|per| direct_join(&cp, &bp, &pp, p, gen.expected_matches, per))),
        ("2-step cache", Box::new(|per| two_step(&gen, &cp, per))),
    ];
    for (name, run) in runs {
        let base = run(None);
        let mut cells = vec![name.to_string()];
        for (_, per) in &periods {
            let c = run(*per);
            cells.push(format!("{:.0}", 100.0 * c as f64 / base as f64));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        t.row(&refs);
    }
    t.emit("fig18_flush");
}
