//! Figure 16: partition-phase cache performance vs G and D (at 800
//! partitions). Same concave shapes and trends as the join phase
//! (Fig 12): too-small parameters fail to hide latency, too-large ones
//! pollute the cache. The Theorem predictions (k = 1 here: the output
//! buffer is the single dependent reference) are printed alongside.

use phj::cost;
use phj::model::{min_group_size, min_prefetch_distance};
use phj::partition::PartitionScheme;
use phj_bench::report::{mcycles, scale, Table};
use phj_bench::runner::sim_partition;
use phj_memsim::MemConfig;
use phj_workload::single_relation;

fn main() {
    let n = (10_000_000f64 * scale() * 0.4) as usize; // sweep is wide; trim
    let input = single_relation(n, 100);
    let cfg = MemConfig::paper();
    let costs = cost::partition_stage_costs(100);
    let gp = min_group_size(cfg.t_full, cfg.t_next, &costs);
    let dp = min_prefetch_distance(cfg.t_full, cfg.t_next, &costs);
    println!("Theorem 1 predicts G >= {}; Theorem 2 predicts D >= {dp}", gp.g);

    let mut tg = Table::new(
        "Fig 16 (left) — partition group prefetching vs G (Mcycles)",
        &["G", "cycles"],
    );
    for g in [2usize, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128] {
        let r = sim_partition(&input, PartitionScheme::Group { g }, 800, cfg.clone());
        tg.row(&[&g, &mcycles(r.breakdown.total())]);
    }
    tg.emit("fig16_group_tuning");

    let mut td = Table::new(
        "Fig 16 (right) — partition software pipelining vs D (Mcycles)",
        &["D", "cycles"],
    );
    for d in [1usize, 2, 3, 4, 6, 8, 12, 16, 32, 64] {
        let r = sim_partition(&input, PartitionScheme::Swp { d }, 800, cfg.clone());
        td.row(&[&d, &mcycles(r.breakdown.total())]);
    }
    td.emit("fig16_swp_tuning");
}
