//! Figure 14: partition phase performance.
//!
//! (a) varies the number of partitions from 25 to 800 over a 10-million-
//! tuple 100 B relation: "When partition number is 25, 50, and 100,
//! simple prefetching achieves the best performance. However, when the
//! number of partitions becomes larger, [...] group prefetching and
//! software-pipelined prefetching win" — the two regions are separated by
//! whether the output buffers fit in the L2 cache.
//!
//! (b) varies the relation size while keeping the partition size fixed
//! (so the partition count grows with the relation): "essentially the
//! same tradeoff [...] in a more natural setting". The combined scheme
//! (§7.4) must track the best curve in both regions; overall it achieves
//! 1.9–2.6× over the baseline.

use phj::partition::PartitionScheme;
use phj_bench::report::{mcycles, scale, scaled, speedup, Table};
use phj_bench::runner::{paper_partition_schemes, sim_partition};
use phj_memsim::MemConfig;
use phj_workload::{single_relation, tuples_for};

fn main() {
    // (a) 10M 100-byte tuples (~1 GB), 25..800 partitions.
    let n = (10_000_000f64 * scale()) as usize;
    let input = single_relation(n, 100);
    let mut ta = Table::new(
        "Fig 14(a) — partition phase vs number of partitions (Mcycles, speedup over baseline)",
        &["partitions", "baseline", "simple", "group", "swp", "combined"],
    );
    for nparts in [25usize, 50, 100, 200, 400, 800] {
        let mut cells = vec![nparts.to_string()];
        let mut base = 0u64;
        for (_, scheme) in paper_partition_schemes(12, 1) {
            let r = sim_partition(&input, scheme, nparts, MemConfig::paper());
            if base == 0 {
                base = r.breakdown.total();
            }
            cells.push(format!(
                "{} ({})",
                mcycles(r.breakdown.total()),
                speedup(base, r.breakdown.total())
            ));
        }
        let r = sim_partition(
            &input,
            PartitionScheme::combined_default(),
            nparts,
            MemConfig::paper(),
        );
        cells.push(format!(
            "{} ({})",
            mcycles(r.breakdown.total()),
            speedup(base, r.breakdown.total())
        ));
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        ta.row(&refs);
    }
    ta.emit("fig14a_partitions");
    drop(input);

    // (b) relation size sweep with fixed (50 MB) partition size → the
    // partition count grows with the relation: 26..152 partitions.
    let part_bytes = scaled(50 << 20);
    let mut tb = Table::new(
        "Fig 14(b) — partition phase vs relation size (fixed partition size)",
        &["partitions", "tuples", "baseline", "simple", "group", "swp", "combined"],
    );
    for nparts in [26usize, 51, 76, 102, 127, 152] {
        let tuples = tuples_for(part_bytes * nparts, 100);
        let input = single_relation(tuples, 100);
        let mut cells = vec![nparts.to_string(), tuples.to_string()];
        let mut base = 0u64;
        for (_, scheme) in paper_partition_schemes(12, 1) {
            let r = sim_partition(&input, scheme, nparts, MemConfig::paper());
            if base == 0 {
                base = r.breakdown.total();
            }
            cells.push(format!(
                "{} ({})",
                mcycles(r.breakdown.total()),
                speedup(base, r.breakdown.total())
            ));
        }
        let r = sim_partition(
            &input,
            PartitionScheme::combined_default(),
            nparts,
            MemConfig::paper(),
        );
        cells.push(format!(
            "{} ({})",
            mcycles(r.breakdown.total()),
            speedup(base, r.breakdown.total())
        ));
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        tb.row(&refs);
    }
    tb.emit("fig14b_relation_size");
}
