//! The paper's headline claims (abstract / §1.3 / §7), paper vs measured:
//!
//! * join phase: 2.0–2.9× speedups over GRACE and simple prefetching
//!   (group 2.4–2.9×, swp 2.1–2.7× over baseline; 2.3–2.5× and 2.0–2.3×
//!   over simple);
//! * partition phase: 1.4–2.6× speedups (combined scheme 1.9–2.6×);
//! * two-step cache partitioning 50–150% slower than prefetching;
//! * baseline join spends >73% of user time in data-cache stalls.
//!
//! Also times the four join schemes natively (real `prefetcht0`
//! instructions, wall-clock) as a hardware sanity check.

use std::time::Instant;

use phj::cachepart::CachePartConfig;
use phj::join::{join_pair, JoinParams, JoinScheme};
use phj::partition::PartitionScheme;
use phj::sink::CountSink;
use phj_bench::report::{scaled, Table};
use phj_bench::runner::{
    paper_join_schemes, sim_grace, sim_join, sim_partition, sim_two_step,
};
use phj_memsim::{MemConfig, NativeModel};
use phj_workload::{single_relation, JoinSpec};

fn main() {
    let gen = JoinSpec::pivot(scaled(50 << 20)).generate();

    // Join phase. Each scheme's run also lands in the perf-trajectory
    // archive (bench_out/history/headline_join.jsonl) so report_diff
    // --history can flag a creeping slowdown across bench invocations.
    let tuples = (gen.build.num_tuples() + gen.probe.num_tuples()) as u64;
    let mut totals = Vec::new();
    for (name, scheme) in paper_join_schemes(16, 1) {
        let r = sim_join(&gen, scheme, MemConfig::paper(), true);
        let bd = r.breakdown();
        let coverage = r.stats.pf_hidden_cycles as f64
            / (r.stats.pf_hidden_cycles + bd.dcache_stall).max(1) as f64;
        let pollution = if r.stats.prefetches == 0 {
            0.0
        } else {
            r.stats.pf_evicted_unused as f64 / r.stats.prefetches as f64
        };
        phj_bench::report::history_append(
            "headline_join",
            &[("scheme".to_string(), name.to_string())],
            r.total(),
            0,
            tuples,
            coverage,
            pollution,
        );
        totals.push((name, r.total(), bd));
    }
    let base = totals[0].1;
    let simple = totals[1].1;
    let mut t = Table::new(
        "Headline — join phase (paper: group 2.4-2.9x, swp 2.1-2.7x over baseline)",
        &["scheme", "vs baseline", "vs simple", "dcache share"],
    );
    for (name, cyc, bd) in &totals {
        t.row(&[
            name,
            &format!("{:.2}x", base as f64 / *cyc as f64),
            &format!("{:.2}x", simple as f64 / *cyc as f64),
            &format!("{:.0}%", 100.0 * bd.dcache_fraction()),
        ]);
    }
    t.emit("headline_join");

    // Partition phase at both ends of the partition-count range.
    let n = (3_000_000f64 * phj_bench::report::scale()) as usize;
    let input = single_relation(n, 100);
    let mut tp = Table::new(
        "Headline — partition phase (paper: 1.4-2.6x; combined 1.9-2.6x)",
        &["partitions", "simple", "group", "swp", "combined"],
    );
    for nparts in [25usize, 800] {
        let base =
            sim_partition(&input, PartitionScheme::Baseline, nparts, MemConfig::paper())
                .breakdown
                .total();
        let sp = |s| {
            let c = sim_partition(&input, s, nparts, MemConfig::paper()).breakdown.total();
            format!("{:.2}x", base as f64 / c as f64)
        };
        tp.row(&[
            &nparts,
            &sp(PartitionScheme::Simple),
            &sp(PartitionScheme::Group { g: 12 }),
            &sp(PartitionScheme::Swp { d: 1 }),
            &sp(PartitionScheme::combined_default()),
        ]);
    }
    tp.emit("headline_partition");

    // Two-step cache partitioning vs prefetching, end to end.
    let mem_budget = scaled(50 << 20) * 4; // several memory-sized partitions
    let e2e_gen = JoinSpec::pivot(scaled(200 << 20)).generate();
    let cp = CachePartConfig { mem_budget, ..Default::default() };
    let pf = sim_grace(
        &e2e_gen,
        PartitionScheme::combined_default(),
        JoinScheme::Group { g: 16 },
        mem_budget,
        MemConfig::paper(),
    );
    let ts = sim_two_step(&e2e_gen, &cp, MemConfig::paper());
    println!(
        "\nTwo-step cache vs group prefetching (paper: 50-150% slower): {:+.0}%",
        100.0 * (ts.total() as f64 / pf.total() as f64 - 1.0)
    );

    // Native wall-clock sanity check with real prefetch instructions.
    let mut tn = Table::new(
        "Native wall-clock (this machine, real prefetcht0; counting sink)",
        &["scheme", "time", "vs baseline"],
    );
    let mut base_wall = 0.0f64;
    for (name, scheme) in paper_join_schemes(16, 4) {
        let t0 = Instant::now();
        let mut mem = NativeModel;
        let mut sink = CountSink::new();
        join_pair(
            &mut mem,
            &JoinParams { scheme, use_stored_hash: true },
            &gen.build,
            &gen.probe,
            1,
            &mut sink,
        );
        let dt = t0.elapsed().as_secs_f64();
        if base_wall == 0.0 {
            base_wall = dt;
        }
        tn.row(&[&name, &format!("{:.3}s", dt), &format!("{:.2}x", base_wall / dt)]);
    }
    tn.emit("headline_native");
}
