#![warn(missing_docs)]

//! Experiment harness for regenerating every table and figure of
//! *Improving Hash Join Performance through Prefetching* (Chen et al.).
//!
//! One binary per experiment (see `src/bin/`); each prints the paper's
//! series as an aligned table and writes a CSV under `bench_out/`.
//! `PHJ_SCALE` (0 < s ≤ 1) shrinks workload bytes for quick passes;
//! EXPERIMENTS.md records the scale used for the committed results.

pub mod report;
pub mod runner;
