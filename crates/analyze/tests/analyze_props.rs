//! Property-based invariants of the diagnosis engine: for *any* report —
//! including degenerate ones with empty spans, zero cycles, zero tuples,
//! or a config fingerprint the analyzer has never seen — `analyze` must
//! produce a section that (a) passes the report model's validation when
//! attached, (b) survives the JSON round trip bit-exactly, and (c) never
//! emits a NaN/Inf (no division by zero anywhere in the residual math).

use proptest::prelude::*;

use phj::cost::CostModel;
use phj_analyze::analyze;
use phj_memsim::{Breakdown, CacheStats, Snapshot};
use phj_obs::span::Recorder;
use phj_obs::RunReport;

#[derive(Debug, Clone)]
struct Raw {
    scheme: usize,
    simulated: bool,
    with_mem_cfg: bool,
    empty_spans: bool,
    busy: u64,
    dcache: u64,
    dtlb: u64,
    hidden: u64,
    prefetches: u64,
    dropped: u64,
    evicted: u64,
    misses: u64,
    tuples: u64,
    wall_ns: u64,
}

fn raw_strategy() -> impl Strategy<Value = Raw> {
    (
        (0usize..6, any::<bool>(), any::<bool>(), any::<bool>()),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..200_000, 0u64..1_000_000),
        (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..10_000),
        (0u64..1_000_000, 0u64..1_000_000_000),
    )
        .prop_map(
            |(
                (scheme, simulated, with_mem_cfg, empty_spans),
                (busy, dcache, dtlb, hidden),
                (prefetches, dropped, evicted, misses),
                (tuples, wall_ns),
            )| Raw {
                scheme,
                simulated,
                with_mem_cfg,
                empty_spans,
                busy,
                dcache,
                dtlb,
                hidden,
                prefetches,
                dropped,
                evicted,
                misses,
                tuples,
                wall_ns,
            },
        )
}

fn build_report(raw: &Raw) -> RunReport {
    let snapshot = Snapshot {
        breakdown: Breakdown {
            busy: raw.busy,
            dcache_stall: raw.dcache,
            dtlb_stall: raw.dtlb,
            other_stall: 0,
        },
        stats: CacheStats {
            prefetches: raw.prefetches,
            pf_dropped: raw.dropped.min(raw.prefetches),
            pf_evicted_unused: raw.evicted.min(raw.prefetches),
            pf_hidden_cycles: raw.hidden,
            mem_misses: raw.misses,
            ..Default::default()
        },
    };
    let mut rec = Recorder::new();
    if !raw.empty_spans {
        let root = rec.begin("run", Snapshot::default());
        let probe = rec.begin("probe", Snapshot::default());
        rec.end(probe, snapshot);
        rec.end(root, snapshot);
    }
    let mut r = RunReport::from_recorder("join", rec, snapshot, raw.wall_ns);
    r.simulated = raw.simulated;
    r.tuples = raw.tuples;
    let scheme = ["baseline", "simple", "group(G=1)", "group(G=16)", "swp(D=2)", "mystery"]
        [raw.scheme];
    r.config_kv("scheme", scheme);
    r.config_kv("tuple_size", 100);
    if raw.with_mem_cfg {
        r.config_kv("t_full", 150);
        r.config_kv("t_next", 10);
    }
    r
}

fn all_floats_finite(sec: &phj_obs::AnalysisSection) -> bool {
    sec.predictions.iter().all(|p| p.predicted_coverage.is_finite())
        && sec
            .residuals
            .iter()
            .all(|r| r.predicted.is_finite() && r.measured.is_finite() && r.residual.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn analysis_round_trips_and_never_divides_by_zero(raw in raw_strategy()) {
        let report = build_report(&raw);
        let sec = analyze(&report, &CostModel::default());
        prop_assert!(all_floats_finite(&sec), "non-finite value in {sec:?}");
        prop_assert!(phj_obs::BOTTLENECK_CLASSES.contains(&sec.primary.as_str()));
        prop_assert!(!sec.evidence.is_empty());

        // Rendering never panics, even on degenerate reports.
        let _ = phj_analyze::render(&report, &sec);

        // The section itself round-trips through JSON bit-exactly. (The
        // *report* is only serializable when its span tree is valid, so
        // attach the section to a well-formed carrier.)
        let mut carrier = build_report(&Raw { empty_spans: false, ..raw.clone() });
        carrier.analysis = Some(sec.clone());
        carrier.validate().expect("attached analysis validates");
        let back = RunReport::parse(&carrier.render()).expect("round trip parses");
        prop_assert_eq!(back.analysis, Some(sec));
    }
}
