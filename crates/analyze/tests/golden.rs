//! Golden-output tests for `phj explain`: each committed fixture report
//! under `tests/fixtures/` must (a) still validate, (b) classify to the
//! bottleneck its filename names, and (c) render byte-for-byte the text
//! committed next to it. Regenerate after a deliberate engine change with
//! `cargo run -p phj-analyze --example gen_fixtures`.

use phj::cost::CostModel;
use phj_analyze::{analyze, render};
use phj_obs::RunReport;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn load(name: &str) -> RunReport {
    let path = fixtures_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let r = RunReport::parse(&text).expect("fixture parses");
    r.validate().expect("fixture validates");
    r
}

/// `(fixture name, expected primary bottleneck)`.
const CASES: [(&str, &str); 8] = [
    ("minimal", "compute_bound"),
    ("compute_bound", "compute_bound"),
    ("latency_bound", "latency_bound"),
    ("tlb_bound", "tlb_bound"),
    ("bandwidth_bound", "bandwidth_bound"),
    ("skew_bound", "skew_bound"),
    ("fault_stalled", "fault_stalled"),
    ("degraded", "degraded"),
];

#[test]
fn every_fixture_classifies_and_renders_exactly_as_committed() {
    for (name, expected) in CASES {
        let report = load(name);
        let sec = analyze(&report, &CostModel::default());
        assert_eq!(sec.primary, expected, "fixture {name}");
        // Exactly one rule may be the primary, and it must have fired.
        let fired: Vec<_> = sec.rules.iter().filter(|r| r.class == sec.primary).collect();
        assert_eq!(fired.len(), 1, "fixture {name}");
        assert!(fired[0].fired, "fixture {name}");

        let golden_path = fixtures_dir().join(format!("{name}.txt"));
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
        let got = render(&report, &sec);
        assert_eq!(
            got, golden,
            "fixture {name} render drifted; if intentional, regenerate with \
             `cargo run -p phj-analyze --example gen_fixtures`"
        );
    }
}

#[test]
fn fixture_analyses_survive_attachment_and_round_trip() {
    for (name, _) in CASES {
        let mut report = load(name);
        let sec = analyze(&report, &CostModel::default());
        report.analysis = Some(sec.clone());
        report.validate().expect("attached analysis validates");
        let back = RunReport::parse(&report.render()).expect("round trip parses");
        assert_eq!(back.analysis, Some(sec), "fixture {name}");
    }
}

#[test]
fn no_stray_fixture_files() {
    // Every .json in the directory is covered by CASES (so a new fixture
    // cannot land without a golden expectation).
    let mut found: Vec<String> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir exists")
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension()? == "json")
                .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    found.sort();
    let mut expected: Vec<String> = CASES.iter().map(|(n, _)| n.to_string()).collect();
    expected.sort();
    assert_eq!(found, expected);
}
