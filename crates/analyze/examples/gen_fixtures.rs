//! Regenerate the golden fixtures under `tests/fixtures/`.
//!
//! ```text
//! cargo run -p phj-analyze --example gen_fixtures
//! ```
//!
//! One report per bottleneck class plus a minimal native report with no
//! optional sections. Every fixture is deterministic (fixed counters, no
//! clocks), so the committed `.json` and `.txt` files only change when
//! the diagnosis engine itself does — which is exactly when the golden
//! test should fail and force a deliberate re-commit.

use phj::cost::CostModel;
use phj_analyze::{analyze, render};
use phj_memsim::{Breakdown, CacheStats, Snapshot};
use phj_obs::report::{DegradationRow, FaultsSection, RegionsSection, SkewRow};
use phj_obs::span::Recorder;
use phj_obs::RunReport;

fn sim_report(scheme: &str, snapshot: Snapshot) -> RunReport {
    let mut rec = Recorder::new();
    let root = rec.begin("run", Snapshot::default());
    let inner = rec.begin("probe", Snapshot::default());
    rec.end(inner, snapshot);
    rec.end(root, snapshot);
    let mut r = RunReport::from_recorder("join", rec, snapshot, 5_000);
    r.simulated = true;
    r.tuples = 1_000;
    r.matches = 500;
    r.config_kv("scheme", scheme);
    r.config_kv("tuple_size", 100);
    r.config_kv("t_full", 150);
    r.config_kv("t_next", 10);
    r
}

fn healthy_snapshot() -> Snapshot {
    Snapshot {
        breakdown: Breakdown { busy: 1_000, dcache_stall: 50, ..Default::default() },
        stats: CacheStats {
            prefetches: 100,
            pf_hidden_cycles: 900,
            mem_misses: 10,
            ..Default::default()
        },
    }
}

/// `(name, report)` for every fixture; `name` doubles as the expected
/// primary bottleneck class (except `minimal`, which is compute_bound).
pub fn fixtures() -> Vec<(&'static str, RunReport)> {
    let mut out: Vec<(&'static str, RunReport)> = Vec::new();

    // A native run with no optional sections at all: the smallest report
    // the engine must survive.
    let mut rec = Recorder::new();
    let root = rec.begin("run", Snapshot::default());
    rec.end(root, Snapshot::default());
    let mut minimal = RunReport::from_recorder("join", rec, Snapshot::default(), 2_000_000);
    minimal.config_kv("scheme", "baseline");
    out.push(("minimal", minimal));

    out.push(("compute_bound", sim_report("group(G=16)", healthy_snapshot())));

    out.push((
        "latency_bound",
        sim_report(
            "baseline",
            Snapshot {
                breakdown: Breakdown { busy: 100, dcache_stall: 300, ..Default::default() },
                stats: CacheStats { mem_misses: 50, ..Default::default() },
            },
        ),
    ));

    out.push((
        "tlb_bound",
        sim_report(
            "baseline",
            Snapshot {
                breakdown: Breakdown { busy: 100, dtlb_stall: 300, ..Default::default() },
                stats: CacheStats { tlb_demand_walks: 40, ..Default::default() },
            },
        ),
    ));

    out.push((
        "bandwidth_bound",
        sim_report(
            "group(G=16)",
            Snapshot {
                breakdown: Breakdown { busy: 100, dcache_stall: 900, ..Default::default() },
                stats: CacheStats {
                    prefetches: 100,
                    pf_dropped: 40,
                    pf_evicted_unused: 30,
                    pf_hidden_cycles: 100,
                    ..Default::default()
                },
            },
        ),
    ));

    // A regions section must account for every demand line in the run
    // totals, so this snapshot declares 10 visited lines and the hot
    // hash-cell region carries all 10 as memory misses.
    let mut skew_snap = healthy_snapshot();
    skew_snap.stats.visit_lines = 10;
    let mut skewed = sim_report("group(G=16)", skew_snap);
    skewed.regions = Some(RegionsSection {
        regions: vec![phj_obs::report::RegionReport {
            name: "hash_cells".into(),
            stats: phj_memsim::RegionStats { mem_misses: 10, ..Default::default() },
            hist: {
                let mut h = phj_memsim::LatencyHistogram::default();
                for _ in 0..10 {
                    h.record(150);
                }
                h
            },
        }],
        skew: vec![
            SkewRow { index: 0, build_tuples: 10, probe_tuples: 10, cycles: 100, l2_hits: 0, mem_misses: 0 },
            SkewRow { index: 1, build_tuples: 900, probe_tuples: 900, cycles: 5_000, l2_hits: 0, mem_misses: 0 },
            SkewRow { index: 2, build_tuples: 10, probe_tuples: 10, cycles: 100, l2_hits: 0, mem_misses: 0 },
        ],
    });
    out.push(("skew_bound", skewed));

    let mut faulty = sim_report("group(G=16)", healthy_snapshot());
    faulty.faults = Some(FaultsSection {
        faults_injected: 9,
        read_retries: 3,
        write_retries: 1,
        slow_stall_us: 400,
        degradation: vec![],
    });
    out.push(("fault_stalled", faulty));

    let mut degraded = sim_report("group(G=16)", healthy_snapshot());
    degraded.faults = Some(FaultsSection {
        faults_injected: 9,
        read_retries: 3,
        write_retries: 0,
        slow_stall_us: 0,
        degradation: vec![DegradationRow {
            partition: "p3".into(),
            depth: 2,
            bytes: 1 << 20,
            budget: 1 << 19,
            action: "nlj_fallback".into(),
            detail: 0,
        }],
    });
    out.push(("degraded", degraded));

    out
}

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).expect("create fixtures dir");
    for (name, report) in fixtures() {
        report.validate().expect("fixture validates");
        let sec = analyze(&report, &CostModel::default());
        std::fs::write(dir.join(format!("{name}.json")), report.render()).unwrap();
        std::fs::write(dir.join(format!("{name}.txt")), render(&report, &sec)).unwrap();
        println!("wrote {name}.json + {name}.txt (primary: {})", sec.primary);
    }
}
