//! Append-only perf-trajectory archive.
//!
//! One JSON line per run, keyed by a config fingerprint, so a slug's
//! history can mix configurations without trend detection comparing
//! apples to oranges: `bench_out/history/<slug>.jsonl` accumulates
//! forever, and [`trend`] only reads the last `N` records whose
//! fingerprint matches the newest one. A regression is a *monotone*
//! worsening across that whole window — one slow run is noise, `N`
//! successively slower runs are a trajectory.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use phj_obs::{Json, RunReport};

/// Format version stamped into every record.
pub const HISTORY_VERSION: u64 = 1;

/// How many same-fingerprint records [`trend`] considers by default.
pub const DEFAULT_WINDOW: usize = 3;

/// One archived run: identity (slug + config fingerprint + timestamp)
/// and the headline metrics the trend detector watches.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Record format version ([`HISTORY_VERSION`]).
    pub version: u64,
    /// The archive name (CLI command or bench slug).
    pub slug: String,
    /// FNV-1a 64 hex digest of the run's config fingerprint.
    pub fingerprint: String,
    /// Unix seconds when the record was appended.
    pub unix_s: u64,
    /// Whether the run drove the cycle simulator.
    pub simulated: bool,
    /// Total simulated cycles (0 for native runs).
    pub cycles: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u64,
    /// Input tuples processed.
    pub tuples: u64,
    /// Measured prefetch coverage in `[0, 1]`.
    pub coverage: f64,
    /// Measured pollution rate in `[0, 1]`.
    pub pollution: f64,
}

/// FNV-1a 64 over a run's identity: command, simulated flag, and every
/// config key–value pair in recorded order. Two runs with the same
/// digest are comparable points on one trajectory.
pub fn fingerprint(command: &str, simulated: bool, config: &[(String, String)]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(command.as_bytes());
    eat(&[simulated as u8, 0x1f]);
    for (k, v) in config {
        eat(k.as_bytes());
        eat(b"=");
        eat(v.as_bytes());
        eat(&[0x1f]);
    }
    format!("{h:016x}")
}

impl HistoryRecord {
    /// Build a record from a run report. `unix_s` is passed in rather
    /// than read here so library code stays clock-free (and tests stay
    /// deterministic).
    pub fn from_report(slug: &str, report: &RunReport, unix_s: u64) -> HistoryRecord {
        HistoryRecord {
            version: HISTORY_VERSION,
            slug: slug.to_string(),
            fingerprint: fingerprint(&report.command, report.simulated, &report.config),
            unix_s,
            simulated: report.simulated,
            cycles: report.totals.breakdown.total(),
            wall_ns: report.wall_ns,
            tuples: report.tuples,
            coverage: report.prefetch_coverage(),
            pollution: report.pollution_rate(),
        }
    }

    /// Build a record from raw metrics (the bench runner path, which has
    /// snapshots but no full report).
    #[allow(clippy::too_many_arguments)]
    pub fn from_metrics(
        slug: &str,
        config: &[(String, String)],
        unix_s: u64,
        cycles: u64,
        wall_ns: u64,
        tuples: u64,
        coverage: f64,
        pollution: f64,
    ) -> HistoryRecord {
        HistoryRecord {
            version: HISTORY_VERSION,
            slug: slug.to_string(),
            fingerprint: fingerprint(slug, cycles > 0, config),
            unix_s,
            simulated: cycles > 0,
            cycles,
            wall_ns,
            tuples,
            coverage,
            pollution,
        }
    }

    /// Serialize as one compact JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        Json::obj(vec![
            ("v", Json::U64(self.version)),
            ("slug", Json::Str(self.slug.clone())),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("unix_s", Json::U64(self.unix_s)),
            ("simulated", Json::Bool(self.simulated)),
            ("cycles", Json::U64(self.cycles)),
            ("wall_ns", Json::U64(self.wall_ns)),
            ("tuples", Json::U64(self.tuples)),
            ("coverage", Json::F64(self.coverage)),
            ("pollution", Json::F64(self.pollution)),
        ])
        .render()
    }

    /// Parse one archive line.
    pub fn parse_line(line: &str) -> Result<HistoryRecord, String> {
        let doc = phj_obs::json::parse(line).map_err(|e| e.to_string())?;
        let u = |k: &str| {
            doc.get(k).and_then(Json::as_u64).ok_or_else(|| format!("missing u64 '{k}'"))
        };
        let f = |k: &str| {
            doc.get(k).and_then(Json::as_f64).ok_or_else(|| format!("missing f64 '{k}'"))
        };
        let s = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string '{k}'"))
        };
        let version = u("v")?;
        if version != HISTORY_VERSION {
            return Err(format!("unsupported history version {version}"));
        }
        Ok(HistoryRecord {
            version,
            slug: s("slug")?,
            fingerprint: s("fingerprint")?,
            unix_s: u("unix_s")?,
            simulated: matches!(doc.get("simulated"), Some(Json::Bool(true))),
            cycles: u("cycles")?,
            wall_ns: u("wall_ns")?,
            tuples: u("tuples")?,
            coverage: f("coverage")?,
            pollution: f("pollution")?,
        })
    }
}

/// Append one record to an archive file, creating parent directories as
/// needed. Append-only by construction: the file is never rewritten.
pub fn append(path: &Path, rec: &HistoryRecord) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(f, "{}", rec.to_line())
}

/// Load an archive file (blank lines are skipped; a malformed line is an
/// error naming its line number).
pub fn load(path: &Path) -> Result<Vec<HistoryRecord>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            HistoryRecord::parse_line(l).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))
        })
        .collect()
}

/// The trend verdict over one archive.
#[derive(Debug, Clone, PartialEq)]
pub struct Trend {
    /// The fingerprint of the newest record (the trajectory examined).
    pub fingerprint: String,
    /// How many same-fingerprint records were actually compared.
    pub considered: usize,
    /// Metrics regressing monotonically across the whole window, worst
    /// first by relative change. Empty means the trajectory is healthy.
    pub regressing: Vec<String>,
}

/// Monotone-trend detection: take the last `n` records sharing the
/// newest record's fingerprint and flag every metric that worsened at
/// *every* step and by more than a noise floor in total (1% relative for
/// cycles, 5% for wall time, 0.01 absolute for the rate metrics). Fewer
/// than `n` comparable records — or `n < 2` — flags nothing: a
/// trajectory needs points.
pub fn trend(records: &[HistoryRecord], n: usize) -> Trend {
    let Some(last) = records.last() else {
        return Trend { fingerprint: String::new(), considered: 0, regressing: Vec::new() };
    };
    let window: Vec<&HistoryRecord> = records
        .iter()
        .filter(|r| r.fingerprint == last.fingerprint)
        .collect();
    let window = &window[window.len().saturating_sub(n)..];
    let mut regressing = Vec::new();
    if n >= 2 && window.len() >= n {
        // (name, per-record value, true = higher is worse, total-change floor,
        // floor is relative rather than absolute)
        type Metric = (&'static str, fn(&HistoryRecord) -> f64, bool, f64, bool);
        let metrics: [Metric; 4] = [
            ("cycles", |r| r.cycles as f64, true, 0.01, true),
            ("wall_ns", |r| r.wall_ns as f64, true, 0.05, true),
            ("coverage", |r| r.coverage, false, 0.01, false),
            ("pollution", |r| r.pollution, true, 0.01, false),
        ];
        for (name, get, higher_worse, floor, relative) in metrics {
            let vals: Vec<f64> = window.iter().map(|r| get(r)).collect();
            let monotone = vals
                .windows(2)
                .all(|w| if higher_worse { w[1] > w[0] } else { w[1] < w[0] });
            if !monotone {
                continue;
            }
            let (first, last_v) = (vals[0], vals[vals.len() - 1]);
            let change = if higher_worse { last_v - first } else { first - last_v };
            let threshold = if relative { floor * first.abs().max(1.0) } else { floor };
            if change > threshold {
                regressing.push(name.to_string());
            }
        }
    }
    Trend { fingerprint: last.fingerprint.clone(), considered: window.len(), regressing }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(unix_s: u64, cycles: u64, coverage: f64) -> HistoryRecord {
        HistoryRecord {
            version: HISTORY_VERSION,
            slug: "join".into(),
            fingerprint: "abcd".into(),
            unix_s,
            simulated: true,
            cycles,
            wall_ns: 1_000_000,
            tuples: 1000,
            coverage,
            pollution: 0.01,
        }
    }

    #[test]
    fn record_round_trips() {
        let r = rec(7, 123, 0.5);
        let back = HistoryRecord::parse_line(&r.to_line()).unwrap();
        assert_eq!(back, r);
        assert!(HistoryRecord::parse_line("{}").is_err());
        assert!(HistoryRecord::parse_line("not json").is_err());
    }

    #[test]
    fn fingerprint_depends_on_config() {
        let a = fingerprint("join", true, &[("g".into(), "16".into())]);
        let b = fingerprint("join", true, &[("g".into(), "8".into())]);
        let c = fingerprint("join", false, &[("g".into(), "16".into())]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, fingerprint("join", true, &[("g".into(), "16".into())]));
    }

    #[test]
    fn flat_trajectory_is_healthy() {
        let recs = vec![rec(1, 100, 0.9), rec(2, 100, 0.9), rec(3, 100, 0.9)];
        let t = trend(&recs, 3);
        assert_eq!(t.considered, 3);
        assert!(t.regressing.is_empty());
    }

    #[test]
    fn monotone_slowdown_is_flagged() {
        let recs = vec![rec(1, 100, 0.9), rec(2, 120, 0.8), rec(3, 150, 0.7)];
        let t = trend(&recs, 3);
        assert_eq!(t.regressing, vec!["cycles".to_string(), "coverage".to_string()]);
    }

    #[test]
    fn non_monotone_or_tiny_changes_are_not_flagged() {
        // Dip-then-recover is not a trend.
        let recs = vec![rec(1, 100, 0.9), rec(2, 150, 0.9), rec(3, 120, 0.9)];
        assert!(trend(&recs, 3).regressing.is_empty());
        // Monotone but under the 1% floor.
        let recs = vec![rec(1, 100_000, 0.9), rec(2, 100_100, 0.9), rec(3, 100_200, 0.9)];
        assert!(trend(&recs, 3).regressing.is_empty());
    }

    #[test]
    fn foreign_fingerprints_do_not_mix() {
        let mut other = rec(2, 1_000_000, 0.1);
        other.fingerprint = "ffff".into();
        // Only two comparable records in a window of 3: no verdict.
        let recs = vec![rec(1, 100, 0.9), other, rec(3, 200, 0.5)];
        let t = trend(&recs, 3);
        assert_eq!(t.considered, 2);
        assert!(t.regressing.is_empty());
    }

    #[test]
    fn append_and_load_round_trip() {
        let dir = std::env::temp_dir().join("phj_history_test");
        let path = dir.join("nested").join("join.jsonl");
        let _ = std::fs::remove_file(&path);
        append(&path, &rec(1, 100, 0.9)).unwrap();
        append(&path, &rec(2, 110, 0.8)).unwrap();
        let recs = load(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].cycles, 110);
        let _ = std::fs::remove_file(&path);
    }
}
