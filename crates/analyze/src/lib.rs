#![warn(missing_docs)]

//! # phj-analyze — model-vs-measured diagnosis for run reports
//!
//! The workspace can *predict* join behaviour (Theorems 1 and 2 in
//! [`phj::model`], calibrated stage costs in [`phj::cost`]) and it can
//! *measure* it ([`phj_obs::RunReport`]: spans, cache-stat deltas,
//! region attribution, fault counters, sampled timeseries). This crate
//! closes the loop: it recomputes the predictions from a report's config
//! fingerprint and holds them against what the run actually did, so
//! "prefetching hid the misses" stops being an eyeball judgment over
//! heatmaps and becomes a residual with a sign.
//!
//! * [`diagnose::analyze`] — recompute minimal `G` / optimal `D` and the
//!   expected hidden-latency fraction per phase, derive predicted-vs-
//!   measured residuals (prefetch coverage, `pf_hidden_cycles`,
//!   per-region miss shares), and run a priority-ordered rule engine
//!   that classifies the run into exactly one primary bottleneck
//!   (`degraded` / `fault_stalled` / `skew_bound` / `tlb_bound` /
//!   `bandwidth_bound` / `latency_bound` / `compute_bound`) with the
//!   evidence lines that fired each rule. The result is the validated
//!   `analysis` section of [`phj_obs::RunReport`].
//! * [`diagnose::render`] — the same diagnosis as human-readable text
//!   (`phj explain`, `--explain`).
//! * [`history`] — an append-only perf-trajectory archive: one JSON line
//!   per run keyed by a config fingerprint, plus monotone-trend
//!   detection over the last `N` same-config records
//!   (`report_diff --history N`).
//!
//! Std-only, like the rest of the workspace: the JSON layer is
//! [`phj_obs::json`], and the analyzer consumes reports purely through
//! the public report model — it never re-runs anything.

pub mod diagnose;
pub mod history;

pub use diagnose::{analyze, render};
pub use history::{trend, HistoryRecord, Trend};
