//! Prediction, residuals, and the bottleneck rule engine.

use phj::cost::CostModel;
use phj::model;
use phj_obs::report::{AnalysisSection, PhasePrediction, ResidualRow, RuleOutcome};
use phj_obs::RunReport;

/// The prefetching scheme a report ran, recovered from its config
/// fingerprint. Parsing is lenient about the label format: it accepts
/// both the join labels (`group(G=16)`, `swp(D=1)`) and the aggregate
/// `Debug` forms (`Group { g: 8 }`, `Swp { d: 2 }`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// No software prefetching.
    Baseline,
    /// Simple (within-tuple) prefetching.
    Simple,
    /// Group prefetching with the given group size.
    Group(u64),
    /// Software-pipelined prefetching with the given distance.
    Swp(u64),
    /// No scheme recorded (disk runs, foreign reports).
    Unknown,
}

impl Scheme {
    /// Parse a config `scheme` value.
    pub fn parse(label: &str) -> Scheme {
        let l = label.to_ascii_lowercase();
        let first_int = || {
            let digits: String = l
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse::<u64>().unwrap_or(1).max(1)
        };
        if l.starts_with("baseline") {
            Scheme::Baseline
        } else if l.starts_with("simple") {
            Scheme::Simple
        } else if l.contains("group") {
            Scheme::Group(first_int())
        } else if l.contains("swp") {
            Scheme::Swp(first_int())
        } else {
            Scheme::Unknown
        }
    }

    /// Predicted hidden-latency fraction for this scheme on one phase's
    /// stage costs, per the first-order models in [`phj::model`].
    fn hidden_fraction(self, t: u64, t_next: u64, costs: &[u64]) -> f64 {
        match self {
            Scheme::Baseline | Scheme::Unknown => 0.0,
            // Simple prefetching overlaps each stage's miss only with
            // that same element's stage work.
            Scheme::Simple => {
                if t == 0 {
                    return 1.0;
                }
                let sum: f64 =
                    costs.iter().map(|&c| (c as f64 / t as f64).min(1.0)).sum();
                sum / costs.len() as f64
            }
            Scheme::Group(g) => model::group_hidden_fraction(g, t, t_next, costs),
            Scheme::Swp(d) => model::swp_hidden_fraction(d, t, t_next, costs),
        }
    }
}

fn cfg<'a>(report: &'a RunReport, key: &str) -> Option<&'a str> {
    report
        .config
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn cfg_u64(report: &RunReport, key: &str) -> Option<u64> {
    cfg(report, key).and_then(|v| v.parse().ok())
}

fn pct(frac: f64) -> f64 {
    (frac * 1000.0).round() / 10.0
}

/// Analyze a run report against the analytic model: recompute the
/// Theorem-1/2 predictions from the report's config fingerprint and the
/// given (possibly perturbed) cost calibration, derive residuals, and
/// classify the primary bottleneck. The returned section always passes
/// [`RunReport::validate`] when attached to the report it was computed
/// from.
pub fn analyze(report: &RunReport, cost: &CostModel) -> AnalysisSection {
    // Memory parameters: sim runs fingerprint them; native runs carry no
    // meaningful cycle model, so they get no predictions.
    let t_full = cfg_u64(report, "t_full");
    let t_next = cfg_u64(report, "t_next").filter(|&t| t > 0);
    let tuple_size = cfg_u64(report, "tuple_size").unwrap_or(100) as usize;
    let scheme_label = cfg(report, "scheme").unwrap_or("unknown").to_string();
    let scheme = Scheme::parse(&scheme_label);

    let mut predictions = Vec::new();
    if let (true, Some(t), Some(tn)) = (report.simulated, t_full, t_next) {
        let phases: [(&str, Vec<u64>); 3] = [
            ("probe", cost.probe_stage_costs(true, 2 * tuple_size).to_vec()),
            ("build", cost.build_stage_costs(true).to_vec()),
            ("partition", cost.partition_stage_costs(tuple_size).to_vec()),
        ];
        for (phase, costs) in phases {
            let g = model::min_group_size(t, tn, &costs);
            predictions.push(PhasePrediction {
                phase: phase.to_string(),
                g_min: g.g,
                first_miss_hidden: g.first_miss_hidden,
                d_min: model::min_prefetch_distance(t, tn, &costs),
                predicted_coverage: scheme.hidden_fraction(t, tn, &costs),
                stage_costs: costs,
            });
        }
    }

    // Run-level predicted coverage: the mean over the phases that
    // actually appear in the span tree (a join run that never
    // partitioned should not be held to the partition prediction).
    let predicted_coverage = {
        let present: Vec<f64> = predictions
            .iter()
            .filter(|p| report.spans.iter().any(|s| s.name.contains(&p.phase)))
            .map(|p| p.predicted_coverage)
            .collect();
        if !present.is_empty() {
            present.iter().sum::<f64>() / present.len() as f64
        } else if let Some(first) = predictions.first() {
            first.predicted_coverage
        } else {
            0.0
        }
    };

    let mut residuals = Vec::new();
    if report.simulated && !predictions.is_empty() {
        let measured_cov = report.prefetch_coverage();
        residuals.push(ResidualRow {
            metric: "prefetch_coverage".into(),
            predicted: predicted_coverage,
            measured: measured_cov,
            residual: measured_cov - predicted_coverage,
        });
        // Total miss latency the run faced = the part prefetching hid
        // plus the part that still stalled; the model predicts how much
        // of it should have been hidden.
        let total_miss = (report.totals.stats.pf_hidden_cycles
            + report.totals.breakdown.dcache_stall) as f64;
        let predicted_hidden = predicted_coverage * total_miss;
        let measured_hidden = report.totals.stats.pf_hidden_cycles as f64;
        residuals.push(ResidualRow {
            metric: "pf_hidden_cycles".into(),
            predicted: predicted_hidden,
            measured: measured_hidden,
            residual: measured_hidden - predicted_hidden,
        });
    }
    if let Some(regions) = &report.regions {
        // First-order locality model for where misses should land: one
        // header and one cell line per build/probe tuple, the build
        // tuple area once per insert and once per match fetch, the probe
        // area once per probe tuple, and the partition buffers in
        // proportion to bytes streamed through them.
        let b = cfg_u64(report, "build_tuples").unwrap_or(report.tuples / 2);
        let p = cfg_u64(report, "probe_tuples")
            .unwrap_or(report.tuples.saturating_sub(b));
        let partitioned = report.spans.iter().any(|s| s.name.contains("partition"));
        let line = cfg_u64(report, "line_size").unwrap_or(64).max(1);
        let weight = |name: &str| -> f64 {
            match name {
                "hash_bucket_headers" | "hash_cells" => (b + p) as f64,
                "build_tuples" => (b + report.matches) as f64,
                "probe_tuples" => p as f64,
                "partition_buffers" if partitioned => {
                    ((b + p) * tuple_size as u64 / line) as f64
                }
                _ => 0.0,
            }
        };
        let total_misses: u64 = regions.regions.iter().map(|r| r.stats.mem_misses).sum();
        let total_weight: f64 = regions.regions.iter().map(|r| weight(&r.name)).sum();
        if total_misses > 0 && total_weight > 0.0 {
            for r in &regions.regions {
                let predicted = weight(&r.name) / total_weight;
                let measured = r.stats.mem_misses as f64 / total_misses as f64;
                residuals.push(ResidualRow {
                    metric: format!("miss_share.{}", r.name),
                    predicted,
                    measured,
                    residual: measured - predicted,
                });
            }
        }
    }

    let (primary, evidence, rules) = classify(report, scheme, &predictions);

    AnalysisSection {
        t_full: t_full.unwrap_or(0),
        t_next: t_next.unwrap_or(0),
        scheme: scheme_label,
        cost_model: cost.entries().iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        predictions,
        residuals,
        primary,
        evidence,
        rules,
    }
}

/// The rule engine: evaluate every class in priority order; the first
/// rule that fires is the primary. `compute_bound` always fires, so
/// exactly one primary exists for every report.
fn classify(
    report: &RunReport,
    scheme: Scheme,
    predictions: &[PhasePrediction],
) -> (String, Vec<String>, Vec<RuleOutcome>) {
    let bd = &report.totals.breakdown;
    let stats = &report.totals.stats;
    let cycles = bd.total();
    let mut rules = Vec::new();

    // degraded: the disk engine walked its degradation ladder.
    {
        let mut evidence = Vec::new();
        if let Some(f) = &report.faults {
            for d in &f.degradation {
                evidence.push(format!(
                    "partition {} degraded ({}, depth {}): {} B over budget {} B",
                    d.partition, d.action, d.depth, d.bytes, d.budget
                ));
            }
        }
        rules.push(RuleOutcome { class: "degraded".into(), fired: !evidence.is_empty(), evidence });
    }

    // fault_stalled: injected faults cost real time (stall share ≥ 5% of
    // wall time, or any retry loops actually spun).
    {
        let mut evidence = Vec::new();
        let mut fired = false;
        if let Some(f) = &report.faults {
            let stall_ns = f.slow_stall_us.saturating_mul(1000);
            let stall_share = if report.wall_ns > 0 {
                stall_ns as f64 / report.wall_ns as f64
            } else {
                0.0
            };
            if f.faults_injected > 0 && (stall_share >= 0.05 || f.read_retries + f.write_retries > 0)
            {
                fired = true;
                evidence.push(format!("{} faults injected", f.faults_injected));
                if stall_share >= 0.05 {
                    evidence.push(format!(
                        "injected disk stalls are {}% of wall time",
                        pct(stall_share)
                    ));
                }
                if f.read_retries + f.write_retries > 0 {
                    evidence.push(format!(
                        "{} read + {} write retries",
                        f.read_retries, f.write_retries
                    ));
                }
            }
        }
        rules.push(RuleOutcome { class: "fault_stalled".into(), fired, evidence });
    }

    // skew_bound: one partition pair costs more than twice the mean.
    {
        let mut evidence = Vec::new();
        let mut fired = false;
        if let Some(r) = &report.regions {
            if r.skew.len() >= 2 {
                let mean = r.skew.iter().map(|s| s.cycles).sum::<u64>() as f64
                    / r.skew.len() as f64;
                if let Some(worst) = r.skew.iter().max_by_key(|s| s.cycles) {
                    if mean > 0.0 && worst.cycles as f64 > 2.0 * mean {
                        fired = true;
                        evidence.push(format!(
                            "partition {} cost {} cycles vs {:.0} mean ({:.1}x)",
                            worst.index,
                            worst.cycles,
                            mean,
                            worst.cycles as f64 / mean
                        ));
                        evidence.push(format!(
                            "{} build tuples in the hot partition",
                            worst.build_tuples
                        ));
                    }
                }
            }
        }
        rules.push(RuleOutcome { class: "skew_bound".into(), fired, evidence });
    }

    // tlb_bound: demand page walks stall more than 10% of cycles.
    {
        let mut evidence = Vec::new();
        let mut fired = false;
        if report.simulated && cycles > 0 {
            let frac = bd.dtlb_stall as f64 / cycles as f64;
            if frac > 0.10 {
                fired = true;
                evidence.push(format!("D-TLB walk stalls are {}% of cycles", pct(frac)));
                evidence.push(format!("{} demand page walks", stats.tlb_demand_walks));
            }
        }
        rules.push(RuleOutcome { class: "tlb_bound".into(), fired, evidence });
    }

    // bandwidth_bound: the scheme runs at or past the theorem-predicted
    // parameter yet coverage stays low — prefetches are issued but the
    // memory system cannot keep them timely (pollution and drops show
    // the cache fighting back).
    {
        let mut evidence = Vec::new();
        let mut fired = false;
        if report.simulated && stats.prefetches > 0 {
            let probe = predictions.iter().find(|p| p.phase == "probe");
            let at_optimum = match (scheme, probe) {
                (Scheme::Group(g), Some(p)) => g >= p.g_min,
                (Scheme::Swp(d), Some(p)) => d >= p.d_min,
                _ => false,
            };
            let coverage = report.prefetch_coverage();
            if at_optimum && coverage < 0.5 {
                fired = true;
                let p = probe.unwrap();
                evidence.push(match scheme {
                    Scheme::Group(g) => format!(
                        "coverage {coverage:.2} despite G={g} >= predicted G*={}",
                        p.g_min
                    ),
                    _ => format!(
                        "coverage {coverage:.2} despite D >= predicted D*={}",
                        p.d_min
                    ),
                });
                let pollution = report.pollution_rate();
                if pollution > 0.0 {
                    evidence.push(format!("pollution rate {pollution:.2}"));
                }
                if stats.pf_dropped > 0 {
                    evidence.push(format!(
                        "{} of {} prefetches dropped",
                        stats.pf_dropped, stats.prefetches
                    ));
                }
            }
        }
        rules.push(RuleOutcome { class: "bandwidth_bound".into(), fired, evidence });
    }

    // latency_bound: data-cache stalls dominate the cycle budget.
    {
        let mut evidence = Vec::new();
        let mut fired = false;
        if report.simulated && cycles > 0 {
            let frac = bd.dcache_stall as f64 / cycles as f64;
            if frac >= 0.30 {
                fired = true;
                evidence.push(format!("dcache stalls are {}% of cycles", pct(frac)));
                evidence.push(format!(
                    "prefetch coverage {:.2}",
                    report.prefetch_coverage()
                ));
                evidence.push(format!("{} full-latency memory misses", stats.mem_misses));
            }
        }
        rules.push(RuleOutcome { class: "latency_bound".into(), fired, evidence });
    }

    // compute_bound: the healthy default — nothing pathological fired.
    {
        let evidence = vec![if report.simulated && cycles > 0 {
            format!(
                "busy cycles are {}% of total; no stall pathology detected",
                pct(bd.busy as f64 / cycles as f64)
            )
        } else {
            format!(
                "native run: {:.1} ms wall time, no fault or skew pathology detected",
                report.wall_ns as f64 / 1e6
            )
        }];
        rules.push(RuleOutcome { class: "compute_bound".into(), fired: true, evidence });
    }

    let primary = rules.iter().find(|r| r.fired).expect("compute_bound always fires");
    (primary.class.clone(), primary.evidence.clone(), rules)
}

/// Render a diagnosis as human-readable text (the body of `phj explain`).
pub fn render(report: &RunReport, sec: &AnalysisSection) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let kind = if report.simulated { "simulated" } else { "native" };
    let _ = writeln!(out, "== phj explain: {} ({kind}) ==", report.command);
    let _ = writeln!(
        out,
        "scheme {}  T={}  T_next={}  tuples={}  matches={}",
        sec.scheme, sec.t_full, sec.t_next, report.tuples, report.matches
    );
    if !sec.predictions.is_empty() {
        let _ = writeln!(out, "theorem predictions (stage costs in cycles):");
        for p in &sec.predictions {
            let _ = writeln!(
                out,
                "  {:<10} C={:?}  G*={}{}  D*={}  predicted coverage {:.2}",
                p.phase,
                p.stage_costs,
                p.g_min,
                if p.first_miss_hidden { "" } else { " (first miss exposed)" },
                p.d_min,
                p.predicted_coverage
            );
        }
    }
    if !sec.residuals.is_empty() {
        let _ = writeln!(out, "residuals (measured - predicted):");
        for r in &sec.residuals {
            let _ = writeln!(
                out,
                "  {:<28} predicted {:>12.3}  measured {:>12.3}  residual {:>+12.3}",
                r.metric, r.predicted, r.measured, r.residual
            );
        }
    }
    let _ = writeln!(out, "primary bottleneck: {}", sec.primary);
    for e in &sec.evidence {
        let _ = writeln!(out, "  - {e}");
    }
    let _ = writeln!(out, "rules:");
    for r in &sec.rules {
        let mark = if r.class == sec.primary {
            "[*]"
        } else if r.fired {
            "[x]"
        } else {
            "[ ]"
        };
        let _ = writeln!(out, "  {mark} {}", r.class);
        if r.fired && r.class != sec.primary {
            for e in &r.evidence {
                let _ = writeln!(out, "        {e}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phj_memsim::{Breakdown, CacheStats, Snapshot};
    use phj_obs::report::{DegradationRow, FaultsSection, RegionsSection, SkewRow};
    use phj_obs::span::Recorder;

    fn sim_report(scheme: &str, snapshot: Snapshot) -> RunReport {
        let mut rec = Recorder::new();
        let root = rec.begin("run", Snapshot::default());
        let inner = rec.begin("probe", Snapshot::default());
        rec.end(inner, snapshot);
        rec.end(root, snapshot);
        let mut r = RunReport::from_recorder("join", rec, snapshot, 5_000);
        r.simulated = true;
        r.tuples = 1_000;
        r.matches = 500;
        r.config_kv("scheme", scheme);
        r.config_kv("tuple_size", 100);
        r.config_kv("t_full", 150);
        r.config_kv("t_next", 10);
        r
    }

    fn healthy_snapshot() -> Snapshot {
        Snapshot {
            breakdown: Breakdown { busy: 1_000, dcache_stall: 50, ..Default::default() },
            stats: CacheStats {
                prefetches: 100,
                pf_hidden_cycles: 900,
                mem_misses: 10,
                ..Default::default()
            },
        }
    }

    #[test]
    fn paper_regime_predictions_match_core_model() {
        let r = sim_report("group(G=16)", healthy_snapshot());
        let sec = analyze(&r, &CostModel::default());
        let probe = sec.predictions.iter().find(|p| p.phase == "probe").unwrap();
        // The acceptance anchor: same values as core::model's unit tests.
        assert_eq!(probe.g_min, 16);
        assert_eq!(probe.d_min, 1);
        assert!(probe.first_miss_hidden);
        assert_eq!(probe.stage_costs, phj::cost::probe_stage_costs(true, 200).to_vec());
        // Running at the theorem-predicted G, the model promises full hiding.
        assert_eq!(probe.predicted_coverage, 1.0);
        let mut with = r.clone();
        with.analysis = Some(sec.clone());
        with.validate().expect("attached analysis validates");
        // And the section survives the JSON round trip intact.
        let back = RunReport::parse(&with.render()).unwrap();
        assert_eq!(back.analysis, Some(sec));
    }

    #[test]
    fn residuals_compare_predicted_to_measured() {
        let r = sim_report("group(G=16)", healthy_snapshot());
        let sec = analyze(&r, &CostModel::default());
        let cov = sec.residuals.iter().find(|x| x.metric == "prefetch_coverage").unwrap();
        assert_eq!(cov.predicted, 1.0);
        assert!((cov.measured - 900.0 / 950.0).abs() < 1e-12);
        assert!(cov.residual < 0.0);
        let hid = sec.residuals.iter().find(|x| x.metric == "pf_hidden_cycles").unwrap();
        assert_eq!(hid.predicted, 950.0); // all miss latency should hide
        assert_eq!(hid.measured, 900.0);
    }

    #[test]
    fn perturbed_cost_model_moves_the_predictions() {
        let r = sim_report("group(G=4)", healthy_snapshot());
        let base = analyze(&r, &CostModel::default());
        // Fatter middle stages hide more per overlapped element: G* drops.
        let fat = CostModel::parse_overrides("header_check=80,cell_check=80").unwrap();
        let perturbed = analyze(&r, &fat);
        let g = |s: &AnalysisSection| s.predictions[0].g_min;
        assert!(g(&perturbed) < g(&base), "{} vs {}", g(&perturbed), g(&base));
        assert!(
            perturbed.predictions[0].predicted_coverage > base.predictions[0].predicted_coverage
        );
    }

    #[test]
    fn healthy_run_is_compute_bound() {
        let sec = analyze(&sim_report("group(G=16)", healthy_snapshot()), &CostModel::default());
        assert_eq!(sec.primary, "compute_bound");
    }

    #[test]
    fn baseline_stalls_classify_latency_bound() {
        let snap = Snapshot {
            breakdown: Breakdown { busy: 100, dcache_stall: 300, ..Default::default() },
            stats: CacheStats { mem_misses: 50, ..Default::default() },
        };
        let sec = analyze(&sim_report("baseline", snap), &CostModel::default());
        assert_eq!(sec.primary, "latency_bound");
        assert!(sec.evidence.iter().any(|e| e.contains("dcache")));
    }

    #[test]
    fn tlb_walks_classify_tlb_bound() {
        let snap = Snapshot {
            breakdown: Breakdown { busy: 100, dtlb_stall: 300, ..Default::default() },
            stats: CacheStats { tlb_demand_walks: 40, ..Default::default() },
        };
        let sec = analyze(&sim_report("baseline", snap), &CostModel::default());
        assert_eq!(sec.primary, "tlb_bound");
    }

    #[test]
    fn low_coverage_at_optimum_classifies_bandwidth_bound() {
        let snap = Snapshot {
            breakdown: Breakdown { busy: 100, dcache_stall: 900, ..Default::default() },
            stats: CacheStats {
                prefetches: 100,
                pf_dropped: 40,
                pf_evicted_unused: 30,
                pf_hidden_cycles: 100, // coverage 0.1 despite G at optimum
                ..Default::default()
            },
        };
        let sec = analyze(&sim_report("group(G=16)", snap), &CostModel::default());
        assert_eq!(sec.primary, "bandwidth_bound");
        // Below the optimum, low coverage is expected, not pathological.
        let snap2 = Snapshot {
            breakdown: Breakdown { busy: 100, dcache_stall: 900, ..Default::default() },
            stats: CacheStats {
                prefetches: 100,
                pf_hidden_cycles: 100,
                ..Default::default()
            },
        };
        let sec2 = analyze(&sim_report("group(G=2)", snap2), &CostModel::default());
        assert_eq!(sec2.primary, "latency_bound");
    }

    #[test]
    fn faults_and_degradation_take_priority() {
        let mut r = sim_report("group(G=16)", healthy_snapshot());
        r.faults = Some(FaultsSection {
            faults_injected: 9,
            read_retries: 3,
            write_retries: 0,
            slow_stall_us: 0,
            degradation: vec![],
        });
        let sec = analyze(&r, &CostModel::default());
        assert_eq!(sec.primary, "fault_stalled");

        r.faults = Some(FaultsSection {
            faults_injected: 9,
            read_retries: 3,
            write_retries: 0,
            slow_stall_us: 0,
            degradation: vec![DegradationRow {
                partition: "p3".into(),
                depth: 2,
                bytes: 1 << 20,
                budget: 1 << 19,
                action: "nlj_fallback".into(),
                detail: 0,
            }],
        });
        let sec = analyze(&r, &CostModel::default());
        assert_eq!(sec.primary, "degraded");
        let mut with = r.clone();
        with.analysis = Some(sec);
        with.validate().expect("degraded analysis validates");
    }

    #[test]
    fn skewed_pairs_classify_skew_bound() {
        let mut r = sim_report("group(G=16)", healthy_snapshot());
        r.regions = Some(RegionsSection {
            regions: vec![],
            skew: vec![
                SkewRow { index: 0, build_tuples: 10, probe_tuples: 10, cycles: 100, l2_hits: 0, mem_misses: 0 },
                SkewRow { index: 1, build_tuples: 900, probe_tuples: 900, cycles: 5_000, l2_hits: 0, mem_misses: 0 },
                SkewRow { index: 2, build_tuples: 10, probe_tuples: 10, cycles: 100, l2_hits: 0, mem_misses: 0 },
            ],
        });
        let sec = analyze(&r, &CostModel::default());
        assert_eq!(sec.primary, "skew_bound");
        assert!(sec.evidence[0].contains("partition 1"));
    }

    #[test]
    fn native_runs_get_no_predictions_but_still_classify() {
        let mut rec = Recorder::new();
        let root = rec.begin("run", Snapshot::default());
        rec.end(root, Snapshot::default());
        let mut r = RunReport::from_recorder("join", rec, Snapshot::default(), 2_000_000);
        r.config_kv("scheme", "swp(D=1)");
        let sec = analyze(&r, &CostModel::default());
        assert!(sec.predictions.is_empty());
        assert!(sec.residuals.is_empty());
        assert_eq!(sec.primary, "compute_bound");
        let mut with = r.clone();
        with.analysis = Some(sec);
        with.validate().expect("native analysis validates");
    }

    #[test]
    fn scheme_labels_parse_leniently() {
        assert_eq!(Scheme::parse("group(G=16)"), Scheme::Group(16));
        assert_eq!(Scheme::parse("Group { g: 8 }"), Scheme::Group(8));
        assert_eq!(Scheme::parse("swp(D=4)"), Scheme::Swp(4));
        assert_eq!(Scheme::parse("Swp { d: 2 }"), Scheme::Swp(2));
        assert_eq!(Scheme::parse("baseline"), Scheme::Baseline);
        assert_eq!(Scheme::parse("Baseline"), Scheme::Baseline);
        assert_eq!(Scheme::parse("simple"), Scheme::Simple);
        assert_eq!(Scheme::parse("???"), Scheme::Unknown);
    }

    #[test]
    fn render_mentions_the_verdict_and_predictions() {
        let r = sim_report("group(G=16)", healthy_snapshot());
        let sec = analyze(&r, &CostModel::default());
        let text = render(&r, &sec);
        assert!(text.contains("primary bottleneck: compute_bound"));
        assert!(text.contains("G*=16"));
        assert!(text.contains("prefetch_coverage"));
        assert!(text.contains("[*] compute_bound"));
    }
}
