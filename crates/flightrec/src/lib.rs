//! Flight recorder: an always-on, bounded, lock-free event journal.
//!
//! Every subsystem in the workspace reports *aggregates* — span trees
//! (phj-obs), counters and time series (phj-metrics), diagnosis
//! (phj-analyze). What none of them can answer is "what happened, in
//! what order, in the milliseconds before this run degraded / faulted /
//! crashed?". This crate is that substrate: each thread appends
//! fixed-size binary [`Event`]s to its own bounded ring, a crash (panic,
//! typed error, SIGTERM) snapshots every ring into one ordered timeline
//! and writes a `postmortem.json`, and `phj blackbox` renders the dump.
//!
//! Design rules, in priority order:
//!
//! 1. **Never on the simulated critical path.** Recording is host-side
//!    bookkeeping; simulated cycle counts are byte-identical with the
//!    recorder off, at phase granularity, or in full mode.
//! 2. **Bounded.** Rings never grow; old events are overwritten and the
//!    wrap is accounted for exactly (`written - recovered = dropped`).
//! 3. **Lock-free on the hot path.** One atomic fetch-add plus five
//!    relaxed stores per event; the only lock is taken once per thread
//!    (ring registration) and by cold readers (snapshot, dump).
//! 4. **Std-only.** Like phj-metrics, this crate must sit below every
//!    other crate in the workspace — it depends on nothing.
//!
//! The global recorder follows the phj-metrics idiom: not installed
//! (`off`) until [`install`] is called, after which [`global`] returns
//! it forever. Granularity is a runtime [`Mode`] so benchmarks can
//! measure `phase` vs `full` in one process.

mod event;
mod postmortem;
mod recorder;
mod ring;

pub use event::{grant_op, phase_code, phase_name, Event, EventKind, KIND_COUNT, PHASES};
pub use postmortem::{
    dump, dump_events_to, dump_to, install_crash_hooks, set_context_provider, set_postmortem_path,
    Cause,
};
pub use recorder::{
    event, event_full, full, global, install, install_with, phase_enter, phase_exit, FlightRecorder,
    Mode, Summary, ThreadSummary, DEFAULT_CAPACITY,
};
pub use ring::{RingSnapshot, ThreadRing};

/// Unit tests in this crate share the process-global recorder; they
/// serialize on this lock so install order and counts stay exact.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
