//! Crash postmortems: dump every ring into one ordered JSON timeline.
//!
//! The dump path must work when everything else is going wrong — mid
//! panic, inside a SIGTERM handler, after a typed error unwound the
//! stack — so it is deliberately primitive: no allocator tricks, no
//! serde, poisoned locks ignored, and the JSON writer lives in this
//! file. The schema is versioned and validated by
//! `phj_obs::postmortem::parse` (and by CI's python smoke).
//!
//! Schema (v1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "cause": {"kind": "typed_error", "message": "..."},
//!   "mode": "phase",
//!   "capacity": 4096,
//!   "threads": [{"tid": 0, "written": 45, "recovered": 45, "dropped": 0}],
//!   "counts": {"phase_enter": 12, "fault": 3},
//!   "timeline": [{"t_ns": 120, "tid": 0, "kind": "fault", "code": 4, "a": 12, "b": 0}],
//!   "context": {"degradation_depth": 1}
//! }
//! ```
//!
//! `counts` holds only nonzero kinds; `context` is whatever the host
//! binary's provider returns (pre-rendered JSON values — the CLI puts
//! a live-metrics snapshot and the degradation state there) and is
//! omitted when no provider is installed.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::event::{Event, EventKind};
use crate::recorder::global;

/// Why a postmortem was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// A thread panicked (the installed panic hook fired).
    Panic,
    /// The process is exiting with a typed error (`PhjError` chain).
    TypedError,
    /// SIGTERM arrived.
    Sigterm,
    /// Explicit request (tests, `--dump-postmortem`-style tooling).
    Manual,
}

impl Cause {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Cause::Panic => "panic",
            Cause::TypedError => "typed_error",
            Cause::Sigterm => "sigterm",
            Cause::Manual => "manual",
        }
    }
}

/// Context provider: returns `(key, json_value)` pairs appended under
/// `"context"`. Values are embedded verbatim, so they must already be
/// valid JSON (`"1"`, `"\"probe\""`, `"{...}"`).
pub type ContextFn = Box<dyn Fn() -> Vec<(String, String)> + Send + Sync>;

struct DumpConfig {
    path: Option<PathBuf>,
    context: Option<ContextFn>,
}

static CONFIG: Mutex<DumpConfig> = Mutex::new(DumpConfig { path: None, context: None });

/// Where crash dumps go. Until set, [`dump`] has nowhere to write and
/// returns `Ok(None)`.
pub fn set_postmortem_path(path: impl Into<PathBuf>) {
    CONFIG.lock().unwrap_or_else(|e| e.into_inner()).path = Some(path.into());
}

/// Install (replace) the context provider — extra host-side state for
/// the `"context"` object (metrics snapshot, degradation depth…).
pub fn set_context_provider(f: ContextFn) {
    CONFIG.lock().unwrap_or_else(|e| e.into_inner()).context = Some(f);
}

/// Write a postmortem to the configured path. `Ok(None)` when no path
/// is configured or the recorder is off — a dump is best-effort by
/// design; callers on the crash path ignore the result entirely.
pub fn dump(cause: Cause, message: &str) -> std::io::Result<Option<PathBuf>> {
    let Some(path) = CONFIG.lock().unwrap_or_else(|e| e.into_inner()).path.clone() else {
        return Ok(None);
    };
    dump_to(&path, cause, message).map(|_| Some(path))
}

/// Write a postmortem for the current recorder state to `path`.
pub fn dump_to(path: &Path, cause: Cause, message: &str) -> std::io::Result<()> {
    let Some(rec) = global() else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "flight recorder not installed",
        ));
    };
    let summary = rec.summary();
    let timeline = rec.timeline();
    let context = {
        let cfg = CONFIG.lock().unwrap_or_else(|e| e.into_inner());
        cfg.context.as_ref().map(|f| f())
    };

    let mut out = String::with_capacity(4096 + 96 * timeline.len());
    out.push_str("{\n  \"schema_version\": 1,\n");
    out.push_str(&format!(
        "  \"cause\": {{\"kind\": \"{}\", \"message\": \"{}\"}},\n",
        cause.name(),
        escape(message)
    ));
    out.push_str(&format!("  \"mode\": \"{}\",\n", summary.mode.name()));
    out.push_str(&format!("  \"capacity\": {},\n", summary.capacity));
    out.push_str("  \"threads\": [");
    for (i, t) in summary.threads.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"tid\": {}, \"written\": {}, \"recovered\": {}, \"dropped\": {}}}",
            t.tid,
            t.written,
            t.recovered,
            t.written - t.recovered
        ));
    }
    out.push_str("],\n  \"counts\": {");
    let mut first = true;
    for kind in EventKind::ALL {
        let n = summary.counts[kind as usize];
        if n == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{}\": {n}", kind.name()));
    }
    out.push_str("},\n  \"timeline\": [");
    for (i, ev) in timeline.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&event_json(ev));
    }
    out.push_str("\n  ]");
    if let Some(pairs) = context {
        out.push_str(",\n  \"context\": {");
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {v}", escape(k)));
        }
        out.push('}');
    }
    out.push_str("\n}\n");

    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())?;
    f.flush()
}

/// Write a postmortem carrying a caller-filtered event slice instead of
/// the whole recorder state — the slow-query capture path hands in just
/// one query's events. The per-thread accounting is rebuilt from the
/// slice (`written == recovered`, `dropped == 0`: nothing in a filtered
/// dump was lost to ring wrap, it was excluded on purpose), `counts`
/// tallies only the slice, and `context` pairs are embedded verbatim
/// like the provider's. The result is a valid schema-v1 dump — `phj
/// blackbox` renders it with no special casing.
pub fn dump_events_to(
    path: &Path,
    cause: Cause,
    message: &str,
    events: &[Event],
    context: &[(String, String)],
) -> std::io::Result<()> {
    let (mode_name, capacity) = match global() {
        Some(rec) => {
            let s = rec.summary();
            (s.mode.name(), s.capacity)
        }
        None => ("phase", 0),
    };
    let mut events: Vec<Event> = events.to_vec();
    events.sort_by_key(|e| e.ts_ns);

    let mut per_tid: Vec<(u16, u64)> = Vec::new();
    let mut counts = [0u64; crate::event::KIND_COUNT];
    for ev in &events {
        counts[ev.kind as usize] += 1;
        match per_tid.iter_mut().find(|(tid, _)| *tid == ev.tid) {
            Some((_, n)) => *n += 1,
            None => per_tid.push((ev.tid, 1)),
        }
    }
    per_tid.sort_by_key(|(tid, _)| *tid);

    let mut out = String::with_capacity(1024 + 96 * events.len());
    out.push_str("{\n  \"schema_version\": 1,\n");
    out.push_str(&format!(
        "  \"cause\": {{\"kind\": \"{}\", \"message\": \"{}\"}},\n",
        cause.name(),
        escape(message)
    ));
    out.push_str(&format!("  \"mode\": \"{mode_name}\",\n"));
    out.push_str(&format!("  \"capacity\": {capacity},\n"));
    out.push_str("  \"threads\": [");
    for (i, (tid, n)) in per_tid.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"tid\": {tid}, \"written\": {n}, \"recovered\": {n}, \"dropped\": 0}}"
        ));
    }
    out.push_str("],\n  \"counts\": {");
    let mut first = true;
    for kind in EventKind::ALL {
        let n = counts[kind as usize];
        if n == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{}\": {n}", kind.name()));
    }
    out.push_str("},\n  \"timeline\": [");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&event_json(ev));
    }
    out.push_str("\n  ]");
    if !context.is_empty() {
        out.push_str(",\n  \"context\": {");
        for (i, (k, v)) in context.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {v}", escape(k)));
        }
        out.push('}');
    }
    out.push_str("\n}\n");

    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())?;
    f.flush()
}

fn event_json(ev: &Event) -> String {
    format!(
        "{{\"t_ns\": {}, \"tid\": {}, \"kind\": \"{}\", \"code\": {}, \"a\": {}, \"b\": {}}}",
        ev.ts_ns,
        ev.tid,
        ev.kind.name(),
        ev.code,
        ev.a,
        ev.b
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Install the crash hooks: a panic hook (chained in front of the
/// existing one) and, on unix, a SIGTERM handler. Either dumps a
/// postmortem with the appropriate [`Cause`] before the process dies.
/// Call once from the binary's main, after [`crate::install`] and
/// [`set_postmortem_path`].
pub fn install_crash_hooks() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic".to_string());
        let msg = match info.location() {
            Some(loc) => format!("{msg} at {}:{}", loc.file(), loc.line()),
            None => msg,
        };
        let _ = dump(Cause::Panic, &msg);
        prev(info);
    }));
    #[cfg(unix)]
    install_sigterm_hook();
}

#[cfg(unix)]
fn install_sigterm_hook() {
    // std links the platform libc; declaring the two symbols we need
    // avoids a libc crate dependency. SIG_ERR (-1) from signal() is
    // ignored — the hook is best-effort.
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    extern "C" fn on_sigterm(_sig: i32) {
        // Not strictly async-signal-safe (allocates, takes locks), but
        // this fires on the way to process death: a wedged dump loses
        // nothing we would otherwise have kept.
        let _ = dump(Cause::Sigterm, "terminated by SIGTERM");
        std::process::exit(143);
    }
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::recorder::{event, install_with, Mode};

    #[test]
    fn dump_without_path_is_none_and_manual_dump_writes_schema() {
        let _guard = crate::test_serial();
        // No path configured yet: dump is a no-op.
        assert!(dump(Cause::Manual, "x").unwrap().is_none());

        install_with(Mode::Phase, 64);
        event(EventKind::Fault, 4, 12, 0);
        event(EventKind::Degrade, 0, 1, 8);

        let dir = std::env::temp_dir().join(format!("phj-fr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("postmortem.json");
        dump_to(&path, Cause::Manual, "quote \" and \\ and\nnewline").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema_version\": 1"));
        assert!(text.contains("\"kind\": \"manual\""));
        assert!(text.contains("quote \\\" and \\\\ and\\nnewline"));
        assert!(text.contains("\"fault\": 1"));
        assert!(text.contains("\"degrade\": 1"));
        assert!(text.contains("\"kind\": \"fault\", \"code\": 4, \"a\": 12"));
        assert!(!text.contains("\"context\""), "no provider installed yet");

        set_context_provider(Box::new(|| {
            vec![("degradation_depth".to_string(), "2".to_string())]
        }));
        set_postmortem_path(&path);
        let written = dump(Cause::TypedError, "disk: boom").unwrap();
        assert_eq!(written.as_deref(), Some(path.as_path()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"kind\": \"typed_error\""));
        assert!(text.contains("\"context\": {\"degradation_depth\": 2}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filtered_event_dump_balances_accounting_and_sorts() {
        let _guard = crate::test_serial();
        install_with(Mode::Phase, 64);
        // Out of order on purpose: the writer must sort before emitting,
        // or the obs-side validator rejects the timeline.
        let events = vec![
            Event { ts_ns: 900, kind: EventKind::Grant, code: 2, tid: 1, a: 42, b: 4096 },
            Event { ts_ns: 100, kind: EventKind::Grant, code: 1, tid: 0, a: 42, b: 4096 },
            Event { ts_ns: 500, kind: EventKind::PhaseEnter, code: 18, tid: 1, a: 42, b: 0 },
        ];
        let dir = std::env::temp_dir().join(format!("phj-fr-slice-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow-query.json");
        let ctx = vec![("queue_wait_ns".to_string(), "1500".to_string())];
        dump_events_to(&path, Cause::Manual, "slow query 42", &events, &ctx).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema_version\": 1"));
        assert!(text.contains("\"kind\": \"manual\""));
        assert!(text.contains("{\"tid\": 0, \"written\": 1, \"recovered\": 1, \"dropped\": 0}"));
        assert!(text.contains("{\"tid\": 1, \"written\": 2, \"recovered\": 2, \"dropped\": 0}"));
        assert!(text.contains("\"grant\": 2"));
        assert!(text.contains("\"phase_enter\": 1"));
        assert!(text.contains("\"context\": {\"queue_wait_ns\": 1500}"));
        let acquire = text.find("\"t_ns\": 100").unwrap();
        let enter = text.find("\"t_ns\": 500").unwrap();
        let release = text.find("\"t_ns\": 900").unwrap();
        assert!(acquire < enter && enter < release, "timeline sorted by timestamp");
        std::fs::remove_dir_all(&dir).ok();
    }
}
