//! The process-wide recorder: ring registry, thread-local fast path,
//! and the free functions instrumentation sites call.
//!
//! Mirrors the phj-metrics idiom: [`install`] once (idempotent),
//! [`global`] everywhere, and every emit helper is a no-op until then —
//! so library crates can instrument unconditionally and binaries decide
//! whether the recorder exists. Granularity ([`Mode`]) is a runtime
//! atomic rather than an install-time choice so one process can measure
//! `phase` vs `full` overhead back to back (the bench does).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::event::{phase_code, Event, EventKind, KIND_COUNT};
use crate::ring::{RingSnapshot, ThreadRing};

/// Default per-thread ring capacity (events). 4096 × 40 B = 160 KiB per
/// thread — roomy enough that a phase-granularity run never wraps, small
/// enough to forget about.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Recording granularity. `off` is represented by not installing the
/// recorder at all ([`global`] returns `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Coarse events only: phases, spills, degradation, faults,
    /// retries, grants, epochs. Unmeasurable overhead.
    Phase,
    /// Everything in `Phase` plus per-batch and per-task events
    /// (prefetch-group boundaries, steal attempts, pool tasks).
    Full,
}

impl Mode {
    /// Stable name (`"phase"` / `"full"`), as written into reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Phase => "phase",
            Mode::Full => "full",
        }
    }

    /// Parse a `--flightrec` value (`off` maps to `None`).
    pub fn parse(s: &str) -> Result<Option<Mode>, String> {
        match s {
            "off" => Ok(None),
            "phase" => Ok(Some(Mode::Phase)),
            "full" => Ok(Some(Mode::Full)),
            other => Err(format!("unknown flightrec mode `{other}` (off|phase|full)")),
        }
    }
}

/// The process-wide flight recorder. Owns one [`ThreadRing`] per thread
/// that ever recorded an event; rings outlive their threads so a
/// postmortem can still see what a finished worker did.
pub struct FlightRecorder {
    origin: Instant,
    mode: AtomicU8,
    capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

/// Per-thread drop-count / write-count row for summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadSummary {
    /// Ring thread id.
    pub tid: u16,
    /// Events written (monotone).
    pub written: u64,
    /// Events currently recoverable.
    pub recovered: u64,
}

/// Aggregate view of the recorder for the RunReport `flightrec`
/// section: per-kind totals and exact drop accounting, no timestamps —
/// so two identical deterministic runs summarize byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Granularity at summary time.
    pub mode: Mode,
    /// Per-thread ring capacity.
    pub capacity: usize,
    /// Rings registered (threads that recorded ≥ 1 event).
    pub threads: Vec<ThreadSummary>,
    /// Per-kind totals, indexed by `EventKind as usize`.
    pub counts: [u64; KIND_COUNT],
}

impl Summary {
    /// Total events written across all rings.
    pub fn written(&self) -> u64 {
        self.threads.iter().map(|t| t.written).sum()
    }

    /// Total events lost to ring wrap.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.written - t.recovered).sum()
    }
}

impl FlightRecorder {
    fn new(mode: Mode, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            origin: Instant::now(),
            mode: AtomicU8::new(mode as u8),
            capacity,
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Current granularity.
    pub fn mode(&self) -> Mode {
        match self.mode.load(Ordering::Relaxed) {
            0 => Mode::Phase,
            _ => Mode::Full,
        }
    }

    /// Switch granularity at runtime (benchmarks measure phase vs full
    /// in one process; threads observe the change on their next event).
    pub fn set_mode(&self, mode: Mode) {
        self.mode.store(mode as u8, Ordering::Relaxed);
    }

    /// Per-thread ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since the recorder was installed (the timestamp
    /// every event carries).
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Register (or fetch) the calling thread's ring. Locks only on
    /// first call per thread.
    fn ring_for_current_thread(&self) -> Option<Arc<ThreadRing>> {
        let mut rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        if rings.len() > u16::MAX as usize {
            return None;
        }
        let ring = Arc::new(ThreadRing::new(rings.len() as u16, self.capacity));
        rings.push(Arc::clone(&ring));
        Some(ring)
    }

    /// Snapshot every ring (cold; safe while writers run).
    pub fn snapshot_all(&self) -> Vec<RingSnapshot> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings.iter().map(|r| r.snapshot()).collect()
    }

    /// One merged timeline, ordered by timestamp (ties by thread id,
    /// preserving each thread's write order).
    pub fn timeline(&self) -> Vec<Event> {
        let mut all: Vec<Event> =
            self.snapshot_all().into_iter().flat_map(|s| s.events).collect();
        all.sort_by_key(|e| (e.ts_ns, e.tid));
        all
    }

    /// Aggregate counts and drop accounting (see [`Summary`]).
    pub fn summary(&self) -> Summary {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut counts = [0u64; KIND_COUNT];
        let mut threads = Vec::with_capacity(rings.len());
        for r in rings.iter() {
            for (i, c) in r.counts().iter().enumerate() {
                counts[i] += c;
            }
            let snap = r.snapshot();
            threads.push(ThreadSummary {
                tid: r.tid(),
                written: snap.written,
                recovered: snap.events.len() as u64,
            });
        }
        Summary { mode: self.mode(), capacity: self.capacity, threads, counts }
    }

    /// Total events written across all rings (cheap liveness probe:
    /// the CLI only dumps a postmortem when something was recorded).
    pub fn total_written(&self) -> u64 {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings.iter().map(|r| r.written()).sum()
    }
}

static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();

/// Install the global recorder with [`DEFAULT_CAPACITY`]. Idempotent:
/// a second call returns the existing recorder (use
/// [`FlightRecorder::set_mode`] to change granularity after the fact).
pub fn install(mode: Mode) -> &'static Arc<FlightRecorder> {
    install_with(mode, DEFAULT_CAPACITY)
}

/// [`install`] with an explicit per-thread ring capacity.
pub fn install_with(mode: Mode, capacity: usize) -> &'static Arc<FlightRecorder> {
    GLOBAL.get_or_init(|| Arc::new(FlightRecorder::new(mode, capacity)))
}

/// The recorder, or `None` while recording is off.
pub fn global() -> Option<&'static Arc<FlightRecorder>> {
    GLOBAL.get()
}

/// Whether full-granularity events should be emitted right now.
#[inline]
pub fn full() -> bool {
    matches!(GLOBAL.get(), Some(r) if r.mode() == Mode::Full)
}

struct ThreadHandle {
    ring: Arc<ThreadRing>,
    phase_stack: Vec<u16>,
}

thread_local! {
    static HANDLE: RefCell<Option<ThreadHandle>> = const { RefCell::new(None) };
}

/// Run `f` with the calling thread's handle. No-op when the recorder is
/// off, the thread table is full, or the thread is mid-teardown.
#[inline]
fn with_handle(f: impl FnOnce(&FlightRecorder, &mut ThreadHandle)) {
    let Some(rec) = GLOBAL.get() else { return };
    let _ = HANDLE.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let Some(ring) = rec.ring_for_current_thread() else { return };
            *slot = Some(ThreadHandle { ring, phase_stack: Vec::new() });
        }
        f(rec, slot.as_mut().expect("handle just initialized"));
    });
}

/// Record one event (any mode). No-op while the recorder is off.
#[inline]
pub fn event(kind: EventKind, code: u16, a: u64, b: u64) {
    with_handle(|rec, h| {
        let ev = Event { ts_ns: rec.now_ns(), kind, code, tid: h.ring.tid(), a, b };
        h.ring.record(&ev);
    });
}

/// Record one event only in [`Mode::Full`] — for per-batch / per-task
/// sites that are too hot for phase granularity.
#[inline]
pub fn event_full(kind: EventKind, code: u16, a: u64, b: u64) {
    if full() {
        event(kind, code, a, b);
    }
}

/// Record a phase entry and remember its code so the matching
/// [`phase_exit`] can name it without the caller threading state.
#[inline]
pub fn phase_enter(name: &str) {
    with_handle(|rec, h| {
        let code = phase_code(name);
        h.phase_stack.push(code);
        let ev = Event {
            ts_ns: rec.now_ns(),
            kind: EventKind::PhaseEnter,
            code,
            tid: h.ring.tid(),
            a: h.phase_stack.len() as u64,
            b: 0,
        };
        h.ring.record(&ev);
    });
}

/// Record the exit of the innermost entered phase (no-op when the
/// stack is empty — e.g. recording switched on mid-phase).
#[inline]
pub fn phase_exit() {
    with_handle(|rec, h| {
        let Some(code) = h.phase_stack.pop() else { return };
        let ev = Event {
            ts_ns: rec.now_ns(),
            kind: EventKind::PhaseExit,
            code,
            tid: h.ring.tid(),
            a: h.phase_stack.len() as u64 + 1,
            b: 0,
        };
        h.ring.record(&ev);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide state; exercise everything in
    // one test so install order is deterministic under the parallel
    // test runner.
    #[test]
    fn global_recorder_end_to_end() {
        let _guard = crate::test_serial();
        assert!(Mode::parse("off").unwrap().is_none());
        assert_eq!(Mode::parse("full").unwrap(), Some(Mode::Full));
        assert!(Mode::parse("loud").is_err());

        // Emitting before install is a silent no-op.
        event(EventKind::Mark, 1, 2, 3);

        let rec = install_with(Mode::Phase, 64);
        assert!(global().is_some());
        assert!(!full());

        phase_enter("grace_join");
        phase_enter("partition");
        event(EventKind::Grant, 0, 0, 1 << 20);
        event_full(EventKind::Batch, 0, 1, 16); // dropped: phase mode
        phase_exit();
        phase_exit();
        phase_exit(); // unbalanced extra exit: ignored

        rec.set_mode(Mode::Full);
        assert!(full());
        event_full(EventKind::Batch, 2, 7, 16);
        rec.set_mode(Mode::Phase);

        let others: Vec<std::thread::JoinHandle<()>> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    phase_enter("pair");
                    event(EventKind::Steal, 1, i, i + 1);
                    phase_exit();
                })
            })
            .collect();
        for h in others {
            h.join().unwrap();
        }

        let summary = rec.summary();
        assert_eq!(summary.mode, Mode::Phase);
        assert_eq!(summary.capacity, 64);
        // ≥ 3: this thread + 2 spawned (other serialized tests may have
        // registered rings of their own first).
        assert!(summary.threads.len() >= 3, "threads: {:?}", summary.threads);
        assert_eq!(summary.dropped(), 0);
        assert_eq!(summary.counts[EventKind::PhaseEnter as usize], 4);
        assert_eq!(summary.counts[EventKind::PhaseExit as usize], 4);
        assert_eq!(summary.counts[EventKind::Grant as usize], 1);
        assert_eq!(summary.counts[EventKind::Batch as usize], 1, "full-only event needs Full");
        assert_eq!(summary.counts[EventKind::Steal as usize], 2);
        assert_eq!(summary.written(), rec.total_written());

        let timeline = rec.timeline();
        assert_eq!(timeline.len() as u64, summary.written());
        assert!(timeline.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "timeline is ordered");

        // Phase enter/exit pair up by code on this thread's ring (the
        // one holding the grace_join entry).
        let rings = rec.snapshot_all();
        let main_ring = rings
            .iter()
            .find(|r| r.events.iter().any(|e| {
                e.kind == EventKind::PhaseEnter && e.code == phase_code("grace_join")
            }))
            .expect("this test's ring");
        let enters: Vec<u16> = main_ring
            .events
            .iter()
            .filter(|e| e.kind == EventKind::PhaseEnter)
            .map(|e| e.code)
            .collect();
        let exits: Vec<u16> = main_ring
            .events
            .iter()
            .filter(|e| e.kind == EventKind::PhaseExit)
            .map(|e| e.code)
            .collect();
        assert_eq!(enters, vec![phase_code("grace_join"), phase_code("partition")]);
        assert_eq!(exits, vec![phase_code("partition"), phase_code("grace_join")]);

        // install() again returns the same recorder.
        let again = install(Mode::Full);
        assert!(Arc::ptr_eq(again, rec));
        assert_eq!(again.capacity(), 64);
    }
}
