//! The per-thread bounded ring and its torn-read-safe snapshot.
//!
//! Each ring has exactly one writer (the owning thread) and any number
//! of concurrent cold readers (postmortem dump, summary). Slots are
//! five `AtomicU64` words: a sequence word plus the event's four wire
//! words ([`Event::encode`]). Two monotone counters make reads safe
//! without locking the writer:
//!
//! * `start` — incremented (with a full barrier) *before* an event's
//!   slot words are written. If a reader observes `start <= j + cap`,
//!   no writer had begun overwriting event `j`'s slot.
//! * `done` — published (release) *after* the slot words. Events below
//!   `done` are fully written.
//!
//! A reader snapshots `done`, copies candidate slots, issues a `SeqCst`
//! fence, then re-reads `start` and discards any event whose slot could
//! have been entered by a later write during the copy. Whatever remains
//! is untorn; everything else is counted as dropped. The hammer test
//! (`tests/hammer.rs`) drives this under real concurrency.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::event::{Event, KIND_COUNT};

/// Words per slot: sequence + the four encoded event words.
const WORDS: usize = 5;

/// One thread's journal: a fixed ring of event slots plus per-kind
/// totals (totals never wrap — they feed the RunReport summary).
pub struct ThreadRing {
    tid: u16,
    cap: usize,
    start: AtomicU64,
    done: AtomicU64,
    slots: Box<[AtomicU64]>,
    counts: [AtomicU64; KIND_COUNT],
}

/// A consistent copy of one ring: recovered events in write order,
/// plus the write total for drop accounting.
#[derive(Debug, Clone)]
pub struct RingSnapshot {
    /// Owning thread id.
    pub tid: u16,
    /// Events ever written to this ring (including overwritten ones).
    pub written: u64,
    /// Untorn events recovered, oldest first.
    pub events: Vec<Event>,
}

impl RingSnapshot {
    /// Events written but not recovered (ring wrap, or in flight during
    /// a concurrent snapshot).
    pub fn dropped(&self) -> u64 {
        self.written.saturating_sub(self.events.len() as u64)
    }
}

impl ThreadRing {
    /// A ring holding the last `cap` events for thread `tid`. `cap` is
    /// clamped to at least 2.
    pub fn new(tid: u16, cap: usize) -> ThreadRing {
        let cap = cap.max(2);
        let slots = (0..cap * WORDS).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        ThreadRing {
            tid,
            cap,
            start: AtomicU64::new(0),
            done: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// This ring's thread id.
    pub fn tid(&self) -> u16 {
        self.tid
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append one event. Must only be called from the owning thread
    /// (single writer); readers may run concurrently.
    pub fn record(&self, ev: &Event) {
        // Full barrier: the new `start` is globally visible before any
        // of this event's slot stores, so a reader that saw our slot
        // words also sees `start` past us and discards the torn read.
        let k = self.start.fetch_add(1, Ordering::SeqCst);
        let base = (k as usize % self.cap) * WORDS;
        let w = ev.encode();
        self.slots[base + 1].store(w[0], Ordering::Relaxed);
        self.slots[base + 2].store(w[1], Ordering::Relaxed);
        self.slots[base + 3].store(w[2], Ordering::Relaxed);
        self.slots[base + 4].store(w[3], Ordering::Relaxed);
        // Sequence word last, then the completion counter: a reader
        // that observes `done > k` sees every word above.
        self.slots[base].store(k, Ordering::Release);
        self.done.store(k + 1, Ordering::Release);
        self.counts[ev.kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Total events ever written (monotone; survives wrap).
    pub fn written(&self) -> u64 {
        self.done.load(Ordering::Acquire)
    }

    /// Per-kind totals, indexed by `EventKind as usize`.
    pub fn counts(&self) -> [u64; KIND_COUNT] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Copy out every recoverable event, oldest first. Safe to call
    /// from any thread while the owner keeps writing; concurrent
    /// overwrites surface as drops, never as torn records.
    pub fn snapshot(&self) -> RingSnapshot {
        let done = self.done.load(Ordering::Acquire);
        let lo = done.saturating_sub(self.cap as u64);
        let mut raw: Vec<(u64, [u64; 4])> = Vec::with_capacity((done - lo) as usize);
        for j in lo..done {
            let base = (j as usize % self.cap) * WORDS;
            // Slot already recycled for a newer event? Skip early.
            if self.slots[base].load(Ordering::Acquire) != j {
                continue;
            }
            raw.push((
                j,
                [
                    self.slots[base + 1].load(Ordering::Relaxed),
                    self.slots[base + 2].load(Ordering::Relaxed),
                    self.slots[base + 3].load(Ordering::Relaxed),
                    self.slots[base + 4].load(Ordering::Relaxed),
                ],
            ));
        }
        // Order the copies above before re-reading `start`: any writer
        // whose slot stores we might have observed did its `start`
        // increment (full barrier) first, so it is visible here.
        fence(Ordering::SeqCst);
        let started = self.start.load(Ordering::Relaxed);
        let safe_lo = started.saturating_sub(self.cap as u64);
        let events = raw
            .into_iter()
            .filter(|(j, _)| *j >= safe_lo)
            .filter_map(|(_, words)| Event::decode(words))
            .collect();
        RingSnapshot { tid: self.tid, written: done, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn mark(ts_ns: u64, tid: u16, a: u64, b: u64) -> Event {
        Event { ts_ns, kind: EventKind::Mark, code: 0, tid, a, b }
    }

    #[test]
    fn records_and_recovers_in_order() {
        let ring = ThreadRing::new(7, 8);
        for i in 0..5u64 {
            ring.record(&mark(i * 10, 7, i, !i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.tid, 7);
        assert_eq!(snap.written, 5);
        assert_eq!(snap.dropped(), 0);
        let got: Vec<u64> = snap.events.iter().map(|e| e.a).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert!(snap.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn wrap_keeps_last_cap_and_counts_drops_exactly() {
        let cap = 8;
        let ring = ThreadRing::new(0, cap);
        let n = 30u64;
        for i in 0..n {
            ring.record(&mark(i, 0, i, i ^ 0xdead));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.written, n);
        assert_eq!(snap.events.len(), cap);
        assert_eq!(snap.dropped(), n - cap as u64);
        let got: Vec<u64> = snap.events.iter().map(|e| e.a).collect();
        let want: Vec<u64> = (n - cap as u64..n).collect();
        assert_eq!(got, want, "the survivors are exactly the newest cap events");
    }

    #[test]
    fn per_kind_counts_accumulate_past_wrap() {
        let ring = ThreadRing::new(0, 4);
        for i in 0..10u64 {
            ring.record(&mark(i, 0, i, 0));
        }
        ring.record(&Event { ts_ns: 11, kind: EventKind::Fault, code: 1, tid: 0, a: 0, b: 0 });
        let counts = ring.counts();
        assert_eq!(counts[EventKind::Mark as usize], 10);
        assert_eq!(counts[EventKind::Fault as usize], 1);
        assert_eq!(counts.iter().sum::<u64>(), ring.written());
    }

    #[test]
    fn empty_ring_snapshots_empty() {
        let ring = ThreadRing::new(3, 16);
        let snap = ring.snapshot();
        assert_eq!(snap.written, 0);
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped(), 0);
    }

    #[test]
    fn tiny_capacity_is_clamped() {
        let ring = ThreadRing::new(0, 0);
        assert_eq!(ring.capacity(), 2);
        ring.record(&mark(0, 0, 1, 2));
        assert_eq!(ring.snapshot().events.len(), 1);
    }
}
